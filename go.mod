module setlearn

go 1.22
