// Package setlearn is a Go reproduction of "Learning over Sets for
// Databases" (Davitkova, Gjurovski, Michel — EDBT 2024): learned,
// permutation-invariant replacements for database structures over
// collections of sets — a set index, a cardinality estimator, and a
// learned Bloom filter — built on the DeepSets architecture with
// per-element compression and a hybrid error-bounded structure.
//
// The public entry point is internal/core (BuildIndex, BuildEstimator,
// BuildMembershipFilter); see README.md for the architecture overview,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. bench_test.go in this
// directory exposes one benchmark per table and figure of the paper.
package setlearn
