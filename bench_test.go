package setlearn_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§8). The harness benchmarks run the full experiment (training included
// on the first iteration; trained suites are cached afterwards, so
// steady-state iterations measure the workload itself). The Query
// benchmarks measure the per-operation latencies behind Tables 4, 8, and
// 11 directly.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkTable3 -benchmem

import (
	"io"
	"testing"

	"setlearn/internal/bench"
	"setlearn/internal/dataset"
)

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(name, io.Discard, dataset.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DatasetStats regenerates Table 2 (dataset statistics).
func BenchmarkTable2DatasetStats(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig3EmbeddingVsBloom regenerates Figure 3 (embedding matrix vs
// Bloom filter size).
func BenchmarkFig3EmbeddingVsBloom(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig6CardinalityAccuracy regenerates Figure 6 (cardinality
// q-error by query result size, all variants, all datasets).
func BenchmarkFig6CardinalityAccuracy(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable3CardinalityMemory regenerates Table 3 (estimator memory).
func BenchmarkTable3CardinalityMemory(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4CardinalityLatency regenerates Table 4 (per-query
// estimator latency).
func BenchmarkTable4CardinalityLatency(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5IndexAccuracy regenerates Table 5 (index accuracy across
// eviction percentiles).
func BenchmarkTable5IndexAccuracy(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkTable6CompressionFactor regenerates Table 6 (tunable sv_d).
func BenchmarkTable6CompressionFactor(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7IndexMemory regenerates Table 7 (hybrid index memory
// breakdown vs B+ tree).
func BenchmarkTable7IndexMemory(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkTable8IndexLatency regenerates Table 8 (per-query index
// latency).
func BenchmarkTable8IndexLatency(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkLocalVsGlobalError regenerates the §8.3.3 local-vs-global error
// bound comparison.
func BenchmarkLocalVsGlobalError(b *testing.B) { runExperiment(b, "localerr") }

// BenchmarkTable9BloomAccuracy regenerates Table 9 (learned Bloom filter
// binary accuracy).
func BenchmarkTable9BloomAccuracy(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkTable10BloomMemory regenerates Table 10 (filter memory vs fp
// rate).
func BenchmarkTable10BloomMemory(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkTable11BloomLatency regenerates Table 11 (per-query filter
// latency).
func BenchmarkTable11BloomLatency(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkFig7DigitSum regenerates Figure 7 (digit-sum generalization,
// DeepSets vs CDeepSets vs LSTM vs GRU).
func BenchmarkFig7DigitSum(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8CompressionDims regenerates Figure 8 (input dimensionality
// vs ns).
func BenchmarkFig8CompressionDims(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable12PgSim regenerates Table 12 (estimator as a UDF in the
// pgsim row store).
func BenchmarkTable12PgSim(b *testing.B) { runExperiment(b, "table12") }

// BenchmarkBuildTime regenerates the §8.1 construction-cost comparison.
func BenchmarkBuildTime(b *testing.B) { runExperiment(b, "buildtime") }

// ---------------------------------------------------------------------------
// Per-operation latency benchmarks: the single-query costs behind Tables 4,
// 8, and 11, measured through testing.B so ns/op and allocations land in
// bench_output.txt.

func cardSuite(b *testing.B) *bench.CardSuite {
	b.Helper()
	s, err := bench.BuildCardSuite(dataset.NamedCollection{
		Name:       "RW",
		Collection: dataset.GenerateRW(dataset.Tiny.RWN, dataset.Tiny.RWVocab, 101),
	}, dataset.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryCardinalityLSM measures one LSM estimate (Table 4 row).
func BenchmarkQueryCardinalityLSM(b *testing.B) {
	s := cardSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 1)
	est := s.Variants[0].Estimator
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(qs[i%len(qs)])
	}
}

// BenchmarkQueryCardinalityCLSMHybrid measures one CLSM-Hybrid estimate.
func BenchmarkQueryCardinalityCLSMHybrid(b *testing.B) {
	s := cardSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 1)
	est := s.Variants[3].Estimator
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(qs[i%len(qs)])
	}
}

// BenchmarkQueryCardinalityHashMap measures the exact HashMap lookup.
func BenchmarkQueryCardinalityHashMap(b *testing.B) {
	s := cardSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.HashMap.Cardinality(qs[i%len(qs)])
	}
}

func indexSuite(b *testing.B) *bench.IndexSuite {
	b.Helper()
	s, err := bench.BuildIndexSuite(dataset.NamedCollection{
		Name:       "RW",
		Collection: dataset.GenerateRW(dataset.Tiny.RWN, dataset.Tiny.RWVocab, 101),
	}, dataset.Tiny, 90, 100)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryIndexHybrid measures one hybrid index lookup (Table 8 row).
func BenchmarkQueryIndexHybrid(b *testing.B) {
	s := indexSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 2)
	idx := s.Variants[1].Index
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(qs[i%len(qs)])
	}
}

// BenchmarkQueryIndexGlobalBound measures the same lookup under the single
// global error bound (§8.3.3 baseline).
func BenchmarkQueryIndexGlobalBound(b *testing.B) {
	s := indexSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 2)
	idx := s.Variants[1].Index
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.LookupGlobalBound(qs[i%len(qs)])
	}
}

// BenchmarkQueryIndexBPTree measures the B+ tree competitor lookup.
func BenchmarkQueryIndexBPTree(b *testing.B) {
	s := indexSuite(b)
	qs := dataset.QueryWorkload(s.Data.Collection, 256, dataset.Tiny.MaxSubset, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BPTree.Lookup(qs[i%len(qs)])
	}
}

func bloomSuite(b *testing.B) *bench.BloomSuite {
	b.Helper()
	s, err := bench.BuildBloomSuite(dataset.NamedCollection{
		Name:       "RW",
		Collection: dataset.GenerateRW(dataset.Tiny.RWN, dataset.Tiny.RWVocab, 101),
	}, dataset.Tiny)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryBloomLearned measures one learned-filter membership query
// (Table 11 row).
func BenchmarkQueryBloomLearned(b *testing.B) {
	s := bloomSuite(b)
	v := &s.Variants[1] // CLSM
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Contains(s.Md.Positive[i%len(s.Md.Positive)])
	}
}

// ---------------------------------------------------------------------------
// Inference fast-path benchmarks: the φ-table / φ-cache / batched execution
// modes on the uncompressed cardinality-shaped model, set size 8. The
// acceptance bar is BenchmarkInferencePhiTable ≥5× faster per op than
// BenchmarkInferenceUncached (outputs are bit-identical; see
// deepsets.TestAccelBitIdentical and the "inference" experiment).

func inferenceFixture(b *testing.B) *bench.InferenceFixture {
	b.Helper()
	f, err := bench.BuildInferenceFixture(false, uint32(dataset.Tiny.RWVocab-1), 8, 256, 7)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkInferenceUncached runs φ from scratch for every element.
func BenchmarkInferenceUncached(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(nil)
	p := f.Model.NewPredictor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(f.Queries[i%len(f.Queries)])
	}
}

// BenchmarkInferencePhiTable reads φ rows from the precomputed table.
func BenchmarkInferencePhiTable(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(f.Model.BuildPhiTable())
	p := f.Model.NewPredictor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(f.Queries[i%len(f.Queries)])
	}
}

// BenchmarkInferencePhiCache reads φ through the sharded cache, sized to
// half the universe so eviction stays on the measured path.
func BenchmarkInferencePhiCache(b *testing.B) {
	f := inferenceFixture(b)
	cfg := f.Model.Config()
	f.Model.SetPhiAccel(f.Model.NewPhiCache(dataset.Tiny.RWVocab/2*cfg.PhiOut*8, 0))
	p := f.Model.NewPredictor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(f.Queries[i%len(f.Queries)])
	}
}

// BenchmarkInferenceBatchPhiTable answers the whole 256-query workload per
// iteration through PredictBatch over the φ-table; ns/op is per batch, so
// per-query cost is ns/op ÷ 256.
func BenchmarkInferenceBatchPhiTable(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(f.Model.BuildPhiTable())
	p := f.Model.NewPredictor()
	dst := make([]float64, len(f.Queries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictBatch(dst, f.Queries)
	}
}

// BenchmarkInferenceF32PhiTable measures the float32 serving path with the
// φ-table carried into the snapshot — the zero-alloc configuration the f32
// acceptance bar compares against BenchmarkInferenceUncached.
func BenchmarkInferenceF32PhiTable(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(f.Model.BuildPhiTable())
	p := f.Model.Snapshot32().NewPredictor32()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(f.Queries[i%len(f.Queries)])
	}
}

// BenchmarkInferenceF32Uncached runs the float32 MLP φ for every element.
func BenchmarkInferenceF32Uncached(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(nil)
	p := f.Model.Snapshot32().NewPredictor32()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(f.Queries[i%len(f.Queries)])
	}
}

// BenchmarkInferenceF32BatchPhiTable answers the whole 256-query workload
// per iteration through the f32 PredictBatch; ns/op is per batch.
func BenchmarkInferenceF32BatchPhiTable(b *testing.B) {
	f := inferenceFixture(b)
	f.Model.SetPhiAccel(f.Model.BuildPhiTable())
	p := f.Model.Snapshot32().NewPredictor32()
	dst := make([]float64, len(f.Queries))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictBatch(dst, f.Queries)
	}
}

// BenchmarkQueryBloomTraditional measures the traditional Bloom filter.
func BenchmarkQueryBloomTraditional(b *testing.B) {
	s := bloomSuite(b)
	f := s.Filters[0.01]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(s.Md.Positive[i%len(s.Md.Positive)])
	}
}
