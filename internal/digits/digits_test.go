package digits

import (
	"testing"
)

func TestRunSmokeAndShapes(t *testing.T) {
	res, sizes, err := Run(Config{
		TrainSets: 300, TrainMaxM: 6, MaxVal: 10,
		TestMs: []int{3, 6, 12}, TestSets: 50, Epochs: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		for _, name := range []ModelName{DeepSets, CDeepSets, LSTM, GRU} {
			mae, ok := r.MAE[name]
			if !ok {
				t.Fatalf("M=%d missing %s", r.M, name)
			}
			if mae < 0 {
				t.Fatalf("negative MAE for %s", name)
			}
		}
	}
	if sizes.CDeepSetsBytes >= sizes.DeepSetsBytes {
		// With MaxVal as small as 10 compression may not shrink much, but
		// it must never grow past the uncompressed table.
		t.Fatalf("compressed embeddings %d ≥ uncompressed %d",
			sizes.CDeepSetsBytes, sizes.DeepSetsBytes)
	}
}

func TestCompressionShrinksEmbeddingsAtLargerRange(t *testing.T) {
	// §8.5.1 varies digits up to 100/1000 to expose the memory difference.
	_, sizes, err := Run(Config{
		TrainSets: 50, TrainMaxM: 4, MaxVal: 1000,
		TestMs: []int{4}, TestSets: 10, Epochs: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sizes.CDeepSetsBytes*4 > sizes.DeepSetsBytes {
		t.Fatalf("expected ≥4x embedding shrink at MaxVal=1000: %d vs %d",
			sizes.CDeepSetsBytes, sizes.DeepSetsBytes)
	}
}

func TestDeepSetsGeneralizesBeyondTrainingSize(t *testing.T) {
	// The headline claim of Figure 7: trained on ≤10 digits, DeepSets
	// stays accurate at M≫10 while the sequence models degrade. Relative
	// MAE (per true sum) must be far better for DeepSets at M=50.
	res, _, err := Run(Config{
		TrainSets: 1500, TrainMaxM: 10, MaxVal: 10,
		TestMs: []int{50}, TestSets: 100, Epochs: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.MAE[DeepSets] >= r.MAE[LSTM] || r.MAE[DeepSets] >= r.MAE[GRU] {
		t.Fatalf("DeepSets should beat sequence models at M=50: ds=%v lstm=%v gru=%v",
			r.MAE[DeepSets], r.MAE[LSTM], r.MAE[GRU])
	}
}

func TestSampleDeterministicAcrossSeeds(t *testing.T) {
	a, _, err := Run(Config{TrainSets: 50, TestMs: []int{5}, TestSets: 20, Epochs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(Config{TrainSets: 50, TestMs: []int{5}, TestSets: 20, Epochs: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []ModelName{DeepSets, CDeepSets, LSTM, GRU} {
		if a[0].MAE[name] != b[0].MAE[name] {
			t.Fatalf("%s not deterministic: %v vs %v", name, a[0].MAE[name], b[0].MAE[name])
		}
	}
}
