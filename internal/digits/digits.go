// Package digits reproduces the paper's Figure 7 experiment (§8.5.1),
// itself taken from the original DeepSets paper: models are trained to
// predict the sum of a multiset of at most TrainMaxM digits and tested on
// far larger multisets (M up to 100). DeepSets — compressed or not —
// generalizes across set sizes because the sum pool scales linearly with
// cardinality; LSTM and GRU, which consume the digits as a sequence, do
// not.
package digits

import (
	"fmt"
	"math"
	"math/rand"

	"setlearn/internal/ad"
	"setlearn/internal/deepsets"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// Config parameterizes the experiment.
type Config struct {
	TrainSets int   // number of training multisets (paper: 100 000)
	TrainMaxM int   // maximum training multiset size (paper: 10)
	MaxVal    int   // digit values are drawn from [1, MaxVal] (paper: 10, 100, 1000)
	TestMs    []int // multiset sizes to evaluate (paper: 5..100)
	TestSets  int   // test multisets per M (paper: 10 000)
	Epochs    int
	LR        float64
	EmbedDim  int
	Hidden    int
	Seed      int64
}

func (c *Config) applyDefaults() {
	if c.TrainSets == 0 {
		c.TrainSets = 2000
	}
	if c.TrainMaxM == 0 {
		c.TrainMaxM = 10
	}
	if c.MaxVal == 0 {
		c.MaxVal = 10
	}
	if len(c.TestMs) == 0 {
		c.TestMs = []int{5, 10, 20, 50, 100}
	}
	if c.TestSets == 0 {
		c.TestSets = 200
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = 16
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
}

// ModelName identifies a competitor.
type ModelName string

// The four competitors of Figure 7.
const (
	DeepSets  ModelName = "DeepSets"
	CDeepSets ModelName = "CDeepSets"
	LSTM      ModelName = "LSTM"
	GRU       ModelName = "GRU"
)

// Result is the MAE of each model at one test multiset size.
type Result struct {
	M   int
	MAE map[ModelName]float64
}

// SizeReport is the memory comparison quoted in §8.5.1.
type SizeReport struct {
	DeepSetsBytes  int
	CDeepSetsBytes int
}

// digitSum is one sample: a multiset of digit values (1-based ids) and its
// sum. Digits repeat, so the slice is NOT canonicalized — DeepSets handles
// multisets transparently since the sum pool is multiplicity-aware.
type digitSum struct {
	digits []uint32
	sum    float64
}

func sample(rng *rand.Rand, m, maxVal int) digitSum {
	n := 1 + rng.Intn(m)
	d := digitSum{digits: make([]uint32, n)}
	for i := range d.digits {
		v := 1 + rng.Intn(maxVal)
		d.digits[i] = uint32(v)
		d.sum += float64(v)
	}
	return d
}

func sampleExact(rng *rand.Rand, m, maxVal int) digitSum {
	d := digitSum{digits: make([]uint32, m)}
	for i := range d.digits {
		v := 1 + rng.Intn(maxVal)
		d.digits[i] = uint32(v)
		d.sum += float64(v)
	}
	return d
}

// seqModel wraps an RNN competitor: embedding → cell over the sequence →
// linear head.
type seqModel struct {
	embed *nn.Embedding
	lstm  *nn.LSTMCell
	gru   *nn.GRUCell
	head  *nn.Dense
}

func (s *seqModel) params() []*nn.Param {
	ps := s.embed.Params()
	if s.lstm != nil {
		ps = append(ps, s.lstm.Params()...)
	}
	if s.gru != nil {
		ps = append(ps, s.gru.Params()...)
	}
	return append(ps, s.head.Params()...)
}

func (s *seqModel) apply(tp *ad.Tape, digits []uint32) *ad.Node {
	xs := make([]*ad.Node, len(digits))
	for i, d := range digits {
		xs[i] = s.embed.Apply(tp, int(d))
	}
	var h *ad.Node
	if s.lstm != nil {
		h = s.lstm.Run(tp, xs)
	} else {
		h = s.gru.Run(tp, xs)
	}
	return s.head.Apply(tp, h)
}

// Run trains all four models on identical data and returns per-M MAEs plus
// the DeepSets-vs-compressed size comparison.
func Run(cfg Config) ([]Result, SizeReport, error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	trainData := make([]digitSum, cfg.TrainSets)
	for i := range trainData {
		trainData[i] = sample(rng, cfg.TrainMaxM, cfg.MaxVal)
	}
	// Targets are scaled by the maximum training sum so every model sees
	// targets in (0,1]; at test time predictions are unscaled again. The
	// linear head lets DeepSets extrapolate beyond 1.0 for larger sets.
	norm := float64(cfg.TrainMaxM * cfg.MaxVal)

	// ρ is a single linear layer, as in the original DeepSets digit-sum
	// model: the prediction stays linear in the pooled sum, which is what
	// lets the model extrapolate far beyond the trained set size. A
	// nonlinear ρ saturates on large pools and cannot extrapolate.
	dsCfg := deepsets.Config{
		MaxID: uint32(cfg.MaxVal), EmbedDim: cfg.EmbedDim,
		PhiHidden: []int{cfg.Hidden}, PhiOut: cfg.Hidden,
		HiddenAct: nn.Tanh, OutputAct: nn.Identity, Seed: cfg.Seed,
	}
	ds, err := deepsets.New(dsCfg)
	if err != nil {
		return nil, SizeReport{}, fmt.Errorf("digits: %w", err)
	}
	cdsCfg := dsCfg
	cdsCfg.Compressed = true
	cdsCfg.NS = 2
	cds, err := deepsets.New(cdsCfg)
	if err != nil {
		return nil, SizeReport{}, fmt.Errorf("digits: %w", err)
	}

	wrng := rand.New(rand.NewSource(cfg.Seed + 1))
	lstm := &seqModel{
		embed: nn.NewEmbedding("lstm.emb", cfg.MaxVal+1, cfg.EmbedDim, wrng),
		lstm:  nn.NewLSTMCell("lstm", cfg.EmbedDim, cfg.Hidden, wrng),
		head:  nn.NewDense("lstm.head", cfg.Hidden, 1, nn.Identity, wrng),
	}
	gru := &seqModel{
		embed: nn.NewEmbedding("gru.emb", cfg.MaxVal+1, cfg.EmbedDim, wrng),
		gru:   nn.NewGRUCell("gru", cfg.EmbedDim, cfg.Hidden, wrng),
		head:  nn.NewDense("gru.head", cfg.Hidden, 1, nn.Identity, wrng),
	}

	// Train: one Adam per model, same shuffled stream.
	type trainee struct {
		name   ModelName
		step   func(tp *ad.Tape, d digitSum)
		opt    *nn.Adam
		params []*nn.Param
	}
	dsStep := func(m *deepsets.Model) func(tp *ad.Tape, d digitSum) {
		return func(tp *ad.Tape, d digitSum) {
			out := m.Apply(tp, sets.Set(d.digits))
			_, g := nn.MSELoss(out.Value[0], d.sum/norm)
			tp.Backward(out, []float64{g})
		}
	}
	seqStep := func(s *seqModel) func(tp *ad.Tape, d digitSum) {
		return func(tp *ad.Tape, d digitSum) {
			out := s.apply(tp, d.digits)
			_, g := nn.MSELoss(out.Value[0], d.sum/norm)
			tp.Backward(out, []float64{g})
		}
	}
	trainees := []trainee{
		{DeepSets, dsStep(ds), nn.NewAdam(cfg.LR), ds.Params()},
		{CDeepSets, dsStep(cds), nn.NewAdam(cfg.LR), cds.Params()},
		{LSTM, seqStep(lstm), nn.NewAdam(cfg.LR), lstm.params()},
		{GRU, seqStep(gru), nn.NewAdam(cfg.LR), gru.params()},
	}
	tp := ad.NewTape()
	order := rng.Perm(len(trainData))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			for _, tr := range trainees {
				tp.Reset()
				tr.step(tp, trainData[i])
				tr.opt.Step(tr.params)
			}
		}
	}

	// Evaluate.
	dsPred := ds.NewPredictor()
	cdsPred := cds.NewPredictor()
	evalSeq := func(s *seqModel, digits []uint32) float64 {
		tp.Reset()
		return s.apply(tp, digits).Value[0]
	}
	results := make([]Result, 0, len(cfg.TestMs))
	for _, m := range cfg.TestMs {
		testRng := rand.New(rand.NewSource(cfg.Seed + int64(1000+m)))
		maes := map[ModelName]float64{}
		for i := 0; i < cfg.TestSets; i++ {
			d := sampleExact(testRng, m, cfg.MaxVal)
			maes[DeepSets] += math.Abs(dsPred.Predict(sets.Set(d.digits))*norm - d.sum)
			maes[CDeepSets] += math.Abs(cdsPred.Predict(sets.Set(d.digits))*norm - d.sum)
			maes[LSTM] += math.Abs(evalSeq(lstm, d.digits)*norm - d.sum)
			maes[GRU] += math.Abs(evalSeq(gru, d.digits)*norm - d.sum)
		}
		for k := range maes {
			maes[k] /= float64(cfg.TestSets)
		}
		results = append(results, Result{M: m, MAE: maes})
	}
	sizes := SizeReport{DeepSetsBytes: ds.EmbeddingSizeBytes(), CDeepSetsBytes: cds.EmbeddingSizeBytes()}
	return results, sizes, nil
}
