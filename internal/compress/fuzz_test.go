package compress

import "testing"

// FuzzRoundTrip verifies lossless compression for arbitrary (elem, svd, ns)
// combinations within the valid domain.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(91), uint32(10), 2)
	f.Add(uint32(0), uint32(2), 4)
	f.Add(uint32(1<<31), uint32(3), 3)
	f.Fuzz(func(t *testing.T, elem, svd uint32, ns int) {
		if svd < 2 || ns < 2 || ns > 8 {
			return // outside the documented domain
		}
		parts := Compress(nil, elem, svd, ns)
		if len(parts) != ns {
			t.Fatalf("got %d parts want %d", len(parts), ns)
		}
		for _, p := range parts[:ns-1] {
			if p >= svd {
				t.Fatalf("remainder %d ≥ divisor %d", p, svd)
			}
		}
		// Roundtrip only guaranteed when the quotient chain fits; it always
		// does because Compress keeps dividing the running quotient.
		if got := Decompress(parts, svd); got != elem {
			t.Fatalf("roundtrip %d → %v → %d", elem, parts, got)
		}
	})
}
