package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDivisorMatchesPaperExample(t *testing.T) {
	// §5: ns=2, max id 100 → sv_d = ⌈√100⌉ = 10.
	if d := Divisor(100, 2); d != 10 {
		t.Fatalf("Divisor(100,2)=%d want 10", d)
	}
	// §5 motivation: 1,000,000 elements, ns=2 → tables of 1000 and 1001 rows.
	d := Divisor(1000000, 2)
	if d != 1000 {
		t.Fatalf("Divisor(1e6,2)=%d want 1000", d)
	}
	vs := VocabSizes(1000000, d, 2)
	if vs[0] != 1000 || vs[1] != 1001 {
		t.Fatalf("VocabSizes(1e6,1000,2)=%v want [1000 1001]", vs)
	}
}

func TestDivisorCoversRange(t *testing.T) {
	// d^ns must reach maxID so every id is representable.
	for _, maxID := range []uint32{1, 2, 10, 99, 100, 101, 5661, 73618, 346893, 1 << 30} {
		for ns := 2; ns <= 4; ns++ {
			d := uint64(Divisor(maxID, ns))
			p := uint64(1)
			for i := 0; i < ns; i++ {
				p *= d
			}
			if p < uint64(maxID) {
				t.Fatalf("Divisor(%d,%d)=%d: %d^%d=%d < maxID", maxID, ns, d, d, ns, p)
			}
			if d < 2 {
				t.Fatalf("Divisor(%d,%d)=%d below floor", maxID, ns, d)
			}
		}
	}
}

func TestCompressPaperExample(t *testing.T) {
	// Figure 4: {91, 12, 23} with sv_d = 10 → (9,1), (1,2), (2,3) as
	// (quotient, remainder); Algorithm 1 emits remainder first.
	cases := []struct {
		elem  uint32
		wantR uint32
		wantQ uint32
	}{{91, 1, 9}, {12, 2, 1}, {23, 3, 2}}
	for _, c := range cases {
		parts := Compress(nil, c.elem, 10, 2)
		if len(parts) != 2 || parts[0] != c.wantR || parts[1] != c.wantQ {
			t.Fatalf("Compress(%d,10,2)=%v want [%d %d]", c.elem, parts, c.wantR, c.wantQ)
		}
	}
}

func TestCompressAppendsToDst(t *testing.T) {
	buf := make([]uint32, 0, 8)
	buf = Compress(buf, 91, 10, 2)
	buf = Compress(buf, 12, 10, 2)
	if len(buf) != 4 || buf[2] != 2 || buf[3] != 1 {
		t.Fatalf("append semantics broken: %v", buf)
	}
}

func TestRoundTripExhaustiveSmall(t *testing.T) {
	for ns := 2; ns <= 3; ns++ {
		svd := Divisor(999, ns)
		for elem := uint32(0); elem <= 999; elem++ {
			parts := Compress(nil, elem, svd, ns)
			if got := Decompress(parts, svd); got != elem {
				t.Fatalf("roundtrip ns=%d: %d → %v → %d", ns, elem, parts, got)
			}
		}
	}
}

// Property: Compress/Decompress roundtrip for random ids, divisors, ns.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		elem := uint32(r.Int63n(1 << 31))
		ns := 2 + r.Intn(3)
		svd := Divisor(elem+1, ns)
		// Also exercise non-optimal (larger) divisors — the tunable setting.
		if r.Intn(2) == 0 {
			svd += uint32(r.Intn(1000))
		}
		parts := Compress(nil, elem, svd, ns)
		if len(parts) != ns {
			return false
		}
		for _, p := range parts[:ns-1] {
			if p >= svd {
				return false
			}
		}
		return Decompress(parts, svd) == elem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: compression is injective — distinct ids give distinct part
// vectors (otherwise the model could not distinguish elements).
func TestCompressInjective(t *testing.T) {
	svd := Divisor(5000, 2)
	seen := make(map[[2]uint32]uint32)
	for elem := uint32(0); elem <= 5000; elem++ {
		p := Compress(nil, elem, svd, 2)
		key := [2]uint32{p[0], p[1]}
		if prev, ok := seen[key]; ok {
			t.Fatalf("collision: %d and %d both compress to %v", prev, elem, key)
		}
		seen[key] = elem
	}
}

func TestVocabSizesBoundParts(t *testing.T) {
	maxID := uint32(73618) // Tweets vocabulary size from Table 2
	for ns := 2; ns <= 4; ns++ {
		svd := Divisor(maxID, ns)
		vs := VocabSizes(maxID, svd, ns)
		for elem := uint32(0); elem <= maxID; elem += 37 {
			parts := Compress(nil, elem, svd, ns)
			for i, p := range parts {
				if int(p) >= vs[i] {
					t.Fatalf("ns=%d elem=%d part %d=%d exceeds vocab %d", ns, elem, i, p, vs[i])
				}
			}
		}
	}
}

func TestTotalInputDimShrinksWithNS(t *testing.T) {
	// Figure 8: increasing ns drastically reduces the input dimensionality.
	maxID := uint32(1000000)
	prev := int(maxID) + 1 // uncompressed one-hot dimension
	for ns := 2; ns <= 4; ns++ {
		d := TotalInputDim(maxID, Divisor(maxID, ns), ns)
		if d >= prev {
			t.Fatalf("ns=%d: input dim %d did not shrink from %d", ns, d, prev)
		}
		prev = d
	}
}

func TestNoCompressionLimit(t *testing.T) {
	// svd > maxID degenerates to the uncompressed model: remainder carries
	// the whole id, quotient is always zero.
	maxID := uint32(500)
	svd := maxID + 1
	for elem := uint32(0); elem <= maxID; elem += 13 {
		parts := Compress(nil, elem, svd, 2)
		if parts[0] != elem || parts[1] != 0 {
			t.Fatalf("degenerate compression wrong: %d → %v", elem, parts)
		}
	}
	vs := VocabSizes(maxID, svd, 2)
	if vs[1] != 1 {
		t.Fatalf("quotient vocab should collapse to 1, got %v", vs)
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("Divisor ns=1", func() { Divisor(10, 1) })
	expectPanic("Compress svd=1", func() { Compress(nil, 5, 1, 2) })
	expectPanic("Compress ns=1", func() { Compress(nil, 5, 10, 1) })
	expectPanic("Decompress short", func() { Decompress([]uint32{1}, 10) })
	expectPanic("VocabSizes svd=0", func() { VocabSizes(10, 0, 2) })
}
