// Package compress implements the per-element lossless compression of the
// paper's §5 (Algorithm 1, taken from the LMKG framework): an element id is
// split into ns sub-elements by repeated division by a divisor sv_d, so that
// the single vocab-sized embedding table of DeepSets can be replaced by ns
// tables of roughly vocab^(1/ns) rows each.
package compress

import "fmt"

// Divisor returns the optimal divisor sv_d = ⌈maxID^(1/ns)⌉ for splitting
// ids in [0, maxID] into ns sub-elements, floored at 2 so the division chain
// always terminates. This is the "full compression" setting; any larger
// value trades memory back for accuracy (Table 6).
func Divisor(maxID uint32, ns int) uint32 {
	if ns < 2 {
		panic(fmt.Sprintf("compress: ns must be ≥ 2, got %d", ns))
	}
	// Integer ns-th root by search: smallest d with d^ns ≥ maxID.
	lo, hi := uint64(2), uint64(maxID)
	if hi < 2 {
		hi = 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if powAtLeast(mid, ns, uint64(maxID)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint32(lo)
}

// powAtLeast reports whether d^ns ≥ target without overflowing.
func powAtLeast(d uint64, ns int, target uint64) bool {
	p := uint64(1)
	for i := 0; i < ns; i++ {
		if p >= (target/d)+1 {
			return true
		}
		p *= d
	}
	return p >= target
}

// Compress splits elem into ns sub-elements by divisor svd, following
// Algorithm 1: ns−1 remainders (least significant first) followed by the
// final quotient. It appends to dst and returns the extended slice, so hot
// paths can reuse a buffer.
func Compress(dst []uint32, elem, svd uint32, ns int) []uint32 {
	if svd < 2 {
		panic(fmt.Sprintf("compress: divisor must be ≥ 2, got %d", svd))
	}
	if ns < 2 {
		panic(fmt.Sprintf("compress: ns must be ≥ 2, got %d", ns))
	}
	cur := elem
	for i := 0; i < ns-1; i++ {
		dst = append(dst, cur%svd)
		cur /= svd
	}
	return append(dst, cur)
}

// Decompress reverses Compress: parts must be the ns sub-elements produced
// with the same svd.
func Decompress(parts []uint32, svd uint32) uint32 {
	if len(parts) < 2 {
		panic("compress: Decompress needs at least 2 parts")
	}
	v := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		v = v*svd + parts[i]
	}
	return v
}

// VocabSizes returns the embedding-table row counts required for each of the
// ns sub-element positions when ids range over [0, maxID]: the ns−1
// remainder tables need svd rows, the final quotient table needs
// ⌊maxID / svd^(ns−1)⌋ + 1 rows.
func VocabSizes(maxID, svd uint32, ns int) []int {
	if svd < 2 || ns < 2 {
		panic(fmt.Sprintf("compress: invalid svd=%d ns=%d", svd, ns))
	}
	out := make([]int, ns)
	q := uint64(maxID)
	for i := 0; i < ns-1; i++ {
		out[i] = int(svd)
		q /= uint64(svd)
	}
	out[ns-1] = int(q) + 1
	return out
}

// TotalInputDim sums VocabSizes — the one-hot input dimensionality after
// compression, the quantity plotted in the paper's Figure 8.
func TotalInputDim(maxID, svd uint32, ns int) int {
	total := 0
	for _, v := range VocabSizes(maxID, svd, ns) {
		total += v
	}
	return total
}
