package deepsets

import (
	"math/rand"
	"sync"
	"testing"

	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// poolFixture builds a model (random weights are fine — inference is
// deterministic) and a query workload with single-threaded ground truth.
func poolFixture(tb testing.TB, compressed bool) (*PredictorPool, []sets.Set, []float64) {
	tb.Helper()
	m, err := New(Config{
		MaxID: 500, EmbedDim: 8, PhiHidden: []int{16}, PhiOut: 16,
		RhoHidden: []int{16}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: 11,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	queries := make([]sets.Set, 256)
	for i := range queries {
		ids := make([]uint32, 1+rng.Intn(5))
		for j := range ids {
			ids[j] = uint32(rng.Intn(501))
		}
		queries[i] = sets.New(ids...)
	}
	pool := m.NewPredictorPool()
	truth := make([]float64, len(queries))
	for i, q := range queries {
		truth[i] = pool.Predict(q)
	}
	return pool, queries, truth
}

// TestPredictorPoolParallel hammers one pool from 64 goroutines × 200
// predictions and requires bit-identical agreement with the single-threaded
// ground truth — the guarantee the server's lock-free inference rests on.
// The LSM and CLSM variants run as parallel subtests.
func TestPredictorPoolParallel(t *testing.T) {
	for _, tc := range []struct {
		name       string
		compressed bool
	}{{"lsm", false}, {"clsm", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			pool, queries, truth := poolFixture(t, tc.compressed)
			const goroutines, perG = 64, 200
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						k := (g*perG + i*31) % len(queries)
						if got := pool.Predict(queries[k]); got != truth[k] {
							t.Errorf("goroutine %d: Predict(%v) = %v, serial %v",
								g, queries[k], got, truth[k])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestPredictorPoolLogitParallel covers the second pool entry point.
func TestPredictorPoolLogitParallel(t *testing.T) {
	pool, queries, _ := poolFixture(t, false)
	truth := make([]float64, len(queries))
	for i, q := range queries {
		truth[i] = pool.PredictLogit(q)
	}
	const goroutines, perG = 64, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g + i*17) % len(queries)
				if got := pool.PredictLogit(queries[k]); got != truth[k] {
					t.Errorf("PredictLogit(%v) = %v, serial %v", queries[k], got, truth[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkPredictorPoolParallel(b *testing.B) {
	pool, queries, _ := poolFixture(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			pool.Predict(queries[i%len(queries)])
			i++
		}
	})
}
