package deepsets

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/ad"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

func newTestModel(t *testing.T, compressed bool) *Model {
	t.Helper()
	m, err := New(Config{
		MaxID:      999,
		EmbedDim:   4,
		PhiHidden:  []int{8},
		PhiOut:     8,
		RhoHidden:  []int{8},
		Compressed: compressed,
		OutputAct:  nn.Sigmoid,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigDefaults(t *testing.T) {
	m, err := New(Config{MaxID: 100, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.NS != 2 || cfg.SVD < 2 || cfg.EmbedDim == 0 || cfg.PhiOut == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	if err := (Config{EmbedDim: -1, PhiOut: 4}).Validate(); err == nil {
		t.Fatal("expected error for negative EmbedDim")
	}
	if err := (Config{EmbedDim: 4, PhiOut: 4, Compressed: true, NS: 1, SVD: 10}).Validate(); err == nil {
		t.Fatal("expected error for NS=1")
	}
	if err := (Config{EmbedDim: 4, PhiOut: 4, Compressed: true, NS: 2, SVD: 1}).Validate(); err == nil {
		t.Fatal("expected error for SVD=1")
	}
}

func TestPermutationInvariance(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		m := newTestModel(t, compressed)
		p := m.NewPredictor()
		// Same elements presented in different orders must give identical
		// outputs. sets.New canonicalizes, so feed raw Set slices directly.
		a := sets.Set{7, 130, 999}
		b := sets.Set{999, 7, 130}
		if got, want := p.Predict(b), p.Predict(a); got != want {
			t.Fatalf("compressed=%v: permutation changed output %v vs %v", compressed, got, want)
		}
	}
}

func TestVariableSetSizes(t *testing.T) {
	m := newTestModel(t, true)
	p := m.NewPredictor()
	for n := 1; n <= 8; n++ {
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i * 111)
		}
		out := p.Predict(sets.New(ids...))
		if math.IsNaN(out) || out < 0 || out > 1 {
			t.Fatalf("size %d: output %v out of sigmoid range", n, out)
		}
	}
}

func TestCompressedDistinguishesRecombinedSubelements(t *testing.T) {
	// The §5 counterexample: X = {(q1,r1),(q2,r2)} vs Z = {(q2,r1),(q1,r2)}.
	// With SVD=10: X={91,12} → (9,1),(1,2); Z={11,92} → (1,1),(9,2).
	// A model that pooled sub-embeddings independently could not tell them
	// apart; the φ-before-pool architecture must.
	m, err := New(Config{
		MaxID: 99, EmbedDim: 4, PhiHidden: []int{8}, PhiOut: 8,
		Compressed: true, NS: 2, SVD: 10, OutputAct: nn.Sigmoid, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := m.NewPredictor()
	x := p.Predict(sets.New(91, 12))
	z := p.Predict(sets.New(11, 92))
	if x == z {
		t.Fatalf("recombined sub-element sets indistinguishable: both %v", x)
	}
}

func TestPredictMatchesTapedForward(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		m := newTestModel(t, compressed)
		p := m.NewPredictor()
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(6)
			ids := make([]uint32, n)
			for i := range ids {
				ids[i] = uint32(rng.Intn(1000))
			}
			s := sets.New(ids...)
			tp := ad.NewTape()
			want := m.Apply(tp, s).Value[0]
			if got := p.Predict(s); math.Abs(got-want) > 1e-12 {
				t.Fatalf("compressed=%v: Predict %v vs tape %v", compressed, got, want)
			}
			tp2 := ad.NewTape()
			wantLogit := m.ApplyLogit(tp2, s).Value[0]
			if got := p.PredictLogit(s); math.Abs(got-wantLogit) > 1e-12 {
				t.Fatalf("compressed=%v: PredictLogit %v vs tape %v", compressed, got, wantLogit)
			}
		}
	}
}

func TestLogitSigmoidConsistency(t *testing.T) {
	m := newTestModel(t, false)
	p := m.NewPredictor()
	s := sets.New(1, 2, 3)
	logit := p.PredictLogit(s)
	if got := p.Predict(s); math.Abs(got-nn.StableSigmoid(logit)) > 1e-12 {
		t.Fatalf("sigmoid(logit) %v vs Predict %v", nn.StableSigmoid(logit), got)
	}
}

func TestCompressionShrinksModel(t *testing.T) {
	// The motivating claim of §5: for a large vocabulary the compressed
	// model is drastically smaller, because the embedding matrix dominates.
	mk := func(compressed bool) *Model {
		m, err := New(Config{
			MaxID: 200000, EmbedDim: 8, PhiHidden: []int{16}, PhiOut: 16,
			RhoHidden: []int{16}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	lsm, clsm := mk(false), mk(true)
	if clsm.SizeBytes()*10 > lsm.SizeBytes() {
		t.Fatalf("compression should shrink ≥10x here: LSM %d bytes, CLSM %d bytes",
			lsm.SizeBytes(), clsm.SizeBytes())
	}
	if clsm.EmbeddingSizeBytes() >= lsm.EmbeddingSizeBytes() {
		t.Fatal("compressed embeddings must be smaller")
	}
}

func TestModelLearnsSetRegression(t *testing.T) {
	// End-to-end trainability on both variants: fit y = |X|/8 (normalized
	// set size), a function any permutation-invariant model must learn.
	for _, compressed := range []bool{false, true} {
		m, err := New(Config{
			MaxID: 99, EmbedDim: 4, PhiHidden: []int{8}, PhiOut: 8,
			RhoHidden: []int{8}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := nn.NewAdam(0.01)
		rng := rand.New(rand.NewSource(11))
		for step := 0; step < 3000; step++ {
			n := 1 + rng.Intn(8)
			ids := make([]uint32, 0, n)
			for len(ids) < n {
				ids = append(ids, uint32(rng.Intn(100)))
			}
			s := sets.New(ids...)
			target := float64(len(s)) / 8
			tp := ad.NewTape()
			out := m.Apply(tp, s)
			_, g := nn.MSELoss(out.Value[0], target)
			tp.Backward(out, []float64{g})
			opt.Step(m.Params())
		}
		p := m.NewPredictor()
		var sumErr float64
		const trials = 100
		testRng := rand.New(rand.NewSource(77))
		for i := 0; i < trials; i++ {
			n := 1 + testRng.Intn(8)
			ids := make([]uint32, 0, n)
			for len(ids) < n {
				ids = append(ids, uint32(testRng.Intn(100)))
			}
			s := sets.New(ids...)
			sumErr += math.Abs(p.Predict(s) - float64(len(s))/8)
		}
		if mae := sumErr / trials; mae > 0.08 {
			t.Fatalf("compressed=%v: failed to learn set size, MAE %v", compressed, mae)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		m := newTestModel(t, compressed)
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		p1, p2 := m.NewPredictor(), m2.NewPredictor()
		s := sets.New(3, 500, 999)
		a, b := p1.Predict(s), p2.Predict(s)
		if math.Abs(a-b) > 1e-6 {
			t.Fatalf("compressed=%v: round trip %v vs %v", compressed, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestPanicsOnEmptySetAndOutOfRangeID(t *testing.T) {
	m := newTestModel(t, false)
	p := m.NewPredictor()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("empty predict", func() { p.Predict(sets.New()) })
	expectPanic("id out of range", func() { p.Predict(sets.New(1000)) })
	expectPanic("empty apply", func() { m.Apply(ad.NewTape(), sets.New()) })
}

func TestNumParamsConsistent(t *testing.T) {
	m := newTestModel(t, true)
	if m.SizeBytes() != 4*m.NumParams() {
		t.Fatalf("SizeBytes %d vs 4*NumParams %d", m.SizeBytes(), 4*m.NumParams())
	}
	if m.EmbeddingSizeBytes() >= m.SizeBytes() {
		t.Fatal("embedding bytes must be a strict subset of total")
	}
}

func BenchmarkPredictLSM(b *testing.B) {
	m, _ := New(Config{MaxID: 99999, EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{32}, OutputAct: nn.Sigmoid, Seed: 1})
	p := m.NewPredictor()
	s := sets.New(5, 999, 42000, 77777)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(s)
	}
}

func BenchmarkPredictCLSM(b *testing.B) {
	m, _ := New(Config{MaxID: 99999, EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{32}, Compressed: true, OutputAct: nn.Sigmoid, Seed: 1})
	p := m.NewPredictor()
	s := sets.New(5, 999, 42000, 77777)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Predict(s)
	}
}

func BenchmarkTrainStepCLSM(b *testing.B) {
	m, _ := New(Config{MaxID: 99999, EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{32}, Compressed: true, OutputAct: nn.Sigmoid, Seed: 1})
	opt := nn.NewAdam(0.001)
	s := sets.New(5, 999, 42000, 77777)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp := ad.NewTape()
		out := m.Apply(tp, s)
		_, g := nn.MSELoss(out.Value[0], 0.5)
		tp.Backward(out, []float64{g})
		opt.Step(m.Params())
	}
}

func TestPoolingVariants(t *testing.T) {
	for _, pool := range []Pooling{SumPool, MeanPool, MaxPool} {
		m, err := New(Config{
			MaxID: 99, EmbedDim: 4, PhiHidden: []int{8}, PhiOut: 8,
			RhoHidden: []int{8}, OutputAct: nn.Sigmoid, Pool: pool, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := m.NewPredictor()
		// Permutation invariance holds for every pooling choice.
		a := p.Predict(sets.Set{7, 30, 99})
		b := p.Predict(sets.Set{99, 7, 30})
		if a != b {
			t.Fatalf("pool=%v: permutation changed output", pool)
		}
		// Predict must match the taped forward for every pooling choice.
		s := sets.New(5, 60, 88)
		tp := ad.NewTape()
		want := m.Apply(tp, s).Value[0]
		if got := p.Predict(s); math.Abs(got-want) > 1e-12 {
			t.Fatalf("pool=%v: Predict %v vs tape %v", pool, got, want)
		}
	}
}

func TestPoolingString(t *testing.T) {
	if SumPool.String() != "sum" || MeanPool.String() != "mean" || MaxPool.String() != "max" {
		t.Fatal("Pooling labels wrong")
	}
}

func TestSumPoolIsMultiplicityAware(t *testing.T) {
	// Sum pooling distinguishes {x} from the multiset {x,x}; mean and max
	// cannot. This is why cardinality models default to sum.
	mk := func(pool Pooling) float64 {
		m, err := New(Config{
			MaxID: 9, EmbedDim: 2, PhiHidden: []int{4}, PhiOut: 4,
			RhoHidden: []int{4}, OutputAct: nn.Sigmoid, Pool: pool, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := m.NewPredictor()
		return p.Predict(sets.Set{3, 3}) - p.Predict(sets.Set{3})
	}
	if mk(SumPool) == 0 {
		t.Fatal("sum pool should distinguish multiplicity")
	}
	if mk(MeanPool) != 0 || mk(MaxPool) != 0 {
		t.Fatal("mean/max pools should be multiplicity blind")
	}
}
