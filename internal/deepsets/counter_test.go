package deepsets

import (
	"testing"

	"setlearn/internal/sets"
)

// TestPhiCacheCounterSemantics pins the audited hit/miss accounting of
// PhiCache against the scalar and batched prediction paths. The contract:
// hits+misses count *cache probes*, one per φ-vector request that reaches
// the cache — not per element occurrence. On the PredictBatch memo path a
// repeated element id within one batch probes the cache exactly once (the
// per-batch memo serves the repeats), so batches cannot double-count: a
// batch with D distinct ids moves the counters by exactly D.
func TestPhiCacheCounterSemantics(t *testing.T) {
	m := newTestModel(t, false)
	cache := m.NewPhiCache(1<<20, 4) // big enough to never evict
	m.SetPhiAccel(cache)
	p := m.NewPredictor()

	counters := func() (hits, misses uint64) {
		st := cache.Stats()
		return st.Hits, st.Misses
	}

	// Scalar path: one probe per element per call.
	q := sets.New(1, 2, 3, 4, 5)
	p.Predict(q)
	if h, ms := counters(); h != 0 || ms != 5 {
		t.Fatalf("first scalar query: hits=%d misses=%d, want 0/5", h, ms)
	}
	p.Predict(q)
	if h, ms := counters(); h != 5 || ms != 5 {
		t.Fatalf("second scalar query: hits=%d misses=%d, want 5/5", h, ms)
	}

	// Batch memo path: three copies of the same two-element query probe
	// the cache once per distinct id, not once per occurrence.
	q2 := sets.New(10, 11)
	qs := []sets.Set{q2, q2, q2}
	p.PredictBatch(nil, qs)
	if h, ms := counters(); h != 5 || ms != 7 {
		t.Fatalf("first batch: hits=%d misses=%d, want 5/7 (2 new misses for 6 element occurrences)", h, ms)
	}
	p.PredictBatch(nil, qs)
	if h, ms := counters(); h != 7 || ms != 7 {
		t.Fatalf("second batch: hits=%d misses=%d, want 7/7 (2 new hits)", h, ms)
	}

	// Overlapping queries within one batch share the memo too.
	qs = []sets.Set{sets.New(20, 21), sets.New(21, 22), sets.New(20, 22)}
	p.PredictBatch(nil, qs)
	if h, ms := counters(); h != 7 || ms != 10 {
		t.Fatalf("overlap batch: hits=%d misses=%d, want 7/10 (3 distinct ids)", h, ms)
	}

	// A fresh batch re-probes: the memo dies with the batch, the cache
	// persists, so the same three ids now count as hits.
	p.PredictBatch(nil, qs)
	if h, ms := counters(); h != 10 || ms != 10 {
		t.Fatalf("repeat overlap batch: hits=%d misses=%d, want 10/10", h, ms)
	}

	// Entries reflect distinct ids ever inserted (no eviction at this size).
	if st := cache.Stats(); st.Entries != 10 {
		t.Fatalf("entries=%d, want 10 distinct ids", st.Entries)
	}
}

// TestPhiCacheMissThenInsertRace documents the one intentional slack in
// the accounting: a probe that misses runs φ outside the lock, so two
// goroutines racing on a cold id may both count a miss for one resulting
// entry. Misses can therefore exceed distinct-ids under concurrency —
// they count probe outcomes, not insertions. Sequentially the two are
// equal, which is what the stats-driven tests rely on.
func TestPhiCacheMissThenInsertRace(t *testing.T) {
	m := newTestModel(t, false)
	cache := m.NewPhiCache(1<<20, 4)
	m.SetPhiAccel(cache)
	pool := m.NewPredictorPool()
	q := sets.New(100, 101, 102)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				pool.Predict(q)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	st := cache.Stats()
	if st.Entries != 3 {
		t.Fatalf("entries=%d, want 3", st.Entries)
	}
	if st.Misses < 3 {
		t.Fatalf("misses=%d, want ≥ 3", st.Misses)
	}
	if st.Hits+st.Misses != 4*50*3 {
		t.Fatalf("hits+misses=%d, want exactly one probe per element occurrence (600)", st.Hits+st.Misses)
	}
}
