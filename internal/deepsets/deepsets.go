// Package deepsets implements the paper's learned set models: the
// permutation-invariant DeepSets architecture (§3.2, Figure 2) and its
// compressed variant (§5, Figure 4).
//
// Uncompressed (LSM):   y = ρ( Σ_{x∈X} φ(embed(x)) )
// Compressed (CLSM):    y = ρ( Σ_{x∈X} φ(embed₁(sv₁(x)) ‖ … ‖ embed_ns(sv_ns(x))) )
//
// In the compressed model each element id is split into ns sub-elements
// (quotient/remainder chains, internal/compress); each sub-element position
// has its own small embedding table. The per-element φ transformation is
// applied to the concatenated sub-embeddings *before* the sum pool — this
// preserves the binding between an element's quotient and remainder, which
// a plain sum would destroy (the X-vs-Z counterexample in §5).
package deepsets

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"setlearn/internal/ad"
	"setlearn/internal/compress"
	"setlearn/internal/mat"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// Pooling selects the permutation-invariant aggregation of the per-element
// φ outputs (§3.2 lists max, mean, sum, and log-sum-exp; sum is the
// default and the only multiplicity-aware choice, which matters for
// cardinality targets).
type Pooling int

// Supported pooling operations.
const (
	SumPool Pooling = iota
	MeanPool
	MaxPool
	LSEPool // log-sum-exp, the smooth maximum
)

// String implements fmt.Stringer.
func (p Pooling) String() string {
	switch p {
	case SumPool:
		return "sum"
	case MeanPool:
		return "mean"
	case MaxPool:
		return "max"
	case LSEPool:
		return "logsumexp"
	default:
		return fmt.Sprintf("Pooling(%d)", int(p))
	}
}

// Config describes a model. The zero value is not usable; call Validate or
// construct via New which applies defaults.
type Config struct {
	MaxID uint32 // largest element id the model accepts

	EmbedDim  int   // per-(sub-)element embedding dimensionality
	PhiHidden []int // hidden layer sizes of the per-element network φ
	PhiOut    int   // output dimensionality of φ (the pooled representation)
	RhoHidden []int // hidden layer sizes of the set-level network ρ

	// Compressed selects the CLSM variant; NS is the number of
	// sub-elements (≥2) and SVD the divisor (0 = optimal ⌈maxID^(1/ns)⌉;
	// larger values trade memory back for accuracy, Table 6).
	Compressed bool
	NS         int
	SVD        uint32

	HiddenAct nn.Activation // activation of hidden layers (default ReLU)
	OutputAct nn.Activation // final activation (default Sigmoid, §4)
	Pool      Pooling       // aggregation over φ outputs (default SumPool)

	Seed int64 // weight-initialization seed
}

func (c *Config) applyDefaults() {
	if c.EmbedDim == 0 {
		c.EmbedDim = 8
	}
	if c.PhiOut == 0 {
		c.PhiOut = 32
	}
	if len(c.PhiHidden) == 0 {
		c.PhiHidden = []int{c.PhiOut}
	}
	if c.HiddenAct == nn.Identity {
		c.HiddenAct = nn.ReLU
	}
	// OutputAct zero value is Identity, a legitimate choice (digit sum);
	// regression/classification builders set Sigmoid explicitly.
	if c.Compressed {
		if c.NS == 0 {
			c.NS = 2
		}
		if c.SVD == 0 {
			c.SVD = compress.Divisor(c.MaxID+1, c.NS)
		}
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.EmbedDim <= 0 || c.PhiOut <= 0 {
		return fmt.Errorf("deepsets: EmbedDim and PhiOut must be positive (%d, %d)", c.EmbedDim, c.PhiOut)
	}
	if c.Compressed {
		if c.NS < 2 {
			return fmt.Errorf("deepsets: compressed model needs NS ≥ 2, got %d", c.NS)
		}
		if c.SVD < 2 {
			return fmt.Errorf("deepsets: compressed model needs SVD ≥ 2, got %d", c.SVD)
		}
	}
	return nil
}

// Model is a trained or trainable learned set model.
type Model struct {
	cfg    Config
	embeds []*nn.Embedding // 1 table (LSM) or NS tables (CLSM)
	phi    *nn.MLP
	rho    *nn.MLP
	params []*nn.Param

	// accel is the optional φ fast path (phi.go); atomic so an accel can be
	// attached or cleared while predictor pools are serving queries.
	accel atomic.Pointer[accelBox]
}

// New constructs a model with freshly initialized weights.
func New(cfg Config) (*Model, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}

	var phiIn int
	if cfg.Compressed {
		vocabs := compress.VocabSizes(cfg.MaxID, cfg.SVD, cfg.NS)
		for i, v := range vocabs {
			m.embeds = append(m.embeds, nn.NewEmbedding(fmt.Sprintf("emb%d", i), v, cfg.EmbedDim, rng))
		}
		phiIn = cfg.NS * cfg.EmbedDim
	} else {
		m.embeds = []*nn.Embedding{nn.NewEmbedding("emb", int(cfg.MaxID)+1, cfg.EmbedDim, rng)}
		phiIn = cfg.EmbedDim
	}

	phiSizes := append([]int{phiIn}, cfg.PhiHidden...)
	phiSizes = append(phiSizes, cfg.PhiOut)
	m.phi = nn.NewMLP("phi", phiSizes, cfg.HiddenAct, cfg.HiddenAct, rng)

	rhoSizes := append([]int{cfg.PhiOut}, cfg.RhoHidden...)
	rhoSizes = append(rhoSizes, 1)
	m.rho = nn.NewMLP("rho", rhoSizes, cfg.HiddenAct, cfg.OutputAct, rng)

	for _, e := range m.embeds {
		m.params = append(m.params, e.Params()...)
	}
	m.params = append(m.params, m.phi.Params()...)
	m.params = append(m.params, m.rho.Params()...)
	return m, nil
}

// Config returns the model configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params }

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int { return nn.NumParams(m.params) }

// SizeBytes returns the serialized model size (float32 weights), the
// memory measure used throughout the paper's evaluation.
func (m *Model) SizeBytes() int { return nn.SizeBytes(m.params) }

// EmbeddingSizeBytes returns the portion of SizeBytes spent on embedding
// tables — the term compression attacks.
func (m *Model) EmbeddingSizeBytes() int {
	var ps []*nn.Param
	for _, e := range m.embeds {
		ps = append(ps, e.Params()...)
	}
	return nn.SizeBytes(ps)
}

// elementNode records the per-element pipeline (embedding, optional
// compression and concat, φ) on the tape.
func (m *Model) elementNode(t *ad.Tape, id uint32, buf []uint32) *ad.Node {
	if id > m.cfg.MaxID {
		panic(fmt.Sprintf("deepsets: element id %d exceeds MaxID %d", id, m.cfg.MaxID))
	}
	var in *ad.Node
	if m.cfg.Compressed {
		parts := compress.Compress(buf[:0], id, m.cfg.SVD, m.cfg.NS)
		subs := make([]*ad.Node, len(parts))
		for i, p := range parts {
			subs[i] = m.embeds[i].Apply(t, int(p))
		}
		in = t.Concat(subs...)
	} else {
		in = m.embeds[0].Apply(t, int(id))
	}
	return m.phi.Apply(t, in)
}

// Apply records the full model on the tape and returns the output node
// (after the output activation). The empty set is rejected: the paper's
// queries are non-empty subsets.
func (m *Model) Apply(t *ad.Tape, s sets.Set) *ad.Node {
	return m.applyWith(t, s, m.rho.Apply)
}

// ApplyLogit is Apply without the final activation, exposing the logit for
// numerically stable binary cross-entropy.
func (m *Model) ApplyLogit(t *ad.Tape, s sets.Set) *ad.Node {
	return m.applyWith(t, s, m.rho.ApplyLogit)
}

func (m *Model) applyWith(t *ad.Tape, s sets.Set, rho func(*ad.Tape, *ad.Node) *ad.Node) *ad.Node {
	if len(s) == 0 {
		panic("deepsets: empty set")
	}
	var buf [8]uint32
	parts := make([]*ad.Node, len(s))
	for i, id := range s {
		parts[i] = m.elementNode(t, id, buf[:0])
	}
	var pooled *ad.Node
	switch m.cfg.Pool {
	case MeanPool:
		pooled = t.MeanPool(parts)
	case MaxPool:
		pooled = t.MaxPool(parts)
	case LSEPool:
		pooled = t.LogSumExpPool(parts)
	default:
		pooled = t.SumPool(parts)
	}
	return rho(t, pooled)
}

// Predictor holds preallocated scratch for tape-free single-query
// inference. It is not safe for concurrent use; create one per goroutine.
type Predictor struct {
	m        *Model
	catBuf   []float64
	pool     []float64
	phiS     *nn.InferScratch
	rhoS     *nn.InferScratch
	partsBuf []uint32
	lseSum   []float64 // scratch for log-sum-exp pooling
	lseBuf   []float64 // buffered per-element φ outputs for LSE (len(s) × PhiOut)
	phiBuf   []float64 // destination for φ-cache hits (PhiOut)

	// Per-batch memo: within one PredictBatch call, each distinct element id
	// runs φ (or hits the shared cache) at most once. memoIdx maps id to an
	// offset into memoSlab; both are reset at batch start, so no eviction
	// policy is needed.
	memoOn   bool
	memoIdx  map[uint32]int32
	memoSlab []float64
}

// NewPredictor returns inference scratch bound to m.
func (m *Model) NewPredictor() *Predictor {
	in := m.cfg.EmbedDim
	if m.cfg.Compressed {
		in *= m.cfg.NS
	}
	return &Predictor{
		m:        m,
		catBuf:   make([]float64, in),
		pool:     make([]float64, m.cfg.PhiOut),
		phiS:     m.phi.NewInferScratch(),
		rhoS:     m.rho.NewInferScratch(),
		partsBuf: make([]uint32, 0, 8),
		phiBuf:   make([]float64, m.cfg.PhiOut),
	}
}

// phiInput validates id and prepares the φ input vector: the element's
// embedding row (LSM) or the concatenated sub-embeddings (CLSM).
func (p *Predictor) phiInput(id uint32) []float64 {
	m := p.m
	if id > m.cfg.MaxID {
		panic(fmt.Sprintf("deepsets: element id %d exceeds MaxID %d", id, m.cfg.MaxID))
	}
	if m.cfg.Compressed {
		parts := compress.Compress(p.partsBuf[:0], id, m.cfg.SVD, m.cfg.NS)
		for i, part := range parts {
			copy(p.catBuf[i*m.cfg.EmbedDim:], m.embeds[i].Row(int(part)))
		}
		return p.catBuf
	}
	return m.embeds[0].Row(int(id))
}

// phiFor computes φ for one element into the scratch and returns it.
func (p *Predictor) phiFor(id uint32) []float64 {
	return p.m.phi.Infer(p.phiS, p.phiInput(id))
}

// phiInto computes φ for one element directly into dst (len PhiOut). The φ
// stack runs exactly as in phiFor, so the bits match.
func (p *Predictor) phiInto(id uint32, dst []float64) {
	p.m.phi.InferInto(p.phiS, p.phiInput(id), dst)
}

// phiRow returns φ for one element through the cheapest available source:
// the per-batch memo, then the installed accel (table or sharded cache),
// then the φ MLP. The returned slice is scratch — consume before the next
// phiRow call.
func (p *Predictor) phiRow(accel PhiAccel, id uint32) []float64 {
	out := p.m.cfg.PhiOut
	if p.memoOn {
		if off, ok := p.memoIdx[id]; ok {
			return p.memoSlab[off : int(off)+out]
		}
	}
	var v []float64
	if accel != nil {
		v = accel.phiVec(p, id)
	} else {
		v = p.phiFor(id)
	}
	if p.memoOn {
		off := len(p.memoSlab)
		p.memoSlab = append(p.memoSlab, v...)
		p.memoIdx[id] = int32(off)
		return p.memoSlab[off : off+out]
	}
	return v
}

func (p *Predictor) pooled(s sets.Set) []float64 {
	if len(s) == 0 {
		panic("deepsets: empty set")
	}
	m := p.m
	accel := m.PhiAccel()
	if m.cfg.Pool == LSEPool {
		return p.pooledLSE(s, accel)
	}
	if m.cfg.Pool == MaxPool {
		mat.Fill(p.pool, math.Inf(-1))
	} else {
		mat.Fill(p.pool, 0)
	}
	for _, id := range s {
		phiOut := p.phiRow(accel, id)
		if m.cfg.Pool == MaxPool {
			for i, v := range phiOut {
				if v > p.pool[i] {
					p.pool[i] = v
				}
			}
		} else {
			mat.AddTo(p.pool, phiOut)
		}
	}
	if m.cfg.Pool == MeanPool {
		mat.Scale(p.pool, 1/float64(len(s)))
	}
	return p.pool
}

// pooledLSE is the tape-free log-sum-exp pooling path. Per-element φ outputs
// are buffered in predictor-owned scratch so φ runs once per element (it used
// to run twice: once for the max pass, once for the exp-sum pass), still
// allocation-free after the scratch grows to the largest set seen. The pass
// order — max, then exp-sum, then log — matches the unbuffered original, so
// results are bit-identical.
func (p *Predictor) pooledLSE(s sets.Set, accel PhiAccel) []float64 {
	out := p.m.cfg.PhiOut
	need := len(s) * out
	if cap(p.lseBuf) < need {
		p.lseBuf = make([]float64, need)
	}
	buf := p.lseBuf[:need]
	for i, id := range s {
		dst := buf[i*out : (i+1)*out]
		if accel == nil && !p.memoOn {
			p.phiInto(id, dst)
		} else {
			copy(dst, p.phiRow(accel, id))
		}
	}
	mat.Fill(p.pool, math.Inf(-1))
	for i := range s {
		for j, v := range buf[i*out : (i+1)*out] {
			if v > p.pool[j] {
				p.pool[j] = v
			}
		}
	}
	if p.lseSum == nil {
		p.lseSum = make([]float64, len(p.pool))
	}
	mat.Fill(p.lseSum, 0)
	for i := range s {
		for j, v := range buf[i*out : (i+1)*out] {
			p.lseSum[j] += math.Exp(v - p.pool[j])
		}
	}
	for i := range p.pool {
		p.pool[i] += math.Log(p.lseSum[i])
	}
	return p.pool
}

// Predict returns the model output (after the output activation) for s.
func (p *Predictor) Predict(s sets.Set) float64 {
	return p.m.rho.Infer(p.rhoS, p.pooled(s))[0]
}

// PredictLogit returns the pre-activation output for s.
func (p *Predictor) PredictLogit(s sets.Set) float64 {
	return p.m.rho.InferLogit(p.rhoS, p.pooled(s))[0]
}

// PooledVector copies the pooled φ representation of s — the model's
// permutation-invariant set embedding, before ρ — into dst (grown as
// needed) and returns it. Useful for clustering or comparing sets by
// learned content similarity. Panics on an empty set or out-of-vocabulary
// elements, like Predict.
func (p *Predictor) PooledVector(dst []float64, s sets.Set) []float64 {
	v := p.pooled(s)
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	} else {
		dst = dst[:len(v)]
	}
	copy(dst, v)
	return dst
}

// beginBatch arms the per-batch φ memo; endBatch disarms it. The memo slab
// is reused across batches, the id index is cleared each time.
func (p *Predictor) beginBatch() {
	// A φ-table already serves every id as a zero-copy O(1) row read; the
	// memo would only add map traffic on top. Memoize for the cache,
	// uncached, and any other accel mode.
	if _, ok := p.m.PhiAccel().(*PhiTable); ok {
		return
	}
	if p.memoIdx == nil {
		p.memoIdx = make(map[uint32]int32, 64)
	} else {
		clear(p.memoIdx)
	}
	p.memoSlab = p.memoSlab[:0]
	p.memoOn = true
}

func (p *Predictor) endBatch() { p.memoOn = false }

// PredictBatch evaluates the model for every query in qs, writing outputs
// into dst (grown if needed) and returning it. Within the batch each
// distinct element id runs φ at most once — repeated ids across queries are
// served from a per-batch memo — and ρ scratch is reused across queries.
func (p *Predictor) PredictBatch(dst []float64, qs []sets.Set) []float64 {
	if cap(dst) < len(qs) {
		dst = make([]float64, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	p.beginBatch()
	defer p.endBatch()
	for i, q := range qs {
		dst[i] = p.m.rho.Infer(p.rhoS, p.pooled(q))[0]
	}
	return dst
}

// PredictorPool is a concurrency-safe wrapper around per-goroutine
// Predictors, letting one trained structure serve parallel query streams.
type PredictorPool struct {
	m    *Model
	pool sync.Pool
}

// NewPredictorPool returns a pool bound to m.
func (m *Model) NewPredictorPool() *PredictorPool {
	p := &PredictorPool{m: m}
	p.pool.New = func() any { return m.NewPredictor() }
	return p
}

// Predict evaluates the model for s; safe for concurrent use. The pooled
// predictor is returned via defer so a panicking query (e.g. id > MaxID)
// does not leak it.
func (p *PredictorPool) Predict(s sets.Set) float64 {
	pred := p.pool.Get().(*Predictor)
	defer p.pool.Put(pred)
	return pred.Predict(s)
}

// PredictLogit evaluates the pre-activation output for s; safe for
// concurrent use.
func (p *PredictorPool) PredictLogit(s sets.Set) float64 {
	pred := p.pool.Get().(*Predictor)
	defer p.pool.Put(pred)
	return pred.PredictLogit(s)
}

// PredictBatch evaluates every query in qs with one pooled predictor,
// amortizing scratch and φ-memo setup across the batch; safe for concurrent
// use.
func (p *PredictorPool) PredictBatch(dst []float64, qs []sets.Set) []float64 {
	pred := p.pool.Get().(*Predictor)
	defer p.pool.Put(pred)
	return pred.PredictBatch(dst, qs)
}

// PooledVector computes the pooled φ embedding of s into dst; safe for
// concurrent use.
func (p *PredictorPool) PooledVector(dst []float64, s sets.Set) []float64 {
	pred := p.pool.Get().(*Predictor)
	defer p.pool.Put(pred)
	return pred.PooledVector(dst, s)
}
