// φ acceleration: the fused inference fast path.
//
// After training, φ(embed(x)) is a pure function of the element id, so the
// DeepSets decomposition f(X) = ρ(Σ φ(embed(x))) makes per-element work
// memoizable by construction. Two structures exploit that:
//
//   - PhiTable precomputes φ for the whole universe — (MaxID+1) × PhiOut
//     float64s — turning a size-k query into k vector adds plus one ρ
//     evaluation. Reads are lock-free (the table is immutable after build).
//   - PhiCache is the fallback for universes whose table would not fit a
//     memory budget: a lock-sharded, fixed-size cache with round-robin
//     eviction. Hits copy the vector out under a shard read lock; misses
//     run the φ MLP and insert.
//
// Both produce bit-identical predictions to the uncached path: the vectors
// they serve are the exact float64 outputs of the same φ kernel.
package deepsets

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// AccelStats describes the state of a φ acceleration structure; the server
// exports it per endpoint under /debug/vars.
type AccelStats struct {
	Mode    string `json:"mode"`             // "table" or "cache"
	Hits    uint64 `json:"hits"`             // φ served without running the MLP (cache only)
	Misses  uint64 `json:"misses"`           // φ recomputed and inserted (cache only)
	Entries int    `json:"entries"`          // φ vectors currently materialized
	Shards  int    `json:"shards,omitempty"` // lock shards (cache only)
	Bytes   int    `json:"bytes"`            // vector storage footprint
}

// PhiAccel is a φ acceleration structure pluggable into a Model via
// SetPhiAccel: either the fully precomputed PhiTable or the sharded
// fixed-size PhiCache. Only this package implements it.
type PhiAccel interface {
	Stats() AccelStats
	SizeBytes() int
	// phiVec returns φ(embed(id)). The slice is owned by the accel or the
	// predictor's scratch: valid until the next phiVec call through p, and
	// must not be mutated.
	phiVec(p *Predictor, id uint32) []float64
}

// accelBox wraps the interface so Model can hold it in an atomic.Pointer
// (attaching an accel while queries are in flight must be race-free).
type accelBox struct{ a PhiAccel }

// SetPhiAccel installs a φ acceleration structure (nil removes it). The
// structure caches φ outputs for the model's *current* weights; rebuild it
// after any further training. Safe to call concurrently with predictions.
func (m *Model) SetPhiAccel(a PhiAccel) {
	if a == nil {
		m.accel.Store(nil)
		return
	}
	m.accel.Store(&accelBox{a: a})
}

// PhiAccel returns the installed acceleration structure, or nil.
func (m *Model) PhiAccel() PhiAccel {
	if b := m.accel.Load(); b != nil {
		return b.a
	}
	return nil
}

// AccelStats reports the installed acceleration structure's counters; ok is
// false when inference runs uncached.
func (m *Model) AccelStats() (AccelStats, bool) {
	a := m.PhiAccel()
	if a == nil {
		return AccelStats{}, false
	}
	return a.Stats(), true
}

// PhiTableBytes returns the memory a full φ-table for cfg would occupy —
// the fit test against a configured budget. Defaults are applied first so
// the estimate matches what New would build.
func PhiTableBytes(cfg Config) int {
	cfg.applyDefaults()
	return (int(cfg.MaxID) + 1) * cfg.PhiOut * 8
}

// PhiTable holds φ(embed(id)) for every id in the universe. Immutable after
// BuildPhiTable, so reads need no synchronization.
type PhiTable struct {
	maxID uint32
	out   int
	data  []float64 // (maxID+1) × out, row-major by id
}

// BuildPhiTable precomputes φ for the whole universe [0, MaxID]. For the
// compressed model (§5) the id is decompressed into sub-embeddings exactly
// as the uncached path does, so the table is valid for LSM and CLSM alike.
func (m *Model) BuildPhiTable() *PhiTable {
	t := &PhiTable{
		maxID: m.cfg.MaxID,
		out:   m.cfg.PhiOut,
		data:  make([]float64, (int(m.cfg.MaxID)+1)*m.cfg.PhiOut),
	}
	p := m.NewPredictor()
	for id := 0; id <= int(m.cfg.MaxID); id++ {
		p.phiInto(uint32(id), t.row(uint32(id)))
	}
	return t
}

func (t *PhiTable) row(id uint32) []float64 {
	return t.data[int(id)*t.out : (int(id)+1)*t.out]
}

// phiVec returns a read-only view of the precomputed row.
func (t *PhiTable) phiVec(_ *Predictor, id uint32) []float64 {
	if id > t.maxID {
		panic(fmt.Sprintf("deepsets: element id %d exceeds MaxID %d", id, t.maxID))
	}
	return t.row(id)
}

// SizeBytes returns the table footprint.
func (t *PhiTable) SizeBytes() int { return len(t.data) * 8 }

// Stats implements PhiAccel. The table has no miss path and counts nothing
// on reads to keep them free of shared-memory writes.
func (t *PhiTable) Stats() AccelStats {
	return AccelStats{Mode: "table", Entries: int(t.maxID) + 1, Bytes: t.SizeBytes()}
}

// PhiCache is a lock-sharded, fixed-size φ memo for universes too large to
// tabulate. Each shard owns a slab of slots recycled round-robin; the map
// from id to slot lives beside it. Hits copy the vector into the caller's
// predictor scratch under the shard read lock (a slot may be recycled the
// moment the lock drops), misses run the φ MLP outside any lock and insert.
//
// Counter semantics (pinned by TestPhiCacheCounterSemantics): hits and
// misses count cache *probes* — one per φ-vector request that reaches the
// cache. The PredictBatch memo sits in front of the cache, so within one
// batch each distinct element id probes at most once; repeated ids are
// served by the memo and move no counter. Under concurrency two goroutines
// racing on a cold id may each count a miss for one resulting entry
// (φ runs outside the lock), so misses ≥ distinct ids inserted.
type PhiCache struct {
	out   int
	mask  uint32
	shard []phiShard
}

type phiShard struct {
	mu   sync.RWMutex
	idx  map[uint32]int32 // id → slot
	ids  []uint32         // slot → id (meaningful for slot < full)
	slab []float64        // len(ids) × out
	full int              // slots filled so far
	next int              // round-robin eviction cursor once full

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewPhiCache sizes a sharded φ-cache to maxBytes of vector storage spread
// over the given number of lock shards (default 64, rounded up to a power
// of two). Each shard holds at least one slot, so tiny budgets still work.
func (m *Model) NewPhiCache(maxBytes, shards int) *PhiCache {
	if shards <= 0 {
		shards = 64
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	shards = pow
	out := m.cfg.PhiOut
	slots := maxBytes / (out * 8) / shards
	if slots < 1 {
		slots = 1
	}
	c := &PhiCache{out: out, mask: uint32(shards - 1), shard: make([]phiShard, shards)}
	for i := range c.shard {
		c.shard[i] = phiShard{
			idx:  make(map[uint32]int32, slots),
			ids:  make([]uint32, slots),
			slab: make([]float64, slots*out),
		}
	}
	return c
}

// shardOf spreads ids across shards with a multiply-xor hash so dense id
// ranges do not pile onto one lock.
func (c *PhiCache) shardOf(id uint32) *phiShard {
	h := id * 2654435761
	h ^= h >> 16
	return &c.shard[h&c.mask]
}

func (c *PhiCache) phiVec(p *Predictor, id uint32) []float64 {
	sh := c.shardOf(id)
	sh.mu.RLock()
	if slot, ok := sh.idx[id]; ok {
		copy(p.phiBuf, sh.slab[int(slot)*c.out:int(slot+1)*c.out])
		sh.mu.RUnlock()
		sh.hits.Add(1)
		return p.phiBuf
	}
	sh.mu.RUnlock()
	sh.misses.Add(1)
	v := p.phiFor(id) // validates id and runs the full φ MLP
	sh.mu.Lock()
	if _, ok := sh.idx[id]; !ok {
		var slot int
		if sh.full < len(sh.ids) {
			slot = sh.full
			sh.full++
		} else {
			slot = sh.next
			sh.next++
			if sh.next == len(sh.ids) {
				sh.next = 0
			}
			delete(sh.idx, sh.ids[slot])
		}
		sh.ids[slot] = id
		copy(sh.slab[slot*c.out:(slot+1)*c.out], v)
		sh.idx[id] = int32(slot)
	}
	sh.mu.Unlock()
	return v
}

// SizeBytes returns the slab footprint across all shards.
func (c *PhiCache) SizeBytes() int {
	total := 0
	for i := range c.shard {
		total += len(c.shard[i].slab) * 8
	}
	return total
}

// Stats aggregates the per-shard counters.
func (c *PhiCache) Stats() AccelStats {
	st := AccelStats{Mode: "cache", Shards: len(c.shard), Bytes: c.SizeBytes()}
	for i := range c.shard {
		sh := &c.shard[i]
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		sh.mu.RLock()
		st.Entries += sh.full
		sh.mu.RUnlock()
	}
	return st
}
