package deepsets

import (
	"math/rand"
	"testing"
)

// Allocation baselines for the float64 serving paths, measured with
// testing.AllocsPerRun. The f64 predictor was already designed around
// preallocated scratch, so its steady state allocates nothing: Predict
// (uncached, table, cache-hit) and PredictBatch with a caller-sized dst
// all run at 0 allocs/op once per-predictor scratch and the per-batch
// memo have warmed. These asserts pin that baseline so regressions show
// up as test failures, not as slow drift in the benchmarks; the f32
// arena path (model32_test.go) is held to the same 0.
//
// The one steady-state alloc the memo path is allowed: a batch with ids
// the memo slab has not grown to yet may extend memoSlab once. The warmup
// below runs each exact workload first, so the measured region sees the
// grown slab.

func TestPredictF64ZeroAllocsUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, compressed := range []bool{false, true} {
		m := newTestModel(t, compressed)
		p := m.NewPredictor()
		qs := randSets(rng, 4, 6, m.cfg.MaxID)
		p.Predict(qs[0])
		if n := testing.AllocsPerRun(100, func() { p.Predict(qs[1]) }); n != 0 {
			t.Errorf("compressed=%v: uncached Predict allocs/op = %v, want 0", compressed, n)
		}
	}
}

func TestPredictF64ZeroAllocsTable(t *testing.T) {
	m := newTestModel(t, false)
	m.SetPhiAccel(m.BuildPhiTable())
	p := m.NewPredictor()
	rng := rand.New(rand.NewSource(22))
	qs := randSets(rng, 4, 6, m.cfg.MaxID)
	p.Predict(qs[0])
	if n := testing.AllocsPerRun(100, func() { p.Predict(qs[1]) }); n != 0 {
		t.Errorf("table Predict allocs/op = %v, want 0", n)
	}
}

func TestPredictF64ZeroAllocsCacheHit(t *testing.T) {
	m := newTestModel(t, false)
	m.SetPhiAccel(m.NewPhiCache(1<<20, 4)) // never evicts at this size
	p := m.NewPredictor()
	rng := rand.New(rand.NewSource(23))
	qs := randSets(rng, 4, 6, m.cfg.MaxID)
	p.Predict(qs[1]) // populate the cache for the measured query
	if n := testing.AllocsPerRun(100, func() { p.Predict(qs[1]) }); n != 0 {
		t.Errorf("cache-hit Predict allocs/op = %v, want 0", n)
	}
}

func TestPredictBatchF64ZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, mode := range []string{"uncached", "table", "cache"} {
		m := newTestModel(t, false)
		switch mode {
		case "table":
			m.SetPhiAccel(m.BuildPhiTable())
		case "cache":
			m.SetPhiAccel(m.NewPhiCache(1<<20, 4))
		}
		p := m.NewPredictor()
		qs := randSets(rng, 16, 6, m.cfg.MaxID)
		dst := make([]float64, len(qs))
		// Warm up: grows the memo slab to this workload (uncached/cache
		// modes) and populates the φ-cache.
		p.PredictBatch(dst, qs)
		if n := testing.AllocsPerRun(50, func() { p.PredictBatch(dst, qs) }); n != 0 {
			t.Errorf("%s PredictBatch allocs/op = %v, want 0", mode, n)
		}
	}
}
