package deepsets

import (
	"math/rand"
	"testing"

	"setlearn/internal/mat"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// f32Tol bounds the f32-vs-f64 prediction divergence for the small test
// models: every weight rounds once and each layer reassociates short dot
// products; observed deltas are ~1e-6, so 1e-4 leaves margin without
// masking real bugs. The bench precision experiment measures the same
// delta on trained, realistic models.
const f32Tol = 1e-4

func randSets(rng *rand.Rand, n, k int, maxID uint32) []sets.Set {
	qs := make([]sets.Set, n)
	for i := range qs {
		ids := make([]uint32, 0, k)
		for len(sets.New(ids...)) < k {
			ids = append(ids, uint32(rng.Intn(int(maxID)+1)))
		}
		qs[i] = sets.New(ids...)
	}
	return qs
}

func TestSnapshot32MatchesF64(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		m := newTestModel(t, compressed)
		m32 := m.Snapshot32()
		if m32.HasPhiTable() {
			t.Fatal("snapshot of accel-free model must not carry a table")
		}
		p64 := m.NewPredictor()
		p32 := m32.NewPredictor32()
		rng := rand.New(rand.NewSource(11))
		for _, q := range randSets(rng, 50, 5, m.cfg.MaxID) {
			want := p64.Predict(q)
			got := p32.Predict(q)
			if !mat.WithinTol(got, want, f32Tol) {
				t.Fatalf("compressed=%v q=%v: f32=%v f64=%v", compressed, q, got, want)
			}
			wantL := p64.PredictLogit(q)
			gotL := p32.PredictLogit(q)
			if !mat.WithinTol(gotL, wantL, f32Tol) {
				t.Fatalf("compressed=%v q=%v logit: f32=%v f64=%v", compressed, q, gotL, wantL)
			}
		}
	}
}

func TestSnapshot32CarriesPhiTable(t *testing.T) {
	m := newTestModel(t, false)
	m.SetPhiAccel(m.BuildPhiTable())
	m32 := m.Snapshot32()
	if !m32.HasPhiTable() {
		t.Fatal("snapshot must carry the installed φ-table")
	}
	if m32.table.SizeBytes()*2 != m.PhiAccel().SizeBytes() {
		t.Fatalf("f32 table must be half the f64 footprint: %d vs %d",
			m32.table.SizeBytes(), m.PhiAccel().SizeBytes())
	}
	// Table-served and MLP-served f32 predictions agree to f32 rounding:
	// the table rows are the f64 φ outputs rounded once, the MLP output is
	// the f32 φ stack — both within tolerance of the f64 reference.
	bare := m.Snapshot32WithoutAccel()
	pT := m32.NewPredictor32()
	pM := bare.NewPredictor32()
	p64 := m.NewPredictor()
	rng := rand.New(rand.NewSource(12))
	for _, q := range randSets(rng, 30, 6, m.cfg.MaxID) {
		ref := p64.Predict(q)
		if got := pT.Predict(q); !mat.WithinTol(got, ref, f32Tol) {
			t.Fatalf("table path diverged: %v vs %v", got, ref)
		}
		if got := pM.Predict(q); !mat.WithinTol(got, ref, f32Tol) {
			t.Fatalf("mlp path diverged: %v vs %v", got, ref)
		}
	}
}

func TestSnapshot32DropsPhiCache(t *testing.T) {
	m := newTestModel(t, false)
	m.SetPhiAccel(m.NewPhiCache(1<<16, 4))
	m32 := m.Snapshot32()
	if m32.HasPhiTable() {
		t.Fatal("a φ-cache must not be snapshotted as a table")
	}
}

func TestPredictor32PoolingVariants(t *testing.T) {
	for _, pool := range []Pooling{SumPool, MeanPool, MaxPool, LSEPool} {
		m, err := New(Config{
			MaxID: 200, EmbedDim: 4, PhiHidden: []int{8}, PhiOut: 8,
			RhoHidden: []int{8}, Pool: pool, OutputAct: nn.Sigmoid, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		p64 := m.NewPredictor()
		p32 := m.Snapshot32().NewPredictor32()
		rng := rand.New(rand.NewSource(int64(pool) + 100))
		for _, q := range randSets(rng, 25, 4, 200) {
			want := p64.Predict(q)
			got := p32.Predict(q)
			if !mat.WithinTol(got, want, f32Tol) {
				t.Fatalf("pool=%v q=%v: f32=%v f64=%v", pool, q, got, want)
			}
		}
	}
}

func TestPredictBatch32MatchesScalar(t *testing.T) {
	m := newTestModel(t, true)
	m32 := m.Snapshot32()
	p := m32.NewPredictor32()
	rng := rand.New(rand.NewSource(13))
	qs := randSets(rng, 40, 5, m.cfg.MaxID)
	batch := p.PredictBatch(nil, qs)
	if len(batch) != len(qs) {
		t.Fatalf("batch length %d want %d", len(batch), len(qs))
	}
	for i, q := range qs {
		if got := p.Predict(q); got != batch[i] {
			t.Fatalf("batch[%d]=%v scalar=%v — batch must match scalar bit-for-bit", i, batch[i], got)
		}
	}
	// dst reuse: a big-enough dst comes back re-sliced, not reallocated.
	dst := make([]float64, 0, len(qs))
	out := p.PredictBatch(dst, qs)
	if &out[0] != &dst[:1][0] {
		t.Fatal("PredictBatch must reuse a big-enough dst")
	}
}

// TestPredictor32ZeroAllocs pins the arena contract: steady-state f32
// Predict and PredictBatch allocate zero bytes, with and without a
// φ-table, for LSM and CLSM — the acceptance criterion of the f32 path.
func TestPredictor32ZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, compressed := range []bool{false, true} {
		for _, withTable := range []bool{false, true} {
			m := newTestModel(t, compressed)
			if withTable {
				m.SetPhiAccel(m.BuildPhiTable())
			}
			p := m.Snapshot32().NewPredictor32()
			qs := randSets(rng, 16, 6, m.cfg.MaxID)
			dst := make([]float64, len(qs))
			// Warm up (grows nothing today, but keeps the measurement
			// honest if scratch ever becomes lazily grown).
			p.Predict(qs[0])
			p.PredictBatch(dst, qs)
			if n := testing.AllocsPerRun(100, func() { p.Predict(qs[1]) }); n != 0 {
				t.Errorf("compressed=%v table=%v: Predict allocs/op = %v, want 0", compressed, withTable, n)
			}
			if n := testing.AllocsPerRun(50, func() { p.PredictBatch(dst, qs) }); n != 0 {
				t.Errorf("compressed=%v table=%v: PredictBatch allocs/op = %v, want 0", compressed, withTable, n)
			}
		}
	}
}

// TestPredictor32ZeroAllocsLSE pins the LSE pooling path too, after its
// per-element buffer has grown to the largest set seen.
func TestPredictor32ZeroAllocsLSE(t *testing.T) {
	m, err := New(Config{
		MaxID: 200, EmbedDim: 4, PhiHidden: []int{8}, PhiOut: 8,
		RhoHidden: []int{8}, Pool: LSEPool, OutputAct: nn.Sigmoid, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Snapshot32().NewPredictor32()
	rng := rand.New(rand.NewSource(15))
	qs := randSets(rng, 8, 6, 200)
	p.Predict(qs[0]) // grow lseBuf once
	if n := testing.AllocsPerRun(100, func() { p.Predict(qs[1]) }); n != 0 {
		t.Errorf("LSE Predict allocs/op = %v, want 0", n)
	}
}

func TestPredictorPool32Concurrent(t *testing.T) {
	m := newTestModel(t, false)
	m.SetPhiAccel(m.BuildPhiTable())
	pool := m.Snapshot32().NewPredictorPool32()
	ref := m.Snapshot32().NewPredictor32()
	rng := rand.New(rand.NewSource(16))
	qs := randSets(rng, 64, 5, m.cfg.MaxID)
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = ref.Predict(q)
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i, q := range qs {
				if pool.Predict(q) != want[i] {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent pool prediction diverged from single-predictor reference")
		}
	}
}

func TestPredictor32Panics(t *testing.T) {
	m := newTestModel(t, false)
	p := m.Snapshot32().NewPredictor32()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for empty set")
			}
		}()
		p.Predict(sets.Set{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for id > MaxID")
			}
		}()
		p.Predict(sets.Set{m.cfg.MaxID + 1})
	}()
	// The table path must bound-check too.
	m.SetPhiAccel(m.BuildPhiTable())
	pt := m.Snapshot32().NewPredictor32()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for id > MaxID on table path")
		}
	}()
	pt.Predict(sets.Set{m.cfg.MaxID + 1})
}
