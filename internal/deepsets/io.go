package deepsets

import (
	"encoding/gob"
	"fmt"
	"io"

	"setlearn/internal/compress"
	"setlearn/internal/nn"
)

// Save writes the model configuration and weights to w. The format is the
// gob-encoded Config followed by the float32 parameter blob.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m.cfg); err != nil {
		return fmt.Errorf("deepsets: save config: %w", err)
	}
	if err := nn.SaveParams(w, m.params); err != nil {
		return fmt.Errorf("deepsets: save params: %w", err)
	}
	return nil
}

// Limits a deserialized Config must respect before Load will construct a
// model from it. They are far above anything the paper's models use (≤ 2
// hidden layers, ≤ 256 neurons, embedding dim ≤ 32) and exist so a corrupt
// or hostile stream cannot drive huge allocations, negative-size panics, or
// out-of-range enum values through New.
const (
	maxLoadDim    = 1 << 14 // any single layer width or embedding dim
	maxLoadLayers = 32      // hidden layers per MLP
	maxLoadNS     = 16      // sub-elements per element
	maxLoadParams = 1 << 27 // total scalar parameters (1 GiB at float64)
)

// validateForLoad bounds a decoded config. It runs before applyDefaults, so
// zero values (filled with defaults later) are accepted.
func validateForLoad(cfg Config) error {
	checkDim := func(what string, v int) error {
		if v < 0 || v > maxLoadDim {
			return fmt.Errorf("deepsets: corrupt config: %s %d out of range", what, v)
		}
		return nil
	}
	if err := checkDim("EmbedDim", cfg.EmbedDim); err != nil {
		return err
	}
	if err := checkDim("PhiOut", cfg.PhiOut); err != nil {
		return err
	}
	if len(cfg.PhiHidden) > maxLoadLayers || len(cfg.RhoHidden) > maxLoadLayers {
		return fmt.Errorf("deepsets: corrupt config: %d+%d hidden layers",
			len(cfg.PhiHidden), len(cfg.RhoHidden))
	}
	for _, h := range cfg.PhiHidden {
		if h < 1 || h > maxLoadDim {
			return fmt.Errorf("deepsets: corrupt config: φ hidden size %d", h)
		}
	}
	for _, h := range cfg.RhoHidden {
		if h < 1 || h > maxLoadDim {
			return fmt.Errorf("deepsets: corrupt config: ρ hidden size %d", h)
		}
	}
	if cfg.NS < 0 || cfg.NS > maxLoadNS {
		return fmt.Errorf("deepsets: corrupt config: NS %d", cfg.NS)
	}
	if cfg.HiddenAct < nn.Identity || cfg.HiddenAct > nn.ReLU ||
		cfg.OutputAct < nn.Identity || cfg.OutputAct > nn.ReLU {
		return fmt.Errorf("deepsets: corrupt config: activation out of range")
	}
	if cfg.Pool < SumPool || cfg.Pool > LSEPool {
		return fmt.Errorf("deepsets: corrupt config: pooling %d", cfg.Pool)
	}
	// The dominant allocation is the embedding table(s): vocab × EmbedDim.
	// Bound the total before New allocates it. The uncompressed vocabulary
	// is MaxID+1; compression only shrinks it.
	embedDim := cfg.EmbedDim
	if embedDim == 0 {
		embedDim = 8
	}
	if cfg.Compressed {
		ns := cfg.NS
		if ns == 0 {
			ns = 2
		}
		if cfg.SVD >= 2 {
			var total uint64
			for _, v := range compress.VocabSizes(cfg.MaxID, cfg.SVD, ns) {
				total += uint64(v) * uint64(embedDim)
			}
			if total > maxLoadParams {
				return fmt.Errorf("deepsets: corrupt config: compressed embeddings of %d parameters exceed load limit", total)
			}
		}
	} else {
		if total := (uint64(cfg.MaxID) + 1) * uint64(embedDim); total > maxLoadParams {
			return fmt.Errorf("deepsets: corrupt config: embedding of %d parameters exceeds load limit", total)
		}
	}
	return nil
}

// Load reads a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var cfg Config
	if err := gob.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("deepsets: load config: %w", err)
	}
	if err := validateForLoad(cfg); err != nil {
		return nil, err
	}
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("deepsets: load: %w", err)
	}
	if err := nn.LoadParams(r, m.params); err != nil {
		return nil, fmt.Errorf("deepsets: load params: %w", err)
	}
	return m, nil
}
