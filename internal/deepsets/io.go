package deepsets

import (
	"encoding/gob"
	"fmt"
	"io"

	"setlearn/internal/nn"
)

// Save writes the model configuration and weights to w. The format is the
// gob-encoded Config followed by the float32 parameter blob.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m.cfg); err != nil {
		return fmt.Errorf("deepsets: save config: %w", err)
	}
	if err := nn.SaveParams(w, m.params); err != nil {
		return fmt.Errorf("deepsets: save params: %w", err)
	}
	return nil
}

// Load reads a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var cfg Config
	if err := gob.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("deepsets: load config: %w", err)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("deepsets: load: %w", err)
	}
	if err := nn.LoadParams(r, m.params); err != nil {
		return nil, fmt.Errorf("deepsets: load params: %w", err)
	}
	return m, nil
}
