package deepsets

import (
	"math/rand"
	"sync"
	"testing"

	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// phiFixtureModel builds a model for one pooling × compression combination.
// Random weights suffice: the fast path must match the slow path bit for
// bit regardless of training.
func phiFixtureModel(tb testing.TB, pool Pooling, compressed bool) *Model {
	tb.Helper()
	m, err := New(Config{
		MaxID: 700, EmbedDim: 6, PhiHidden: []int{12}, PhiOut: 12,
		RhoHidden: []int{12}, Compressed: compressed, Pool: pool,
		OutputAct: nn.Sigmoid, Seed: 23,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func phiFixtureQueries(n, maxID int, seed int64) []sets.Set {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]sets.Set, n)
	for i := range qs {
		ids := make([]uint32, 1+rng.Intn(6))
		for j := range ids {
			ids[j] = uint32(rng.Intn(maxID + 1))
		}
		qs[i] = sets.New(ids...)
	}
	return qs
}

// TestAccelBitIdentical is the central fast-path guarantee: with a PhiTable
// or a sharded PhiCache installed, Predict, PredictLogit, and PredictBatch
// return exactly the bits of the uncached path, for all four poolings,
// compressed and uncompressed.
func TestAccelBitIdentical(t *testing.T) {
	pools := []Pooling{SumPool, MeanPool, MaxPool, LSEPool}
	for _, compressed := range []bool{false, true} {
		for _, pl := range pools {
			pl, compressed := pl, compressed
			name := pl.String()
			if compressed {
				name = "clsm/" + name
			} else {
				name = "lsm/" + name
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				m := phiFixtureModel(t, pl, compressed)
				qs := phiFixtureQueries(200, int(m.Config().MaxID), 31)
				p := m.NewPredictor()

				truth := make([]float64, len(qs))
				truthLogit := make([]float64, len(qs))
				for i, q := range qs {
					truth[i] = p.Predict(q)
					truthLogit[i] = p.PredictLogit(q)
				}

				check := func(t *testing.T, mode string) {
					pred := m.NewPredictor()
					for i, q := range qs {
						if got := pred.Predict(q); got != truth[i] {
							t.Fatalf("%s: Predict(%v) = %v, uncached %v", mode, q, got, truth[i])
						}
						if got := pred.PredictLogit(q); got != truthLogit[i] {
							t.Fatalf("%s: PredictLogit(%v) = %v, uncached %v", mode, q, got, truthLogit[i])
						}
					}
					batch := pred.PredictBatch(nil, qs)
					for i := range qs {
						if batch[i] != truth[i] {
							t.Fatalf("%s: PredictBatch[%d] = %v, uncached %v", mode, i, batch[i], truth[i])
						}
					}
				}

				m.SetPhiAccel(m.BuildPhiTable())
				check(t, "table")

				// A cache far smaller than the universe forces constant
				// eviction; results must not change.
				m.SetPhiAccel(m.NewPhiCache(100*m.Config().PhiOut*8, 8))
				check(t, "cache")

				m.SetPhiAccel(nil)
				check(t, "uncached-batch")
			})
		}
	}
}

// TestPhiTableBytes pins the fit-test arithmetic the auto-enable logic in
// internal/core relies on.
func TestPhiTableBytes(t *testing.T) {
	cfg := Config{MaxID: 99, PhiOut: 16, EmbedDim: 4}
	if got, want := PhiTableBytes(cfg), 100*16*8; got != want {
		t.Fatalf("PhiTableBytes = %d, want %d", got, want)
	}
	m := phiFixtureModel(t, SumPool, false)
	tab := m.BuildPhiTable()
	if tab.SizeBytes() != PhiTableBytes(m.Config()) {
		t.Fatalf("table SizeBytes %d != PhiTableBytes %d", tab.SizeBytes(), PhiTableBytes(m.Config()))
	}
	st := tab.Stats()
	if st.Mode != "table" || st.Entries != 701 {
		t.Fatalf("table stats: %+v", st)
	}
}

// TestPhiCacheStats exercises the hit/miss counters and the eviction path.
func TestPhiCacheStats(t *testing.T) {
	m := phiFixtureModel(t, SumPool, false)
	out := m.Config().PhiOut
	// 4 shards × 2 slots: 8 vectors total, far below the 701-id universe.
	c := m.NewPhiCache(8*out*8, 4)
	m.SetPhiAccel(c)
	p := m.NewPredictor()
	qs := phiFixtureQueries(300, int(m.Config().MaxID), 37)
	for _, q := range qs {
		p.Predict(q)
	}
	st := c.Stats()
	if st.Mode != "cache" || st.Shards != 4 {
		t.Fatalf("cache stats: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatal("expected misses on a cold cache")
	}
	if st.Entries > 8 {
		t.Fatalf("cache grew past its budget: %d entries", st.Entries)
	}
	if st.Bytes != 8*out*8 {
		t.Fatalf("cache bytes = %d, want %d", st.Bytes, 8*out*8)
	}
	// Repeated single-element queries must hit.
	q := sets.New(5)
	p.Predict(q)
	before := c.Stats().Hits
	p.Predict(q)
	if c.Stats().Hits <= before {
		t.Fatal("expected a cache hit on an immediately repeated id")
	}
}

// TestPhiCacheConcurrent hammers one sharded cache from 64 goroutines with
// a cache small enough to evict constantly, and requires every prediction to
// stay bit-identical to the uncached ground truth. Run under -race this is
// the fast path's central concurrency test.
func TestPhiCacheConcurrent(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		compressed := compressed
		name := "lsm"
		if compressed {
			name = "clsm"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := phiFixtureModel(t, SumPool, compressed)
			qs := phiFixtureQueries(256, int(m.Config().MaxID), 41)
			p := m.NewPredictor()
			truth := make([]float64, len(qs))
			for i, q := range qs {
				truth[i] = p.Predict(q)
			}
			// 64 vectors of cache for a 701-id universe: most lookups miss
			// and the eviction cursor wraps continuously.
			m.SetPhiAccel(m.NewPhiCache(64*m.Config().PhiOut*8, 16))
			pool := m.NewPredictorPool()
			const goroutines, perG = 64, 200
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						k := (g*perG + i*13) % len(qs)
						if got := pool.Predict(qs[k]); got != truth[k] {
							t.Errorf("goroutine %d: Predict(%v) = %v, want %v", g, qs[k], got, truth[k])
							return
						}
					}
				}(g)
			}
			wg.Wait()
			st := m.PhiAccel().Stats()
			if st.Hits+st.Misses == 0 {
				t.Fatal("cache saw no traffic")
			}
		})
	}
}

// TestPredictorPoolPanicSafety verifies the pool survives panicking queries
// without leaking predictors: after many out-of-vocabulary panics the pool
// still serves correct answers (the deferred Put returned each predictor).
func TestPredictorPoolPanicSafety(t *testing.T) {
	m := phiFixtureModel(t, SumPool, false)
	pool := m.NewPredictorPool()
	good := sets.New(1, 2, 3)
	want := pool.Predict(good)
	oov := sets.New(m.Config().MaxID + 1)
	for i := 0; i < 50; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-vocabulary id")
				}
			}()
			pool.Predict(oov)
		}()
	}
	if got := pool.Predict(good); got != want {
		t.Fatalf("pool corrupted after panics: got %v want %v", got, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected PredictLogit panic for out-of-vocabulary id")
			}
		}()
		pool.PredictLogit(oov)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected PredictBatch panic for out-of-vocabulary id")
			}
		}()
		pool.PredictBatch(nil, []sets.Set{good, oov})
	}()
	if got := pool.Predict(good); got != want {
		t.Fatalf("pool corrupted after batch panic: got %v want %v", got, want)
	}
}

// TestPredictBatchMemo checks the per-batch memo resets between batches and
// does not leak results across calls with different accel states.
func TestPredictBatchMemo(t *testing.T) {
	m := phiFixtureModel(t, SumPool, false)
	p := m.NewPredictor()
	qs := phiFixtureQueries(64, int(m.Config().MaxID), 43)
	first := append([]float64(nil), p.PredictBatch(nil, qs)...)
	// Re-running the same batch through the same predictor must reproduce
	// the same bits (stale memo state would skew them).
	second := p.PredictBatch(nil, qs)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("batch %d: %v then %v across repeated batches", i, first[i], second[i])
		}
	}
	// And single-query calls between batches see no memo at all.
	for i, q := range qs[:8] {
		if got := p.Predict(q); got != first[i] {
			t.Fatalf("single-query after batch: %v want %v", got, first[i])
		}
	}
}
