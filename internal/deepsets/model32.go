// Float32 serving path: an immutable snapshot of a trained model whose
// inference runs entirely in float32. Training, persistence, and the
// bit-identity story stay float64 — a snapshot is taken once (per
// precision switch or retrain hot-swap) and the weights cross the f64→f32
// boundary exactly there. Weights are persisted at float32 already
// (nn/io.go), so a snapshot of a loaded model loses nothing against the
// on-disk bits.
//
// The predictor owns a single flat arena that every fixed-size scratch
// window aliases, so steady-state Predict and PredictBatch allocate zero
// bytes (pinned by TestPredictor32ZeroAllocs). The f32 fast path is the
// φ-table: an installed *PhiTable is snapshotted to half-width rows.
// A *PhiCache is not carried over — without a table the f32 predictor
// recomputes φ per element through the f32 MLP.
//
// This file is a blessed mixed-precision conversion site for the floateq
// analyzer.
package deepsets

import (
	"fmt"
	"math"
	"sync"

	"setlearn/internal/compress"
	"setlearn/internal/mat"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// Model32 is an immutable float32 snapshot of a Model, safe for concurrent
// readers.
type Model32 struct {
	cfg    Config
	embeds []*nn.Embedding32
	phi    *nn.MLP32
	rho    *nn.MLP32
	table  *PhiTable32 // nil when the source model had no φ-table installed
}

// Snapshot32 returns a float32 copy of the model's current weights. An
// installed *PhiTable is snapshotted along with them (half the footprint,
// same rows rounded once); any other accel is dropped — rebuild the
// snapshot after attaching a table to pick it up.
func (m *Model) Snapshot32() *Model32 {
	s := m.Snapshot32WithoutAccel()
	if t, ok := m.PhiAccel().(*PhiTable); ok {
		s.table = t.Snapshot32()
	}
	return s
}

// Snapshot32WithoutAccel returns a float32 snapshot that ignores any
// installed accel — the pure-MLP f32 path, used by the differential
// harness to separate kernel rounding from table rounding.
func (m *Model) Snapshot32WithoutAccel() *Model32 {
	s := &Model32{
		cfg: m.cfg,
		phi: m.phi.Snapshot32(),
		rho: m.rho.Snapshot32(),
	}
	for _, e := range m.embeds {
		s.embeds = append(s.embeds, e.Snapshot32())
	}
	return s
}

// Config returns the snapshot's model configuration.
func (m *Model32) Config() Config { return m.cfg }

// HasPhiTable reports whether the snapshot carries a float32 φ-table.
func (m *Model32) HasPhiTable() bool { return m.table != nil }

// SizeBytes returns the snapshot's weight footprint (4 bytes per scalar,
// φ-table excluded — see PhiTable32.SizeBytes).
func (m *Model32) SizeBytes() int {
	n := 0
	for _, e := range m.embeds {
		n += e.Vocab() * e.Dim()
	}
	for _, mlp := range []*nn.MLP32{m.phi, m.rho} {
		for _, l := range mlp.Layers {
			n += len(l.W.Data) + len(l.B)
		}
	}
	return n * 4
}

// PhiTable32 holds float32 φ rows for the whole universe — the f64 table's
// rows rounded once, at half the footprint.
type PhiTable32 struct {
	maxID uint32
	out   int
	data  []float32
}

// Snapshot32 returns a float32 copy of the table.
func (t *PhiTable) Snapshot32() *PhiTable32 {
	return &PhiTable32{maxID: t.maxID, out: t.out, data: mat.ToF32(nil, t.data)}
}

func (t *PhiTable32) row(id uint32) []float32 {
	if id > t.maxID {
		panic(fmt.Sprintf("deepsets: element id %d exceeds MaxID %d", id, t.maxID))
	}
	return t.data[int(id)*t.out : (int(id)+1)*t.out]
}

// SizeBytes returns the table footprint.
func (t *PhiTable32) SizeBytes() int { return len(t.data) * 4 }

// Predictor32 holds preallocated float32 scratch for tape-free inference
// against a Model32. All fixed-size scratch aliases one flat arena, so
// steady-state queries allocate nothing. Not safe for concurrent use;
// create one per goroutine (or use PredictorPool32).
type Predictor32 struct {
	m     *Model32
	arena []float32 // backing store for every window below

	catBuf   []float32 // φ input (CLSM concat)
	pool     []float32 // pooled φ output (PhiOut)
	lseSum   []float32 // log-sum-exp exp-sum scratch (PhiOut)
	phiS     *nn.InferScratch32
	rhoS     *nn.InferScratch32
	partsBuf []uint32
	lseBuf   []float32 // per-element φ outputs for LSE; grows to the largest set seen
}

// NewPredictor32 returns inference scratch bound to m, carved from one
// arena allocation.
func (m *Model32) NewPredictor32() *Predictor32 {
	in := m.cfg.EmbedDim
	if m.cfg.Compressed {
		in *= m.cfg.NS
	}
	out := m.cfg.PhiOut
	p := &Predictor32{
		m:        m,
		arena:    make([]float32, in+2*out+m.phi.ScratchLen()+m.rho.ScratchLen()),
		partsBuf: make([]uint32, 0, 8),
	}
	a := p.arena
	p.catBuf, a = a[:in:in], a[in:]
	p.pool, a = a[:out:out], a[out:]
	p.lseSum, a = a[:out:out], a[out:]
	p.phiS, a = m.phi.BindScratch(a)
	p.rhoS, _ = m.rho.BindScratch(a)
	return p
}

// phiInput validates id and prepares the φ input vector, mirroring
// Predictor.phiInput.
func (p *Predictor32) phiInput(id uint32) []float32 {
	m := p.m
	if id > m.cfg.MaxID {
		panic(fmt.Sprintf("deepsets: element id %d exceeds MaxID %d", id, m.cfg.MaxID))
	}
	if m.cfg.Compressed {
		parts := compress.Compress(p.partsBuf[:0], id, m.cfg.SVD, m.cfg.NS)
		for i, part := range parts {
			copy(p.catBuf[i*m.cfg.EmbedDim:], m.embeds[i].Row(int(part)))
		}
		return p.catBuf
	}
	return m.embeds[0].Row(int(id))
}

// phiRow returns φ for one element: a zero-copy table row when the
// snapshot carries one, otherwise a fresh run of the f32 φ MLP. The slice
// is scratch — consume before the next phiRow call.
func (p *Predictor32) phiRow(id uint32) []float32 {
	if t := p.m.table; t != nil {
		return t.row(id)
	}
	return p.m.phi.Infer(p.phiS, p.phiInput(id))
}

// phiInto computes φ for one element directly into dst (table row copy or
// a direct MLP write).
func (p *Predictor32) phiInto(id uint32, dst []float32) {
	if t := p.m.table; t != nil {
		copy(dst, t.row(id))
		return
	}
	p.m.phi.InferInto(p.phiS, p.phiInput(id), dst)
}

func (p *Predictor32) pooled(s sets.Set) []float32 {
	if len(s) == 0 {
		panic("deepsets: empty set")
	}
	m := p.m
	if m.cfg.Pool == LSEPool {
		return p.pooledLSE(s)
	}
	if m.cfg.Pool == MaxPool {
		mat.Fill32(p.pool, float32(math.Inf(-1)))
	} else {
		mat.Fill32(p.pool, 0)
	}
	for _, id := range s {
		phiOut := p.phiRow(id)
		if m.cfg.Pool == MaxPool {
			for i, v := range phiOut {
				if v > p.pool[i] {
					p.pool[i] = v
				}
			}
		} else {
			mat.AddTo32(p.pool, phiOut)
		}
	}
	if m.cfg.Pool == MeanPool {
		mat.Scale32(p.pool, 1/float32(len(s)))
	}
	return p.pool
}

// pooledLSE mirrors Predictor.pooledLSE: buffer φ per element, then max,
// exp-sum, log. exp and log run through float64 math per element, exact
// for f32 inputs with one rounding at the boundary.
func (p *Predictor32) pooledLSE(s sets.Set) []float32 {
	out := p.m.cfg.PhiOut
	need := len(s) * out
	if cap(p.lseBuf) < need {
		p.lseBuf = make([]float32, need)
	}
	buf := p.lseBuf[:need]
	for i, id := range s {
		p.phiInto(id, buf[i*out:(i+1)*out])
	}
	mat.Fill32(p.pool, float32(math.Inf(-1)))
	for i := range s {
		for j, v := range buf[i*out : (i+1)*out] {
			if v > p.pool[j] {
				p.pool[j] = v
			}
		}
	}
	mat.Fill32(p.lseSum, 0)
	for i := range s {
		for j, v := range buf[i*out : (i+1)*out] {
			p.lseSum[j] += float32(math.Exp(float64(v - p.pool[j])))
		}
	}
	for i := range p.pool {
		p.pool[i] += float32(math.Log(float64(p.lseSum[i])))
	}
	return p.pool
}

// Predict returns the model output (after the output activation) for s.
// The result is widened to float64 at the boundary so callers (scalers,
// thresholds, error windows) stay precision-agnostic.
//
//lint:hotpath
func (p *Predictor32) Predict(s sets.Set) float64 {
	return float64(p.m.rho.Infer(p.rhoS, p.pooled(s))[0])
}

// PredictLogit returns the pre-activation output for s.
//
//lint:hotpath
func (p *Predictor32) PredictLogit(s sets.Set) float64 {
	return float64(p.m.rho.InferLogit(p.rhoS, p.pooled(s))[0])
}

// PredictBatch evaluates the model for every query in qs, writing outputs
// into dst (grown if needed) and returning it. Unlike the f64 batch path
// there is no per-batch φ memo: the f32 path's accel is the φ-table, which
// already serves every id as a zero-copy row read.
//
//lint:hotpath
func (p *Predictor32) PredictBatch(dst []float64, qs []sets.Set) []float64 {
	if cap(dst) < len(qs) {
		dst = make([]float64, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	for i, q := range qs {
		dst[i] = float64(p.m.rho.Infer(p.rhoS, p.pooled(q))[0])
	}
	return dst
}

// PredictorPool32 is a concurrency-safe wrapper around per-goroutine
// Predictor32s — the f32 counterpart of PredictorPool.
type PredictorPool32 struct {
	m    *Model32
	pool sync.Pool
}

// NewPredictorPool32 returns a pool bound to m.
func (m *Model32) NewPredictorPool32() *PredictorPool32 {
	p := &PredictorPool32{m: m}
	p.pool.New = func() any { return m.NewPredictor32() }
	return p
}

// Model returns the snapshot the pool serves.
func (p *PredictorPool32) Model() *Model32 { return p.m }

// Predict evaluates the model for s; safe for concurrent use.
//
//lint:hotpath
func (p *PredictorPool32) Predict(s sets.Set) float64 {
	pred := p.pool.Get().(*Predictor32)
	defer p.pool.Put(pred)
	return pred.Predict(s)
}

// PredictLogit evaluates the pre-activation output for s; safe for
// concurrent use.
//
//lint:hotpath
func (p *PredictorPool32) PredictLogit(s sets.Set) float64 {
	pred := p.pool.Get().(*Predictor32)
	defer p.pool.Put(pred)
	return pred.PredictLogit(s)
}

// PredictBatch evaluates every query in qs with one pooled predictor; safe
// for concurrent use.
//
//lint:hotpath
func (p *PredictorPool32) PredictBatch(dst []float64, qs []sets.Set) []float64 {
	pred := p.pool.Get().(*Predictor32)
	defer p.pool.Put(pred)
	return pred.PredictBatch(dst, qs)
}
