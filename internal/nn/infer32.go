// Float32 inference snapshots: immutable serving-precision copies of the
// float64 network. Training, serialization, and the bit-identity reference
// all stay float64; a snapshot is taken once after training (weights cross
// the f64→f32 boundary exactly once, here) and then serves queries with
// pure-f32 kernels.
//
// This file is a blessed mixed-precision conversion site for the floateq
// analyzer, alongside io.go (which already persists weights at float32 —
// the reason a snapshot loses nothing against the on-disk model).
package nn

import (
	"math"

	"setlearn/internal/mat"
)

// Dense32 is an immutable float32 snapshot of a Dense layer.
type Dense32 struct {
	W   *mat.Matrix32
	B   []float32
	Act Activation
}

// Snapshot32 returns a float32 copy of the layer's current weights.
func (d *Dense) Snapshot32() *Dense32 {
	return &Dense32{
		W:   mat.MatrixToF32(d.W.Value),
		B:   mat.ToF32(nil, d.B.Vec()),
		Act: d.Act,
	}
}

// In returns the input dimensionality.
func (d *Dense32) In() int { return d.W.Cols }

// Out returns the output dimensionality.
func (d *Dense32) Out() int { return d.W.Rows }

// Infer computes the layer output into dst.
func (d *Dense32) Infer(dst, x []float32) {
	mat.MatVecAdd32(dst, d.W, x, d.B)
	d.Act.ApplyVec32(dst)
}

// ApplyVec32 applies the activation in place to x. Sigmoid and tanh run
// through the float64 math library per element — exact for any f32 input,
// with one rounding at the boundary — so the f32 path inherits the
// overflow-free tails of StableSigmoid.
func (a Activation) ApplyVec32(x []float32) {
	switch a {
	case Identity:
	case Sigmoid:
		for i, v := range x {
			x[i] = float32(StableSigmoid(float64(v)))
		}
	case Tanh:
		for i, v := range x {
			x[i] = float32(math.Tanh(float64(v)))
		}
	case ReLU:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	default:
		panic("nn: unknown activation")
	}
}

// MLP32 is an immutable float32 snapshot of an MLP.
type MLP32 struct {
	Layers []*Dense32
}

// Snapshot32 returns a float32 copy of the stack's current weights.
func (m *MLP) Snapshot32() *MLP32 {
	s := &MLP32{Layers: make([]*Dense32, len(m.Layers))}
	for i, l := range m.Layers {
		s.Layers[i] = l.Snapshot32()
	}
	return s
}

// In returns the input dimensionality.
func (m *MLP32) In() int { return m.Layers[0].In() }

// Out returns the output dimensionality.
func (m *MLP32) Out() int { return m.Layers[len(m.Layers)-1].Out() }

// ScratchLen returns the total float32 count BindScratch carves for m —
// one buffer per layer, sized to that layer's output.
func (m *MLP32) ScratchLen() int {
	n := 0
	for _, l := range m.Layers {
		n += l.Out()
	}
	return n
}

// InferScratch32 holds per-layer inference buffers, carved from a
// caller-owned arena by BindScratch so a predictor's whole scratch is one
// allocation.
type InferScratch32 struct {
	bufs [][]float32
}

// BindScratch slices per-layer buffers out of arena (len(arena) must be at
// least ScratchLen()) and returns the scratch plus the unused arena tail.
func (m *MLP32) BindScratch(arena []float32) (*InferScratch32, []float32) {
	s := &InferScratch32{bufs: make([][]float32, len(m.Layers))}
	for i, l := range m.Layers {
		s.bufs[i] = arena[:l.Out():l.Out()]
		arena = arena[l.Out():]
	}
	return s, arena
}

// NewInferScratch32 sizes standalone scratch for m (its own arena).
func (m *MLP32) NewInferScratch32() *InferScratch32 {
	s, _ := m.BindScratch(make([]float32, m.ScratchLen()))
	return s
}

// Infer runs the stack and returns the output buffer, which is owned by
// the scratch and overwritten on the next call.
func (m *MLP32) Infer(s *InferScratch32, x []float32) []float32 {
	for i, l := range m.Layers {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	return x
}

// InferInto runs the stack, writing the final layer's output directly into
// dst (caller scratch of length Out()).
func (m *MLP32) InferInto(s *InferScratch32, x, dst []float32) {
	last := len(m.Layers) - 1
	for i, l := range m.Layers[:last] {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	m.Layers[last].Infer(dst, x)
}

// InferLogit runs the stack, skipping the final activation.
func (m *MLP32) InferLogit(s *InferScratch32, x []float32) []float32 {
	last := len(m.Layers) - 1
	for i, l := range m.Layers[:last] {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	l := m.Layers[last]
	mat.MatVecAdd32(s.bufs[last], l.W, x, l.B)
	return s.bufs[last]
}

// Embedding32 is an immutable float32 snapshot of an embedding table.
type Embedding32 struct {
	table *mat.Matrix32
}

// Snapshot32 returns a float32 copy of the table's current weights.
func (e *Embedding) Snapshot32() *Embedding32 {
	return &Embedding32{table: mat.MatrixToF32(e.Table.Value)}
}

// Vocab returns the number of rows in the table.
func (e *Embedding32) Vocab() int { return e.table.Rows }

// Dim returns the embedding dimensionality.
func (e *Embedding32) Dim() int { return e.table.Cols }

// Row returns the embedding vector for id.
func (e *Embedding32) Row(id int) []float32 {
	if id < 0 || id >= e.Vocab() {
		panic("nn: embedding id out of vocabulary")
	}
	return e.table.Row(id)
}
