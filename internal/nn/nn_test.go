package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"setlearn/internal/ad"
)

func TestDenseShapesAndInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 3, 2, Identity, rng)
	if d.In() != 3 || d.Out() != 2 {
		t.Fatalf("dims in=%d out=%d", d.In(), d.Out())
	}
	x := []float64{1, 2, 3}
	tp := ad.NewTape()
	taped := d.Apply(tp, tp.Input(x))
	fast := make([]float64, 2)
	d.Infer(fast, x)
	for i := range fast {
		if math.Abs(fast[i]-taped.Value[i]) > 1e-12 {
			t.Fatalf("Infer disagrees with taped forward: %v vs %v", fast, taped.Value)
		}
	}
}

func TestMLPInferMatchesTape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("m", []int{4, 8, 8, 1}, ReLU, Sigmoid, rng)
	if m.In() != 4 || m.Out() != 1 {
		t.Fatalf("MLP dims in=%d out=%d", m.In(), m.Out())
	}
	s := m.NewInferScratch()
	for trial := 0; trial < 10; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tp := ad.NewTape()
		want := m.Apply(tp, tp.Input(x)).Value[0]
		got := m.Infer(s, x)[0]
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Infer %v vs tape %v", trial, got, want)
		}
	}
}

func TestMLPLogitMatchesSigmoidOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("m", []int{2, 4, 1}, Tanh, Sigmoid, rng)
	s := m.NewInferScratch()
	x := []float64{0.3, -0.7}
	logit := m.InferLogit(s, x)[0]
	// InferScratch is reused, so recompute the sigmoid path afterwards.
	p := StableSigmoid(logit)
	out := m.Infer(s, x)[0]
	if math.Abs(p-out) > 1e-12 {
		t.Fatalf("sigmoid(logit)=%v but Infer=%v", p, out)
	}

	tp := ad.NewTape()
	tapedLogit := m.ApplyLogit(tp, tp.Input(x)).Value[0]
	if math.Abs(tapedLogit-logit) > 1e-12 {
		t.Fatalf("ApplyLogit %v vs InferLogit %v", tapedLogit, logit)
	}
}

func TestMLPPanicsOnTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP("m", []int{3}, ReLU, Identity, rand.New(rand.NewSource(1)))
}

func TestEmbeddingLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := NewEmbedding("e", 10, 3, rng)
	if e.Vocab() != 10 || e.Dim() != 3 {
		t.Fatalf("embedding dims vocab=%d dim=%d", e.Vocab(), e.Dim())
	}
	tp := ad.NewTape()
	n := e.Apply(tp, 7)
	row := e.Row(7)
	for i := range row {
		if n.Value[i] != row[i] {
			t.Fatal("Apply and Row disagree")
		}
	}
}

func TestEmbeddingPanicsOutOfRange(t *testing.T) {
	e := NewEmbedding("e", 4, 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Row(4)
}

// The canonical sanity check: a small MLP must be able to fit XOR.
func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP("xor", []int{2, 8, 1}, Tanh, Sigmoid, rng)
	opt := NewAdam(0.05)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 500; epoch++ {
		for i, x := range inputs {
			tp := ad.NewTape()
			logit := m.ApplyLogit(tp, tp.Input(x))
			_, g := BCEWithLogits(logit.Value[0], targets[i])
			tp.Backward(logit, []float64{g})
			opt.Step(m.Params())
		}
	}
	s := m.NewInferScratch()
	for i, x := range inputs {
		p := m.Infer(s, x)[0]
		if (targets[i] == 1 && p < 0.8) || (targets[i] == 0 && p > 0.2) {
			t.Fatalf("XOR not learned: input %v → %v want %v", x, p, targets[i])
		}
	}
}

func TestSGDDecreasesQuadratic(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Value.Data[0], p.Value.Data[1] = 3, -4
	opt := NewSGD(0.1, 0.9)
	loss := func() float64 {
		return p.Value.Data[0]*p.Value.Data[0] + p.Value.Data[1]*p.Value.Data[1]
	}
	start := loss()
	for i := 0; i < 100; i++ {
		p.Grad.Data[0] = 2 * p.Value.Data[0]
		p.Grad.Data[1] = 2 * p.Value.Data[1]
		opt.Step([]*Param{p})
	}
	if loss() > start*1e-3 {
		t.Fatalf("SGD failed to minimize: start %v end %v", start, loss())
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Value.Data[0], p.Value.Data[1] = 3, -4
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Data[0] = 2 * p.Value.Data[0]
		p.Grad.Data[1] = 2 * p.Value.Data[1]
		opt.Step([]*Param{p})
	}
	if math.Abs(p.Value.Data[0]) > 0.01 || math.Abs(p.Value.Data[1]) > 0.01 {
		t.Fatalf("Adam failed to minimize: %v", p.Value.Data)
	}
}

func TestOptimizerStepClearsGrad(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.Grad.Data[0] = 5
	NewAdam(0.01).Step([]*Param{p})
	if p.Grad.Data[0] != 0 {
		t.Fatal("Adam.Step must zero the gradient")
	}
	p.Grad.Data[0] = 5
	NewSGD(0.01, 0).Step([]*Param{p})
	if p.Grad.Data[0] != 0 {
		t.Fatal("SGD.Step must zero the gradient")
	}
}

func TestLossGradientsMatchFiniteDifferences(t *testing.T) {
	const eps = 1e-6
	cases := []struct {
		name string
		f    func(pred float64) (float64, float64)
		at   []float64
	}{
		{"MAE", func(p float64) (float64, float64) { return MAELoss(p, 2.5) }, []float64{1, 4, -3}},
		{"MSE", func(p float64) (float64, float64) { return MSELoss(p, 2.5) }, []float64{1, 4, -3}},
		{"BCE0", func(p float64) (float64, float64) { return BCEWithLogits(p, 0) }, []float64{-2, 0.5, 3}},
		{"BCE1", func(p float64) (float64, float64) { return BCEWithLogits(p, 1) }, []float64{-2, 0.5, 3}},
	}
	for _, c := range cases {
		for _, x := range c.at {
			_, g := c.f(x)
			up, _ := c.f(x + eps)
			dn, _ := c.f(x - eps)
			fd := (up - dn) / (2 * eps)
			if math.Abs(fd-g) > 1e-5 {
				t.Fatalf("%s at %v: grad %v vs fd %v", c.name, x, g, fd)
			}
		}
	}
}

func TestBCEWithLogitsStableAtExtremes(t *testing.T) {
	for _, logit := range []float64{-500, 500} {
		for _, target := range []float64{0, 1} {
			loss, grad := BCEWithLogits(logit, target)
			if math.IsNaN(loss) || math.IsInf(loss, 0) || math.IsNaN(grad) {
				t.Fatalf("BCE unstable at logit=%v target=%v: loss=%v grad=%v", logit, target, loss, grad)
			}
		}
	}
}

func TestQError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{10, 10, 1},
		{20, 10, 2},
		{5, 10, 2},
		{0, 10, 10},   // est clamped to 1
		{0.5, 0.2, 1}, // both clamped to 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("QError(%v,%v)=%v want %v", c.est, c.truth, got, c.want)
		}
	}
	if MeanQError([]float64{10, 20}, []float64{10, 10}) != 1.5 {
		t.Fatal("MeanQError wrong")
	}
	if MeanQError(nil, nil) != 0 {
		t.Fatal("MeanQError of empty should be 0")
	}
}

func TestLSTMLearnsSequenceSum(t *testing.T) {
	// The LSTM should fit "sum of a short sequence of scalars" — this
	// validates backpropagation through time end to end.
	rng := rand.New(rand.NewSource(6))
	cell := NewLSTMCell("lstm", 1, 8, rng)
	head := NewDense("head", 8, 1, Identity, rng)
	params := append(cell.Params(), head.Params()...)
	opt := NewAdam(0.01)

	sample := func(r *rand.Rand) ([]float64, float64) {
		n := 2 + r.Intn(3)
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = r.Float64()
			sum += xs[i]
		}
		return xs, sum
	}
	for epoch := 0; epoch < 800; epoch++ {
		xs, target := sample(rng)
		tp := ad.NewTape()
		nodes := make([]*ad.Node, len(xs))
		for i, v := range xs {
			nodes[i] = tp.Input([]float64{v})
		}
		out := head.Apply(tp, cell.Run(tp, nodes))
		_, g := MSELoss(out.Value[0], target)
		tp.Backward(out, []float64{g})
		opt.Step(params)
	}
	testRng := rand.New(rand.NewSource(99))
	var totalErr float64
	const trials = 50
	for i := 0; i < trials; i++ {
		xs, target := sample(testRng)
		tp := ad.NewTape()
		nodes := make([]*ad.Node, len(xs))
		for j, v := range xs {
			nodes[j] = tp.Input([]float64{v})
		}
		out := head.Apply(tp, cell.Run(tp, nodes))
		totalErr += math.Abs(out.Value[0] - target)
	}
	if mae := totalErr / trials; mae > 0.25 {
		t.Fatalf("LSTM failed to learn sequence sum: MAE %v", mae)
	}
}

func TestGRULearnsSequenceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cell := NewGRUCell("gru", 1, 8, rng)
	head := NewDense("head", 8, 1, Identity, rng)
	params := append(cell.Params(), head.Params()...)
	opt := NewAdam(0.01)
	for epoch := 0; epoch < 800; epoch++ {
		n := 2 + rng.Intn(3)
		var target float64
		tp := ad.NewTape()
		nodes := make([]*ad.Node, n)
		for i := range nodes {
			v := rng.Float64()
			target += v
			nodes[i] = tp.Input([]float64{v})
		}
		out := head.Apply(tp, cell.Run(tp, nodes))
		_, g := MSELoss(out.Value[0], target)
		tp.Backward(out, []float64{g})
		opt.Step(params)
	}
	testRng := rand.New(rand.NewSource(100))
	var totalErr float64
	const trials = 50
	for i := 0; i < trials; i++ {
		n := 2 + testRng.Intn(3)
		var target float64
		tp := ad.NewTape()
		nodes := make([]*ad.Node, n)
		for j := range nodes {
			v := testRng.Float64()
			target += v
			nodes[j] = tp.Input([]float64{v})
		}
		out := head.Apply(tp, cell.Run(tp, nodes))
		totalErr += math.Abs(out.Value[0] - target)
	}
	if mae := totalErr / trials; mae > 0.25 {
		t.Fatalf("GRU failed to learn sequence sum: MAE %v", mae)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}

	m2 := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rand.New(rand.NewSource(999)))
	if err := LoadParams(bytes.NewReader(buf.Bytes()), m2.Params()); err != nil {
		t.Fatal(err)
	}
	s1, s2 := m.NewInferScratch(), m2.NewInferScratch()
	x := []float64{0.1, -0.2, 0.3}
	a, b := m.Infer(s1, x)[0], m2.Infer(s2, x)[0]
	if math.Abs(a-b) > 1e-6 { // float32 round trip
		t.Fatalf("round trip mismatch: %v vs %v", a, b)
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewMLP("m", []int{3, 6, 1}, ReLU, Sigmoid, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	m := NewMLP("m", []int{2, 2, 1}, ReLU, Sigmoid, rand.New(rand.NewSource(1)))
	if err := LoadParams(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), m.Params()); err == nil {
		t.Fatal("expected bad magic error")
	}
}

func TestSizeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense("d", 3, 2, Identity, rng)
	if n := NumParams(d.Params()); n != 3*2+2 {
		t.Fatalf("NumParams=%d want 8", n)
	}
	if b := SizeBytes(d.Params()); b != 4*8 {
		t.Fatalf("SizeBytes=%d want 32", b)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	ClipGradNorm([]*Param{p}, 1)
	if math.Abs(GradNorm([]*Param{p})-1) > 1e-12 {
		t.Fatalf("clipped norm %v want 1", GradNorm([]*Param{p}))
	}
	// Below the threshold: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip must not rescale below threshold")
	}
}

func TestActivationString(t *testing.T) {
	if Identity.String() != "identity" || Sigmoid.String() != "sigmoid" ||
		Tanh.String() != "tanh" || ReLU.String() != "relu" {
		t.Fatal("Activation String labels wrong")
	}
}

func TestParamVecPanicsOnMatrix(t *testing.T) {
	p := NewParam("w", 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Vec()
}

func TestLoadRejectsTruncatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	m2 := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rng)
	if err := LoadParams(bytes.NewReader(truncated), m2.Params()); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadRejectsWrongParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP("m", []int{3, 5, 1}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	deeper := NewMLP("m", []int{3, 5, 5, 1}, ReLU, Sigmoid, rng)
	if err := LoadParams(bytes.NewReader(buf.Bytes()), deeper.Params()); err == nil {
		t.Fatal("expected param count error")
	}
}

// Property: QError is symmetric under swapping est/truth, ≥ 1, and
// multiplicative: QError(k·x, x) == k for k ≥ 1, x ≥ 1.
func TestQErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := 1 + r.Float64()*1e6
		k := 1 + r.Float64()*100
		if math.Abs(QError(k*x, x)-k) > 1e-9*k {
			return false
		}
		a, b := 1+r.Float64()*1e4, 1+r.Float64()*1e4
		if QError(a, b) != QError(b, a) {
			return false
		}
		return QError(a, b) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
