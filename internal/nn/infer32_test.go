package nn

import (
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/mat"
)

// snapshotTol bounds the f32-vs-f64 output divergence for the small nets
// in these tests: weights round once, each layer reassociates a short dot
// product, and sigmoid/tanh run in float64 — observed deltas are ~1e-6,
// so 1e-4 leaves two orders of margin without masking real bugs.
const snapshotTol = 1e-4

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestDense32MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []Activation{Identity, Sigmoid, Tanh, ReLU} {
		d := NewDense("d", 7, 5, act, rng)
		d32 := d.Snapshot32()
		if d32.In() != 7 || d32.Out() != 5 {
			t.Fatalf("%v: snapshot dims %dx%d", act, d32.Out(), d32.In())
		}
		x := randVec(rng, 7)
		want := make([]float64, 5)
		d.Infer(want, x)
		got := make([]float32, 5)
		d32.Infer(got, mat.ToF32(nil, x))
		for i := range want {
			if !mat.WithinTol(float64(got[i]), want[i], snapshotTol) {
				t.Fatalf("%v: out[%d] f32=%v f64=%v", act, i, got[i], want[i])
			}
		}
	}
}

func TestMLP32MatchesMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP("m", []int{6, 16, 8, 3}, ReLU, Sigmoid, rng)
	m32 := m.Snapshot32()
	if m32.In() != 6 || m32.Out() != 3 {
		t.Fatalf("snapshot dims in=%d out=%d", m32.In(), m32.Out())
	}
	s := m.NewInferScratch()
	s32 := m32.NewInferScratch32()
	for trial := 0; trial < 20; trial++ {
		x := randVec(rng, 6)
		x32 := mat.ToF32(nil, x)
		want := m.Infer(s, x)
		got := m32.Infer(s32, x32)
		for i := range want {
			if !mat.WithinTol(float64(got[i]), want[i], snapshotTol) {
				t.Fatalf("trial %d out[%d]: f32=%v f64=%v", trial, i, got[i], want[i])
			}
		}
		// InferInto must agree bit-for-bit with Infer.
		dst := make([]float32, 3)
		m32.InferInto(s32, x32, dst)
		for i := range dst {
			if dst[i] != got[i] {
				t.Fatalf("InferInto[%d]=%v, Infer=%v", i, dst[i], got[i])
			}
		}
		// InferLogit must agree with the f64 logit path.
		wantLogit := m.InferLogit(s, x)
		gotLogit := m32.InferLogit(s32, x32)
		for i := range wantLogit {
			if !mat.WithinTol(float64(gotLogit[i]), wantLogit[i], snapshotTol) {
				t.Fatalf("logit[%d]: f32=%v f64=%v", i, gotLogit[i], wantLogit[i])
			}
		}
	}
}

func TestMLP32SnapshotIsImmutableCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP("m", []int{2, 4, 1}, ReLU, Identity, rng)
	m32 := m.Snapshot32()
	before := m32.Layers[0].W.At(0, 0)
	m.Layers[0].W.Value.Set(0, 0, 999)
	if m32.Layers[0].W.At(0, 0) != before {
		t.Fatal("Snapshot32 must copy weights, not alias them")
	}
}

func TestBindScratchCarvesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP("m", []int{3, 5, 7, 2}, ReLU, Identity, rng)
	m32 := m.Snapshot32()
	if got, want := m32.ScratchLen(), 5+7+2; got != want {
		t.Fatalf("ScratchLen=%d want %d", got, want)
	}
	arena := make([]float32, m32.ScratchLen()+10)
	s, rest := m32.BindScratch(arena)
	if len(rest) != 10 {
		t.Fatalf("BindScratch left %d floats, want 10", len(rest))
	}
	// The buffers must be windows into the arena, in order.
	if &s.bufs[0][0] != &arena[0] || &s.bufs[1][0] != &arena[5] || &s.bufs[2][0] != &arena[12] {
		t.Fatal("BindScratch buffers must alias the arena")
	}
	// Full-capacity slices must not bleed into each other on append.
	if cap(s.bufs[0]) != 5 || cap(s.bufs[1]) != 7 {
		t.Fatalf("scratch windows must be capacity-clamped: caps %d,%d", cap(s.bufs[0]), cap(s.bufs[1]))
	}
	x := []float32{1, 2, 3}
	out := m32.Infer(s, x)
	if len(out) != 2 {
		t.Fatalf("Infer output length %d", len(out))
	}
}

func TestApplyVec32Tails(t *testing.T) {
	// StableSigmoid's overflow-free tails must survive the f32 boundary.
	x := []float32{-100, 100, 0}
	Sigmoid.ApplyVec32(x)
	if x[0] < 0 || x[0] > 1e-6 || math.Abs(float64(x[1])-1) > 1e-6 || x[2] != 0.5 {
		t.Fatalf("sigmoid tails wrong: %v", x)
	}
	y := []float32{-2, -0, 3}
	ReLU.ApplyVec32(y)
	if y[0] != 0 || y[1] != 0 || y[2] != 3 {
		t.Fatalf("relu wrong: %v", y)
	}
}

func TestEmbedding32MatchesEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedding("e", 10, 4, rng)
	e32 := e.Snapshot32()
	if e32.Vocab() != 10 || e32.Dim() != 4 {
		t.Fatalf("snapshot dims vocab=%d dim=%d", e32.Vocab(), e32.Dim())
	}
	for id := 0; id < 10; id++ {
		row := e.Row(id)
		row32 := e32.Row(id)
		for j := range row {
			if math.Abs(float64(row32[j])-row[j]) > mat.RoundTripBound(row[j]) {
				t.Fatalf("row %d col %d: %v vs %v", id, j, row32[j], row[j])
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-vocab id")
		}
	}()
	e32.Row(10)
}
