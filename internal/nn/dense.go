package nn

import (
	"fmt"
	"math/rand"

	"setlearn/internal/ad"
	"setlearn/internal/mat"
)

// Dense is a fully connected layer y = act(W·x + b).
type Dense struct {
	W   *Param
	B   *Param
	Act Activation
}

// NewDense returns a Glorot-initialized dense layer.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		W:   NewParam(name+".W", out, in),
		B:   NewParam(name+".b", 1, out),
		Act: act,
	}
	d.W.GlorotInit(rng, in, out)
	return d
}

// In returns the input dimensionality.
func (d *Dense) In() int { return d.W.Value.Cols }

// Out returns the output dimensionality.
func (d *Dense) Out() int { return d.W.Value.Rows }

// Apply records the layer on the tape.
func (d *Dense) Apply(t *ad.Tape, x *ad.Node) *ad.Node {
	y := t.Affine(d.W.Value, d.W.Grad, d.B.Vec(), d.B.GradVec(), x)
	return d.Act.Apply(t, y)
}

// ApplyLinear records W·x + b without the activation (used to expose the
// pre-sigmoid logit for numerically stable cross-entropy).
func (d *Dense) ApplyLinear(t *ad.Tape, x *ad.Node) *ad.Node {
	return t.Affine(d.W.Value, d.W.Grad, d.B.Vec(), d.B.GradVec(), x)
}

// Infer computes the layer output into dst without touching a tape.
func (d *Dense) Infer(dst, x []float64) {
	mat.MatVecAdd(dst, d.W.Value, x, d.B.Vec())
	d.Act.ApplyVec(dst)
}

// Params returns the layer's trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// MLP is a stack of dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes. sizes[0] is the input
// dimension; each hidden layer uses hiddenAct and the final layer outAct.
func NewMLP(name string, sizes []int, hiddenAct, outAct Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: MLP needs at least input and output sizes, got %v", sizes))
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hiddenAct
		if i+2 == len(sizes) {
			act = outAct
		}
		m.Layers = append(m.Layers, NewDense(fmt.Sprintf("%s.%d", name, i), sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// In returns the input dimensionality.
func (m *MLP) In() int { return m.Layers[0].In() }

// Out returns the output dimensionality.
func (m *MLP) Out() int { return m.Layers[len(m.Layers)-1].Out() }

// Apply records the full stack on the tape.
func (m *MLP) Apply(t *ad.Tape, x *ad.Node) *ad.Node {
	for _, l := range m.Layers {
		x = l.Apply(t, x)
	}
	return x
}

// ApplyLogit records all layers but leaves the final layer linear.
func (m *MLP) ApplyLogit(t *ad.Tape, x *ad.Node) *ad.Node {
	last := len(m.Layers) - 1
	for _, l := range m.Layers[:last] {
		x = l.Apply(t, x)
	}
	return m.Layers[last].ApplyLinear(t, x)
}

// Params returns all trainable parameters of the stack.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// InferScratch holds preallocated buffers for tape-free MLP inference.
type InferScratch struct {
	bufs [][]float64
}

// NewInferScratch sizes scratch buffers for m.
func (m *MLP) NewInferScratch() *InferScratch {
	s := &InferScratch{}
	for _, l := range m.Layers {
		s.bufs = append(s.bufs, make([]float64, l.Out()))
	}
	return s
}

// Infer runs the stack without a tape and returns the output buffer, which
// is owned by the scratch and overwritten on the next call.
func (m *MLP) Infer(s *InferScratch, x []float64) []float64 {
	for i, l := range m.Layers {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	return x
}

// InferInto runs the stack without a tape, writing the final layer's
// output directly into dst (caller-pooled scratch of length Out()) instead
// of the scratch's last buffer. The computation is identical to Infer, so
// results are bit-identical — the φ-table precomputation and the buffered
// log-sum-exp pooling rely on that.
func (m *MLP) InferInto(s *InferScratch, x, dst []float64) {
	last := len(m.Layers) - 1
	for i, l := range m.Layers[:last] {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	m.Layers[last].Infer(dst, x)
}

// InferLogit runs the stack without a tape, skipping the final activation.
func (m *MLP) InferLogit(s *InferScratch, x []float64) []float64 {
	last := len(m.Layers) - 1
	for i, l := range m.Layers[:last] {
		l.Infer(s.bufs[i], x)
		x = s.bufs[i]
	}
	l := m.Layers[last]
	mat.MatVecAdd(s.bufs[last], l.W.Value, x, l.B.Vec())
	return s.bufs[last]
}
