package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param][]float64
}

// NewSGD returns an SGD optimizer with learning rate lr.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= o.LR * g
			}
		} else {
			v := o.vel[p]
			if v == nil {
				v = make([]float64, p.Size())
				o.vel[p] = v
			}
			for i, g := range p.Grad.Data {
				v[i] = o.Momentum*v[i] - o.LR*g
				p.Value.Data[i] += v[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba) — the default used by
// Keras and therefore by the paper's training setup.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[*Param][]float64),
		v: make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = make([]float64, p.Size())
			v = make([]float64, p.Size())
			o.m[p], o.v[p] = m, v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Epsilon)
		}
		p.ZeroGrad()
	}
}
