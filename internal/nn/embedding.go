package nn

import (
	"fmt"
	"math/rand"

	"setlearn/internal/ad"
)

// Embedding maps integer ids to dense vectors via a shared table — the
// element representation of the DeepSets architecture (§3.2).
type Embedding struct {
	Table *Param
}

// NewEmbedding allocates a vocab×dim table initialized U(-0.05, 0.05).
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Table: NewParam(name+".E", vocab, dim)}
	e.Table.UniformInit(rng, 0.05)
	return e
}

// Vocab returns the number of rows in the table.
func (e *Embedding) Vocab() int { return e.Table.Value.Rows }

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.Table.Value.Cols }

// Apply records a lookup of id on the tape.
func (e *Embedding) Apply(t *ad.Tape, id int) *ad.Node {
	if id < 0 || id >= e.Vocab() {
		panic(fmt.Sprintf("nn: embedding id %d out of vocabulary [0,%d)", id, e.Vocab()))
	}
	return t.Lookup(e.Table.Value, e.Table.Grad, id)
}

// Row returns the embedding vector for id without recording on a tape.
func (e *Embedding) Row(id int) []float64 {
	if id < 0 || id >= e.Vocab() {
		panic(fmt.Sprintf("nn: embedding id %d out of vocabulary [0,%d)", id, e.Vocab()))
	}
	return e.Table.Value.Row(id)
}

// Params returns the table as the sole trainable parameter.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }
