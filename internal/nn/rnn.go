package nn

import (
	"math/rand"

	"setlearn/internal/ad"
)

// LSTMCell is a standard long short-term memory cell. It serves as a
// sequence-model competitor to DeepSets in the digit-summation experiment
// (Figure 7): unlike DeepSets it is order dependent and does not generalize
// across set sizes.
type LSTMCell struct {
	// Gate weights over the input (W*) and recurrent state (U*).
	Wi, Ui, Bi *Param
	Wf, Uf, Bf *Param
	Wo, Uo, Bo *Param
	Wg, Ug, Bg *Param
	hidden     int
}

// NewLSTMCell returns a Glorot-initialized cell. The forget-gate bias is
// initialized to 1, the usual trick for stable early training.
func NewLSTMCell(name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	mk := func(suffix string, rows, cols int) *Param {
		p := NewParam(name+"."+suffix, rows, cols)
		p.GlorotInit(rng, cols, rows)
		return p
	}
	c := &LSTMCell{
		Wi: mk("Wi", hidden, in), Ui: mk("Ui", hidden, hidden), Bi: NewParam(name+".bi", 1, hidden),
		Wf: mk("Wf", hidden, in), Uf: mk("Uf", hidden, hidden), Bf: NewParam(name+".bf", 1, hidden),
		Wo: mk("Wo", hidden, in), Uo: mk("Uo", hidden, hidden), Bo: NewParam(name+".bo", 1, hidden),
		Wg: mk("Wg", hidden, in), Ug: mk("Ug", hidden, hidden), Bg: NewParam(name+".bg", 1, hidden),
		hidden: hidden,
	}
	for i := range c.Bf.Vec() {
		c.Bf.Vec()[i] = 1
	}
	return c
}

// Hidden returns the state dimensionality.
func (c *LSTMCell) Hidden() int { return c.hidden }

// gate records σ or tanh(W·x + U·h + b).
func gate(t *ad.Tape, W, U, B *Param, x, h *ad.Node, act Activation) *ad.Node {
	wx := t.Affine(W.Value, W.Grad, B.Vec(), B.GradVec(), x)
	uh := t.Affine(U.Value, U.Grad, make([]float64, U.Value.Rows), nil, h)
	return act.Apply(t, t.Add(wx, uh))
}

// Step records one LSTM step and returns the new hidden and cell states.
func (c *LSTMCell) Step(t *ad.Tape, x, h, cell *ad.Node) (hNext, cellNext *ad.Node) {
	i := gate(t, c.Wi, c.Ui, c.Bi, x, h, Sigmoid)
	f := gate(t, c.Wf, c.Uf, c.Bf, x, h, Sigmoid)
	o := gate(t, c.Wo, c.Uo, c.Bo, x, h, Sigmoid)
	g := gate(t, c.Wg, c.Ug, c.Bg, x, h, Tanh)
	cellNext = t.Add(t.Mul(f, cell), t.Mul(i, g))
	hNext = t.Mul(o, t.Tanh(cellNext))
	return hNext, cellNext
}

// Run records the cell over a sequence of inputs starting from zero state
// and returns the final hidden state.
func (c *LSTMCell) Run(t *ad.Tape, xs []*ad.Node) *ad.Node {
	zero := make([]float64, c.hidden)
	h, cell := t.Input(zero), t.Input(zero)
	for _, x := range xs {
		h, cell = c.Step(t, x, h, cell)
	}
	return h
}

// Params returns all trainable parameters of the cell.
func (c *LSTMCell) Params() []*Param {
	return []*Param{
		c.Wi, c.Ui, c.Bi,
		c.Wf, c.Uf, c.Bf,
		c.Wo, c.Uo, c.Bo,
		c.Wg, c.Ug, c.Bg,
	}
}

// GRUCell is a standard gated recurrent unit, the second sequence-model
// competitor in Figure 7.
type GRUCell struct {
	Wz, Uz, Bz *Param
	Wr, Ur, Br *Param
	Wh, Uh, Bh *Param
	hidden     int
}

// NewGRUCell returns a Glorot-initialized cell.
func NewGRUCell(name string, in, hidden int, rng *rand.Rand) *GRUCell {
	mk := func(suffix string, rows, cols int) *Param {
		p := NewParam(name+"."+suffix, rows, cols)
		p.GlorotInit(rng, cols, rows)
		return p
	}
	return &GRUCell{
		Wz: mk("Wz", hidden, in), Uz: mk("Uz", hidden, hidden), Bz: NewParam(name+".bz", 1, hidden),
		Wr: mk("Wr", hidden, in), Ur: mk("Ur", hidden, hidden), Br: NewParam(name+".br", 1, hidden),
		Wh: mk("Wh", hidden, in), Uh: mk("Uh", hidden, hidden), Bh: NewParam(name+".bh", 1, hidden),
		hidden: hidden,
	}
}

// Hidden returns the state dimensionality.
func (c *GRUCell) Hidden() int { return c.hidden }

// Step records one GRU step and returns the new hidden state.
func (c *GRUCell) Step(t *ad.Tape, x, h *ad.Node) *ad.Node {
	z := gate(t, c.Wz, c.Uz, c.Bz, x, h, Sigmoid)
	r := gate(t, c.Wr, c.Ur, c.Br, x, h, Sigmoid)
	rh := t.Mul(r, h)
	cand := gate(t, c.Wh, c.Uh, c.Bh, x, rh, Tanh)
	// h' = (1-z)⊙h + z⊙cand
	oneMinusZ := t.AffineConst(z, -1, 1)
	return t.Add(t.Mul(oneMinusZ, h), t.Mul(z, cand))
}

// Run records the cell over a sequence from zero state and returns the
// final hidden state.
func (c *GRUCell) Run(t *ad.Tape, xs []*ad.Node) *ad.Node {
	h := t.Input(make([]float64, c.hidden))
	for _, x := range xs {
		h = c.Step(t, x, h)
	}
	return h
}

// Params returns all trainable parameters of the cell.
func (c *GRUCell) Params() []*Param {
	return []*Param{
		c.Wz, c.Uz, c.Bz,
		c.Wr, c.Ur, c.Br,
		c.Wh, c.Uh, c.Bh,
	}
}
