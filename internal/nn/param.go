// Package nn builds neural-network components on top of the ad autodiff
// engine: dense layers, MLPs, embedding tables, LSTM/GRU cells, optimizers,
// losses, weight initialization, and model serialization. It is the training
// substrate for every learned structure in this repository.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"setlearn/internal/mat"
)

// Param is a trainable tensor with its gradient accumulator. Vectors are
// represented as 1×n matrices.
type Param struct {
	Name  string
	Value *mat.Matrix
	Grad  *mat.Matrix
}

// NewParam allocates a zeroed rows×cols parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: mat.New(rows, cols), Grad: mat.New(rows, cols)}
}

// Size returns the number of scalar values in the parameter.
func (p *Param) Size() int { return len(p.Value.Data) }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Vec returns the parameter's backing data when it is a vector (1×n).
func (p *Param) Vec() []float64 {
	if p.Value.Rows != 1 {
		panic(fmt.Sprintf("nn: param %s is %dx%d, not a vector", p.Name, p.Value.Rows, p.Value.Cols))
	}
	return p.Value.Data
}

// GradVec returns the gradient data for a vector parameter.
func (p *Param) GradVec() []float64 {
	if p.Grad.Rows != 1 {
		panic(fmt.Sprintf("nn: param %s is %dx%d, not a vector", p.Name, p.Grad.Rows, p.Grad.Cols))
	}
	return p.Grad.Data
}

// GlorotInit fills p with the Glorot/Xavier uniform distribution
// U(-√(6/(fanIn+fanOut)), +√(6/(fanIn+fanOut))).
func (p *Param) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range p.Value.Data {
		p.Value.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// UniformInit fills p with U(-limit, +limit).
func (p *Param) UniformInit(rng *rand.Rand, limit float64) {
	for i := range p.Value.Data {
		p.Value.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// NumParams sums the scalar counts of all params.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Size()
	}
	return n
}

// SizeBytes reports the serialized size of the parameters at float32
// precision, matching how models are persisted and how the paper accounts
// for model memory.
func SizeBytes(params []*Param) int { return 4 * NumParams(params) }

// ZeroGrads clears every gradient accumulator in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradNorm returns the global L2 norm across all parameter gradients.
func GradNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global norm is at most c.
func ClipGradNorm(params []*Param, c float64) {
	n := GradNorm(params)
	if n <= c || n == 0 {
		return
	}
	scale := c / n
	for _, p := range params {
		mat.Scale(p.Grad.Data, scale)
	}
}
