package nn

import (
	"fmt"
	"math"

	"setlearn/internal/ad"
)

// Activation identifies the elementwise nonlinearity of a layer.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Sigmoid
	Tanh
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Apply records the activation on the tape.
func (a Activation) Apply(t *ad.Tape, x *ad.Node) *ad.Node {
	switch a {
	case Identity:
		return x
	case Sigmoid:
		return t.Sigmoid(x)
	case Tanh:
		return t.Tanh(x)
	case ReLU:
		return t.ReLU(x)
	default:
		panic("nn: unknown activation")
	}
}

// ApplyVec applies the activation in place to x — the tape-free inference
// path.
func (a Activation) ApplyVec(x []float64) {
	switch a {
	case Identity:
	case Sigmoid:
		for i, v := range x {
			x[i] = StableSigmoid(v)
		}
	case Tanh:
		for i, v := range x {
			x[i] = math.Tanh(v)
		}
	case ReLU:
		for i, v := range x {
			if v < 0 {
				x[i] = 0
			}
		}
	default:
		panic("nn: unknown activation")
	}
}

// StableSigmoid computes 1/(1+e^{-x}) without overflow in either tail.
func StableSigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
