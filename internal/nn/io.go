package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Parameters are serialized as float32, halving the on-disk footprint with
// no measurable accuracy impact for models this small; this is also the
// precision at which the paper accounts model memory ("we extract the
// weights", §8.2.2).

const paramsMagic = uint32(0x53455430) // "SET0"

// SaveParams writes params to w in a self-describing binary format.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, paramsMagic); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: write count: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		hdr := []uint32{uint32(len(name)), uint32(p.Value.Rows), uint32(p.Value.Cols)}
		if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
			return fmt.Errorf("nn: write header for %s: %w", p.Name, err)
		}
		if _, err := bw.Write(name); err != nil {
			return fmt.Errorf("nn: write name for %s: %w", p.Name, err)
		}
		buf := make([]byte, 4*len(p.Value.Data))
		for i, v := range p.Value.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("nn: write data for %s: %w", p.Name, err)
		}
	}
	return bw.Flush()
}

// LoadParams reads values saved by SaveParams into params, which must have
// the same order, names, and shapes as at save time.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: read magic: %w", err)
	}
	if magic != paramsMagic {
		return fmt.Errorf("nn: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: read count: %w", err)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: file has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var hdr [3]uint32
		if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
			return fmt.Errorf("nn: read header for %s: %w", p.Name, err)
		}
		if hdr[0] > 4096 {
			return fmt.Errorf("nn: corrupt name length %d for %s", hdr[0], p.Name)
		}
		name := make([]byte, hdr[0])
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: read name for %s: %w", p.Name, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: param order mismatch: file has %q, model expects %q", name, p.Name)
		}
		if int(hdr[1]) != p.Value.Rows || int(hdr[2]) != p.Value.Cols {
			return fmt.Errorf("nn: shape mismatch for %s: file %dx%d, model %dx%d",
				p.Name, hdr[1], hdr[2], p.Value.Rows, p.Value.Cols)
		}
		buf := make([]byte, 4*len(p.Value.Data))
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("nn: read data for %s: %w", p.Name, err)
		}
		for i := range p.Value.Data {
			p.Value.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
	}
	return nil
}
