package nn

import "math"

// The regression models train on log-transformed, min-max-scaled targets
// (paper §4.1–§4.2). In that space |ŷ−y|·(max−min) equals |log est − log
// truth| = log q-error, so MAE in scaled space directly minimizes the
// paper's q-error loss; MSE is its smooth alternative. The classification
// model (learned Bloom filter) trains with binary cross-entropy on the
// pre-sigmoid logit for numerical stability.

// MAELoss returns |pred−target| and the gradient d/dpred.
func MAELoss(pred, target float64) (loss, grad float64) {
	d := pred - target
	if d > 0 {
		return d, 1
	}
	if d < 0 {
		return -d, -1
	}
	return 0, 0
}

// MSELoss returns (pred−target)² and the gradient d/dpred.
func MSELoss(pred, target float64) (loss, grad float64) {
	d := pred - target
	return d * d, 2 * d
}

// BCEWithLogits returns the binary cross-entropy between sigmoid(logit) and
// target ∈ {0,1} together with the gradient with respect to the logit,
// which is simply sigmoid(logit) − target.
func BCEWithLogits(logit, target float64) (loss, grad float64) {
	p := StableSigmoid(logit)
	// Stable formulation: max(x,0) − x·t + log(1+e^{−|x|}).
	loss = math.Max(logit, 0) - logit*target + math.Log1p(math.Exp(-math.Abs(logit)))
	return loss, p - target
}

// QError returns the paper's accuracy metric max(est/truth, truth/est),
// floored at 1. Both values are clamped below at 1 so that empty results
// and sub-one estimates do not blow the ratio up to infinity — the standard
// convention in the cardinality-estimation literature.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// MeanQError averages QError over paired slices.
func MeanQError(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("nn: MeanQError length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	var s float64
	for i := range est {
		s += QError(est[i], truth[i])
	}
	return s / float64(len(est))
}
