// Package ad implements a small tape-based reverse-mode automatic
// differentiation engine over vector-valued nodes. It is the training
// substrate for the DeepSets, LSTM, and GRU models in this repository.
//
// A Tape records operations in execution order; Backward replays them in
// reverse. Parameters (weight matrices, bias vectors, embedding tables) live
// outside the tape: operations that consume them accumulate directly into
// caller-owned gradient buffers, so one pair of parameter/gradient arrays
// serves any number of tape applications (weight sharing, as required by the
// per-element φ network of DeepSets, falls out naturally).
package ad

import (
	"fmt"
	"math"

	"setlearn/internal/mat"
)

// Node is a vector-valued value recorded on a tape together with its
// gradient buffer.
type Node struct {
	Value []float64
	Grad  []float64
	back  func()
}

// Len returns the dimensionality of the node.
func (n *Node) Len() int { return len(n.Value) }

// Tape records operations for reverse-mode differentiation.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded nodes so the tape can be reused.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// NumNodes reports how many nodes the tape currently holds.
func (t *Tape) NumNodes() int { return len(t.nodes) }

func (t *Tape) newNode(n int) *Node {
	nd := &Node{Value: make([]float64, n), Grad: make([]float64, n)}
	t.nodes = append(t.nodes, nd)
	return nd
}

// Input records a leaf node holding a copy of v. Its gradient is computed
// but not propagated anywhere.
func (t *Tape) Input(v []float64) *Node {
	nd := t.newNode(len(v))
	copy(nd.Value, v)
	return nd
}

// Param records a leaf node over a trainable vector: the node's value is a
// copy of value, and Backward accumulates into grad (nil to freeze).
func (t *Tape) Param(value, grad []float64) *Node {
	nd := t.newNode(len(value))
	copy(nd.Value, value)
	nd.back = func() {
		if grad != nil {
			mat.AddTo(grad, nd.Grad)
		}
	}
	return nd
}

// Affine records y = W·x + b. gW and gb receive the parameter gradients
// during Backward; either may be nil to skip accumulation (frozen weights).
func (t *Tape) Affine(W *mat.Matrix, gW *mat.Matrix, b, gb []float64, x *Node) *Node {
	if W.Cols != x.Len() {
		panic(fmt.Sprintf("ad: Affine W is %dx%d but x has length %d", W.Rows, W.Cols, x.Len()))
	}
	out := t.newNode(W.Rows)
	mat.MatVecAdd(out.Value, W, x.Value, b)
	out.back = func() {
		mat.MatTVecAcc(x.Grad, W, out.Grad)
		if gW != nil {
			mat.OuterAcc(gW, out.Grad, x.Value)
		}
		if gb != nil {
			mat.AddTo(gb, out.Grad)
		}
	}
	return out
}

// Lookup records y = row idx of the embedding table E. gE receives the
// gradient for that row during Backward.
func (t *Tape) Lookup(E *mat.Matrix, gE *mat.Matrix, idx int) *Node {
	if idx < 0 || idx >= E.Rows {
		panic(fmt.Sprintf("ad: Lookup index %d out of range [0,%d)", idx, E.Rows))
	}
	out := t.newNode(E.Cols)
	copy(out.Value, E.Row(idx))
	out.back = func() {
		if gE != nil {
			mat.AddTo(gE.Row(idx), out.Grad)
		}
	}
	return out
}

// Add records y = a + b (elementwise).
func (t *Tape) Add(a, b *Node) *Node {
	checkSameLen("Add", a, b)
	out := t.newNode(a.Len())
	for i := range out.Value {
		out.Value[i] = a.Value[i] + b.Value[i]
	}
	out.back = func() {
		mat.AddTo(a.Grad, out.Grad)
		mat.AddTo(b.Grad, out.Grad)
	}
	return out
}

// Sub records y = a - b (elementwise).
func (t *Tape) Sub(a, b *Node) *Node {
	checkSameLen("Sub", a, b)
	out := t.newNode(a.Len())
	for i := range out.Value {
		out.Value[i] = a.Value[i] - b.Value[i]
	}
	out.back = func() {
		mat.AddTo(a.Grad, out.Grad)
		mat.Axpy(b.Grad, -1, out.Grad)
	}
	return out
}

// Mul records y = a ⊙ b (elementwise product).
func (t *Tape) Mul(a, b *Node) *Node {
	checkSameLen("Mul", a, b)
	out := t.newNode(a.Len())
	for i := range out.Value {
		out.Value[i] = a.Value[i] * b.Value[i]
	}
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[i] += g * b.Value[i]
			b.Grad[i] += g * a.Value[i]
		}
	}
	return out
}

// AffineConst records y = alpha*a + beta (elementwise, constants).
func (t *Tape) AffineConst(a *Node, alpha, beta float64) *Node {
	out := t.newNode(a.Len())
	for i := range out.Value {
		out.Value[i] = alpha*a.Value[i] + beta
	}
	out.back = func() { mat.Axpy(a.Grad, alpha, out.Grad) }
	return out
}

// Concat records y = [a₁ ‖ a₂ ‖ …].
func (t *Tape) Concat(parts ...*Node) *Node {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	out := t.newNode(total)
	off := 0
	for _, p := range parts {
		copy(out.Value[off:], p.Value)
		off += p.Len()
	}
	out.back = func() {
		off := 0
		for _, p := range parts {
			mat.AddTo(p.Grad, out.Grad[off:off+p.Len()])
			off += p.Len()
		}
	}
	return out
}

// SumPool records y = Σᵢ aᵢ over equally sized nodes — the permutation
// invariant pooling at the heart of DeepSets.
func (t *Tape) SumPool(parts []*Node) *Node {
	if len(parts) == 0 {
		panic("ad: SumPool over empty slice")
	}
	n := parts[0].Len()
	out := t.newNode(n)
	for _, p := range parts {
		if p.Len() != n {
			panic("ad: SumPool over nodes of different lengths")
		}
		mat.AddTo(out.Value, p.Value)
	}
	out.back = func() {
		for _, p := range parts {
			mat.AddTo(p.Grad, out.Grad)
		}
	}
	return out
}

// MaxPool records y = elementwise max over equally sized nodes; gradients
// flow to the maximizing element per dimension (first on ties).
func (t *Tape) MaxPool(parts []*Node) *Node {
	if len(parts) == 0 {
		panic("ad: MaxPool over empty slice")
	}
	n := parts[0].Len()
	out := t.newNode(n)
	argmax := make([]int, n)
	copy(out.Value, parts[0].Value)
	for pi, p := range parts {
		if p.Len() != n {
			panic("ad: MaxPool over nodes of different lengths")
		}
		if pi == 0 {
			continue
		}
		for i, v := range p.Value {
			if v > out.Value[i] {
				out.Value[i] = v
				argmax[i] = pi
			}
		}
	}
	out.back = func() {
		for i, g := range out.Grad {
			parts[argmax[i]].Grad[i] += g
		}
	}
	return out
}

// LogSumExpPool records y = log Σᵢ exp(aᵢ) elementwise with max-shift
// stabilization — the smooth maximum pooling mentioned in §3.2.
func (t *Tape) LogSumExpPool(parts []*Node) *Node {
	if len(parts) == 0 {
		panic("ad: LogSumExpPool over empty slice")
	}
	n := parts[0].Len()
	out := t.newNode(n)
	maxes := make([]float64, n)
	copy(maxes, parts[0].Value)
	for _, p := range parts[1:] {
		if p.Len() != n {
			panic("ad: LogSumExpPool over nodes of different lengths")
		}
		for i, v := range p.Value {
			if v > maxes[i] {
				maxes[i] = v
			}
		}
	}
	sums := make([]float64, n)
	for _, p := range parts {
		for i, v := range p.Value {
			sums[i] += math.Exp(v - maxes[i])
		}
	}
	for i := range out.Value {
		out.Value[i] = maxes[i] + math.Log(sums[i])
	}
	out.back = func() {
		// d/da_i = exp(a_i − y) = softmax weight of part i at dim d.
		for _, p := range parts {
			for i, g := range out.Grad {
				p.Grad[i] += g * math.Exp(p.Value[i]-out.Value[i])
			}
		}
	}
	return out
}

// MeanPool records y = (1/k) Σᵢ aᵢ.
func (t *Tape) MeanPool(parts []*Node) *Node {
	s := t.SumPool(parts)
	return t.AffineConst(s, 1/float64(len(parts)), 0)
}

// Sigmoid records y = 1/(1+e^{-a}) elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := t.newNode(a.Len())
	for i, v := range a.Value {
		out.Value[i] = sigmoid(v)
	}
	out.back = func() {
		for i, g := range out.Grad {
			y := out.Value[i]
			a.Grad[i] += g * y * (1 - y)
		}
	}
	return out
}

// Tanh records y = tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	out := t.newNode(a.Len())
	for i, v := range a.Value {
		out.Value[i] = math.Tanh(v)
	}
	out.back = func() {
		for i, g := range out.Grad {
			y := out.Value[i]
			a.Grad[i] += g * (1 - y*y)
		}
	}
	return out
}

// ReLU records y = max(a, 0) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	out := t.newNode(a.Len())
	for i, v := range a.Value {
		if v > 0 {
			out.Value[i] = v
		}
	}
	out.back = func() {
		for i, g := range out.Grad {
			if a.Value[i] > 0 {
				a.Grad[i] += g
			}
		}
	}
	return out
}

// Backward seeds the gradient of out and propagates through every recorded
// operation in reverse order. seed must match out's length; pass nil to seed
// with all ones.
func (t *Tape) Backward(out *Node, seed []float64) {
	if seed == nil {
		for i := range out.Grad {
			out.Grad[i] = 1
		}
	} else {
		if len(seed) != out.Len() {
			panic("ad: Backward seed length mismatch")
		}
		copy(out.Grad, seed)
	}
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i].back != nil {
			t.nodes[i].back()
		}
	}
}

func checkSameLen(op string, a, b *Node) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("ad: %s over nodes of lengths %d and %d", op, a.Len(), b.Len()))
	}
}

func sigmoid(x float64) float64 {
	// Numerically stable in both tails.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
