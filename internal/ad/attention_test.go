package ad

import (
	"math"
	"math/rand"
	"testing"
)

func TestDotForwardBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2, 3})
	b := tp.Input([]float64{4, 5, 6})
	d := tp.Dot(a, b)
	if d.Value[0] != 32 {
		t.Fatalf("Dot=%v", d.Value[0])
	}
	tp.Backward(d, []float64{2})
	if a.Grad[0] != 8 || b.Grad[2] != 6 {
		t.Fatalf("Dot grads a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestSliceForwardBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2, 3, 4})
	s := tp.Slice(a, 1, 3)
	if len(s.Value) != 2 || s.Value[0] != 2 || s.Value[1] != 3 {
		t.Fatalf("Slice=%v", s.Value)
	}
	tp.Backward(s, []float64{10, 20})
	want := []float64{0, 10, 20, 0}
	for i := range want {
		if a.Grad[i] != want[i] {
			t.Fatalf("Slice grad %v want %v", a.Grad, want)
		}
	}
}

func TestSlicePanicsOnBadRange(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp.Slice(a, 1, 1)
}

func TestScaleByScalar(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, -2})
	s := tp.Input([]float64{3})
	y := tp.ScaleByScalar(a, s)
	if y.Value[0] != 3 || y.Value[1] != -6 {
		t.Fatalf("ScaleByScalar=%v", y.Value)
	}
	tp.Backward(y, []float64{1, 1})
	if a.Grad[0] != 3 || a.Grad[1] != 3 {
		t.Fatalf("vector grad %v", a.Grad)
	}
	if s.Grad[0] != -1 { // 1*1 + 1*(-2)
		t.Fatalf("scalar grad %v", s.Grad)
	}
}

func TestSoftmaxForward(t *testing.T) {
	tp := NewTape()
	x := tp.Input([]float64{1, 1, 1})
	y := tp.Softmax(x)
	for _, v := range y.Value {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax got %v", y.Value)
		}
	}
	// Stability at extreme logits.
	tp2 := NewTape()
	y2 := tp2.Softmax(tp2.Input([]float64{1000, 0}))
	if math.IsNaN(y2.Value[0]) || y2.Value[0] < 0.999 {
		t.Fatalf("extreme softmax got %v", y2.Value)
	}
}

// Gradient check over a full single-head attention computation: softmax of
// scaled dots, weighted sum of values, scalar output.
func TestGradientCheckAttentionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const d = 3
	q := make([]float64, d)
	keys := make([][]float64, 4)
	vals := make([][]float64, 4)
	for i := range keys {
		keys[i] = make([]float64, d)
		vals[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			keys[i][j] = rng.NormFloat64()
			vals[i][j] = rng.NormFloat64()
		}
	}
	for j := range q {
		q[j] = rng.NormFloat64()
	}

	forward := func() (float64, *Tape, []*Node) {
		tp := NewTape()
		qn := tp.Input(q)
		var scores []*Node
		var vns []*Node
		var kns []*Node
		for i := range keys {
			kn := tp.Input(keys[i])
			kns = append(kns, kn)
			vns = append(vns, tp.Input(vals[i]))
			scores = append(scores, tp.AffineConst(tp.Dot(qn, kn), 1/math.Sqrt(d), 0))
		}
		w := tp.Softmax(tp.Concat(scores...))
		var weighted []*Node
		for i := range vns {
			weighted = append(weighted, tp.ScaleByScalar(vns[i], tp.Slice(w, i, i+1)))
		}
		out := tp.Dot(tp.SumPool(weighted), qn) // arbitrary scalar head
		return out.Value[0], tp, append([]*Node{qn}, kns...)
	}

	base, tp, nodes := forward()
	_ = base
	out := tp.nodes[len(tp.nodes)-1]
	tp.Backward(out, nil)

	const eps = 1e-6
	check := func(name string, param []float64, grad []float64) {
		for i := range param {
			old := param[i]
			param[i] = old + eps
			up, _, _ := forward()
			param[i] = old - eps
			dn, _, _ := forward()
			param[i] = old
			fd := (up - dn) / (2 * eps)
			if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: analytic %g vs fd %g", name, i, grad[i], fd)
			}
		}
	}
	check("q", q, nodes[0].Grad)
	for i := range keys {
		check("k", keys[i], nodes[1+i].Grad)
	}
}
