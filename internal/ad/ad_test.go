package ad

import (
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/mat"
)

func TestInputCopies(t *testing.T) {
	tp := NewTape()
	v := []float64{1, 2}
	n := tp.Input(v)
	v[0] = 99
	if n.Value[0] != 1 {
		t.Fatal("Input must copy its argument")
	}
}

func TestAddSubMulForward(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2})
	b := tp.Input([]float64{3, 5})
	add := tp.Add(a, b)
	sub := tp.Sub(a, b)
	mul := tp.Mul(a, b)
	if add.Value[0] != 4 || add.Value[1] != 7 {
		t.Fatalf("Add got %v", add.Value)
	}
	if sub.Value[0] != -2 || sub.Value[1] != -3 {
		t.Fatalf("Sub got %v", sub.Value)
	}
	if mul.Value[0] != 3 || mul.Value[1] != 10 {
		t.Fatalf("Mul got %v", mul.Value)
	}
}

func TestConcatForwardBackward(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1})
	b := tp.Input([]float64{2, 3})
	c := tp.Concat(a, b)
	if len(c.Value) != 3 || c.Value[2] != 3 {
		t.Fatalf("Concat got %v", c.Value)
	}
	tp.Backward(c, []float64{10, 20, 30})
	if a.Grad[0] != 10 || b.Grad[0] != 20 || b.Grad[1] != 30 {
		t.Fatalf("Concat grads a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestSumPoolPermutationInvariant(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2})
	b := tp.Input([]float64{3, 4})
	c := tp.Input([]float64{5, 6})
	s1 := tp.SumPool([]*Node{a, b, c})
	s2 := tp.SumPool([]*Node{c, a, b})
	for i := range s1.Value {
		if s1.Value[i] != s2.Value[i] {
			t.Fatal("SumPool must be order independent")
		}
	}
	if s1.Value[0] != 9 || s1.Value[1] != 12 {
		t.Fatalf("SumPool got %v", s1.Value)
	}
}

func TestMeanPool(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 2})
	b := tp.Input([]float64{3, 6})
	m := tp.MeanPool([]*Node{a, b})
	if m.Value[0] != 2 || m.Value[1] != 4 {
		t.Fatalf("MeanPool got %v", m.Value)
	}
}

func TestActivationsForward(t *testing.T) {
	tp := NewTape()
	x := tp.Input([]float64{0, -1, 2})
	s := tp.Sigmoid(x)
	if math.Abs(s.Value[0]-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0)=%v", s.Value[0])
	}
	th := tp.Tanh(x)
	if math.Abs(th.Value[2]-math.Tanh(2)) > 1e-12 {
		t.Fatal("Tanh wrong")
	}
	r := tp.ReLU(x)
	if r.Value[0] != 0 || r.Value[1] != 0 || r.Value[2] != 2 {
		t.Fatalf("ReLU got %v", r.Value)
	}
}

func TestSigmoidStableInTails(t *testing.T) {
	tp := NewTape()
	x := tp.Input([]float64{-1000, 1000})
	s := tp.Sigmoid(x)
	if s.Value[0] != 0 || s.Value[1] != 1 {
		t.Fatalf("extreme sigmoid got %v", s.Value)
	}
	if math.IsNaN(s.Value[0]) || math.IsNaN(s.Value[1]) {
		t.Fatal("sigmoid produced NaN")
	}
}

func TestLookupBackward(t *testing.T) {
	E := mat.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	gE := mat.New(3, 2)
	tp := NewTape()
	n := tp.Lookup(E, gE, 1)
	if n.Value[0] != 3 || n.Value[1] != 4 {
		t.Fatalf("Lookup got %v", n.Value)
	}
	tp.Backward(n, []float64{10, 20})
	if gE.At(1, 0) != 10 || gE.At(1, 1) != 20 || gE.At(0, 0) != 0 {
		t.Fatalf("Lookup grad %v", gE.Data)
	}
}

func TestTapeReset(t *testing.T) {
	tp := NewTape()
	tp.Input([]float64{1})
	if tp.NumNodes() != 1 {
		t.Fatal("node not recorded")
	}
	tp.Reset()
	if tp.NumNodes() != 0 {
		t.Fatal("Reset did not clear nodes")
	}
}

// Full end-to-end gradient check of a two-layer network with every op:
// y = sigmoid(W2 · tanh(W1·x + b1) + b2), scalar output.
func TestGradientCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in, hid := 4, 5
	W1 := mat.New(hid, in)
	b1 := make([]float64, hid)
	W2 := mat.New(1, hid)
	b2 := make([]float64, 1)
	x := make([]float64, in)
	for i := range W1.Data {
		W1.Data[i] = rng.NormFloat64()
	}
	for i := range W2.Data {
		W2.Data[i] = rng.NormFloat64()
	}
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	forward := func() float64 {
		tp := NewTape()
		xn := tp.Input(x)
		h := tp.Tanh(tp.Affine(W1, nil, b1, nil, xn))
		y := tp.Sigmoid(tp.Affine(W2, nil, b2, nil, h))
		return y.Value[0]
	}

	// Analytic gradients.
	gW1 := mat.New(hid, in)
	gb1 := make([]float64, hid)
	gW2 := mat.New(1, hid)
	gb2 := make([]float64, 1)
	tp := NewTape()
	xn := tp.Input(x)
	h := tp.Tanh(tp.Affine(W1, gW1, b1, gb1, xn))
	y := tp.Sigmoid(tp.Affine(W2, gW2, b2, gb2, h))
	tp.Backward(y, nil)

	const eps = 1e-6
	check := func(name string, param []float64, grad []float64) {
		for i := range param {
			old := param[i]
			param[i] = old + eps
			up := forward()
			param[i] = old - eps
			dn := forward()
			param[i] = old
			fd := (up - dn) / (2 * eps)
			if math.Abs(fd-grad[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: analytic %g vs finite-diff %g", name, i, grad[i], fd)
			}
		}
	}
	check("W1", W1.Data, gW1.Data)
	check("b1", b1, gb1)
	check("W2", W2.Data, gW2.Data)
	check("b2", b2, gb2)
	check("x", x, xn.Grad)
}

// Gradient check of a DeepSets-shaped computation with shared weights,
// embedding lookups, concat, mul, and sum pooling — the exact op mix used by
// the compressed model.
func TestGradientCheckDeepSetsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	embDim, hid := 3, 4
	Eq := mat.New(5, embDim)
	Er := mat.New(5, embDim)
	Wphi := mat.New(hid, 2*embDim)
	bphi := make([]float64, hid)
	Wrho := mat.New(1, hid)
	brho := make([]float64, 1)
	for _, d := range [][]float64{Eq.Data, Er.Data, Wphi.Data, Wrho.Data} {
		for i := range d {
			d[i] = rng.NormFloat64() * 0.5
		}
	}
	elems := [][2]int{{0, 3}, {2, 1}, {4, 4}}

	build := func(gEq, gEr, gWphi *mat.Matrix, gbphi []float64, gWrho *mat.Matrix, gbrho []float64) (*Tape, *Node) {
		tp := NewTape()
		parts := make([]*Node, len(elems))
		for i, e := range elems {
			q := tp.Lookup(Eq, gEq, e[0])
			r := tp.Lookup(Er, gEr, e[1])
			cat := tp.Concat(q, r)
			parts[i] = tp.ReLU(tp.Affine(Wphi, gWphi, bphi, gbphi, cat))
		}
		pooled := tp.SumPool(parts)
		y := tp.Sigmoid(tp.Affine(Wrho, gWrho, brho, gbrho, pooled))
		return tp, y
	}

	forward := func() float64 {
		_, y := build(nil, nil, nil, nil, nil, nil)
		return y.Value[0]
	}

	gEq, gEr := mat.New(5, embDim), mat.New(5, embDim)
	gWphi := mat.New(hid, 2*embDim)
	gbphi := make([]float64, hid)
	gWrho := mat.New(1, hid)
	gbrho := make([]float64, 1)
	tp, y := build(gEq, gEr, gWphi, gbphi, gWrho, gbrho)
	tp.Backward(y, nil)

	const eps = 1e-6
	check := func(name string, param, grad []float64) {
		for i := range param {
			old := param[i]
			param[i] = old + eps
			up := forward()
			param[i] = old - eps
			dn := forward()
			param[i] = old
			fd := (up - dn) / (2 * eps)
			// ReLU kinks can perturb finite differences; tolerate small slack.
			if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: analytic %g vs finite-diff %g", name, i, grad[i], fd)
			}
		}
	}
	check("Eq", Eq.Data, gEq.Data)
	check("Er", Er.Data, gEr.Data)
	check("Wphi", Wphi.Data, gWphi.Data)
	check("bphi", bphi, gbphi)
	check("Wrho", Wrho.Data, gWrho.Data)
	check("brho", brho, gbrho)
}

func TestAffineConstGradient(t *testing.T) {
	tp := NewTape()
	x := tp.Input([]float64{2, -3})
	y := tp.AffineConst(x, 0.5, 1)
	if y.Value[0] != 2 || y.Value[1] != -0.5 {
		t.Fatalf("AffineConst got %v", y.Value)
	}
	tp.Backward(y, []float64{1, 1})
	if x.Grad[0] != 0.5 || x.Grad[1] != 0.5 {
		t.Fatalf("AffineConst grad %v", x.Grad)
	}
}

func TestWeightSharingAccumulates(t *testing.T) {
	// Applying the same Affine twice must add both contributions into gW.
	W := mat.FromSlice(1, 1, []float64{2})
	gW := mat.New(1, 1)
	b := []float64{0}
	tp := NewTape()
	x1 := tp.Input([]float64{3})
	x2 := tp.Input([]float64{5})
	y := tp.Add(tp.Affine(W, gW, b, nil, x1), tp.Affine(W, gW, b, nil, x2))
	tp.Backward(y, []float64{1})
	if gW.At(0, 0) != 8 { // dy/dW = x1 + x2
		t.Fatalf("shared weight grad %v want 8", gW.At(0, 0))
	}
}

func TestBackwardNilSeedIsOnes(t *testing.T) {
	tp := NewTape()
	x := tp.Input([]float64{1, 2})
	y := tp.AffineConst(x, 3, 0)
	tp.Backward(y, nil)
	if x.Grad[0] != 3 || x.Grad[1] != 3 {
		t.Fatalf("nil seed grads %v", x.Grad)
	}
}

func TestMaxPool(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 5})
	b := tp.Input([]float64{3, 2})
	m := tp.MaxPool([]*Node{a, b})
	if m.Value[0] != 3 || m.Value[1] != 5 {
		t.Fatalf("MaxPool got %v", m.Value)
	}
	tp.Backward(m, []float64{1, 1})
	if b.Grad[0] != 1 || a.Grad[1] != 1 || a.Grad[0] != 0 || b.Grad[1] != 0 {
		t.Fatalf("MaxPool grads a=%v b=%v", a.Grad, b.Grad)
	}
}

func TestMaxPoolPermutationInvariant(t *testing.T) {
	tp := NewTape()
	a := tp.Input([]float64{1, 9})
	b := tp.Input([]float64{7, 2})
	c := tp.Input([]float64{4, 4})
	m1 := tp.MaxPool([]*Node{a, b, c})
	m2 := tp.MaxPool([]*Node{c, b, a})
	for i := range m1.Value {
		if m1.Value[i] != m2.Value[i] {
			t.Fatal("MaxPool must be order independent")
		}
	}
}
