package ad

import (
	"fmt"
	"math"
)

// Ops used by attention-based set models (the Set Transformer competitor):
// dot products between nodes, slicing, scalar broadcast, and softmax.

// Dot records y = <a, b> as a length-1 node.
func (t *Tape) Dot(a, b *Node) *Node {
	checkSameLen("Dot", a, b)
	out := t.newNode(1)
	var s float64
	for i, av := range a.Value {
		s += av * b.Value[i]
	}
	out.Value[0] = s
	out.back = func() {
		g := out.Grad[0]
		if g == 0 {
			return
		}
		for i := range a.Value {
			a.Grad[i] += g * b.Value[i]
			b.Grad[i] += g * a.Value[i]
		}
	}
	return out
}

// Slice records y = a[lo:hi] as a view-copy with gradient routed back to
// the sliced range.
func (t *Tape) Slice(a *Node, lo, hi int) *Node {
	if lo < 0 || hi > a.Len() || lo >= hi {
		panic(fmt.Sprintf("ad: Slice[%d:%d] of node with length %d", lo, hi, a.Len()))
	}
	out := t.newNode(hi - lo)
	copy(out.Value, a.Value[lo:hi])
	out.back = func() {
		for i, g := range out.Grad {
			a.Grad[lo+i] += g
		}
	}
	return out
}

// ScaleByScalar records y = s·a where s is a length-1 node.
func (t *Tape) ScaleByScalar(a, s *Node) *Node {
	if s.Len() != 1 {
		panic("ad: ScaleByScalar requires a scalar node")
	}
	out := t.newNode(a.Len())
	sv := s.Value[0]
	for i, av := range a.Value {
		out.Value[i] = sv * av
	}
	out.back = func() {
		var sg float64
		for i, g := range out.Grad {
			a.Grad[i] += g * sv
			sg += g * a.Value[i]
		}
		s.Grad[0] += sg
	}
	return out
}

// Softmax records y = softmax(a) with the max-subtraction trick for
// numerical stability.
func (t *Tape) Softmax(a *Node) *Node {
	out := t.newNode(a.Len())
	maxV := math.Inf(-1)
	for _, v := range a.Value {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range a.Value {
		e := math.Exp(v - maxV)
		out.Value[i] = e
		sum += e
	}
	for i := range out.Value {
		out.Value[i] /= sum
	}
	out.back = func() {
		// dL/da_i = y_i (g_i − Σ_j g_j y_j)
		var dot float64
		for j, g := range out.Grad {
			dot += g * out.Value[j]
		}
		for i := range a.Grad {
			a.Grad[i] += out.Value[i] * (out.Grad[i] - dot)
		}
	}
	return out
}
