// Package binioerr requires every binary.Read, binary.Write, io.ReadFull,
// and io.ReadAtLeast call to have its error consumed. The save/load paths
// serialise models as length-prefixed binary sections behind validated
// headers; a dropped error there turns a truncated or corrupt file into a
// silently half-initialised structure instead of a load failure — the
// exact failure mode the header-validation work hardened against. A call
// whose only result sink is the blank identifier counts as unchecked.
package binioerr

import (
	"go/ast"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
)

// checked maps package path to the function names whose errors must be
// consumed.
var checked = map[string]map[string]bool{
	"encoding/binary": {"Read": true, "Write": true},
	"io":              {"ReadFull": true, "ReadAtLeast": true},
}

var Analyzer = &analysis.Analyzer{
	Name: "binioerr",
	Doc: "errors from binary.Read/binary.Write/io.ReadFull/io.ReadAtLeast must be " +
		"checked — unchecked serialisation errors corrupt save/load silently",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		astq.Inspect(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !checked[fn.Pkg().Path()][fn.Name()] {
				return true
			}
			if reason := unchecked(call, stack); reason != "" {
				pass.Reportf(call.Pos(), "%s error %s; a dropped serialisation error silently corrupts save/load state",
					types.ExprString(call.Fun), reason)
			}
			return true
		})
	}
	return nil
}

// unchecked classifies how the call's error escapes checking, or returns
// "" when the error is consumed.
func unchecked(call *ast.CallExpr, stack []ast.Node) string {
	if len(stack) == 0 {
		return ""
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		return "is discarded"
	case *ast.GoStmt, *ast.DeferStmt:
		return "is discarded (go/defer drops results)"
	case *ast.AssignStmt:
		// Find which LHS position the error lands in. For a single-call
		// RHS with multiple results, the error is the last result; for a
		// 1:1 assignment it is the matching position.
		idx := errLHSIndex(parent, call)
		if idx >= 0 && idx < len(parent.Lhs) {
			if id, ok := parent.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
				return "is assigned to the blank identifier"
			}
		}
	}
	return ""
}

// errLHSIndex locates the LHS slot holding the call's error result.
func errLHSIndex(assign *ast.AssignStmt, call *ast.CallExpr) int {
	if len(assign.Rhs) == 1 && assign.Rhs[0] == call {
		// n, err := io.ReadFull(...) — error is the final result.
		return len(assign.Lhs) - 1
	}
	for i, rhs := range assign.Rhs {
		if rhs == call {
			return i
		}
	}
	return -1
}
