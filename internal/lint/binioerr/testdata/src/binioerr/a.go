package binioerr

import (
	"encoding/binary"
	"io"
)

func bad(r io.Reader, w io.Writer, buf []byte, v *uint32) {
	binary.Read(r, binary.LittleEndian, v)     // want `binary.Read error is discarded`
	binary.Write(w, binary.LittleEndian, *v)   // want `binary.Write error is discarded`
	io.ReadFull(r, buf)                        // want `io.ReadFull error is discarded`
	_ = binary.Read(r, binary.LittleEndian, v) // want `binary.Read error is assigned to the blank identifier`
	_, _ = io.ReadFull(r, buf)                 // want `io.ReadFull error is assigned to the blank identifier`
	n, _ := io.ReadAtLeast(r, buf, 4)          // want `io.ReadAtLeast error is assigned to the blank identifier`
	_ = n
	go binary.Write(w, binary.LittleEndian, *v) // want `binary.Write error is discarded \(go/defer drops results\)`
}

func good(r io.Reader, w io.Writer, buf []byte, v *uint32) error {
	if err := binary.Read(r, binary.LittleEndian, v); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, *v); err != nil {
		return err
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	n, err := io.ReadAtLeast(r, buf, 4)
	_ = n
	if err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, *v) // propagated to the caller
}

func suppressed(w io.Writer, v uint32) {
	binary.Write(w, binary.LittleEndian, v) //lint:allow binioerr -- best-effort debug dump, target is io.Discard
}
