package binioerr_test

import (
	"testing"

	"setlearn/internal/lint/binioerr"
	"setlearn/internal/lint/linttest"
)

func TestBinioerr(t *testing.T) {
	linttest.Run(t, binioerr.Analyzer, "binioerr")
}
