package goroleak_test

import (
	"testing"

	"setlearn/internal/lint/goroleak"
	"setlearn/internal/lint/linttest"
)

func TestGoroleak(t *testing.T) {
	linttest.Run(t, goroleak.Analyzer, "goroleak")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{"setlearn/internal/shard", "setlearn/internal/server"} {
		if !goroleak.Analyzer.InScope(pkg) {
			t.Errorf("goroleak should cover %s", pkg)
		}
	}
	if goroleak.Analyzer.InScope("setlearn/internal/mat") {
		t.Error("goroleak should not cover goroutine-free numeric kernels")
	}
}
