package goroleak

import "errors"

type srv struct {
	addr chan string
	done chan struct{}
}

func listen(a string) (string, error) {
	if a == "" {
		return "", errors.New("empty addr")
	}
	return a, nil
}

// fanInCollected is the canonical correct shape: every worker send has a
// matching receive in the spawner.
func fanInCollected(work []func() error) error {
	errc := make(chan error, len(work))
	for _, w := range work {
		w := w
		go func() {
			errc <- w()
		}()
	}
	for range work {
		if err := <-errc; err != nil {
			return err
		}
	}
	return nil
}

// abandonedSend: nothing ever receives from out.
func abandonedSend(w func() error) {
	out := make(chan error)
	go func() {
		out <- w() // want `goroutine sends to out but the enclosing function never receives from or hands off out`
	}()
}

// handedOff passes the channel to a consumer; not a leak this analysis
// can judge.
func handedOff(w func() error, consume func(<-chan error)) {
	out := make(chan error, 1)
	go func() {
		out <- w()
	}()
	consume(out)
}

// conditionalWorkerSend can return without signaling the collector.
func conditionalWorkerSend(w func() error) error {
	res := make(chan error, 1)
	go func() { // want `goroutine sends to res on some paths but can return without sending or closing it`
		err := w()
		if err != nil {
			res <- err
			return
		}
		// forgot: res <- nil
	}()
	return <-res
}

// allPathsSend covers both branches; the collector always hears back.
func allPathsSend(w func() error) error {
	res := make(chan error, 1)
	go func() {
		if err := w(); err != nil {
			res <- err
			return
		}
		res <- nil
	}()
	return <-res
}

// panicExempt: the panicking path is not a silent miss.
func panicExempt(w func() error) error {
	res := make(chan error, 1)
	go func() {
		err := w()
		if err != nil {
			panic(err)
		}
		res <- nil
	}()
	return <-res
}

// recoverSwallowsSignal contains the panic but never tells the collector.
func recoverSwallowsSignal(w func() error) error {
	res := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil { // want `recover here contains a worker panic without re-signaling res`
				_ = r
			}
		}()
		res <- w()
	}()
	return <-res
}

// recoverResignals keeps the fan-in alive on contained panics.
func recoverResignals(w func() error) error {
	res := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				res <- errors.New("worker panicked")
			}
		}()
		res <- w()
	}()
	return <-res
}

// Run abandons s.addr when listen fails: Addr()'s receive blocks forever.
func (s *srv) Run(a string) error {
	ln, err := listen(a)
	if err != nil {
		return err // nothing ever signals s.addr
	}
	s.addr <- ln // want `s\.addr is not sent to or closed on every return path`
	return nil
}

// RunFixed closes the channel on the failure path so receivers unblock.
func (s *srv) RunFixed(a string) error {
	ln, err := listen(a)
	if err != nil {
		close(s.addr)
		return err
	}
	s.addr <- ln
	return nil
}

// Addr both receives and re-sends; the receive makes this function the
// channel's consumer, not a conditional producer.
func (s *srv) Addr() string {
	a, ok := <-s.addr
	if !ok {
		return ""
	}
	s.addr <- a
	return a
}

// notify sends under select with a default; opting out of the send is the
// point of the select, not a leak.
func (s *srv) notify() {
	select {
	case s.done <- struct{}{}:
	default:
	}
}

// detachedHeartbeat is a deliberate fire-and-forget channel.
func detachedHeartbeat(beat func() error) {
	drop := make(chan error)
	go func() {
		//lint:allow goroleak -- sink channel read by an external debugger session only
		drop <- beat()
	}()
}
