// Package goroleak checks the goroutine/channel protocols of the sharded
// fan-out and serving paths for leaks that only bite under load:
//
//  1. A goroutine sends on a channel local to the spawning function, but
//     the function never receives from (or hands off) that channel — the
//     goroutine blocks forever, or its result is silently dropped.
//  2. A goroutine that signals a collector must send (or close) on every
//     non-panicking path; one silent return and the collector hangs.
//  3. A recover-containment block inside a sending goroutine must
//     re-signal the collector: swallowing the panic without sending
//     leaves the fan-in waiting for a message that never comes.
//  4. A function that sends on a channel field must send or close on
//     every return path (or also be the channel's receiver); an early
//     error return otherwise strands the concurrent receiver.
//
// The analysis is intraprocedural and syntactic about channel identity
// (local channels by object, fields by receiver expression text); sends
// inside loops or select statements are out of scope for the
// every-path rules — a select already expresses "maybe don't send".
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "channel sends in spawned goroutines must be received by the " +
		"spawner and must happen on every non-panic path (recover blocks " +
		"included); conditional sends on channel fields must cover every " +
		"return path",
	Scope: []string{
		"setlearn/internal/shard",
		"setlearn/internal/server",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkUnit(pass, n, n.Body)
				}
			case *ast.FuncLit:
				checkUnit(pass, n, n.Body)
			}
			return true
		})
	}
	return nil
}

// chanRef identifies a channel: by object for plain identifiers, by
// receiver-expression text for fields (x.ch).
type chanRef struct {
	obj types.Object
	key string
}

func (r chanRef) String() string { return r.key }

func refOf(info *types.Info, e ast.Expr) (chanRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return chanRef{}, false
		}
		return chanRef{obj: obj, key: e.Name}, true
	case *ast.SelectorExpr:
		return chanRef{key: types.ExprString(e)}, true
	}
	return chanRef{}, false
}

func sameRef(a, b chanRef) bool {
	if a.obj != nil || b.obj != nil {
		return a.obj == b.obj
	}
	return a.key == b.key
}

func checkUnit(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	var spawned []*ast.GoStmt
	astq.Inspect(body, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested closures are their own units
		case *ast.GoStmt:
			if _, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
				spawned = append(spawned, n)
				return false
			}
		}
		return true
	})

	for _, g := range spawned {
		lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		checkGoroutine(pass, body, g, lit)
	}
	checkFieldSends(pass, fn, body)
}

// send describes one channel send found in a goroutine body.
type send struct {
	stmt   *ast.SendStmt
	ref    chanRef
	inLoop bool
	inSel  bool // the send is a select comm clause
}

// checkGoroutine applies rules 1–3 to one spawned closure.
func checkGoroutine(pass *analysis.Pass, enclosing *ast.BlockStmt, g *ast.GoStmt, lit *ast.FuncLit) {
	info := pass.TypesInfo
	var sends []send
	astq.Inspect(lit.Body, func(n ast.Node, stack []ast.Node) bool {
		if inner, isLit := n.(*ast.FuncLit); isLit && n != ast.Node(lit) {
			// Deferred closures still belong to this goroutine's exits.
			return astq.DeferredLit(inner, stack)
		}
		if ss, isSend := n.(*ast.SendStmt); isSend {
			ref, ok := refOf(info, ss.Chan)
			if !ok {
				return true
			}
			sends = append(sends, send{
				stmt:   ss,
				ref:    ref,
				inLoop: underLoop(stack, lit),
				inSel:  isSelectComm(ss, stack),
			})
		}
		return true
	})
	if len(sends) == 0 {
		return
	}

	// Rule 1: the spawner must consume every local channel this goroutine
	// sends on.
	reported := map[string]bool{}
	for _, s := range sends {
		if s.ref.obj == nil || reported[s.ref.key] {
			continue
		}
		if !declaredIn(s.ref.obj, enclosing) || declaredIn2(s.ref.obj, lit) {
			continue
		}
		if !consumedOutside(info, enclosing, lit, s.ref.obj) {
			reported[s.ref.key] = true
			pass.Reportf(s.stmt.Pos(), "goroutine sends to %s but the enclosing function never receives from or hands off %s; the send blocks (or the result is dropped) forever",
				s.ref, s.ref)
		}
	}

	// Rules 2–3 consider unconditional-protocol sends only: a send inside
	// a loop or a select clause already has data-dependent multiplicity.
	cg := pass.CFG(lit)
	if cg == nil {
		return
	}
	seen := map[string]bool{}
	for _, s := range sends {
		if s.inLoop || s.inSel || seen[s.ref.key] || reported[s.ref.key] {
			continue
		}
		seen[s.ref.key] = true
		ref := s.ref
		ok := dataflow.MustReach(cg, func(n ast.Node) bool {
			return signals(info, n, ref)
		})
		if !ok {
			pass.Reportf(g.Pos(), "goroutine sends to %s on some paths but can return without sending or closing it; the collecting receive blocks forever",
				ref)
		}

		// Rule 3: a recover block that contains a panic must re-signal.
		for _, rec := range recoverBlocks(lit.Body) {
			if !signalsAnywhere(info, rec.body, ref) {
				pass.Reportf(rec.pos, "recover here contains a worker panic without re-signaling %s; send or close %s in the recovery block so the collector is not left waiting",
					ref, ref)
			}
		}
	}
}

// checkFieldSends applies rule 4 to the unit's own statements: a send on
// a channel field outside loops and selects must be matched on every
// return path, unless this function is also the channel's consumer.
func checkFieldSends(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	info := pass.TypesInfo
	type fieldSend struct {
		stmt *ast.SendStmt
		ref  chanRef
	}
	var sends []fieldSend
	receives := map[string]bool{}
	astq.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if sel, isSel := ast.Unparen(n.Chan).(*ast.SelectorExpr); isSel {
				if underLoop(stack, nil) || isSelectComm(n, stack) {
					return true
				}
				sends = append(sends, fieldSend{stmt: n, ref: chanRef{key: types.ExprString(sel)}})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if sel, isSel := ast.Unparen(n.X).(*ast.SelectorExpr); isSel {
					receives[types.ExprString(sel)] = true
				}
			}
		case *ast.RangeStmt:
			if sel, isSel := ast.Unparen(n.X).(*ast.SelectorExpr); isSel {
				receives[types.ExprString(sel)] = true
			}
		}
		return true
	})
	if len(sends) == 0 {
		return
	}
	g := pass.CFG(fn)
	if g == nil {
		return
	}
	seen := map[string]bool{}
	for _, s := range sends {
		if receives[s.ref.key] || seen[s.ref.key] {
			continue
		}
		seen[s.ref.key] = true
		ref := s.ref
		ok := dataflow.MustReach(g, func(n ast.Node) bool {
			return signals(info, n, ref)
		})
		if !ok {
			pass.Reportf(s.stmt.Pos(), "%s is not sent to or closed on every return path of this function; a concurrent receiver blocks forever when it returns early",
				ref)
		}
	}
}

// signals reports whether CFG node n sends on or closes ref (deferred
// closures included; nested literals otherwise opaque).
func signals(info *types.Info, n ast.Node, ref chanRef) bool {
	found := false
	astq.Inspect(n, func(m ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		if lit, isLit := m.(*ast.FuncLit); isLit {
			return astq.DeferredLit(lit, stack)
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			if r, ok := refOf(info, m.Chan); ok && sameRef(r, ref) {
				found = true
			}
		case *ast.CallExpr:
			if id, isID := ast.Unparen(m.Fun).(*ast.Ident); isID && id.Name == "close" && len(m.Args) == 1 {
				if r, ok := refOf(info, m.Args[0]); ok && sameRef(r, ref) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func signalsAnywhere(info *types.Info, body *ast.BlockStmt, ref chanRef) bool {
	for _, s := range body.List {
		if signals(info, s, ref) {
			return true
		}
	}
	return false
}

// recoverBlock is a deferred closure that calls recover().
type recoverBlock struct {
	pos  token.Pos
	body *ast.BlockStmt
}

// recoverBlocks finds deferred closures calling recover() in body
// (nested literals opaque).
func recoverBlocks(body *ast.BlockStmt) []recoverBlock {
	var out []recoverBlock
	astq.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		d, isDefer := n.(*ast.DeferStmt)
		if !isDefer {
			if _, isLit := n.(*ast.FuncLit); isLit && !inDeferStack(stack) {
				return false
			}
			return true
		}
		lit, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
		if !isLit {
			return true
		}
		if pos, ok := callsRecover(lit.Body); ok {
			out = append(out, recoverBlock{pos: pos, body: lit.Body})
		}
		return true
	})
	return out
}

func inDeferStack(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func callsRecover(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	astq.Inspect(body, func(n ast.Node, _ []ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "recover" && len(call.Args) == 0 {
				pos, found = call.Pos(), true
			}
		}
		return true
	})
	return pos, found
}

// underLoop reports whether the stack crosses a for/range inside the
// current function (lit bounds the search when non-nil; any FuncLit cuts
// it otherwise).
func underLoop(stack []ast.Node, lit *ast.FuncLit) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			if lit == nil || n == lit {
				return false
			}
		}
	}
	return false
}

// isSelectComm reports whether stmt is the comm statement of a select
// case (its parent clause lists it as Comm).
func isSelectComm(stmt ast.Stmt, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	cc, isComm := stack[len(stack)-1].(*ast.CommClause)
	return isComm && cc.Comm == ast.Stmt(stmt)
}

// declaredIn reports whether obj's declaration lies inside body.
func declaredIn(obj types.Object, body *ast.BlockStmt) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

func declaredIn2(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
}

// consumedOutside reports whether obj is mentioned anywhere in enclosing
// outside the goroutine literal, other than its declaring identifier —
// a receive, a close, a hand-off as an argument, anything. Sends alone
// with no other mention are what rule 1 flags.
func consumedOutside(info *types.Info, enclosing *ast.BlockStmt, lit *ast.FuncLit, obj types.Object) bool {
	consumed := false
	astq.Inspect(enclosing, func(n ast.Node, _ []ast.Node) bool {
		if consumed {
			return false
		}
		if n == ast.Node(lit) {
			return false
		}
		id, isID := n.(*ast.Ident)
		if !isID {
			return true
		}
		if info.Defs[id] == obj {
			return true // the declaration itself
		}
		if info.Uses[id] == obj {
			consumed = true
		}
		return true
	})
	return consumed
}
