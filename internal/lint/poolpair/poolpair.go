// Package poolpair enforces the pool discipline the φ fast path depends
// on: in any function that takes an object out of a pool (sync.Pool or a
// named *Pool type such as deepsets.PredictorPool), the matching Put must
// run under defer. A plain Put on the straight-line path leaks the pooled
// object when a query panics between Get and Put — the exact bug the
// panic-safe PredictorPool fix addressed — and the leak is invisible until
// a production predictor pool degrades to allocate-per-call.
//
// Functions that only Put (hand-off release helpers) are not flagged; the
// rule binds Get and Put appearing in the same function body.
package poolpair

import (
	"go/ast"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc: "a function that calls Get on a pool (sync.Pool or *Pool-named type) must " +
		"return the object with a deferred Put so panicking paths cannot leak it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	hasGet := false
	type putSite struct {
		call     *ast.CallExpr
		deferred bool
	}
	var puts []putSite
	astq.Inspect(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astq.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !astq.PoolMethod(fn) {
			return true
		}
		switch fn.Name() {
		case "Get":
			hasGet = true
		case "Put":
			puts = append(puts, putSite{call: call, deferred: astq.InsideDefer(stack)})
		}
		return true
	})
	if !hasGet {
		return
	}
	for _, p := range puts {
		if p.deferred {
			continue
		}
		pass.Reportf(p.call.Pos(), "pool Put after Get must be deferred (defer %s) so a panic between Get and Put cannot leak the pooled object",
			types.ExprString(p.call.Fun))
	}
}
