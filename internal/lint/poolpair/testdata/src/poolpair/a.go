package poolpair

import "sync"

type item struct{ buf []byte }

// PredictorPool mirrors the shape of deepsets.PredictorPool: a named
// *Pool type wrapping sync.Pool.
type PredictorPool struct{ pool sync.Pool }

func (p *PredictorPool) Get() *item  { return p.pool.Get().(*item) }
func (p *PredictorPool) Put(x *item) { p.pool.Put(x) }

func use(*item) {}

func goodDefer(p *PredictorPool) {
	x := p.Get()
	defer p.Put(x)
	use(x)
}

func goodDeferClosure(p *PredictorPool) {
	x := p.Get()
	defer func() {
		use(x)
		p.Put(x)
	}()
	use(x)
}

func goodSyncPool(sp *sync.Pool) {
	v := sp.Get().(*item)
	defer sp.Put(v)
	use(v)
}

func badStraightLine(p *PredictorPool) {
	x := p.Get()
	use(x)
	p.Put(x) // want `pool Put after Get must be deferred`
}

func badSyncPool(sp *sync.Pool) {
	v := sp.Get().(*item)
	use(v)
	sp.Put(v) // want `pool Put after Get must be deferred`
}

func badBranchPut(p *PredictorPool, cond bool) {
	x := p.Get()
	if cond {
		p.Put(x) // want `pool Put after Get must be deferred`
		return
	}
	defer p.Put(x)
	use(x)
}

// releaseOnly hands a pooled object back on behalf of a caller: no Get in
// scope, so no pairing to enforce.
func releaseOnly(p *PredictorPool, x *item) {
	p.Put(x)
}

// Cache has Get/Put methods but is not a pool: the analyzer keys on
// sync.Pool and the *Pool naming convention.
type Cache struct{ m map[int]*item }

func (c *Cache) Get() *item  { return c.m[0] }
func (c *Cache) Put(x *item) { c.m[0] = x }

func notAPool(c *Cache) {
	x := c.Get()
	use(x)
	c.Put(x)
}

func suppressed(p *PredictorPool) {
	x := p.Get()
	use(x)
	p.Put(x) //lint:allow poolpair -- object ownership transfers before any panic can occur
}
