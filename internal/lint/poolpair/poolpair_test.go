package poolpair_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/poolpair"
)

func TestPoolpair(t *testing.T) {
	linttest.Run(t, poolpair.Analyzer, "poolpair")
}
