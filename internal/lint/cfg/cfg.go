// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies for the path-sensitive setlearnlint analyzers. The
// graph is a set of basic blocks connected by edges for every construct
// that moves control: if/else, for/range loops (with break, continue, and
// labeled variants), switch and type switch (including fallthrough),
// select, goto, explicit panic calls, and returns.
//
// Only "simple" statements land in Block.Nodes — assignments, calls,
// sends, defers, go statements, and the control expressions of the
// enclosing compound statements (an if condition, a range operand, a
// select comm clause). Compound statement bodies are flattened into
// successor blocks, so walking a block's nodes never double-visits a
// nested body. Function literals are NOT flattened: a FuncLit inside a
// node is a separate function with its own CFG, and analyzers must skip
// its body when scanning nodes.
//
// Two synthetic exit blocks terminate every graph: Exit collects normal
// returns (and falling off the end of the body), Panic collects explicit
// panic(...) statements. Analyzers that exempt panicking paths seed the
// Panic block differently from Exit.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry *Block
	Exit  *Block // normal returns and fall-off-the-end
	Panic *Block // explicit panic(...) exits

	// Blocks lists every reachable block: Entry first, body blocks in
	// construction order, then Exit and Panic.
	Blocks []*Block

	// Defers collects every defer statement in the body, in source order.
	// Defer bodies run on all exits downstream of the statement.
	Defers []*ast.DeferStmt

	fset *token.FileSet
}

// Block is one basic block.
type Block struct {
	Index int
	Desc  string // "entry", "if.then", "for.loop", "select.case", ...

	// Nodes holds the block's simple statements and control expressions
	// in source order.
	Nodes []ast.Node

	// Cond, when non-nil, is the two-way branch condition terminating the
	// block; Succs[0] is the true edge and Succs[1] the false edge.
	Cond ast.Expr

	// Comm, when non-nil, is the select comm statement guarding this
	// block (the block is a select case); the comm is also Nodes[0].
	Comm ast.Stmt

	Succs []*Block
	Preds []*Block
}

type labelInfo struct {
	gotoTarget *Block // block starting the labeled statement
	brk, cont  *Block // break/continue targets when the label names a loop/switch/select
}

type builder struct {
	g       *Graph
	current *Block
	blocks  []*Block // body blocks in construction order

	breaks    []target
	continues []target
	fall      *Block // fallthrough target inside a switch case

	labels       map[string]*labelInfo
	gotos        []pendingGoto
	pendingLabel string
}

type target struct {
	label string
	block *Block
}

type pendingGoto struct {
	name string
	from *Block
}

// Build constructs the CFG of body. fset is retained for Dump.
func Build(fset *token.FileSet, body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{fset: fset},
		labels: map[string]*labelInfo{},
	}
	b.g.Entry = &Block{Desc: "entry"}
	b.g.Exit = &Block{Desc: "exit"}
	b.g.Panic = &Block{Desc: "panic"}
	b.current = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.current, b.g.Exit) // falling off the end returns
	for _, pg := range b.gotos {
		if li := b.labels[pg.name]; li != nil && li.gotoTarget != nil {
			b.edge(pg.from, li.gotoTarget)
		}
	}
	b.finish()
	return b.g
}

// finish prunes blocks unreachable from Entry, fills Preds, and indexes.
func (b *builder) finish() {
	reach := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, s := range blk.Succs {
			dfs(s)
		}
	}
	dfs(b.g.Entry)

	blocks := []*Block{b.g.Entry}
	for _, blk := range b.blocks {
		if reach[blk] {
			blocks = append(blocks, blk)
		}
	}
	blocks = append(blocks, b.g.Exit, b.g.Panic)
	for i, blk := range blocks {
		blk.Index = i
	}
	for _, blk := range blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	b.g.Blocks = blocks
}

func (b *builder) newBlock(desc string) *Block {
	blk := &Block{Desc: desc}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// takeLabel consumes the label attached to the statement being built, so
// labeled loops/switches register their break and continue targets.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labelFor(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

func (b *builder) findTarget(stack []target, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel() // labels on if only matter for goto, already handled
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.current
		b.add(s.Cond)
		cond.Cond = s.Cond
		then := b.newBlock("if.then")
		b.edge(cond, then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			done := b.newBlock("if.done")
			b.current = then
			b.stmt(s.Body)
			b.edge(b.current, done)
			b.current = els
			b.stmt(s.Else)
			b.edge(b.current, done)
			b.current = done
		} else {
			done := b.newBlock("if.done")
			b.edge(cond, done)
			b.current = then
			b.stmt(s.Body)
			b.edge(b.current, done)
			b.current = done
		}

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		loop := b.newBlock("for.loop")
		b.edge(b.current, loop)
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		post := loop
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		if s.Cond != nil {
			b.current = loop
			b.add(s.Cond)
			loop.Cond = s.Cond
			b.edge(loop, body)
			b.edge(loop, done)
		} else {
			b.edge(loop, body) // for{}: done only via break
		}
		if label != "" {
			li := b.labelFor(label)
			li.brk, li.cont = done, post
		}
		b.breaks = append(b.breaks, target{label, done})
		b.continues = append(b.continues, target{label, post})
		b.current = body
		b.stmt(s.Body)
		b.edge(b.current, post)
		if s.Post != nil {
			b.current = post
			b.stmt(s.Post)
			b.edge(b.current, loop)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.current = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X) // the ranged operand is evaluated once, entering the loop
		loop := b.newBlock("range.loop")
		b.edge(b.current, loop)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(loop, body)
		b.edge(loop, done)
		if label != "" {
			li := b.labelFor(label)
			li.brk, li.cont = done, loop
		}
		b.breaks = append(b.breaks, target{label, done})
		b.continues = append(b.continues, target{label, loop})
		b.current = body
		b.stmt(s.Body)
		b.edge(b.current, loop)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.current = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.current
		done := b.newBlock("select.done")
		if label != "" {
			b.labelFor(label).brk = done
		}
		b.breaks = append(b.breaks, target{label, done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			desc := "select.case"
			if cc.Comm == nil {
				desc = "select.default"
			}
			blk := b.newBlock(desc)
			b.edge(head, blk)
			b.current = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
				blk.Comm = cc.Comm
			}
			b.stmtList(cc.Body)
			b.edge(b.current, done)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.current = done

	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.edge(b.current, lb)
		b.current = lb
		b.labelFor(s.Label.Name).gotoTarget = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			var to *Block
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil {
					to = li.brk
				}
			} else {
				to = b.findTarget(b.breaks, "")
			}
			b.jump(to)
		case token.CONTINUE:
			var to *Block
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil {
					to = li.cont
				}
			} else {
				to = b.findTarget(b.continues, "")
			}
			b.jump(to)
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{s.Label.Name, b.current})
			}
			b.current = b.newBlock("unreachable")
		case token.FALLTHROUGH:
			b.jump(b.fall)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.add(s)
			b.jump(b.g.Panic)
			return
		}
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt, ...
		b.add(s)
	}
}

// jump ends the current block with an edge to, then continues building
// into an unreachable stub (pruned unless a label lands on it).
func (b *builder) jump(to *Block) {
	if to != nil {
		b.edge(b.current, to)
	}
	b.current = b.newBlock("unreachable")
}

// switchBody builds the shared case structure of switch and type switch;
// the head block (holding tag/assign) is b.current on entry.
func (b *builder) switchBody(label string, body *ast.BlockStmt, allowFall bool) {
	head := b.current
	done := b.newBlock("switch.done")
	if label != "" {
		b.labelFor(label).brk = done
	}
	b.breaks = append(b.breaks, target{label, done})

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		desc := "switch.case"
		if cc.List == nil {
			desc = "switch.default"
			hasDefault = true
		}
		caseBlocks[i] = b.newBlock(desc)
		b.edge(head, caseBlocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	savedFall := b.fall
	for i, cc := range clauses {
		b.fall = nil
		if allowFall && i+1 < len(clauses) {
			b.fall = caseBlocks[i+1]
		}
		b.current = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(b.current, done)
	}
	b.fall = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.current = done
}

// isPanicCall matches an explicit call to the panic builtin syntactically;
// shadowing panic is pathological enough not to model.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph as a stable text form for golden tests: one
// paragraph per block with its nodes and successor list.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s\n", b.Index, b.Desc)
		for _, n := range b.Nodes {
			marker := ""
			if e, ok := n.(ast.Expr); ok && e == b.Cond {
				marker = "cond "
			}
			fmt.Fprintf(&sb, "\t%s%s\n", marker, g.nodeText(n))
		}
		if len(b.Succs) > 0 {
			var ss []string
			for _, s := range b.Succs {
				ss = append(ss, fmt.Sprintf("b%d", s.Index))
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(ss, " "))
		}
	}
	return sb.String()
}

// nodeText renders a node as one line of collapsed source, capped so
// multi-line nodes (closures) stay readable in dumps.
func (g *Graph) nodeText(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, g.fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
