package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"setlearn/internal/lint/cfg"
)

// build parses src (a single-function file body) and returns its CFG.
func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.Build(fset, fd.Body)
}

// goldens pin the exact block/edge structure for representative function
// shapes; a CFG regression shows up as a readable dump diff.
var goldens = []struct {
	name, src, want string
}{
	{
		name: "nested select in infinite loop",
		src: `func f(a, b chan int, done chan struct{}) int {
	for {
		select {
		case x := <-a:
			select {
			case b <- x:
			default:
				return x
			}
		case <-done:
			return 0
		}
	}
}`,
		want: `b0 entry
	-> b1
b1 for.loop
	-> b2
b2 for.body
	-> b4 b8
b3 select.done
	-> b1
b4 select.case
	x := <-a
	-> b6 b7
b5 select.done
	-> b3
b6 select.case
	b <- x
	-> b5
b7 select.default
	return x
	-> b9
b8 select.case
	<-done
	return 0
	-> b9
b9 exit
b10 panic
`,
	},
	{
		name: "labeled break and continue",
		src: `func f(grid [][]int, want int) bool {
outer:
	for i, row := range grid {
		for j := range row {
			if grid[i][j] == want {
				break outer
			}
			if grid[i][j] < 0 {
				continue outer
			}
		}
	}
	return false
}`,
		want: `b0 entry
	-> b1
b1 label.outer
	grid
	-> b2
b2 range.loop
	-> b3 b4
b3 range.body
	row
	-> b5
b4 range.done
	return false
	-> b12
b5 range.loop
	-> b6 b7
b6 range.body
	cond grid[i][j] == want
	-> b8 b9
b7 range.done
	-> b2
b8 if.then
	-> b4
b9 if.done
	cond grid[i][j] < 0
	-> b10 b11
b10 if.then
	-> b2
b11 if.done
	-> b5
b12 exit
b13 panic
`,
	},
	{
		name: "defer in loop with error return",
		src: `func f(paths []string, open func(string) (func(), error)) error {
	for _, p := range paths {
		closeFn, err := open(p)
		if err != nil {
			return err
		}
		defer closeFn()
	}
	return nil
}`,
		want: `b0 entry
	paths
	-> b1
b1 range.loop
	-> b2 b3
b2 range.body
	closeFn, err := open(p)
	cond err != nil
	-> b4 b5
b3 range.done
	return nil
	-> b6
b4 if.then
	return err
	-> b6
b5 if.done
	defer closeFn()
	-> b1
b6 exit
b7 panic
`,
	},
	{
		name: "panic with deferred recover",
		src: `func f(work func() int) (out int) {
	defer func() {
		if r := recover(); r != nil {
			out = -1
		}
	}()
	v := work()
	if v < 0 {
		panic("negative")
	}
	return v
}`,
		want: `b0 entry
	defer func() { if r := recover(); r != nil { out = -1 } }()
	v := work()
	cond v < 0
	-> b1 b2
b1 if.then
	panic("negative")
	-> b4
b2 if.done
	return v
	-> b3
b3 exit
b4 panic
`,
	},
	{
		name: "goto retry loop",
		src: `func f(try func() bool, max int) bool {
	n := 0
retry:
	if try() {
		return true
	}
	n++
	if n < max {
		goto retry
	}
	return false
}`,
		want: `b0 entry
	n := 0
	-> b1
b1 label.retry
	cond try()
	-> b2 b3
b2 if.then
	return true
	-> b6
b3 if.done
	n++
	cond n < max
	-> b4 b5
b4 if.then
	-> b1
b5 if.done
	return false
	-> b6
b6 exit
b7 panic
`,
	},
	{
		name: "switch with fallthrough and default",
		src: `func f(mode int) int {
	v := 0
	switch mode {
	case 0:
		v = 1
		fallthrough
	case 1:
		v += 2
	default:
		v = -1
	}
	return v
}`,
		want: `b0 entry
	v := 0
	mode
	-> b2 b3 b4
b1 switch.done
	return v
	-> b5
b2 switch.case
	0
	v = 1
	-> b3
b3 switch.case
	1
	v += 2
	-> b1
b4 switch.default
	v = -1
	-> b1
b5 exit
b6 panic
`,
	},
}

func TestGoldenDumps(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			got := build(t, g.src).Dump()
			if got != g.want {
				t.Errorf("dump mismatch\n--- got ---\n%s--- want ---\n%s", got, g.want)
			}
		})
	}
}

// TestInvariants checks structural properties every graph must satisfy.
func TestInvariants(t *testing.T) {
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			graph := build(t, g.src)
			if graph.Blocks[0] != graph.Entry {
				t.Error("Entry must be the first block")
			}
			if len(graph.Exit.Succs) != 0 || len(graph.Panic.Succs) != 0 {
				t.Error("Exit and Panic must be terminal")
			}
			index := map[*cfg.Block]bool{}
			for _, b := range graph.Blocks {
				index[b] = true
			}
			for _, b := range graph.Blocks {
				if b.Cond != nil && len(b.Succs) != 2 {
					t.Errorf("b%d: cond block must have exactly 2 successors, has %d", b.Index, len(b.Succs))
				}
				for _, s := range b.Succs {
					if !index[s] {
						t.Errorf("b%d: successor not in Blocks", b.Index)
					}
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Errorf("edge b%d->b%d missing from Preds", b.Index, s.Index)
					}
				}
				for _, p := range b.Preds {
					found := false
					for _, s := range p.Succs {
						if s == b {
							found = true
						}
					}
					if !found {
						t.Errorf("pred edge b%d->b%d missing from Succs", p.Index, b.Index)
					}
				}
			}
		})
	}
}

func TestDefersCollected(t *testing.T) {
	g := build(t, `func f(c func(), d func()) {
	defer c()
	for i := 0; i < 3; i++ {
		defer d()
	}
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers collected, got %d", len(g.Defers))
	}
}

func TestCondBranchConvention(t *testing.T) {
	g := build(t, `func f(ok bool) int {
	if ok {
		return 1
	}
	return 0
}`)
	var cond *cfg.Block
	for _, b := range g.Blocks {
		if b.Cond != nil {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no cond block found")
	}
	// Succs[0] is the true edge: it must hold "return 1".
	if len(cond.Succs[0].Nodes) == 0 || !strings.Contains(g.Dump(), "if.then") {
		t.Fatal("true successor should be the then block")
	}
	then := cond.Succs[0]
	ret, ok := then.Nodes[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("then block should start with return, has %T", then.Nodes[0])
	}
	if lit, ok := ret.Results[0].(*ast.BasicLit); !ok || lit.Value != "1" {
		t.Errorf("true edge must lead to `return 1`")
	}
}

func TestSelectCommMarked(t *testing.T) {
	g := build(t, `func f(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}`)
	marked := 0
	for _, b := range g.Blocks {
		if b.Comm != nil {
			marked++
			if _, ok := b.Comm.(*ast.SendStmt); !ok {
				t.Errorf("comm should be the send statement, got %T", b.Comm)
			}
		}
	}
	if marked != 1 {
		t.Errorf("want exactly 1 comm-marked block, got %d", marked)
	}
}
