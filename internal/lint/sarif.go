package lint

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"setlearn/internal/lint/analysis"
)

// SARIF 2.1.0 output — the minimal subset code-scanning uploaders consume:
// one run, the analyzers as rules, one result per finding with a physical
// location, and interprocedural call-chain traces as relatedLocations.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the collected findings as one SARIF run. Only the
// analyzers that actually ran become rules, so -run subsets produce
// self-consistent logs.
func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, report jsonReport) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(report.Diagnostics))
	for _, d := range report.Diagnostics {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		for _, step := range d.Trace {
			loc := sarifLocation{Message: &sarifMessage{Text: step}}
			if file, line, ok := parseTraceStep(step); ok {
				loc.PhysicalLocation = sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: file},
					Region:           sarifRegion{StartLine: line},
				}
			} else {
				// Unparseable step: anchor it at the finding itself so the
				// location stays valid.
				loc.PhysicalLocation = r.Locations[0].PhysicalLocation
			}
			r.RelatedLocations = append(r.RelatedLocations, loc)
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "setlearnlint",
				InformationURI: "https://example.invalid/setlearn",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// parseTraceStep extracts the "file:line" suffix the analyzers put in
// trace steps shaped like "helperLen (internal/pkg/file.go:12)".
func parseTraceStep(step string) (file string, line int, ok bool) {
	open := strings.LastIndexByte(step, '(')
	if open < 0 || !strings.HasSuffix(step, ")") {
		return "", 0, false
	}
	loc := step[open+1 : len(step)-1]
	colon := strings.LastIndexByte(loc, ':')
	if colon < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(loc[colon+1:])
	if err != nil || n <= 0 {
		return "", 0, false
	}
	return loc[:colon], n, true
}
