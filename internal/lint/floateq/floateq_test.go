package floateq_test

import (
	"testing"

	"setlearn/internal/lint/floateq"
	"setlearn/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "floateq")
}
