package floateq_test

import (
	"testing"

	"setlearn/internal/lint/floateq"
	"setlearn/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, floateq.Analyzer, "floateq")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"setlearn/internal/mat",
		"setlearn/internal/nn",
		"setlearn/internal/ad",
		"setlearn/internal/deepsets",
		"setlearn/internal/shard",
		"setlearn/internal/bench",
	} {
		if !floateq.Analyzer.InScope(pkg) {
			t.Errorf("floateq should cover %s", pkg)
		}
	}
}
