package floateq

// Shard fan-in shapes from the PR-4 scope extension: range-partitioned
// bound arithmetic and benchmark reporting must not compare floats
// exactly either.

type shardBound struct {
	lo, hi float64
}

func (s shardBound) contains(x float64) bool {
	return s.lo <= x && x < s.hi // orderings are fine
}

func splitEven(bounds []shardBound, prev float64) int {
	n := 0
	for _, b := range bounds {
		if b.lo == prev { // want `float comparison b.lo == prev is not determinism-safe`
			n++
		}
		prev = b.hi
	}
	return n
}

func benchSpeedup(base, cand float64) string {
	if cand == base { // want `float comparison cand == base is not determinism-safe`
		return "no change"
	}
	if base == 0 { // exact sentinel: unmeasured baseline
		return "n/a"
	}
	if cand != cand { // canonical NaN self-test
		return "invalid"
	}
	return "changed"
}
