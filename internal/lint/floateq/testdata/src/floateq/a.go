package floateq

import "math"

type meters float64

func bad(a, b float64, f, g float32, m meters) {
	_ = a == b          // want `float comparison a == b is not determinism-safe`
	_ = a != b          // want `float comparison a != b is not determinism-safe`
	_ = f == g          // want `float comparison f == g is not determinism-safe`
	_ = a == 1.5        // want `float comparison a == 1.5 is not determinism-safe`
	_ = 2.5 != b        // want `float comparison 2.5 != b is not determinism-safe`
	_ = m == 3          // want `float comparison m == 3 is not determinism-safe`
	_ = a == math.NaN() // want `float comparison a == math.NaN\(\) is not determinism-safe`

	switch a { // want `switch on float expression a compares floats exactly`
	case 1.0:
	case b:
	}
}

func good(a, b float64, f float32, xs []float64) {
	_ = a == 0           // exact sentinel: zero
	_ = 0.0 != b         // exact sentinel: zero on the left
	_ = f == 0           // exact zero for float32 too
	_ = a == math.Inf(1) // exact sentinel: +Inf
	_ = math.Inf(-1) == b
	_ = a != a           // canonical NaN self-test
	_ = a == a           // not-NaN test
	_ = len(xs) == 0     // ints are unaffected
	if a < b || a >= b { // orderings are fine
		return
	}
	switch { // tagless switch is fine
	case a < b:
	}
	switch len(xs) { // int switch is fine
	case 0:
	}
}

// ApproxEqual is an approved tolerance helper: its body may compare
// floats exactly.
func ApproxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

// WithinTol is the second approved helper name.
func WithinTol(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

func suppressed(a, b float64) {
	_ = a == b //lint:allow floateq -- exercising the escape hatch in testdata
	//lint:allow floateq -- standalone suppression covers the next line
	_ = a != b
	_ = a == b //lint:allow floateq // want `float comparison a == b` `needs a justification`
}
