package floateq

// Precision-boundary checks: non-constant float64↔float32 conversions are
// only allowed in blessed kernel files (see blessed32.go).

type half float32

func mixes(a float64, f float32, n int, m meters) {
	_ = float32(a) // want `precision-mixing conversion float32\(a\) outside a blessed kernel file`
	_ = float64(f) // want `precision-mixing conversion float64\(f\) outside a blessed kernel file`
	_ = half(a)    // want `precision-mixing conversion half\(a\) outside a blessed kernel file`
	_ = float32(m) // want `precision-mixing conversion float32\(m\) outside a blessed kernel file`

	_ = float64(n)   // int → float: widening from an integer is exact enough
	_ = float32(n)   // int → float32: not a float↔float mix
	_ = float32(1.5) // constant: converts at compile time
	const c = 0.1
	_ = float32(c)   // constant: same
	_ = float64(a)   // same width: no precision change
	_ = float32(f)   // same width: no precision change
	_ = int(a)       // leaving float entirely is fine
	_ = float32(a)   //lint:allow floateq -- exercising the conversion escape hatch
	_ = (float32)(a) // want `precision-mixing conversion`
}
