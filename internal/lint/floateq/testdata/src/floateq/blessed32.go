package floateq

// A file named *32.go is a blessed precision boundary: the f32 kernel and
// conversion code lives here, so float64↔float32 conversions are allowed.
// The comparison checks still apply.

func blessedConvert(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func blessedWiden(a float32, b float64) bool {
	v := float64(a)
	if v == b { // want `float comparison v == b is not determinism-safe`
		return true
	}
	return false
}
