package floateq

// Shapes from the pgsim/settransformer/blockio/bptree scope extension:
// planner selectivity estimates, attention scores, and float payloads are
// all float-valued, and exact comparison there diverges across
// architectures just like it does in the kernels.

type planCost struct {
	selectivity float64
	rows        float64
}

// choosePlan mirrors pgsim's cost-crossover logic.
func choosePlan(seq, idx planCost) string {
	if seq.selectivity == idx.selectivity { // want `float comparison seq.selectivity == idx.selectivity is not determinism-safe`
		return "tie"
	}
	if seq.rows < idx.rows { // orderings are fine
		return "seqscan"
	}
	return "indexscan"
}

// attnConverged mirrors settransformer's softmax-normalised score
// comparisons.
func attnConverged(prev, cur []float32) bool {
	for i := range cur {
		if prev[i] != cur[i] { // want `float comparison prev\[i\] != cur\[i\] is not determinism-safe`
			return false
		}
	}
	return true
}

// payloadScan mirrors a bptree float-payload lookup: tolerance helpers,
// not equality; zero-sentinel checks stay exact.
func payloadScan(vals []float64, probe float64) int {
	for i, v := range vals {
		if v == 0 { // exact sentinel: unset slot
			continue
		}
		if WithinTol(v, probe, 1e-9) {
			return i
		}
	}
	return -1
}
