// Package floateq flags == and != on floating-point operands, and switch
// statements over floats, in the numeric packages where bit-identical
// determinism is a contract (internal/mat, internal/nn, internal/ad,
// internal/deepsets, and — since the planner/transformer scope extension —
// internal/pgsim's selectivity estimates, internal/settransformer's
// attention scores, and the blockio/bptree storage payloads). Exact
// comparisons are allowed in three cases that are genuinely exact:
//
//   - comparison against the constant 0 (the sparsity fast paths in
//     MatTVecAcc/OuterAcc skip exactly-zero gradients),
//   - comparison against math.Inf(±1) (IEEE infinities are exact),
//   - the NaN self-test x != x (or x == x), recognised syntactically.
//
// Everything else must go through the tolerance helpers (mat.ApproxEqual,
// mat.WithinTol), whose bodies the analyzer skips, or carry an
// explicit //lint:allow floateq -- <reason> escape hatch.
//
// The analyzer also guards the float32 serving path's precision boundary:
// non-constant float64↔float32 conversions are flagged everywhere in scope
// except in blessed kernel/conversion files, so rounding happens exactly
// once, at the model-snapshot boundary, instead of leaking ad-hoc
// conversions through the f64 training code. Blessed files are those named
// by the repo's f32-kernel convention (*32.go — mat32.go, infer32.go,
// model32.go) plus nn/io.go, which persists weights at float32.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
)

// toleranceFuncs are the approved helper functions whose bodies may
// compare floats exactly (they implement the tolerance logic itself).
var toleranceFuncs = map[string]bool{
	"ApproxEqual": true,
	"WithinTol":   true,
}

// isBlessedMixed reports whether the file may convert between float64 and
// float32: the *32.go kernel files hold the f32 serving path, and nn/io.go
// is the float32 persistence boundary.
func isBlessedMixed(filename string) bool {
	if strings.HasSuffix(filepath.Base(filename), "32.go") {
		return true
	}
	return strings.HasSuffix(filepath.ToSlash(filename), "nn/io.go")
}

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!=/switch on float32/float64 outside approved tolerance helpers, " +
		"and float64↔float32 conversions outside blessed kernel files; " +
		"exact-zero, math.Inf, and x != x NaN checks are allowed",
	Scope: []string{
		"setlearn/internal/mat",
		"setlearn/internal/nn",
		"setlearn/internal/ad",
		"setlearn/internal/deepsets",
		"setlearn/internal/shard",
		"setlearn/internal/bench",
		"setlearn/internal/pgsim",
		"setlearn/internal/settransformer",
		"setlearn/internal/blockio",
		"setlearn/internal/bptree",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		blessed := isBlessedMixed(pass.Fset.Position(f.Pos()).Filename)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && toleranceFuncs[fd.Name.Name] {
				continue // the helper is where exact compares live
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					checkBinary(pass, n)
				case *ast.SwitchStmt:
					checkSwitch(pass, n)
				case *ast.CallExpr:
					if !blessed {
						checkConversion(pass, n)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkConversion flags non-constant conversions between float64 and
// float32 outside the blessed files: a stray conversion rounds (or
// silently re-widens rounded values) away from the one sanctioned
// precision boundary.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	fun, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || !fun.IsType() {
		return
	}
	dst, ok := fun.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	arg, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || arg.Value != nil { // constants convert at compile time, deterministically
		return
	}
	src, ok := arg.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	narrowing := dst.Kind() == types.Float32 && src.Kind() == types.Float64
	widening := dst.Kind() == types.Float64 && src.Kind() == types.Float32
	if !narrowing && !widening {
		return
	}
	pass.Reportf(call.Pos(), "precision-mixing conversion %s outside a blessed kernel file; keep the f64↔f32 boundary in *32.go / nn/io.go (or annotate //lint:allow floateq -- <reason>)",
		types.ExprString(call))
}

func checkBinary(pass *analysis.Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if !astq.IsFloat(pass.TypesInfo.Types[e.X].Type) && !astq.IsFloat(pass.TypesInfo.Types[e.Y].Type) {
		return
	}
	if isExactSentinel(pass.TypesInfo, e.X) || isExactSentinel(pass.TypesInfo, e.Y) {
		return
	}
	if types.ExprString(e.X) == types.ExprString(e.Y) {
		return // x != x is the canonical NaN test
	}
	pass.Reportf(e.OpPos, "float comparison %s %s %s is not determinism-safe; use mat.ApproxEqual/mat.WithinTol, compare against an exact sentinel, or annotate //lint:allow floateq -- <reason>",
		types.ExprString(e.X), e.Op, types.ExprString(e.Y))
}

func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !astq.IsFloat(pass.TypesInfo.Types[s.Tag].Type) {
		return
	}
	pass.Reportf(s.Switch, "switch on float expression %s compares floats exactly; restructure as tolerance checks (or //lint:allow floateq -- <reason>)",
		types.ExprString(s.Tag))
}

// isExactSentinel reports whether e is a value that is exact in IEEE-754
// terms: the constant zero, or a math.Inf call.
func isExactSentinel(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if ok && tv.Value != nil {
		k := tv.Value.Kind()
		if (k == constant.Int || k == constant.Float) && constant.Sign(tv.Value) == 0 {
			return true
		}
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return astq.IsPkgFunc(info, call, "math", "Inf")
	}
	return false
}
