package cg

type speaker interface{ speak() string }

type dog struct{}

func (dog) speak() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

func leaf() int { return 1 }

func direct() int { return leaf() }

func viaIface(s speaker) string { return s.speak() }

func viaValue(f func() int) int { return f() }

func spawns() {
	go leaf()
	defer direct()
}

func selfRec(n int) int {
	if n <= 0 {
		return 0
	}
	return selfRec(n - 1)
}

func mutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return mutualB(n - 1)
}

func mutualB(n int) int { return mutualA(n) }

func litSpawner() {
	go func() {
		leaf()
	}()
	defer func() {
		direct()
	}()
}

func (d dog) callsOwn() string { return d.speak() }
