package callgraph

import (
	"go/types"
	"path/filepath"
	"testing"

	"setlearn/internal/lint/load"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadFiles("cg", []string{filepath.Join("testdata", "src", "cg", "a.go")})
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("testdata does not type-check: %v", terr)
	}
	return Build(pkg.Types, pkg.Info, pkg.Files)
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Funcs() {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// calleeNames flattens a node's edges into callee names, with unbounded
// edges rendered as "?" and go/defer kinds prefixed.
func calleeNames(n *Node) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Edges {
		prefix := ""
		switch e.Kind {
		case Go:
			prefix = "go:"
		case Defer:
			prefix = "defer:"
		}
		if e.Unbounded {
			out[prefix+"?"] = true
			continue
		}
		for _, c := range e.Callees {
			out[prefix+c.Name()] = true
		}
	}
	return out
}

func TestStaticAndMethodResolution(t *testing.T) {
	g := buildTestGraph(t)
	if got := calleeNames(nodeByName(t, g, "direct")); !got["leaf"] {
		t.Errorf("direct: want edge to leaf, got %v", got)
	}
	if got := calleeNames(nodeByName(t, g, "callsOwn")); !got["speak"] {
		t.Errorf("callsOwn: want edge to speak, got %v", got)
	}
}

func TestBoundedInterfaceDispatch(t *testing.T) {
	g := buildTestGraph(t)
	n := nodeByName(t, g, "viaIface")
	if len(n.Edges) != 1 {
		t.Fatalf("viaIface: want 1 edge, got %d", len(n.Edges))
	}
	e := n.Edges[0]
	if e.Unbounded {
		t.Fatalf("viaIface: dispatch should be bounded by in-package impls")
	}
	recvs := make(map[string]bool)
	for _, c := range e.Callees {
		sig := c.Type().(*types.Signature)
		recvs[sig.Recv().Type().String()] = true
	}
	if len(e.Callees) != 2 {
		t.Errorf("viaIface: want dispatch over {dog, cat}, got %d callees (%v)", len(e.Callees), recvs)
	}
}

func TestUnboundedFunctionValue(t *testing.T) {
	g := buildTestGraph(t)
	n := nodeByName(t, g, "viaValue")
	if len(n.Edges) != 1 || !n.Edges[0].Unbounded {
		t.Errorf("viaValue: want one unbounded edge, got %+v", n.Edges)
	}
}

func TestGoDeferEdgeKinds(t *testing.T) {
	g := buildTestGraph(t)
	got := calleeNames(nodeByName(t, g, "spawns"))
	if !got["go:leaf"] || !got["defer:direct"] {
		t.Errorf("spawns: want go:leaf and defer:direct, got %v", got)
	}
	// Immediate literals inherit the statement's kind for their bodies.
	got = calleeNames(nodeByName(t, g, "litSpawner"))
	if !got["go:leaf"] || !got["defer:direct"] {
		t.Errorf("litSpawner: want go:leaf and defer:direct through literals, got %v", got)
	}
}

func TestSCCCondensation(t *testing.T) {
	g := buildTestGraph(t)
	sccs := g.SCCs()

	pos := make(map[string]int)  // function name -> component index
	size := make(map[string]int) // function name -> component size
	for i, comp := range sccs {
		for _, n := range comp {
			pos[n.Fn.Name()] = i
			size[n.Fn.Name()] = len(comp)
		}
	}

	if size["selfRec"] != 1 {
		t.Errorf("selfRec: self-recursion is its own SCC of size 1, got %d", size["selfRec"])
	}
	if size["mutualA"] != 2 || pos["mutualA"] != pos["mutualB"] {
		t.Errorf("mutualA/mutualB: want one SCC of size 2, got sizes %d/%d comps %d/%d",
			size["mutualA"], size["mutualB"], pos["mutualA"], pos["mutualB"])
	}
	// Callee-first order: leaf's component precedes direct's, which
	// precedes spawns'.
	if !(pos["leaf"] < pos["direct"]) {
		t.Errorf("want leaf before direct in SCC order, got %d vs %d", pos["leaf"], pos["direct"])
	}
	if !(pos["direct"] < pos["spawns"]) {
		t.Errorf("want direct before spawns in SCC order, got %d vs %d", pos["direct"], pos["spawns"])
	}
}
