// Package callgraph builds a package-level call graph for the
// interprocedural layer of setlearnlint. One Graph covers the function
// declarations of a single package; edges record, per call site, the set
// of functions the call may statically reach:
//
//   - direct calls to package functions and methods resolve through the
//     types API (info.Uses on the callee identifier),
//   - calls through an interface receiver are bounded by dispatch over the
//     in-package implementations of that interface — every concrete named
//     type in the package whose method set satisfies the interface
//     contributes its method as a possible callee; when no in-package
//     implementation exists (the concrete types live elsewhere) or more
//     than maxDispatch types match, the edge is marked Unbounded,
//   - calls through plain function values are Unbounded (no callee),
//   - go and defer statements contribute edges with their own Kind, so
//     clients can treat spawned/deferred work differently from straight
//     calls.
//
// SCCs condenses the intra-package subgraph with Tarjan's algorithm and
// returns the components in callee-first (reverse topological) order — the
// order a bottom-up summary computation wants to visit functions in.
package callgraph

import (
	"go/ast"
	"go/types"
)

// maxDispatch bounds interface dispatch: an interface with more
// in-package implementations than this is treated as unbounded rather
// than fanning an edge out over a large callee set.
const maxDispatch = 8

// EdgeKind distinguishes how a call site transfers control.
type EdgeKind int

const (
	Call  EdgeKind = iota // ordinary call expression
	Go                    // go statement
	Defer                 // defer statement
)

func (k EdgeKind) String() string {
	switch k {
	case Go:
		return "go"
	case Defer:
		return "defer"
	}
	return "call"
}

// Edge is one call site inside a Node's function body.
type Edge struct {
	Site *ast.CallExpr
	Kind EdgeKind

	// Callees holds the functions the call may resolve to: exactly one for
	// a static call, one per in-package implementation for a bounded
	// interface dispatch, empty when Unbounded.
	Callees []*types.Func

	// Unbounded marks calls the graph cannot enumerate: function values,
	// interfaces with no (or too many) in-package implementations.
	Unbounded bool
}

// Node is one function declaration in the package.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Edges []Edge
}

// Graph is the call graph of one package's declared functions.
type Graph struct {
	Pkg   *types.Package
	Nodes map[*types.Func]*Node

	// order preserves declaration order for deterministic iteration.
	order []*Node
}

// Build constructs the call graph for the package's files. Function
// literal bodies are deliberately not given nodes of their own: a literal
// is anonymous state of its enclosing function, and the analyzers that
// care (noalloc) treat closure creation itself as the interesting event.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{Pkg: pkg, Nodes: make(map[*types.Func]*Node)}
	impls := implementsIndex(pkg)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			collectEdges(n, fd.Body, info, impls)
			g.Nodes[fn] = n
			g.order = append(g.order, n)
		}
	}
	return g
}

// Funcs returns the graph's nodes in declaration order.
func (g *Graph) Funcs() []*Node { return g.order }

// collectEdges walks body recording call sites. Function literal bodies
// are walked too — their calls belong to the enclosing declaration — but
// with Kind preserved from the statement that runs the literal only for
// the immediate `defer func(){...}()` / `go func(){...}()` idioms.
func collectEdges(n *Node, body ast.Node, info *types.Info, impls *implIndex) {
	var walk func(node ast.Node, kind EdgeKind)
	walk = func(node ast.Node, kind EdgeKind) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				walkCallStmt(n, x.Call, Go, info, impls, walk)
				return false
			case *ast.DeferStmt:
				walkCallStmt(n, x.Call, Defer, info, impls, walk)
				return false
			case *ast.CallExpr:
				addEdge(n, x, kind, info, impls)
				// Arguments (and the callee expression) may contain
				// further calls; they run as ordinary calls.
				for _, a := range x.Args {
					walk(a, Call)
				}
				walk(x.Fun, Call)
				return false
			}
			return true
		})
	}
	walk(body, Call)
}

// walkCallStmt handles the call of a go/defer statement: the call itself
// gets kind, and when the callee is an immediate function literal its body
// is walked with the same kind (its calls run in the spawned/deferred
// context).
func walkCallStmt(n *Node, call *ast.CallExpr, kind EdgeKind, info *types.Info, impls *implIndex, walk func(ast.Node, EdgeKind)) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walk(lit.Body, kind)
		for _, a := range call.Args {
			walk(a, Call)
		}
		return
	}
	addEdge(n, call, kind, info, impls)
	for _, a := range call.Args {
		walk(a, Call)
	}
}

func addEdge(n *Node, call *ast.CallExpr, kind EdgeKind, info *types.Info, impls *implIndex) {
	// Conversions and built-ins are not calls in the graph's sense.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	e := Edge{Site: call, Kind: kind}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			e.Callees = []*types.Func{fn}
		} else {
			e.Unbounded = true // call through a function-typed variable
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			e.Unbounded = true // method value / func-typed field
			break
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
				e.Callees, e.Unbounded = impls.dispatch(iface, fn.Name())
				break
			}
		}
		e.Callees = []*types.Func{fn}
	default:
		e.Unbounded = true // e.g. call of a call's result
	}
	n.Edges = append(n.Edges, e)
}

// implIndex lists the package's concrete named types once so interface
// dispatch can scan them per call site.
type implIndex struct {
	concrete []types.Type // T or *T for every concrete named type T
}

func implementsIndex(pkg *types.Package) *implIndex {
	idx := &implIndex{}
	if pkg == nil {
		return idx
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Interface); ok {
			continue
		}
		idx.concrete = append(idx.concrete, named, types.NewPointer(named))
	}
	return idx
}

// dispatch returns the concrete in-package methods an interface method
// call may reach, or unbounded when none (implementations live outside the
// package) or too many are found.
func (idx *implIndex) dispatch(iface *types.Interface, method string) ([]*types.Func, bool) {
	var callees []*types.Func
	seen := make(map[*types.Func]bool)
	for _, t := range idx.concrete {
		if !types.Implements(t, iface) {
			continue
		}
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			sel := ms.At(i)
			fn, ok := sel.Obj().(*types.Func)
			if !ok || fn.Name() != method || seen[fn] {
				continue
			}
			seen[fn] = true
			callees = append(callees, fn)
		}
	}
	if len(callees) == 0 || len(seen) > maxDispatch {
		return nil, true
	}
	return callees, false
}

// SCCs condenses the intra-package call graph (edges whose callee has a
// node in this graph) into strongly connected components using Tarjan's
// algorithm, returned callee-first: every edge that leaves a component
// points at a component that appears earlier in the slice. A bottom-up
// summary computation can therefore walk the result front to back.
func (g *Graph) SCCs() [][]*Node {
	type vstate struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*Node]*vstate)
	var stack []*Node
	var sccs [][]*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		st := &vstate{index: next, lowlink: next}
		next++
		states[v] = st
		stack = append(stack, v)
		st.onStack = true

		for _, e := range v.Edges {
			for _, callee := range e.Callees {
				w, ok := g.Nodes[callee]
				if !ok {
					continue // cross-package or bodyless
				}
				ws, visited := states[w]
				if !visited {
					strongconnect(w)
					if ws2 := states[w]; ws2.lowlink < st.lowlink {
						st.lowlink = ws2.lowlink
					}
				} else if ws.onStack && ws.index < st.lowlink {
					st.lowlink = ws.index
				}
			}
		}

		if st.lowlink == st.index {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}

	for _, n := range g.order {
		if _, ok := states[n]; !ok {
			strongconnect(n)
		}
	}
	return sccs
}
