package trustlen_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/trustlen"
)

func TestTrustlen(t *testing.T) {
	linttest.Run(t, trustlen.Analyzer, "trustlen")
}
