// Package trustlen tracks untrusted decoded lengths to the allocations
// they size. A count read from persisted or network bytes — binary.Read
// into an integer, a gob/json Decode into a header struct, an HTTP
// request's ContentLength — is attacker-controlled until a comparison
// bounds it; passing it straight to make([]T, n) lets a corrupt or
// hostile input demand gigabytes (or, multiplied, overflow int) before
// any checksum is verified. The SLSHRD1 loaders learned this the hard
// way; this analyzer makes the rule mechanical: every value tainted by a
// decode must pass through a dominating bounds check before it reaches a
// make size/capacity argument or io.CopyN limit.
//
// Taint is tracked per (variable, field path) over the function's CFG
// with a forward may-analysis: a gob Decode into &hdr taints every path
// rooted at hdr; `if hdr.K > maxK { return err }` marks hdr.K checked on
// BOTH branches (the analyzer trusts any comparison that mentions the
// value — it checks that a bound exists, not that the bound is right);
// hdr.N stays unchecked. Taint follows assignments, arithmetic,
// conversions, and range statements; len() and cap() results are
// trusted (they measure real data).
//
// Interprocedurally (via the summary framework, like noalloc):
//
//   - a helper that passes a parameter field to a make size without
//     checking it inherits the obligation — calling it with a tainted
//     argument is reported at the call site with the call-chain trace,
//     unless the caller already checked the specific field the sink uses;
//   - a helper that compares its parameter against anything is treated
//     as a validator: after the call the argument counts as checked
//     (the validate-then-use idiom);
//   - a function whose return value derives from a decode taints the
//     variable it is assigned to in the caller, carrying the set of
//     field paths the function already validated (the parse-and-check
//     header-loader idiom), so only the unvalidated fields stay hot.
//
// Limitations (documented in DESIGN.md §11): function literals are not
// analyzed; a comparison against another untrusted value satisfies the
// check (the analyzer verifies presence, not sufficiency); taint through
// maps, channels, and globals is not tracked; under the vet unitchecker
// the analysis degrades to package-local call chains.
package trustlen

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
	"setlearn/internal/lint/summary"
)

const name = "trustlen"

const (
	maxPathLen  = 4 // field-path depth cap per tainted root
	maxCallDeep = 8 // interprocedural summary recursion cap
)

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "lengths decoded from untrusted bytes (binary.Read counts, gob/json headers, " +
		"HTTP bodies) must pass a dominating bounds check before sizing an allocation",
	Scope: []string{
		"setlearn/internal/blockio",
		"setlearn/internal/bloom",
		"setlearn/internal/core",
		"setlearn/internal/deepsets",
		"setlearn/internal/hybrid",
		"setlearn/internal/nn",
		"setlearn/internal/server",
		"setlearn/internal/shard",
		"setlearn/internal/lint/testdata/seedmod",
	},
	Run: run,
}

// taint is the lattice value for one (root, path) key.
type taint struct {
	checked bool
	origin  int    // -1: external source; >=0: the function's own parameter index
	src     string // human description of the source, e.g. "binary.Read at nn/io.go:58"
}

// state maps taint keys (object id + field path) to their taint. A key is
// dangerous when present and unchecked; absent or checked keys are safe.
type state map[string]taint

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lattice is the may-taint lattice: union of keys, a key checked only
// when checked on every joining path.
type lattice struct{}

func (lattice) Init() state { return nil }

func (lattice) Join(a, b state) state {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for k, tb := range b {
		if ta, ok := out[k]; ok {
			ta.checked = ta.checked && tb.checked
			out[k] = ta
		} else {
			out[k] = tb
		}
	}
	return out
}

func (lattice) Equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ta := range a {
		tb, ok := b[k]
		if !ok || ta.checked != tb.checked || ta.origin != tb.origin {
			return false
		}
	}
	return true
}

// fnSummary is the bottom-up trustlen summary of one function.
type fnSummary struct {
	// paramSinks[i] lists the unchecked sinks parameter i reaches inside
	// the function (directly or through its own callees).
	paramSinks map[int][]sinkDesc
	// checksParam[i] reports that the function compares parameter i
	// against something — the validator heuristic.
	checksParam map[int]bool
	// taintedReturn describes a non-error result carrying decode taint,
	// or nil.
	taintedReturn *retTaint
}

// retTaint is the summary of a tainted return value: where the taint came
// from and which field paths the function validated before returning on
// its success path.
type retTaint struct {
	src          string
	checkedPaths map[string]bool // e.g. {".Shards": true, ".Version": true}
}

// sinkDesc is one sink a parameter reaches, with the call chain inside
// the summarised function (empty steps for a direct sink) and the field
// path of the parameter the sink consumes ("" when untrackable).
type sinkDesc struct {
	desc  string // e.g. "make([]byte, n) at blockio/blockio.go:44"
	path  string // e.g. ".Shards" — relative to the parameter root
	steps []string
}

// sinkFn is the active sink collector: the replay reporter during
// diagnosis, or summarize's parameter-sink recorder. path is the sink's
// field path relative to the taint's root entry.
type sinkFn func(pos token.Pos, t taint, path, desc string, steps []string)

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		store:    summary.For(pass),
		visiting: make(map[string]bool),
	}
	c.memo = c.store.Memo(name)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.checkDecl(fd, fn)
			}
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	store    *summary.Store
	memo     *summary.Memo
	visiting map[string]bool
}

// checkDecl analyses one current-package function: solve the taint
// fixpoint from an empty entry state, then replay every block reporting
// sinks fed by unchecked external taint.
func (c *checker) checkDecl(fd *ast.FuncDecl, fn *types.Func) {
	d, ok := c.store.Resolve(fn)
	if !ok {
		return
	}
	fc := newFuncCtx(d)
	g := cfg.Build(d.Pkg.Fset, fd.Body)
	res := dataflow.Forward[state](g, lattice{}, nil, func(b *cfg.Block, in state) state {
		return c.interpret(fc, b, in, 0, nil)
	})
	for _, b := range g.Blocks {
		c.interpret(fc, b, res.In[b], 0, func(pos token.Pos, t taint, _, desc string, steps []string) {
			if t.origin >= 0 {
				return // parameter taint is the caller's obligation
			}
			if len(steps) == 0 {
				c.pass.Reportf(pos, "%s is sized by untrusted %s without a dominating bounds check — compare it against a limit first, or annotate with //lint:allow trustlen -- <why>",
					desc, t.src)
				return
			}
			c.pass.ReportTracef(pos, steps, "call passes untrusted %s to %s, reaching %s via %s without a bounds check — validate it first, or annotate with //lint:allow trustlen -- <why>",
				t.src, steps[0], desc, strings.Join(steps, " → "))
		})
	}
}

// funcCtx carries the per-function context interpret needs beyond the
// resolved declaration: the CFG stores a range statement's operand as a
// bare expression node, so the Key/Value binding is recovered by operand
// identity.
type funcCtx struct {
	d      summary.Fn
	ranges map[ast.Node]*ast.RangeStmt // operand expr → its range statement
}

func newFuncCtx(d summary.Fn) *funcCtx {
	fc := &funcCtx{d: d, ranges: map[ast.Node]*ast.RangeStmt{}}
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			fc.ranges[r.X] = r
		}
		_, lit := n.(*ast.FuncLit)
		return !lit
	})
	return fc
}

// interpret runs b's nodes over in, returning the out state. When report
// is non-nil, unchecked taint reaching a sink is passed to it.
func (c *checker) interpret(fc *funcCtx, b *cfg.Block, in state, depth int, report sinkFn) state {
	st := in.clone()
	for _, n := range b.Nodes {
		c.node(fc, n, st, depth, report)
	}
	return st
}

// node interprets one CFG node in source order: sources taint, comparisons
// check, assignments propagate, sinks report.
func (c *checker) node(fc *funcCtx, n ast.Node, st state, depth int, report sinkFn) {
	d := fc.d
	if r, ok := fc.ranges[n]; ok {
		defer c.rangeStmt(d, r, st) // bind Key/Value after the operand runs
	}
	astq.Inspect(n, func(x ast.Node, stack []ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // separate function; not analyzed (see package doc)
		case *ast.BinaryExpr:
			if isComparison(x.Op) {
				c.markChecked(d, x, st)
			}
		case *ast.CallExpr:
			c.call(d, x, st, depth, report)
		case *ast.AssignStmt:
			c.assign(d, x, st, depth)
		}
		return true
	})
}

// call handles one call expression: source calls taint their pointer
// argument, sinks consume taint, and summarised callees contribute their
// parameter obligations and validator effects.
func (c *checker) call(d summary.Fn, call *ast.CallExpr, st state, depth int, report sinkFn) {
	info := d.Pkg.Info
	fset := d.Pkg.Fset

	// Sources: decoding into &x taints every path under x.
	if src, ptr := sourceCall(info, call); ptr != nil {
		if key, ok := keyFor(info, derefTarget(ptr)); ok {
			st[key] = taint{origin: -1, src: src + " at " + summary.FormatPos(fset, call.Pos())}
		}
		return
	}

	// Sinks: make size/cap arguments and io.CopyN's limit.
	if builtinName(info, call) == "make" && len(call.Args) >= 2 {
		for _, arg := range call.Args[1:] {
			if t, rel, tainted := c.taintOf(d, arg, st, depth); tainted && !t.checked && report != nil {
				report(call.Pos(), t, rel, short(types.ExprString(call))+" at "+summary.FormatPos(fset, call.Pos()), nil)
			}
		}
		return
	}
	if astq.IsPkgFunc(info, call, "io", "CopyN") && len(call.Args) == 3 {
		if t, rel, tainted := c.taintOf(d, call.Args[2], st, depth); tainted && !t.checked && report != nil {
			report(call.Pos(), t, rel, "io.CopyN limit at "+summary.FormatPos(fset, call.Pos()), nil)
		}
		return
	}

	// Summarised callees: parameter sinks and the validator heuristic.
	callee := astq.CalleeFunc(info, call)
	if callee == nil {
		return
	}
	cd, ok := c.store.Resolve(callee)
	if !ok {
		return
	}
	sum := c.summarize(cd, depth+1)
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		if sig != nil && (sig.Variadic() && i >= sig.Params().Len()-1) {
			break // variadic tail: no per-parameter summary
		}
		t, argRel, tainted := c.taintOf(d, arg, st, depth)
		if !tainted {
			continue
		}
		argKey, keyed := keyFor(info, arg)
		if !t.checked && report != nil {
			step := callee.Name() + " (" + summary.FormatPos(fset, call.Pos()) + ")"
			for _, sk := range sum.paramSinks[i] {
				// The sink consumes a specific field of the parameter; if
				// the caller already bounded that field, the obligation is
				// discharged even though the root stays tainted.
				if sk.path != "" && keyed {
					if t2, _, found := lookupKey(st, argKey+sk.path); found && t2.checked {
						continue
					}
				}
				report(call.Pos(), t, argRel+sk.path, sk.desc, append([]string{step}, sk.steps...))
			}
		}
		if sum.checksParam[i] && keyed {
			t.checked = true
			st[argKey] = t
		}
	}
}

// assign propagates taint through 1:1 assignments, clears it on untainted
// overwrites, and adopts tainted returns from summarised calls.
func (c *checker) assign(d summary.Fn, a *ast.AssignStmt, st state, depth int) {
	info := d.Pkg.Info
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			key, ok := keyFor(info, lhs)
			if !ok {
				continue
			}
			if call, isCall := ast.Unparen(a.Rhs[i]).(*ast.CallExpr); isCall {
				if rt := c.callReturnTaint(d, call, depth); rt != nil {
					c.adoptReturn(st, key, rt)
					continue
				}
			}
			if t, tainted := c.exprTaint(d, a.Rhs[i], st, depth); tainted {
				st[key] = t
			} else {
				c.clear(st, key)
			}
		}
		return
	}
	// Multi-value from one call: a tainted return taints every non-error
	// result; otherwise results are cleared.
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	rt := c.callReturnTaint(d, call, depth)
	for _, lhs := range a.Lhs {
		key, ok := keyFor(info, lhs)
		if !ok {
			continue
		}
		if rt != nil && !isErrorExpr(info, lhs) {
			c.adoptReturn(st, key, rt)
		} else {
			c.clear(st, key)
		}
	}
}

// adoptReturn installs a summarised tainted return under key: the root is
// hot, but every field path the callee validated arrives pre-checked.
func (c *checker) adoptReturn(st state, key string, rt *retTaint) {
	st[key] = taint{origin: -1, src: rt.src}
	for p := range rt.checkedPaths {
		st[key+p] = taint{origin: -1, src: rt.src, checked: true}
	}
}

// clear removes key's taint: delete an exact entry, and shadow a tainted
// ancestor (whole-struct taint) with a checked entry so the path reads
// safe from here on.
func (c *checker) clear(st state, key string) {
	if t, _, ok := lookupKey(st, key); ok {
		t.checked = true
		st[key] = t
		return
	}
	delete(st, key)
}

// rangeStmt taints the iteration variables when ranging over a tainted
// container (decoded header slices: every element is untrusted).
func (c *checker) rangeStmt(d summary.Fn, r *ast.RangeStmt, st state) {
	info := d.Pkg.Info
	t, tainted := c.exprTaint(d, r.X, st, 0)
	if !tainted {
		return
	}
	for _, v := range []ast.Expr{r.Key, r.Value} {
		if v == nil {
			continue
		}
		if key, ok := keyFor(info, v); ok {
			st[key] = t
		}
	}
}

// markChecked records every currently-tainted key mentioned on either
// side of a comparison as checked. Only maximal keyable expressions are
// marked: `hdr.K > max` checks hdr.K, not the whole hdr (hdr.N must stay
// hot).
func (c *checker) markChecked(d summary.Fn, cmp *ast.BinaryExpr, st state) {
	info := d.Pkg.Info
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		ast.Inspect(side, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			key, ok := keyFor(info, e)
			if !ok {
				return true
			}
			if t, _, found := c.lookup(d, e, key, st); found {
				t.checked = true
				st[key] = t
			}
			return false // maximal expression handled; skip its parts
		})
	}
}

// taintOf evaluates e's taint for a sink or call argument. For keyable
// expressions it also reports the path of e relative to the state entry
// that supplied the taint (e.g. looking up hdr.Shards against a
// whole-struct hdr entry yields ".Shards"), which parameter-sink
// summaries use to name the field they consume.
func (c *checker) taintOf(d summary.Fn, e ast.Expr, st state, depth int) (taint, string, bool) {
	if key, ok := keyFor(d.Pkg.Info, ast.Unparen(e)); ok {
		t, matched, found := c.lookup(d, e, key, st)
		if !found {
			return taint{}, "", false
		}
		return t, key[len(matched):], true
	}
	t, tainted := c.exprTaint(d, e, st, depth)
	return t, "", tainted
}

// exprTaint evaluates e's taint under st: identifiers and paths look up
// the state (and the ContentLength ambient source), arithmetic and
// conversions propagate operand taint, len/cap launder it, calls consult
// the callee's return summary.
func (c *checker) exprTaint(d summary.Fn, e ast.Expr, st state, depth int) (taint, bool) {
	info := d.Pkg.Info
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if key, ok := keyFor(info, e); ok {
			t, _, found := c.lookup(d, e, key, st)
			return t, found
		}
	case *ast.BinaryExpr:
		if isComparison(x.Op) || x.Op == token.LAND || x.Op == token.LOR {
			return taint{}, false // boolean results never size anything
		}
		tx, okx := c.exprTaint(d, x.X, st, depth)
		ty, oky := c.exprTaint(d, x.Y, st, depth)
		switch {
		case okx && oky:
			tx.checked = tx.checked && ty.checked
			return tx, true
		case okx:
			return tx, true
		case oky:
			return ty, true
		}
	case *ast.UnaryExpr:
		return c.exprTaint(d, x.X, st, depth)
	case *ast.CallExpr:
		switch builtinName(info, x) {
		case "len", "cap":
			return taint{}, false // measured from real data: trusted
		}
		if tv, ok := info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return c.exprTaint(d, x.Args[0], st, depth) // conversion keeps taint
		}
		if rt := c.callReturnTaint(d, x, depth); rt != nil {
			return taint{origin: -1, src: rt.src}, true
		}
	}
	return taint{}, false
}

// callReturnTaint returns the return-taint summary when call's callee is
// summarised as returning decoded data, or nil.
func (c *checker) callReturnTaint(d summary.Fn, call *ast.CallExpr, depth int) *retTaint {
	callee := astq.CalleeFunc(d.Pkg.Info, call)
	if callee == nil {
		return nil
	}
	cd, ok := c.store.Resolve(callee)
	if !ok {
		return nil
	}
	sum := c.summarize(cd, depth+1)
	if sum.taintedReturn == nil {
		return nil
	}
	return &retTaint{
		src:          sum.taintedReturn.src + " (returned by " + callee.Name() + ")",
		checkedPaths: sum.taintedReturn.checkedPaths,
	}
}

// lookup resolves e's taint: an exact or ancestor state entry (whole-
// object taint from a struct decode), or the ambient http.Request
// ContentLength source. The matched entry key is returned so callers can
// compute the relative field path. A checked entry still returns found
// with checked set.
func (c *checker) lookup(d summary.Fn, e ast.Expr, key string, st state) (taint, string, bool) {
	if t, matched, ok := lookupKey(st, key); ok {
		return t, matched, true
	}
	if isContentLength(d.Pkg.Info, e) {
		return taint{origin: -1, src: "http.Request.ContentLength"}, key, true
	}
	return taint{}, "", false
}

// lookupKey finds the exact entry for key, else the nearest ancestor
// entry (path prefixes at '.'/'[' boundaries), returning the matched key.
func lookupKey(st state, key string) (taint, string, bool) {
	if t, ok := st[key]; ok {
		return t, key, true
	}
	for i := len(key) - 1; i > 0; i-- {
		if key[i] != '.' && key[i] != '[' {
			continue
		}
		if t, ok := st[key[:i]]; ok {
			return t, key[:i], true
		}
	}
	return taint{}, "", false
}

// summarize computes (or recalls) the bottom-up summary of a resolved
// function: seed its parameters as tainted, solve the same fixpoint, and
// record which parameters reach sinks, which get compared, and whether
// the return value carries decode taint.
func (c *checker) summarize(d summary.Fn, depth int) fnSummary {
	if v, ok := c.memo.Get(d.Func); ok {
		return v.(fnSummary)
	}
	sum := fnSummary{paramSinks: map[int][]sinkDesc{}, checksParam: map[int]bool{}}
	key := d.Func.FullName()
	if depth > maxCallDeep || c.visiting[key] {
		return sum
	}
	c.visiting[key] = true
	defer delete(c.visiting, key)

	info := d.Pkg.Info
	entry := state{}
	params := map[string]int{}
	if sig, ok := d.Func.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if p.Name() == "" || p.Name() == "_" || !sizeable(p.Type()) {
				continue
			}
			k := objKey(p)
			params[k] = i
			entry[k] = taint{origin: i, src: "parameter " + p.Name()}
		}
	}

	fc := newFuncCtx(d)
	g := cfg.Build(d.Pkg.Fset, d.Decl.Body)
	res := dataflow.Forward[state](g, lattice{}, entry, func(b *cfg.Block, in state) state {
		return c.interpret(fc, b, in, depth, nil)
	})

	seen := map[string]bool{}
	for _, b := range g.Blocks {
		in := res.In[b]
		// Validator heuristic: a parameter checked anywhere in the body.
		for k, i := range params {
			if t, ok := in[k]; ok && t.checked {
				sum.checksParam[i] = true
			}
		}
		c.interpret(fc, b, in, depth, func(pos token.Pos, t taint, path, desc string, steps []string) {
			if t.origin < 0 {
				return // external taint reports in the declaring package's own pass
			}
			k := strconv.Itoa(t.origin) + "|" + desc
			if seen[k] || len(sum.paramSinks[t.origin]) >= 4 {
				return
			}
			seen[k] = true
			sum.paramSinks[t.origin] = append(sum.paramSinks[t.origin],
				sinkDesc{desc: desc, path: path, steps: steps})
		})
		// Tainted returns: a non-error result carrying decode taint on a
		// success path, with the field paths already validated.
		for _, n := range b.Nodes {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || failurePath(info, ret) {
				continue
			}
			out := c.interpret(fc, b, in, depth, nil) // state at block end ≈ at the return
			for _, r := range ret.Results {
				if isErrorExpr(info, r) {
					continue
				}
				t, tainted := c.exprTaint(d, r, out, depth)
				if !tainted || t.origin >= 0 || t.checked {
					continue
				}
				rt := &retTaint{src: t.src, checkedPaths: map[string]bool{}}
				if rkey, ok := keyFor(info, r); ok {
					for k, kt := range out {
						if kt.checked && len(k) > len(rkey) && strings.HasPrefix(k, rkey) {
							rt.checkedPaths[k[len(rkey):]] = true
						}
					}
				}
				// Multiple success returns: only paths validated on every
				// one of them stay checked for the caller.
				if sum.taintedReturn == nil {
					sum.taintedReturn = rt
				} else {
					for p := range sum.taintedReturn.checkedPaths {
						if !rt.checkedPaths[p] {
							delete(sum.taintedReturn.checkedPaths, p)
						}
					}
				}
			}
		}
	}
	c.memo.Set(d.Func, sum)
	return sum
}

// failurePath reports whether ret is an error-path return: some
// error-typed result is a call (fmt.Errorf and friends wrap on the spot).
// Such returns hand the caller a non-nil error, so their (partially
// validated) values never flow onward.
func failurePath(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if !isErrorExpr(info, r) {
			continue
		}
		if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			return true
		}
	}
	return false
}

// --- sources and small helpers ---

// sourceCall recognises the decode calls that taint their pointer
// argument, returning a source label and the pointer expression.
func sourceCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	if astq.IsPkgFunc(info, call, "encoding/binary", "Read") && len(call.Args) == 3 {
		return "binary.Read", call.Args[2]
	}
	if astq.IsPkgFunc(info, call, "encoding/json", "Unmarshal") && len(call.Args) == 2 {
		return "json.Unmarshal", call.Args[1]
	}
	if fn := astq.CalleeFunc(info, call); fn != nil && fn.Name() == "Decode" && len(call.Args) == 1 {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named := astq.NamedOrPointee(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
				switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
				case "encoding/gob.Decoder":
					return "gob decode", call.Args[0]
				case "encoding/json.Decoder":
					return "json decode", call.Args[0]
				}
			}
		}
	}
	return "", nil
}

// derefTarget unwraps &x to x, so the taint key lands on the decoded
// object rather than the temporary pointer.
func derefTarget(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// keyFor builds the (root object, field path) key of an lvalue-ish
// expression, or fails for anything unkeyable (calls, literals, maps
// through arbitrary expressions).
func keyFor(info *types.Info, e ast.Expr) (string, bool) {
	path := ""
	for steps := 0; steps < maxPathLen; steps++ {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if v, ok := obj.(*types.Var); ok {
				return objKey(v) + path, true
			}
			return "", false
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = x.X
		case *ast.IndexExpr:
			path = "[]" + path
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return "", false
		}
	}
	return "", false
}

// objKey identifies a variable across the function: its declaration
// position is unique within the package.
func objKey(v *types.Var) string {
	return v.Name() + "@" + strconv.Itoa(int(v.Pos()))
}

// sizeable reports whether t could flow into a size: integers, and the
// structs/slices/pointers that carry decoded integer fields.
func sizeable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsInteger != 0
	case *types.Struct, *types.Slice, *types.Array, *types.Pointer:
		return true
	}
	return false
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isContentLength matches req.ContentLength on a *net/http.Request.
func isContentLength(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ContentLength" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named := astq.NamedOrPointee(tv.Type)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request"
}

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		// Defs-only idents (":=" results) carry their type on the object.
		if id, okId := ast.Unparen(e).(*ast.Ident); okId {
			if obj := info.Defs[id]; obj != nil {
				return isErrorType(obj.Type())
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func short(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
