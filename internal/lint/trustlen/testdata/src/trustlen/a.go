package trustlen

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

const maxN = 1 << 20

// Direct source → sink: the canonical corrupt-length allocation.

func unguarded(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make\(\[\]byte, n\) at trustlen/a.go:\d+ is sized by untrusted binary.Read at trustlen/a.go:\d+ without a dominating bounds check`
}

// A dominating comparison clears the obligation — on both branches (the
// analyzer checks presence, not direction).

func guarded(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxN {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]byte, n), nil
}

// Struct decode taints every field; checking one leaves its siblings hot.

type header struct {
	K uint32
	N uint32
}

func fieldPaths(r io.Reader) ([]uint32, []uint32, error) {
	var hdr header
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, nil, err
	}
	if hdr.K > maxN {
		return nil, nil, io.ErrUnexpectedEOF
	}
	ks := make([]uint32, hdr.K)
	ns := make([]uint32, hdr.N) // want `make\(\[\]uint32, hdr.N\) at trustlen/a.go:\d+ is sized by untrusted binary.Read at trustlen/a.go:\d+ without a dominating bounds check`
	return ks, ns, nil
}

// Taint survives arithmetic and conversions; len() launders it.

func arithmetic(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return make([]byte, int(n)*8), nil // want `make\(\[\]byte, int\(n\) \* 8\) at trustlen/a.go:\d+ is sized by untrusted binary.Read`
}

func laundered(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxN {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	return make([]byte, len(buf)), nil // len of real data: trusted
}

// gob decode is a source too.

func gobHeader(r io.Reader) ([]uint32, error) {
	var hdr header
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, err
	}
	return make([]uint32, hdr.K), nil // want `make\(\[\]uint32, hdr.K\) at trustlen/a.go:\d+ is sized by untrusted gob decode at trustlen/a.go:\d+`
}

// io.CopyN's limit is a sink.

func copyN(w io.Writer, r io.Reader) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	_, err := io.CopyN(w, r, n) // want `io.CopyN limit at trustlen/a.go:\d+ is sized by untrusted binary.Read`
	return err
}

// Assigning a trusted value over a tainted variable clears it.

func overwritten(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	n = 64
	return make([]byte, n), nil
}

// Interprocedural: a helper that allocates from its parameter inherits
// the obligation — the call site with tainted input is the finding.

func viaHelper(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return allocBuf(int(n)), nil // want `call passes untrusted binary.Read at trustlen/a.go:\d+ to allocBuf \(trustlen/a.go:\d+\), reaching make\(\[\]byte, n\) at trustlen/a.go:\d+`
}

func allocBuf(n int) []byte { return make([]byte, n) }

// Calling the helper with a checked value is fine.

func viaHelperGuarded(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxN {
		return nil, io.ErrUnexpectedEOF
	}
	return allocBuf(int(n)), nil
}

// A helper that bounds its own parameter discharges the obligation inside.

func viaSafeHelper(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return safeAlloc(int(n)), nil
}

func safeAlloc(n int) []byte {
	if n > maxN {
		n = maxN
	}
	return make([]byte, n)
}

// A validator helper counts as a check for the caller (the
// validate-then-use idiom).

func validated(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if !validCount(n) {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]byte, n), nil
}

func validCount(n uint32) bool { return n <= maxN }

// A function returning decoded data taints the caller's variable.

func viaReturn(r io.Reader) ([]byte, error) {
	n, err := readCount(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make\(\[\]byte, n\) at trustlen/a.go:\d+ is sized by untrusted binary.Read at trustlen/a.go:\d+ \(returned by readCount\)`
}

func readCount(r io.Reader) (uint64, error) {
	var n uint64
	err := binary.Read(r, binary.LittleEndian, &n)
	return n, err
}

// Ranging over a decoded slice taints the element.

type entry struct{ Len uint32 }

func ranged(r io.Reader, entries []entry) ([][]byte, error) {
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return nil, err
	}
	var out [][]byte
	for _, e := range entries {
		out = append(out, make([]byte, e.Len)) // want `make\(\[\]byte, e.Len\) at trustlen/a.go:\d+ is sized by untrusted gob decode`
	}
	return out, nil
}

// The parse-and-validate loader idiom: a header reader that bounds a
// field before its success return discharges that field for every
// caller; unvalidated siblings stay hot.

func viaLoader(r io.Reader) ([]uint32, []uint32, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, nil, err
	}
	ks := make([]uint32, hdr.K) // K was bounded inside readHeader
	ns := make([]uint32, hdr.N) // want `make\(\[\]uint32, hdr.N\) at trustlen/a.go:\d+ is sized by untrusted binary.Read at trustlen/a.go:\d+ \(returned by readHeader\)`
	return ks, ns, nil
}

func readHeader(r io.Reader) (header, error) {
	var hdr header
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return hdr, fmt.Errorf("read header: %w", err)
	}
	if hdr.K > maxN {
		return hdr, fmt.Errorf("k %d out of range", hdr.K)
	}
	return hdr, nil
}

// Field-level precision across a call: a helper sizing from one field of
// its struct parameter only obligates the caller for THAT field.

func viaFieldHelper(r io.Reader) ([][]uint32, error) {
	var hdr header
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, err
	}
	if hdr.K > maxN {
		return nil, io.ErrUnexpectedEOF
	}
	return shardBufs(hdr), nil // hdr.N is still hot, but shardBufs only uses hdr.K
}

func viaFieldHelperBad(r io.Reader) ([][]uint32, error) {
	var hdr header
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, err
	}
	return shardBufs(hdr), nil // want `call passes untrusted gob decode at trustlen/a.go:\d+ to shardBufs \(trustlen/a.go:\d+\), reaching make\(\[\]\[\]uint32, hdr.K\) at trustlen/a.go:\d+`
}

func shardBufs(hdr header) [][]uint32 { return make([][]uint32, hdr.K) }

// Suppression with a justification silences one sink.

func suppressed(r io.Reader) ([]byte, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return make([]byte, n), nil //lint:allow trustlen -- caller re-frames the stream and already enforced the section limit
}
