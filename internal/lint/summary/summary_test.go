package summary

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/load"
)

// newRepoPass loads a real module package and wraps it in a Pass whose
// LoadPackage hook resolves module-local import paths through the same
// loader — the wiring the driver installs.
func newRepoPass(t *testing.T, relDir string) *analysis.Pass {
	t.Helper()
	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleDir, relDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("%s does not type-check: %v", relDir, terr)
	}
	a := &analysis.Analyzer{Name: "summarytest", Run: func(*analysis.Pass) error { return nil }}
	pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(analysis.Diagnostic) {})
	pass.Shared = analysis.NewShared()
	pass.LoadPackage = func(path string) (*analysis.PackageInfo, error) {
		rel, ok := strings.CutPrefix(path, loader.ModulePath+"/")
		if !ok {
			return nil, fmt.Errorf("not module-local: %s", path)
		}
		p, err := loader.LoadDir(filepath.Join(loader.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return &analysis.PackageInfo{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}, nil
	}
	return pass
}

// findCalleeIn scans the package's ASTs for a call whose static callee's
// full name contains needle, returning the callee as seen from this
// package's type-check.
func findCalleeIn(t *testing.T, pass *analysis.Pass, needle string) *types.Func {
	t.Helper()
	var found *types.Func
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && strings.HasSuffix(fn.FullName(), needle) {
				found = fn
				return false
			}
			return true
		})
	}
	if found == nil {
		t.Fatalf("no callee matching %q in %s", needle, pass.Pkg.Path())
	}
	return found
}

func TestResolveLocalFunction(t *testing.T) {
	pass := newRepoPass(t, "internal/deepsets")
	s := For(pass)

	fn := findCalleeIn(t, pass, "deepsets.Predictor32).pooled")
	d, ok := s.Resolve(fn)
	if !ok {
		t.Fatalf("Resolve(%s) failed for a same-package method", fn.FullName())
	}
	if d.Decl.Name.Name != "pooled" {
		t.Errorf("resolved wrong decl: %s", d.Decl.Name.Name)
	}
}

func TestResolveCrossPackage(t *testing.T) {
	pass := newRepoPass(t, "internal/deepsets")
	s := For(pass)

	// nn.MLP32.Infer as seen from deepsets' imported view of package nn:
	// a different types.Func object than nn's own load produces.
	fn := findCalleeIn(t, pass, "nn.MLP32).Infer")
	d, ok := s.Resolve(fn)
	if !ok {
		t.Fatalf("Resolve(%s) failed to follow the import", fn.FullName())
	}
	if d.Decl.Name.Name != "Infer" || d.Pkg.Path != "setlearn/internal/nn" {
		t.Errorf("resolved to %s in %s", d.Decl.Name.Name, d.Pkg.Path)
	}
	if d.Decl.Body == nil {
		t.Error("resolved declaration has no body")
	}
	// The resolved object belongs to the loaded package's own type-check
	// but agrees on identity by full name.
	if d.Func.FullName() != fn.FullName() {
		t.Errorf("full-name mismatch: %s vs %s", d.Func.FullName(), fn.FullName())
	}
}

func TestResolveWithoutLoaderDegrades(t *testing.T) {
	pass := newRepoPass(t, "internal/deepsets")
	pass.LoadPackage = nil
	pass.Shared = analysis.NewShared() // fresh cache, no preloaded store
	s := For(pass)

	if _, ok := s.Resolve(findCalleeIn(t, pass, "nn.MLP32).Infer")); ok {
		t.Error("cross-package Resolve should fail without a LoadPackage hook")
	}
	if _, ok := s.Resolve(findCalleeIn(t, pass, "deepsets.Predictor32).pooled")); !ok {
		t.Error("same-package Resolve must still work without a hook")
	}
}

func TestMemoSharedAcrossPasses(t *testing.T) {
	pass := newRepoPass(t, "internal/deepsets")
	s := For(pass)
	fn := findCalleeIn(t, pass, "deepsets.Predictor32).pooled")
	s.Memo("dom").Set(fn, 42)

	// A second pass over the same run's Shared sees the same store.
	pass2 := analysis.NewPass(pass.Analyzer, pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo, func(analysis.Diagnostic) {})
	pass2.Shared = pass.Shared
	v, ok := For(pass2).Memo("dom").Get(fn)
	if !ok || v != 42 {
		t.Errorf("memo not shared across passes: got %v, %v", v, ok)
	}
}

func TestFormatPos(t *testing.T) {
	pass := newRepoPass(t, "internal/deepsets")
	got := FormatPos(pass.Fset, pass.Files[0].Pos())
	if !strings.HasPrefix(got, "deepsets/") || !strings.Contains(got, ".go:") {
		t.Errorf("FormatPos = %q, want deepsets/<file>.go:<line>", got)
	}
}
