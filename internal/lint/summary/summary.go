// Package summary is the bottom-up function-summary framework behind
// setlearnlint's interprocedural analyzers. A Store lives in the driver's
// per-run Shared cache (like pass.CFG lives on the Pass), so per-function
// facts are computed once per run and reused by every (package, analyzer)
// pair that needs them.
//
// The central primitive is Resolve: given the *types.Func a call site
// statically resolves to, find the function's declaration — loading and
// indexing its package on demand through the driver's Pass.LoadPackage
// hook when the body lives outside the current package. Identity is by
// types.Func.FullName rather than object pointer: the source importer
// type-checks a dependency package independently of the driver's own load
// of that package, so the "same" function is represented by distinct
// objects depending on which side of the import it was seen from.
//
// On top of Resolve the Store offers per-domain memo tables (an analyzer
// keys its summaries by function), cached per-package call graphs, and
// cached per-package suppression indexes (so a //lint:allow on a leaf
// construct is honoured even when the diagnostic is reported at a hotpath
// root in another package).
//
// Drivers without source loading (the vet unitchecker) install no
// LoadPackage hook; Resolve then only finds functions of packages already
// registered — in practice the current one — and interprocedural analyzers
// degrade to package-local reasoning, a documented soundness caveat.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"sync"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/callgraph"
)

const sharedKey = "summary.Store"

// Fn is a resolved function: its declaration and the package that holds
// it. Func is the *types.Func of the declaring package's own type-check,
// which may differ (as an object) from the one the caller resolved.
type Fn struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.PackageInfo
}

// Store caches loaded packages, declaration indexes, call graphs,
// suppression indexes, and analyzer summaries for one driver run.
type Store struct {
	mu   sync.Mutex
	load func(path string) (*analysis.PackageInfo, error)

	pkgs     map[string]*analysis.PackageInfo // by import path
	failed   map[string]error                 // load failures, cached
	decls    map[string]Fn                    // by types.Func FullName
	graphs   map[string]*callgraph.Graph      // by import path
	suppress map[string]*analysis.Suppressions
	memos    map[string]map[string]any // domain -> FullName -> summary
}

// For returns the run-wide Store for pass, creating it on first use and
// registering the pass's own package either way.
func For(pass *analysis.Pass) *Store {
	s := pass.PassShared().Get(sharedKey, func() any {
		return &Store{
			pkgs:     make(map[string]*analysis.PackageInfo),
			failed:   make(map[string]error),
			decls:    make(map[string]Fn),
			graphs:   make(map[string]*callgraph.Graph),
			suppress: make(map[string]*analysis.Suppressions),
			memos:    make(map[string]map[string]any),
		}
	}).(*Store)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.load == nil {
		s.load = pass.LoadPackage
	}
	s.addPackageLocked(pass.PackageInfo())
	return s
}

func (s *Store) addPackageLocked(pi *analysis.PackageInfo) {
	if pi == nil || pi.Types == nil {
		return
	}
	if _, ok := s.pkgs[pi.Path]; ok {
		return
	}
	s.pkgs[pi.Path] = pi
	for _, f := range pi.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pi.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := fn.FullName()
			if _, dup := s.decls[key]; !dup {
				s.decls[key] = Fn{Func: fn, Decl: fd, Pkg: pi}
			}
		}
	}
}

// Resolve locates fn's declaration, loading its package through the
// driver hook when necessary. ok is false for functions without source in
// reach: other modules, the standard library, bodyless declarations, and
// every cross-package function when the driver cannot load source.
func (s *Store) Resolve(fn *types.Func) (Fn, bool) {
	if fn == nil || fn.Pkg() == nil {
		return Fn{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.decls[fn.FullName()]; ok {
		return d, true
	}
	path := fn.Pkg().Path()
	if _, loaded := s.pkgs[path]; loaded {
		return Fn{}, false // package known, function bodyless there
	}
	if s.load == nil {
		return Fn{}, false
	}
	if _, failed := s.failed[path]; failed {
		return Fn{}, false
	}
	pi, err := s.load(path)
	if err != nil {
		s.failed[path] = err
		return Fn{}, false
	}
	s.addPackageLocked(pi)
	d, ok := s.decls[fn.FullName()]
	return d, ok
}

// Package returns the loaded package for path, if any (registered by a
// pass or pulled in by Resolve).
func (s *Store) Package(path string) (*analysis.PackageInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pi, ok := s.pkgs[path]
	return pi, ok
}

// Graph returns pi's call graph, building it on first request.
func (s *Store) Graph(pi *analysis.PackageInfo) *callgraph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.graphs[pi.Path]; ok {
		return g
	}
	g := callgraph.Build(pi.Types, pi.Info, pi.Files)
	s.graphs[pi.Path] = g
	return g
}

// Suppressions returns pi's //lint:allow index, building it on first
// request. Interprocedural analyzers consult it for constructs in packages
// other than the reporting one.
func (s *Store) Suppressions(pi *analysis.PackageInfo) *analysis.Suppressions {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sup, ok := s.suppress[pi.Path]; ok {
		return sup
	}
	sup := analysis.BuildSuppressions(pi.Fset, pi.Files)
	s.suppress[pi.Path] = sup
	return sup
}

// Memo is one analyzer's summary table, keyed by function. Concurrent use
// is safe; entries are write-once in practice (bottom-up computation).
type Memo struct {
	s *Store
	m map[string]any
}

// Memo returns the named domain's summary table, shared across passes.
func (s *Store) Memo(domain string) *Memo {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.memos[domain]
	if !ok {
		m = make(map[string]any)
		s.memos[domain] = m
	}
	return &Memo{s: s, m: m}
}

// Get returns the summary stored for fn.
func (m *Memo) Get(fn *types.Func) (any, bool) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	v, ok := m.m[fn.FullName()]
	return v, ok
}

// Set stores fn's summary.
func (m *Memo) Set(fn *types.Func, v any) {
	m.s.mu.Lock()
	defer m.s.mu.Unlock()
	m.m[fn.FullName()] = v
}

// FormatPos renders pos compactly for diagnostic traces: the file's last
// two path elements plus the line, e.g. "nn/infer32.go:87".
func FormatPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	dir, file := filepath.Split(p.Filename)
	short := filepath.Base(filepath.Clean(dir))
	if short != "." && short != string(filepath.Separator) && short != "" {
		file = short + "/" + file
	}
	return file + ":" + strconv.Itoa(p.Line)
}
