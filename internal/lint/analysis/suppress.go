package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// A suppression comment has the form
//
//	//lint:allow <analyzer> -- <justification>
//
// It silences <analyzer> on the line it shares (trailing comment) or, when
// it stands alone, on the next line. The justification after "--" is
// mandatory: a bare //lint:allow is reported as a diagnostic instead of
// honoured, so every escape hatch in the tree explains itself.
const allowPrefix = "//lint:allow "

type suppression struct {
	analyzer      string
	file          string
	line          int // line the suppression covers
	pos           token.Pos
	justification string
}

type suppressionIndex struct {
	// byLine maps file:line to the analyzers allowed there.
	byLine map[string][]suppression
	// bad holds well-targeted but justification-free suppressions.
	bad []suppression
}

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[string][]suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, justification := rest, ""
				if i := strings.Index(rest, "--"); i >= 0 {
					name = strings.TrimSpace(rest[:i])
					justification = strings.TrimSpace(rest[i+2:])
				}
				// Only the first field names the analyzer; anything else
				// before "--" (stray text) leaves the suppression
				// justification-free and therefore reported.
				fields := strings.Fields(name)
				if len(fields) == 0 {
					continue
				}
				if name = fields[0]; len(fields) > 1 {
					justification = ""
				}
				pos := fset.Position(c.Pos())
				s := suppression{
					analyzer:      name,
					file:          pos.Filename,
					line:          coveredLine(fset, f, c, pos),
					pos:           c.Pos(),
					justification: justification,
				}
				if s.justification == "" {
					idx.bad = append(idx.bad, s)
					continue
				}
				key := lineKey(s.file, s.line)
				idx.byLine[key] = append(idx.byLine[key], s)
			}
		}
	}
	return idx
}

// coveredLine decides which source line a suppression comment governs: its
// own line when code precedes it (trailing comment), otherwise the next
// line (standalone comment above the flagged statement).
func coveredLine(fset *token.FileSet, f *ast.File, c *ast.Comment, pos token.Position) int {
	tf := fset.File(c.Pos())
	if tf == nil {
		return pos.Line
	}
	lineStart := tf.LineStart(pos.Line)
	standalone := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !standalone {
			return false
		}
		// Any non-comment node starting on the same line before the
		// comment makes it a trailing comment.
		if n.Pos() >= lineStart && n.Pos() < c.Pos() {
			if _, ok := n.(*ast.Comment); !ok {
				if _, ok := n.(*ast.CommentGroup); !ok {
					if _, ok := n.(*ast.File); !ok {
						standalone = false
					}
				}
			}
		}
		return true
	})
	if standalone {
		return pos.Line + 1
	}
	return pos.Line
}

func lineKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}

func (idx *suppressionIndex) allows(analyzer string, pos token.Position) bool {
	for _, s := range idx.byLine[lineKey(pos.Filename, pos.Line)] {
		if s.analyzer == analyzer {
			return true
		}
	}
	return false
}

func (idx *suppressionIndex) malformed(analyzer string) []token.Pos {
	var out []token.Pos
	for _, s := range idx.bad {
		if s.analyzer == analyzer {
			out = append(out, s.pos)
		}
	}
	return out
}

// Suppressions is the //lint:allow index for an arbitrary file set,
// exported for interprocedural analyzers that must honour suppressions in
// packages other than the one their Pass was created for (e.g. an allow
// comment on a leaf allocation site silencing it in every hotpath trace
// that reaches it).
type Suppressions struct{ idx *suppressionIndex }

// BuildSuppressions indexes the well-formed //lint:allow comments in files.
func BuildSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	return &Suppressions{idx: buildSuppressionIndex(fset, files)}
}

// Allows reports whether a justified //lint:allow comment for analyzer
// covers the line of pos.
func (s *Suppressions) Allows(analyzer string, pos token.Position) bool {
	return s.idx.allows(analyzer, pos)
}
