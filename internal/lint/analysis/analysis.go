// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that setlearn's custom analyzers
// are written against. The container this repo builds in has no module
// proxy access, so instead of depending on x/tools the lint suite carries
// its own framework: an Analyzer is a named check, a Pass hands it one
// type-checked package, and diagnostics flow back through Pass.Report with
// //lint:allow suppression applied centrally.
//
// The shape deliberately mirrors x/tools so the analyzers can be ported to
// the real framework by swapping this import if the dependency ever lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"setlearn/internal/lint/cfg"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow <name> suppression comments. It must be a valid
	// identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Scope, when non-empty, restricts the packages the *driver* runs this
	// analyzer over: a package is in scope if its import path equals, or is
	// a subpackage of, one of these prefixes. Test harnesses bypass Scope
	// and run the analyzer on whatever package they load.
	Scope []string

	// Run executes the check on one package.
	Run func(*Pass) error
}

// InScope reports whether the analyzer applies to the package with the
// given import path under its Scope restriction.
func (a *Analyzer) InScope(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, p := range a.Scope {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding reported by an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string

	// Trace, when non-empty, is the interprocedural call chain that leads
	// from the reported position to the construct the finding is about —
	// one human-readable step per element, outermost first. Intraprocedural
	// analyzers leave it nil.
	Trace []string
}

// PackageInfo describes one loaded, type-checked package for the benefit
// of interprocedural analyzers that follow call chains outside the package
// a Pass was created for. It carries exactly the fields a Pass carries for
// its own package.
type PackageInfo struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Shared is a per-run cache shared by every Pass a driver creates in one
// invocation, so interprocedural state (loaded packages, call graphs,
// function summaries) is computed once per run rather than once per
// (package, analyzer) pair. Safe for concurrent use.
type Shared struct {
	mu sync.Mutex
	m  map[string]any
}

// NewShared returns an empty per-run cache.
func NewShared() *Shared { return &Shared{m: make(map[string]any)} }

// Get returns the value cached under key, calling build to create it on
// first request. build runs with the cache lock held, so it must not call
// back into Get.
func (s *Shared) Get(key string, build func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	v := build()
	s.m[key] = v
	return v
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// LoadPackage, when set by the driver, resolves a module-local import
	// path to its parsed, type-checked sources so interprocedural analyzers
	// can follow call chains across package boundaries. Drivers that cannot
	// load dependency source (the vet unitchecker, which only sees export
	// data) leave it nil, and such analyzers degrade to package-local
	// reasoning.
	LoadPackage func(path string) (*PackageInfo, error)

	// Shared is the per-run cache described above. Drivers that run one
	// package at a time may leave it nil; PassShared lazily creates a
	// pass-private cache in that case so analyzers need not nil-check.
	Shared *Shared

	suppress *suppressionIndex
	sink     func(Diagnostic)
	cfgs     map[ast.Node]*cfg.Graph
}

// PassShared returns the pass's run-wide cache, creating a pass-private
// one when the driver did not install any.
func (p *Pass) PassShared() *Shared {
	if p.Shared == nil {
		p.Shared = NewShared()
	}
	return p.Shared
}

// PackageInfo returns the pass's own package in the shape interprocedural
// code uses for every package, local or loaded.
func (p *Pass) PackageInfo() *PackageInfo {
	return &PackageInfo{
		Path:  p.Pkg.Path(),
		Fset:  p.Fset,
		Files: p.Files,
		Types: p.Pkg,
		Info:  p.TypesInfo,
	}
}

// NewPass assembles a Pass. The sink receives every diagnostic that
// survives suppression filtering; malformed suppression comments are
// themselves reported through the sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		suppress:  buildSuppressionIndex(fset, files),
		sink:      sink,
	}
}

// Reportf reports a diagnostic at pos unless a well-formed
// //lint:allow comment for this analyzer covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportTracef(pos, nil, format, args...)
}

// ReportTracef reports a diagnostic carrying an interprocedural call-chain
// trace. Suppression applies at pos exactly as for Reportf: an allow
// comment at the reported (root) line silences the whole chain.
func (p *Pass) ReportTracef(pos token.Pos, trace []string, format string, args ...interface{}) {
	if p.suppress.allows(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.sink(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name, Trace: trace})
}

// CFG returns the control-flow graph of fn's body, where fn is an
// *ast.FuncDecl or *ast.FuncLit. Graphs are built on first request and
// cached for the life of the Pass, so several analyzers (or several rules
// within one) share construction cost. Returns nil for bodyless
// declarations and other node kinds.
func (p *Pass) CFG(fn ast.Node) *cfg.Graph {
	if g, ok := p.cfgs[fn]; ok {
		return g
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return nil
	}
	g := cfg.Build(p.Fset, body)
	if p.cfgs == nil {
		p.cfgs = make(map[ast.Node]*cfg.Graph)
	}
	p.cfgs[fn] = g
	return g
}

// ReportBadSuppressions emits a diagnostic for every //lint:allow comment
// that names this analyzer but carries no justification. The driver calls
// it once per (package, analyzer) pair so that a bare escape hatch is
// itself a lint failure rather than a silent pass.
func (p *Pass) ReportBadSuppressions() {
	for _, bad := range p.suppress.malformed(p.Analyzer.Name) {
		p.sink(Diagnostic{
			Pos:      bad,
			Message:  "//lint:allow " + p.Analyzer.Name + " needs a justification: write //lint:allow " + p.Analyzer.Name + " -- <why this is safe>",
			Analyzer: p.Analyzer.Name,
		})
	}
}
