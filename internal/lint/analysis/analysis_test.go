package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// reportAt runs a trivial analyzer that reports once on the ident named
// "target" and returns the surviving diagnostics.
func reportAt(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset, files := parse(t, src)
	a := &Analyzer{Name: "demo", Doc: "test analyzer"}
	var got []Diagnostic
	pass := NewPass(a, fset, files, nil, nil, func(d Diagnostic) { got = append(got, d) })
	ast.Inspect(files[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "target" {
			pass.Reportf(id.Pos(), "found target")
		}
		return true
	})
	pass.ReportBadSuppressions()
	return got
}

func TestSuppressionTrailing(t *testing.T) {
	got := reportAt(t, `package p
var target = 1 //lint:allow demo -- trailing comments cover their own line
`)
	if len(got) != 0 {
		t.Fatalf("trailing suppression ignored: %v", got)
	}
}

func TestSuppressionStandalone(t *testing.T) {
	got := reportAt(t, `package p
//lint:allow demo -- standalone comments cover the next line
var target = 1
`)
	if len(got) != 0 {
		t.Fatalf("standalone suppression ignored: %v", got)
	}
}

func TestSuppressionWrongAnalyzer(t *testing.T) {
	got := reportAt(t, `package p
var target = 1 //lint:allow other -- names a different analyzer
`)
	if len(got) != 1 {
		t.Fatalf("suppression for another analyzer must not apply: %v", got)
	}
}

func TestSuppressionWrongLine(t *testing.T) {
	got := reportAt(t, `package p
//lint:allow demo -- covers only the next line

var target = 1
`)
	if len(got) != 1 {
		t.Fatalf("suppression two lines above must not apply: %v", got)
	}
}

func TestSuppressionWithoutJustification(t *testing.T) {
	got := reportAt(t, `package p
var target = 1 //lint:allow demo
`)
	if len(got) != 2 {
		t.Fatalf("want original diagnostic + malformed-suppression diagnostic, got %v", got)
	}
	found := false
	for _, d := range got {
		if strings.Contains(d.Message, "needs a justification") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing justification diagnostic: %v", got)
	}
}

func TestInScope(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"setlearn/internal/mat"}}
	for path, want := range map[string]bool{
		"setlearn/internal/mat":     true,
		"setlearn/internal/mat/sub": true,
		"setlearn/internal/matrix":  false,
		"setlearn/internal/nn":      false,
	} {
		if got := a.InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{Name: "y"}
	if !unscoped.InScope("anything/at/all") {
		t.Error("empty Scope must match every package")
	}
}
