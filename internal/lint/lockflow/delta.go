// Net lock-delta summaries: the interprocedural half of lockflow. A
// helper like (*Container).lockShard or (*Container).unlockAll is
// described by the signed change it makes to each lock's hold depth
// between entry and every normal return — +1 write hold on "c.mu" for a
// lock wrapper, -1 for its unlock twin, zero for a self-balanced helper.
// Callers fold these deltas into their own may-held state at the call
// site (AnalyzeCalls), so lockbalance follows lock/unlock pairs split
// across helper boundaries instead of going blind at the first call.
//
// A summary exists only when every normal-return path agrees on the net
// effect: a helper that locks on one branch and not another, or whose
// net depends on loop trip count, is ambiguous and stays unsummarised
// (its calls are treated as lock-neutral, the old behaviour). Panic paths
// are excluded — the summary describes what the caller observes when the
// call returns.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
)

// Delta is the signed net change a helper makes to one lock's hold
// depths, clamped to [-2, 2] ("two or more" collapses, mirroring Held).
type Delta struct {
	W, R int
}

// Summary maps lock keys — in some function's own namespace ("c.mu" for
// receiver c) — to their net deltas. Zero deltas are dropped; an empty or
// nil Summary means the function is lock-neutral.
type Summary map[string]Delta

// Resolver resolves a call that is not itself a mutex operation to the
// net lock effect of its callee, with keys already rewritten into the
// calling function's namespace. ok is false when the callee cannot be
// summarised (unresolvable, ambiguous, recursive, or out of reach); such
// calls are treated as lock-neutral.
type Resolver func(call *ast.CallExpr) (Summary, bool)

// dstate is the delta-analysis lattice element: the signed net effect
// accumulated from function entry to a program point. reached
// distinguishes the bottom element (no path here yet) from "reached with
// zero net effect"; bad is the conflict top — two paths disagreed.
type dstate struct {
	reached bool
	bad     bool
	d       map[string]Delta // canonical: zero-delta entries dropped
}

type deltaLattice struct{}

func (deltaLattice) Init() dstate { return dstate{} }

func (deltaLattice) Join(a, b dstate) dstate {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	if a.bad || b.bad || !sameDeltas(a.d, b.d) {
		return dstate{reached: true, bad: true}
	}
	return a
}

func (deltaLattice) Equal(a, b dstate) bool {
	return a.reached == b.reached && a.bad == b.bad && sameDeltas(a.d, b.d)
}

func sameDeltas(a, b map[string]Delta) bool {
	if len(a) != len(b) {
		return false
	}
	for k, da := range a {
		if db, ok := b[k]; !ok || da != db {
			return false
		}
	}
	return true
}

// Summarize computes g's net lock effect on normal return. ok is false
// when return paths disagree, when the exit is unreachable (the function
// always panics or loops), or when a loop makes the net ambiguous. sub
// (optional) folds nested helper calls, so wrapper chains summarise
// transitively.
func Summarize(info *types.Info, g *cfg.Graph, sub Resolver) (Summary, bool) {
	res := dataflow.Forward[dstate](g, deltaLattice{}, dstate{reached: true},
		func(b *cfg.Block, in dstate) dstate {
			if !in.reached || in.bad {
				return in
			}
			st := dstate{reached: true, d: cloneDeltas(in.d)}
			for _, n := range b.Nodes {
				st = foldDelta(info, st, n, sub)
				if st.bad {
					return st
				}
			}
			return st
		})
	st := res.In[g.Exit]
	if !st.reached || st.bad {
		return nil, false
	}
	if len(st.d) == 0 {
		return nil, true
	}
	return Summary(st.d), true
}

// foldDelta is apply's signed twin: it folds one CFG node's mutex
// operations (and summarised helper calls) into st. Defer semantics match
// Analyze — a deferred release runs before any normal return, so it
// counts toward the net-at-return the summary describes.
func foldDelta(info *types.Info, st dstate, n ast.Node, sub Resolver) dstate {
	if d, isDefer := n.(*ast.DeferStmt); isDefer {
		if key, op, ok := MutexOp(info, d.Call); ok {
			return shift(st, key, op)
		}
		if lit, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit); isLit {
			astq.Inspect(lit.Body, func(m ast.Node, _ []ast.Node) bool {
				if _, isInner := m.(*ast.FuncLit); isInner {
					return false
				}
				if call, isCall := m.(*ast.CallExpr); isCall {
					if key, op, ok := MutexOp(info, call); ok && (op == Unlock || op == RUnlock) {
						st = shift(st, key, op)
					}
				}
				return true
			})
			return st
		}
		if sub != nil {
			if sum, ok := sub(d.Call); ok {
				st = shiftAll(st, sum)
			}
		}
		return st
	}
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			if key, op, ok := MutexOp(info, call); ok {
				st = shift(st, key, op)
			} else if sub != nil {
				if sum, ok := sub(call); ok {
					st = shiftAll(st, sum)
				}
			}
		}
		return true
	})
	return st
}

func shift(st dstate, key string, op Op) dstate {
	if st.d == nil {
		st.d = make(map[string]Delta)
	}
	d := st.d[key]
	switch op {
	case Lock:
		d.W = clampDelta(d.W + 1)
	case Unlock:
		d.W = clampDelta(d.W - 1)
	case RLock:
		d.R = clampDelta(d.R + 1)
	case RUnlock:
		d.R = clampDelta(d.R - 1)
	}
	if d == (Delta{}) {
		delete(st.d, key)
	} else {
		st.d[key] = d
	}
	return st
}

func shiftAll(st dstate, sum Summary) dstate {
	if st.d == nil && len(sum) > 0 {
		st.d = make(map[string]Delta)
	}
	for key, nd := range sum {
		d := st.d[key]
		d.W = clampDelta(d.W + nd.W)
		d.R = clampDelta(d.R + nd.R)
		if d == (Delta{}) {
			delete(st.d, key)
		} else {
			st.d[key] = d
		}
	}
	return st
}

func clampDelta(v int) int {
	if v > 2 {
		return 2
	}
	if v < -2 {
		return -2
	}
	return v
}

func cloneDeltas(d map[string]Delta) map[string]Delta {
	if len(d) == 0 {
		return nil
	}
	out := make(map[string]Delta, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

// applyDeltas folds a summarised helper call into the caller's may-held
// state: positive deltas acquire at the call position, negative deltas
// release what the caller (or an earlier helper) acquired.
func applyDeltas(h Held, sum Summary, pos token.Pos) Held {
	for key, d := range sum {
		for i := 0; i < d.W; i++ {
			h = transition(h, key, Lock, pos)
		}
		for i := 0; i < -d.W; i++ {
			h = transition(h, key, Unlock, pos)
		}
		for i := 0; i < d.R; i++ {
			h = transition(h, key, RLock, pos)
		}
		for i := 0; i < -d.R; i++ {
			h = transition(h, key, RUnlock, pos)
		}
	}
	return h
}
