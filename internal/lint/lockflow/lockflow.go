// Package lockflow is the shared lock-state machinery behind the
// path-sensitive analyzers lockbalance and waitgroup: it recognizes
// sync.Mutex/RWMutex state transitions syntactically-plus-typed
// (Lock/RLock/Unlock/RUnlock on a sync receiver), keys each lock by the
// source text of its receiver expression, and runs a forward may-held
// analysis over a function's CFG.
//
// The domain is finite by construction: per key, read and write hold
// depths are clamped to [0, 2] ("held twice or more" collapses to 2), and
// the join takes the maximum depth with the earliest acquire position, so
// the worklist solver terminates on loops.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
)

// Op is a mutex state transition.
type Op int

const (
	Lock Op = iota
	RLock
	Unlock
	RUnlock
)

// MutexOp reports whether call is a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex (possibly embedded through a named type's
// promoted method set is NOT matched — the receiver type must be the sync
// type itself, which is how the repo declares its mutexes). key is the
// source text of the receiver expression, e.g. "c.mu" or "sh.mu".
func MutexOp(info *types.Info, call *ast.CallExpr) (key string, op Op, ok bool) {
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock":
		op = Lock
	case "RLock":
		op = RLock
	case "Unlock":
		op = Unlock
	case "RUnlock":
		op = RUnlock
	default:
		return "", 0, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", 0, false
	}
	named := astq.NamedOrPointee(recv.Type())
	if named == nil {
		return "", 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	return types.ExprString(sel.X), op, true
}

// Info is the may-held record for one lock key.
type Info struct {
	R, W       int       // read / write hold depth, clamped to [0, 2]
	RPos, WPos token.Pos // earliest acquire site still outstanding
}

// Held maps lock keys to their may-held state. A nil map means nothing is
// held; zero-depth entries are dropped so states compare canonically.
type Held map[string]Info

// Lattice is the may-held join semilattice over Held states.
type Lattice struct{}

func (Lattice) Init() Held { return nil }

func (Lattice) Join(a, b Held) Held {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(Held, len(a)+len(b))
	for k, ia := range a {
		out[k] = ia
	}
	for k, ib := range b {
		ia, present := out[k]
		if !present {
			out[k] = ib
			continue
		}
		m := Info{
			R: max(ia.R, ib.R), W: max(ia.W, ib.W),
			RPos: earliest(ia.RPos, ib.RPos),
			WPos: earliest(ia.WPos, ib.WPos),
		}
		out[k] = m
	}
	return out
}

func (Lattice) Equal(a, b Held) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ia := range a {
		if ib, present := b[k]; !present || ia != ib {
			return false
		}
	}
	return true
}

func earliest(a, b token.Pos) token.Pos {
	if a == token.NoPos {
		return b
	}
	if b == token.NoPos {
		return a
	}
	if b < a {
		return b
	}
	return a
}

// Analyze runs the forward may-held analysis over g for exit-balance
// checking: defer statements release immediately at their source position
// — a defer X.Unlock() means every downstream exit releases X, which is
// exactly the balance lockbalance checks. Nested function literals are
// opaque (a closure's locks are its own function's problem).
func Analyze(info *types.Info, g *cfg.Graph) *dataflow.Result[Held] {
	return solve(info, g, true, nil)
}

// AnalyzeCalls is Analyze with helper calls folded in: every call that is
// not itself a mutex operation is resolved through sub, and a summarised
// callee's net lock deltas apply at the call site — s.lockShard(i)
// acquires exactly what the helper's body nets out to, keyed into the
// caller's namespace. Calls sub cannot summarise are lock-neutral, which
// is the intraprocedural behaviour unchanged.
func AnalyzeCalls(info *types.Info, g *cfg.Graph, sub Resolver) *dataflow.Result[Held] {
	return solve(info, g, true, sub)
}

// AnalyzeLive is Analyze with defers left pending: a deferred unlock does
// not release until the function returns, so the lock counts as held at
// every program point after the acquire. This is the view waitgroup needs
// to ask "is the mutex held while Wait blocks here".
func AnalyzeLive(info *types.Info, g *cfg.Graph) *dataflow.Result[Held] {
	return solve(info, g, false, nil)
}

func solve(info *types.Info, g *cfg.Graph, deferReleases bool, sub Resolver) *dataflow.Result[Held] {
	return dataflow.Forward[Held](g, Lattice{}, nil, func(b *cfg.Block, in Held) Held {
		h := clone(in)
		for _, n := range b.Nodes {
			h = apply(info, h, n, deferReleases, sub)
		}
		return canon(h)
	})
}

// StateAtLive replays block b's nodes from state in (from AnalyzeLive)
// and returns the live state just before node index i runs. Used by
// analyzers that need the lock state at a specific call site rather than
// a block boundary.
func StateAtLive(info *types.Info, in Held, b *cfg.Block, i int) Held {
	h := clone(in)
	for j := 0; j < i && j < len(b.Nodes); j++ {
		h = apply(info, h, b.Nodes[j], false, nil)
	}
	return canon(h)
}

// apply folds one CFG node's mutex operations into h (mutating the
// already-cloned h). Operations inside nested FuncLits are skipped except
// for deferred closures, whose unlocks release at the defer site when
// deferReleases is set (and are pending — ignored — otherwise). With a
// non-nil sub, calls that are not mutex operations apply their callee's
// summarised net deltas at the call site — including deferred helper
// calls (defer s.unlockAll()), which release like a deferred Unlock.
func apply(info *types.Info, h Held, n ast.Node, deferReleases bool, sub Resolver) Held {
	if d, isDefer := n.(*ast.DeferStmt); isDefer {
		if !deferReleases {
			return h
		}
		// defer mu.Unlock() — or defer func() { ...mu.Unlock()... }().
		if key, op, ok := MutexOp(info, d.Call); ok {
			return transition(h, key, op, d.Call.Pos())
		}
		if lit, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit); isLit {
			astq.Inspect(lit.Body, func(m ast.Node, _ []ast.Node) bool {
				if _, isInner := m.(*ast.FuncLit); isInner {
					return false
				}
				if call, isCall := m.(*ast.CallExpr); isCall {
					if key, op, ok := MutexOp(info, call); ok && (op == Unlock || op == RUnlock) {
						h = transition(h, key, op, call.Pos())
					}
				}
				return true
			})
			return h
		}
		if sub != nil {
			if sum, ok := sub(d.Call); ok {
				h = applyDeltas(h, sum, d.Call.Pos())
			}
		}
		return h
	}
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			if key, op, ok := MutexOp(info, call); ok {
				h = transition(h, key, op, call.Pos())
			} else if sub != nil {
				if sum, ok := sub(call); ok {
					h = applyDeltas(h, sum, call.Pos())
				}
			}
		}
		return true
	})
	return h
}

func transition(h Held, key string, op Op, pos token.Pos) Held {
	if h == nil {
		h = make(Held)
	}
	i := h[key]
	switch op {
	case Lock:
		if i.W == 0 {
			i.WPos = pos
		}
		if i.W < 2 {
			i.W++
		}
	case RLock:
		if i.R == 0 {
			i.RPos = pos
		}
		if i.R < 2 {
			i.R++
		}
	case Unlock:
		if i.W > 0 {
			i.W--
		}
		if i.W == 0 {
			i.WPos = token.NoPos
		}
	case RUnlock:
		if i.R > 0 {
			i.R--
		}
		if i.R == 0 {
			i.RPos = token.NoPos
		}
	}
	h[key] = i
	return h
}

func clone(h Held) Held {
	if len(h) == 0 {
		return nil
	}
	out := make(Held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// canon drops entries with no outstanding holds so Equal is stable.
func canon(h Held) Held {
	for k, v := range h {
		if v.R == 0 && v.W == 0 {
			delete(h, k)
		}
	}
	if len(h) == 0 {
		return nil
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
