// The summary-framework client glue: NewResolver turns the run-wide
// summary.Store into a lockflow.Resolver, so lock-delta summaries are
// computed once per function per lint run (memo domain "lockdelta") and
// shared by every package lockbalance visits. Helpers are summarised
// lazily, on first call-site demand, following module-local callees
// across package boundaries through the store's source loader; a
// visiting set cuts recursion (recursive helpers stay unsummarised).
//
// Key substitution bridges namespaces at the call site: a helper's
// receiver-rooted key ("c.mu" inside func (c *Container) lockAll) is
// rewritten to the caller's receiver text ("box.mu" for box.lockAll()),
// and a parameter-rooted key ("mu" inside func lockBoth(mu *sync.Mutex))
// becomes the argument's text with any leading & stripped ("s.mu" for
// lockBoth(&s.mu)). Keys rooted elsewhere — package-level mutexes — carry
// over verbatim within the same package and invalidate the substitution
// across packages, where the caller's key namespace cannot name them.
package lockflow

import (
	"go/ast"
	"go/types"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/summary"
)

// NewResolver returns a Resolver for pass's package backed by the
// run-wide summary store. Under a driver without source loading (the vet
// unitchecker) it still summarises same-package helpers; cross-package
// calls degrade to lock-neutral, the documented unitchecker caveat.
func NewResolver(pass *analysis.Pass) Resolver {
	st := summary.For(pass)
	r := &resolver{
		store:    st,
		memo:     st.Memo("lockdelta"),
		visiting: make(map[string]bool),
	}
	from := pass.PackageInfo()
	return func(call *ast.CallExpr) (Summary, bool) {
		return r.atCall(from, call)
	}
}

type resolver struct {
	store    *summary.Store
	memo     *summary.Memo
	visiting map[string]bool
}

// deltaEntry is the memoised (summary, ok) pair; the zero value records a
// function known to be unsummarisable.
type deltaEntry struct {
	sum Summary
	ok  bool
}

func (r *resolver) atCall(from *analysis.PackageInfo, call *ast.CallExpr) (Summary, bool) {
	fn := astq.CalleeFunc(from.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	if path := fn.Pkg().Path(); path != from.Path && !moduleLocal(path) {
		return nil, false
	}
	sum, ok := r.forFunc(fn)
	if !ok || len(sum) == 0 {
		return nil, ok
	}
	d, resolved := r.store.Resolve(fn) // cache hit: forFunc resolved it
	if !resolved {
		return nil, false
	}
	return substitute(sum, d, call, from)
}

func (r *resolver) forFunc(fn *types.Func) (Summary, bool) {
	key := fn.FullName()
	if v, ok := r.memo.Get(fn); ok {
		e := v.(deltaEntry)
		return e.sum, e.ok
	}
	if r.visiting[key] {
		// Recursion: no summary for the cycle member at this point in the
		// walk; not memoised, so a later non-recursive query may succeed.
		return nil, false
	}
	d, ok := r.store.Resolve(fn)
	if !ok {
		r.memo.Set(fn, deltaEntry{})
		return nil, false
	}
	r.visiting[key] = true
	defer delete(r.visiting, key)
	g := cfg.Build(d.Pkg.Fset, d.Decl.Body)
	sum, sok := Summarize(d.Pkg.Info, g, func(call *ast.CallExpr) (Summary, bool) {
		return r.atCall(d.Pkg, call)
	})
	if !sok {
		sum = nil
	}
	r.memo.Set(fn, deltaEntry{sum: sum, ok: sok})
	return sum, sok
}

func moduleLocal(path string) bool {
	return path == "setlearn" || strings.HasPrefix(path, "setlearn/")
}

// substitute rewrites sum's keys from the helper's namespace into the
// caller's. ok is false when any net-effect key cannot be named at the
// call site (method expressions, out-of-range arguments, cross-package
// globals) — the whole call then stays lock-neutral rather than applying
// a half-translated summary.
func substitute(sum Summary, d summary.Fn, call *ast.CallExpr, from *analysis.PackageInfo) (Summary, bool) {
	recvName := ""
	if rl := d.Decl.Recv; rl != nil && len(rl.List) == 1 && len(rl.List[0].Names) == 1 {
		recvName = rl.List[0].Names[0].Name
	}
	recvText := ""
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if s, isMethod := from.Info.Selections[sel]; isMethod && s.Kind() == types.MethodVal {
			recvText = types.ExprString(sel.X)
		}
	}
	params := map[string]int{}
	idx := 0
	for _, f := range d.Decl.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, name := range f.Names {
			params[name.Name] = idx
			idx++
		}
	}
	out := make(Summary, len(sum))
	for k, dl := range sum {
		root, rest := splitKey(k)
		if recvName != "" && root == recvName {
			if recvText == "" {
				return nil, false
			}
			out[recvText+rest] = dl
			continue
		}
		if i, isParam := params[root]; isParam {
			if i >= len(call.Args) {
				return nil, false
			}
			arg := types.ExprString(ast.Unparen(call.Args[i]))
			arg = strings.TrimPrefix(arg, "&")
			out[arg+rest] = dl
			continue
		}
		// Package-level (or otherwise unrooted) key: meaningful only when
		// caller and helper share a namespace.
		if d.Pkg.Path != from.Path {
			return nil, false
		}
		out[k] = dl
	}
	return out, true
}

// splitKey splits a lock key at its root identifier: "c.mu" → ("c",
// ".mu"), "shards[i].mu" → ("shards", "[i].mu"), "mu" → ("mu", "").
func splitKey(k string) (root, rest string) {
	for i := 0; i < len(k); i++ {
		if k[i] == '.' || k[i] == '[' {
			return k[:i], k[i:]
		}
	}
	return k, ""
}
