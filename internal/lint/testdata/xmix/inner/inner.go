package inner

import "sync/atomic"

// Stats is shared state its owner updates atomically.
type Stats struct {
	Hits uint64
	Errs uint64
}

// Bump is the owner's atomic update of Hits.
func (s *Stats) Bump() { atomic.AddUint64(&s.Hits, 1) }

// Drop is an unguarded plain write to Errs — the access the outer
// package's atomic op must be flagged against.
func (s *Stats) Drop() { s.Errs = 0 }
