package outer

import (
	"sync/atomic"

	"setlearn/internal/lint/testdata/xmix/inner"
)

// ReadHits reads plainly what inner.Bump updates atomically: the
// plain-side cross-package finding.
func ReadHits(s *inner.Stats) uint64 {
	return s.Hits
}

// BumpErrs updates atomically what inner.Drop writes plainly: the
// atomic-side cross-package finding, reported here.
func BumpErrs(s *inner.Stats) {
	atomic.AddUint64(&s.Errs, 1)
}
