// Seeded violations for the publication-safety family (pubfreeze,
// atomicmix, mapiterorder), in a separate file so seedmod.go's line
// numbers — pinned by the JSON and SARIF golden tests — stay stable.
// `make lint-all` runs these analyzers over this package and FAILS THE
// BUILD if any of the three does NOT reject it.
package seedmod

import (
	"encoding/binary"
	"io"
	"sync/atomic"
)

type snapshot struct {
	n int
}

var current atomic.Pointer[snapshot]

// PublishThenScrub mutates a snapshot after publishing it: pubfreeze must
// flag the helper call past the Store.
func PublishThenScrub() {
	next := &snapshot{n: 1}
	current.Store(next)
	scrubSnapshot(next)
}

func scrubSnapshot(s *snapshot) { s.n = 0 }

type seedCounter struct {
	hits uint64
}

// MixedAccess pairs an atomic add with an unguarded plain read of the
// same field: atomicmix must flag the read.
func (c *seedCounter) MixedAccess() uint64 {
	atomic.AddUint64(&c.hits, 1)
	return c.hits
}

// DumpUnsorted encodes straight out of a map range: mapiterorder must
// flag the loop.
func DumpUnsorted(w io.Writer, m map[uint32]float64) {
	for _, v := range m {
		binary.Write(w, binary.LittleEndian, v)
	}
}
