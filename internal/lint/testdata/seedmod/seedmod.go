// Package seedmod is the seeded regression for `make lint-interproc`: a
// deliberately allocating //lint:hotpath function whose allocation hides
// two calls deep. The CI target runs noalloc over this package and FAILS
// THE BUILD if the analyzer does NOT reject it — proving the
// interprocedural machinery (call graph, summaries, traces) still works
// before trusting its silence on the real hot paths.
//
// The package lives under testdata/ so the go toolchain and the lint
// driver's recursive ./... expansion both skip it; only the explicit
// pattern in the lint-interproc target reaches it.
package seedmod

import (
	"encoding/binary"
	"io"
)

// HotQuery pretends to be a serving-path root: annotated, but reaching an
// allocation through helperLen → newBuf. noalloc must report it with the
// full two-step trace.
//
//lint:hotpath
func HotQuery(n int) int {
	return helperLen(n)
}

func helperLen(n int) int {
	return len(newBuf(n))
}

func newBuf(n int) []byte { return make([]byte, n) }

// LoadCounts pretends to be a loader: it decodes a count and sizes an
// allocation with it, with no bounds check in sight. trustlen must
// report it.
func LoadCounts(r io.Reader) ([]uint64, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	return make([]uint64, n), nil
}
