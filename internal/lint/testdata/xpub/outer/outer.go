package outer

import (
	"sync/atomic"

	"setlearn/internal/lint/testdata/xpub/inner"
)

var cur atomic.Pointer[inner.State]

// Bad publishes then lets a helper in another package mutate the
// published snapshot: the cross-package case the summary store resolves.
func Bad() {
	st := &inner.State{N: 1}
	cur.Store(st)
	inner.Scrub(st)
}

// Good only reads through the cross-package helper after publishing.
func Good() int {
	st := &inner.State{N: 1}
	cur.Store(st)
	return inner.Peek(st)
}
