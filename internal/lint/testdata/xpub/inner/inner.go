package inner

// State is the published snapshot type the outer package hot-swaps.
type State struct{ N int }

// Scrub zeroes the state in place — a mutation when called on a
// published snapshot.
func Scrub(s *State) { s.N = 0 }

// Peek only reads.
func Peek(s *State) int { return s.N }
