// Package linttest runs an analyzer over a testdata package and checks its
// diagnostics against // want "regexp" comments, following the conventions
// of golang.org/x/tools/go/analysis/analysistest:
//
//	x := a == b // want `floateq: .*==.*`
//
// Every diagnostic must be matched by a want comment on its line, and
// every want comment must be matched by a diagnostic. Analyzer Scope is
// ignored — testdata packages exercise the check itself, not the driver's
// package filter.
package linttest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/load"
)

var wantRE = regexp.MustCompile("// want (.*)$")

// Run loads testdata/src/<pkg> relative to the caller's directory and
// checks analyzer a against its want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	loader, err := load.NewLoader(".")
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	lp, err := loader.LoadFiles(pkg, paths)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	for _, terr := range lp.TypeErrors {
		t.Errorf("linttest: testdata does not type-check: %v", terr)
	}

	var got []analysis.Diagnostic
	pass := analysis.NewPass(a, lp.Fset, lp.Files, lp.Types, lp.Info, func(d analysis.Diagnostic) {
		got = append(got, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: analyzer %s: %v", a.Name, err)
	}
	pass.ReportBadSuppressions()

	wants := collectWants(t, paths)
	for _, d := range got {
		pos := lp.Fset.Position(d.Pos)
		if !wants.match(pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", rel(pos), d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct{ wants []*want }

// collectWants scans raw source lines for want comments; each carries one
// or more backquoted or double-quoted regexps.
func collectWants(t *testing.T, paths []string) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range splitPatterns(m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("linttest: %s:%d: bad want pattern %q: %v", p, i+1, pat, err)
				}
				ws.wants = append(ws.wants, &want{file: p, line: i + 1, re: re})
			}
		}
	}
	return ws
}

// splitPatterns parses a want payload like `"a" "b"` or "`a` `b`".
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	return out
}

func (ws *wantSet) match(pos token.Position, msg string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.line == pos.Line && sameFile(w.file, pos.Filename) && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

func sameFile(a, b string) bool {
	return filepath.Base(a) == filepath.Base(b)
}

func rel(pos token.Position) string {
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}
