// Package deferclose generalizes poolpair's pairing discipline to path
// coverage: a resource acquired from os.Open/Create/OpenFile,
// net.Listen/Dial, or a pool Get must be released on every path from the
// acquire to a return — by a (possibly deferred) Close, a pool Put, being
// returned to the caller, or being handed to another owner. Paths taken
// only when the acquire's error result is non-nil are exempt (there is no
// resource to release), as are resources captured by closures or go
// statements (ownership escapes the straight-line analysis).
//
// Functions too branchy to enumerate within the dataflow path budget are
// skipped entirely rather than reported on partial evidence.
package deferclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "deferclose",
	Doc: "resources from os.Open/net.Listen/pool Get must be released on " +
		"every path (defer Close/Put, return, or hand-off); an uncovered " +
		"early return leaks the handle or pooled object",
	Scope: []string{
		"setlearn/internal/server",
		"setlearn/internal/shard",
		"setlearn/internal/hybrid",
		"setlearn/internal/deepsets",
		"setlearn/internal/sets",
		"setlearn/internal/core",
		"setlearn/cmd",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFn(pass, n, n.Body)
				}
			case *ast.FuncLit:
				checkFn(pass, n, n.Body)
			}
			return true
		})
	}
	return nil
}

// acquire is one resource-producing assignment.
type acquire struct {
	src    string       // "os.Open", "net.Listen", "p.pool.Get", ...
	pooled bool         // release is Put rather than Close
	vobj   types.Object // the resource variable
	vname  string
	errObj types.Object // the paired error variable, if any
	block  *cfg.Block
	node   int // index of the acquiring node within block
	pos    token.Pos
}

func checkFn(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	g := pass.CFG(fn)
	if g == nil {
		return
	}
	info := pass.TypesInfo

	var acquires []acquire
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			rhs := ast.Unparen(as.Rhs[0])
			if ta, isTA := rhs.(*ast.TypeAssertExpr); isTA {
				rhs = ast.Unparen(ta.X) // pool.Get().(*T)
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			src, pooled, ok := acquireCall(info, call)
			if !ok || len(as.Lhs) == 0 {
				continue
			}
			vid, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok || vid.Name == "_" {
				continue
			}
			vobj := info.ObjectOf(vid)
			if vobj == nil {
				continue
			}
			a := acquire{src: src, pooled: pooled, vobj: vobj, vname: vid.Name, block: b, node: i, pos: as.Pos()}
			if len(as.Lhs) > 1 {
				if eid, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && eid.Name != "_" {
					a.errObj = info.ObjectOf(eid)
				}
			}
			acquires = append(acquires, a)
		}
	}
	if len(acquires) == 0 {
		return
	}

	for _, a := range acquires {
		if escapes(info, body, a.vobj) {
			continue
		}
		checkAcquire(pass, g, a)
	}
}

// acquireCall classifies a call as resource-producing.
func acquireCall(info *types.Info, call *ast.CallExpr) (src string, pooled bool, ok bool) {
	for _, name := range [...]string{"Open", "Create", "OpenFile"} {
		if astq.IsPkgFunc(info, call, "os", name) {
			return "os." + name, false, true
		}
	}
	for _, name := range [...]string{"Listen", "ListenTCP", "ListenUDP", "ListenPacket", "Dial", "DialTimeout"} {
		if astq.IsPkgFunc(info, call, "net", name) {
			return "net." + name, false, true
		}
	}
	if fn := astq.CalleeFunc(info, call); fn != nil && fn.Name() == "Get" && astq.PoolMethod(fn) {
		return types.ExprString(call.Fun), true, true
	}
	return "", false, false
}

// escapes reports whether the resource variable is captured by any
// function literal or passed in a go statement: ownership leaves the
// path-coverage analysis.
func escapes(info *types.Info, body *ast.BlockStmt, vobj types.Object) bool {
	found := false
	astq.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		id, isID := n.(*ast.Ident)
		if !isID || info.Uses[id] != vobj {
			return true
		}
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkAcquire(pass *analysis.Pass, g *cfg.Graph, a acquire) {
	info := pass.TypesInfo
	violated := false
	complete := dataflow.Paths(g, a.block, g.Exit, dataflow.Limit(g), func(path []*cfg.Block) bool {
		if pathCovered(info, path, a) {
			return true
		}
		violated = true
		return false // first uncovered path is enough
	})
	if !complete && !violated {
		return // too branchy to enumerate honestly; do not report
	}
	if violated {
		release := "defer " + a.vname + ".Close() right after the acquire"
		if a.pooled {
			release = "defer the Put right after the Get"
		}
		pass.Reportf(a.pos, "%s from %s is not released on every path; an early return leaks it — %s",
			a.vname, a.src, release)
	}
}

// pathCovered walks one acquire→exit path and reports whether the
// resource is released, handed off, or the path is error-exempt.
func pathCovered(info *types.Info, path []*cfg.Block, a acquire) bool {
	for pi, b := range path {
		start := 0
		if pi == 0 {
			start = a.node + 1
		}
		for _, n := range b.Nodes[start:] {
			if covers(info, n, a) {
				return true
			}
		}
		// Transition exemption: a branch taken only when the acquire's
		// error is non-nil has no resource to release.
		if pi+1 < len(path) && a.errObj != nil && errExempt(info, b, path[pi+1], a.errObj) {
			return true
		}
	}
	return false
}

// errExempt reports whether taking the b→next edge implies the acquire
// failed: the condition is `err != nil` and next is the true successor,
// or `err == nil` and next is the false successor.
func errExempt(info *types.Info, b, next *cfg.Block, errObj types.Object) bool {
	cond, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok || len(b.Succs) != 2 {
		return false
	}
	if cond.Op != token.NEQ && cond.Op != token.EQL {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, isID := ast.Unparen(e).(*ast.Ident)
		return isID && info.ObjectOf(id) == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, isID := ast.Unparen(e).(*ast.Ident)
		return isID && id.Name == "nil"
	}
	if !(matches(cond.X) && isNil(cond.Y)) && !(matches(cond.Y) && isNil(cond.X)) {
		return false
	}
	if cond.Op == token.NEQ {
		return next == b.Succs[0] // err != nil, true edge
	}
	return next == b.Succs[1] // err == nil, false edge
}

// covers reports whether CFG node n releases, aliases, reassigns, or
// returns the resource.
func covers(info *types.Info, n ast.Node, a acquire) bool {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if isObj(info, r, a.vobj) {
				return true
			}
		}
		return false
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if isObj(info, l, a.vobj) {
				return true // reassigned: tracking stops
			}
		}
		for _, r := range n.Rhs {
			if isObj(info, r, a.vobj) {
				return true // aliased: the alias owns the release
			}
		}
	}
	found := false
	astq.Inspect(n, func(m ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		if lit, isLit := m.(*ast.FuncLit); isLit {
			return astq.DeferredLit(lit, stack)
		}
		call, isCall := m.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if releasesObj(info, call, a) {
			found = true
		}
		return true
	})
	return found
}

// releasesObj matches v.Close() or pool.Put(v).
func releasesObj(info *types.Info, call *ast.CallExpr, a acquire) bool {
	if a.pooled {
		fn := astq.CalleeFunc(info, call)
		if fn != nil && fn.Name() == "Put" && astq.PoolMethod(fn) &&
			len(call.Args) == 1 && isObj(info, call.Args[0], a.vobj) {
			return true
		}
		return false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return isSel && sel.Sel.Name == "Close" && isObj(info, sel.X, a.vobj)
}

func isObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, isID := ast.Unparen(e).(*ast.Ident)
	return isID && info.ObjectOf(id) == obj
}
