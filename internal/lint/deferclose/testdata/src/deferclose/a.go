package deferclose

import (
	"errors"
	"os"
	"sync"
)

type predictor struct{ k int }

type predictorPool struct{ pool sync.Pool }

func (p *predictorPool) Get() *predictor  { return p.pool.Get().(*predictor) }
func (p *predictorPool) Put(x *predictor) { p.pool.Put(x) }

// deferredClose is the canonical correct shape.
func deferredClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// closedOnEachPath releases inline on both branches.
func closedOnEachPath(path string, probe func(*os.File) bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if probe(f) {
		f.Close()
		return nil
	}
	f.Close()
	return errors.New("probe failed")
}

// earlyReturnLeaks forgets the handle on the probe-failure path.
func earlyReturnLeaks(path string, probe func(*os.File) bool) error {
	f, err := os.Open(path) // want `f from os\.Open is not released on every path`
	if err != nil {
		return err
	}
	if !probe(f) {
		return errors.New("probe failed")
	}
	f.Close()
	return nil
}

// returnedToCaller transfers ownership; the caller closes.
func returnedToCaller(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// errorPathExempt: the nested validation failure still closes; only the
// acquire's own error path is exempt.
func errorPathExempt(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// poolGetLeaks can return before Put on the early-exit branch.
func (p *predictorPool) poolGetLeaks(n int) int {
	pred := p.Get() // want `pred from p\.Get is not released on every path`
	if n < 0 {
		return -1
	}
	out := pred.k + n
	p.Put(pred)
	return out
}

// poolGetDeferred is the discipline poolpair already demands, now path-checked.
func (p *predictorPool) poolGetDeferred(n int) int {
	pred := p.Get()
	defer p.Put(pred)
	return pred.k + n
}

// syncPoolAsserted: the type assertion around Get still counts as an acquire.
func syncPoolAsserted(pool *sync.Pool, use func(*predictor) bool) bool {
	x := pool.Get().(*predictor) // want `x from pool\.Get is not released on every path`
	if use(x) {
		pool.Put(x)
		return true
	}
	return false
}

// handedToClosure escapes the analysis; the closure owns the lifetime.
func handedToClosure(path string) (func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return func() error { return f.Close() }, nil
}

// aliasOwnsIt: the alias takes over the release.
func aliasOwnsIt(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var r *os.File
	r = f
	defer r.Close()
	return nil
}

// singletonHandle deliberately stays open for the process lifetime.
func singletonHandle(path string) (*os.File, error) {
	//lint:allow deferclose -- process-lifetime log sink, closed by the OS at exit
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var probe [1]byte
	if _, err := f.Read(probe[:]); err != nil {
		return nil, err
	}
	return f, nil
}
