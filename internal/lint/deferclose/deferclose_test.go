package deferclose_test

import (
	"testing"

	"setlearn/internal/lint/deferclose"
	"setlearn/internal/lint/linttest"
)

func TestDeferclose(t *testing.T) {
	linttest.Run(t, deferclose.Analyzer, "deferclose")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"setlearn/internal/server",
		"setlearn/internal/shard",
		"setlearn/internal/sets",
		"setlearn/cmd/setlearnd",
	} {
		if !deferclose.Analyzer.InScope(pkg) {
			t.Errorf("deferclose should cover %s", pkg)
		}
	}
	if deferclose.Analyzer.InScope("setlearn/internal/mat") {
		t.Error("deferclose should not cover resource-free numeric kernels")
	}
}
