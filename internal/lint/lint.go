// Package lint assembles setlearn's custom analyzers into one suite and
// drives them over the module. cmd/setlearnlint is a thin shell around
// this package; keeping the driver here makes the whole pipeline —
// pattern expansion, type-checking, scope filtering, suppression handling,
// diagnostic formatting — testable with plain go test.
package lint

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/binioerr"
	"setlearn/internal/lint/deferclose"
	"setlearn/internal/lint/floateq"
	"setlearn/internal/lint/globalrand"
	"setlearn/internal/lint/goroleak"
	"setlearn/internal/lint/load"
	"setlearn/internal/lint/lockbalance"
	"setlearn/internal/lint/lockescape"
	"setlearn/internal/lint/poolpair"
	"setlearn/internal/lint/waitgroup"
)

// Analyzers is the full setlearnlint suite, in stable order.
var Analyzers = []*analysis.Analyzer{
	binioerr.Analyzer,
	deferclose.Analyzer,
	floateq.Analyzer,
	globalrand.Analyzer,
	goroleak.Analyzer,
	lockbalance.Analyzer,
	lockescape.Analyzer,
	poolpair.Analyzer,
	waitgroup.Analyzer,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result summarises one driver run.
type Result struct {
	Diagnostics int // findings reported (after suppression)
	Errors      int // parse/type errors encountered
	Packages    int // packages analysed
}

// Run lints the packages matching patterns (relative to dir) with the
// given analyzers (all of them when analyzers is nil), writing
// file:line:col-style findings to w. Scope restrictions apply: a scoped
// analyzer only sees its packages.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer) (Result, error) {
	if analyzers == nil {
		analyzers = Analyzers
	}
	var res Result
	loader, err := load.NewLoader(dir)
	if err != nil {
		return res, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return res, err
	}
	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", d, err)
			res.Errors++
			continue
		}
		res.Packages++
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(w, "%v\n", terr)
			res.Errors++
		}
		res.Diagnostics += analyzePackage(loader, pkg, analyzers, w)
	}
	return res, nil
}

func analyzePackage(loader *load.Loader, pkg *load.Package, analyzers []*analysis.Analyzer, w io.Writer) int {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if !a.InScope(pkg.Path) {
			continue
		}
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(w, "%s: analyzer %s failed: %v\n", pkg.Path, a.Name, err)
			continue
		}
		pass.ReportBadSuppressions()
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(loader.ModuleDir, file); err == nil {
			file = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	return len(diags)
}
