// Package lint assembles setlearn's custom analyzers into one suite and
// drives them over the module. cmd/setlearnlint is a thin shell around
// this package; keeping the driver here makes the whole pipeline —
// pattern expansion, type-checking, scope filtering, suppression handling,
// diagnostic formatting — testable with plain go test.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/binioerr"
	"setlearn/internal/lint/deferclose"
	"setlearn/internal/lint/floateq"
	"setlearn/internal/lint/globalrand"
	"setlearn/internal/lint/goroleak"
	"setlearn/internal/lint/load"
	"setlearn/internal/lint/lockbalance"
	"setlearn/internal/lint/lockescape"
	"setlearn/internal/lint/noalloc"
	"setlearn/internal/lint/poolpair"
	"setlearn/internal/lint/trustlen"
	"setlearn/internal/lint/waitgroup"
)

// Analyzers is the full setlearnlint suite, in stable order.
var Analyzers = []*analysis.Analyzer{
	binioerr.Analyzer,
	deferclose.Analyzer,
	floateq.Analyzer,
	globalrand.Analyzer,
	goroleak.Analyzer,
	lockbalance.Analyzer,
	lockescape.Analyzer,
	noalloc.Analyzer,
	poolpair.Analyzer,
	trustlen.Analyzer,
	waitgroup.Analyzer,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result summarises one driver run.
type Result struct {
	Diagnostics int // findings reported (after suppression)
	Errors      int // parse/type errors encountered
	Packages    int // packages analysed
}

// Options tunes a driver run.
type Options struct {
	// JSON switches the output from file:line:col text lines to one JSON
	// document (see jsonReport) so CI can annotate pull requests.
	JSON bool
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File     string   `json:"file"` // module-relative, forward slashes
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Trace    []string `json:"trace,omitempty"` // interprocedural call chain, outermost first
}

// jsonReport is the document -json emits.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Errors      []string         `json:"errors"`
	Packages    int              `json:"packages"`
}

// Run lints the packages matching patterns (relative to dir) with the
// given analyzers (all of them when analyzers is nil), writing
// file:line:col-style findings to w. Scope restrictions apply: a scoped
// analyzer only sees its packages.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer) (Result, error) {
	return RunWithOptions(dir, patterns, analyzers, w, Options{})
}

// RunWithOptions is Run with output options.
func RunWithOptions(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer, opts Options) (Result, error) {
	if analyzers == nil {
		analyzers = Analyzers
	}
	var res Result
	loader, err := load.NewLoader(dir)
	if err != nil {
		return res, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return res, err
	}

	report := jsonReport{Diagnostics: []jsonDiagnostic{}, Errors: []string{}}
	errf := func(format string, args ...any) {
		res.Errors++
		if opts.JSON {
			report.Errors = append(report.Errors, fmt.Sprintf(format, args...))
		} else {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}

	// One Shared cache and one package-loading hook per run: the
	// interprocedural analyzers keep loaded packages, call graphs, and
	// function summaries here, computed once across every (package,
	// analyzer) pair.
	shared := analysis.NewShared()
	pkgCache := make(map[string]*analysis.PackageInfo)
	pkgFailed := make(map[string]error)
	loadPkg := func(path string) (*analysis.PackageInfo, error) {
		if pi, ok := pkgCache[path]; ok {
			return pi, nil
		}
		if err, ok := pkgFailed[path]; ok {
			return nil, err
		}
		load := func() (*analysis.PackageInfo, error) {
			rel, ok := strings.CutPrefix(path, loader.ModulePath+"/")
			if !ok {
				return nil, fmt.Errorf("lint: %s is not module-local", path)
			}
			p, err := loader.LoadDir(filepath.Join(loader.ModuleDir, filepath.FromSlash(rel)))
			if err != nil {
				return nil, err
			}
			return &analysis.PackageInfo{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}, nil
		}
		pi, err := load()
		if err != nil {
			pkgFailed[path] = err
			return nil, err
		}
		pkgCache[path] = pi
		return pi, nil
	}

	for _, d := range dirs {
		pkg, err := loader.LoadDir(d)
		if err != nil {
			errf("%s: %v", d, err)
			continue
		}
		res.Packages++
		for _, terr := range pkg.TypeErrors {
			errf("%v", terr)
		}
		diags := analyzePackage(pkg, analyzers, shared, loadPkg, errf)
		res.Diagnostics += len(diags)
		for _, diag := range diags {
			pos := pkg.Fset.Position(diag.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(loader.ModuleDir, file); err == nil {
				file = rel
			}
			if opts.JSON {
				report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
					File:     filepath.ToSlash(file),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: diag.Analyzer,
					Message:  diag.Message,
					Trace:    diag.Trace,
				})
			} else {
				fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, diag.Message, diag.Analyzer)
			}
		}
	}

	if opts.JSON {
		report.Packages = res.Packages
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return res, err
		}
	}
	return res, nil
}

func analyzePackage(pkg *load.Package, analyzers []*analysis.Analyzer, shared *analysis.Shared, loadPkg func(string) (*analysis.PackageInfo, error), errf func(string, ...any)) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if !a.InScope(pkg.Path) {
			continue
		}
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		pass.Shared = shared
		pass.LoadPackage = loadPkg
		if err := a.Run(pass); err != nil {
			errf("%s: analyzer %s failed: %v", pkg.Path, a.Name, err)
			continue
		}
		pass.ReportBadSuppressions()
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}
