// Package lint assembles setlearn's custom analyzers into one suite and
// drives them over the module. cmd/setlearnlint is a thin shell around
// this package; keeping the driver here makes the whole pipeline —
// pattern expansion, type-checking, scope filtering, suppression handling,
// diagnostic formatting — testable with plain go test.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/atomicmix"
	"setlearn/internal/lint/binioerr"
	"setlearn/internal/lint/deferclose"
	"setlearn/internal/lint/floateq"
	"setlearn/internal/lint/globalrand"
	"setlearn/internal/lint/goroleak"
	"setlearn/internal/lint/load"
	"setlearn/internal/lint/lockbalance"
	"setlearn/internal/lint/lockescape"
	"setlearn/internal/lint/mapiterorder"
	"setlearn/internal/lint/noalloc"
	"setlearn/internal/lint/poolpair"
	"setlearn/internal/lint/pubfreeze"
	"setlearn/internal/lint/trustlen"
	"setlearn/internal/lint/waitgroup"
)

// Analyzers is the full setlearnlint suite, in stable order.
var Analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	binioerr.Analyzer,
	deferclose.Analyzer,
	floateq.Analyzer,
	globalrand.Analyzer,
	goroleak.Analyzer,
	lockbalance.Analyzer,
	lockescape.Analyzer,
	mapiterorder.Analyzer,
	noalloc.Analyzer,
	poolpair.Analyzer,
	pubfreeze.Analyzer,
	trustlen.Analyzer,
	waitgroup.Analyzer,
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result summarises one driver run.
type Result struct {
	Diagnostics int // findings reported (after suppression)
	Errors      int // parse/type errors encountered
	Packages    int // packages analysed
}

// Options tunes a driver run.
type Options struct {
	// JSON switches the output from file:line:col text lines to one JSON
	// document (see jsonReport) so CI can annotate pull requests.
	JSON bool

	// SARIF switches the output to a SARIF 2.1.0 log (one run, one result
	// per finding, interprocedural traces as relatedLocations) for code
	// scanning uploads. Takes precedence over JSON.
	SARIF bool

	// Timing, when non-nil, receives one line per analyzer with its
	// cumulative wall time across all analysed packages, slowest first.
	Timing io.Writer
}

// jsonDiagnostic is one finding in -json output.
type jsonDiagnostic struct {
	File     string   `json:"file"` // module-relative, forward slashes
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Trace    []string `json:"trace,omitempty"` // interprocedural call chain, outermost first
}

// jsonReport is the document -json emits.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Errors      []string         `json:"errors"`
	Packages    int              `json:"packages"`
}

// Run lints the packages matching patterns (relative to dir) with the
// given analyzers (all of them when analyzers is nil), writing
// file:line:col-style findings to w. Scope restrictions apply: a scoped
// analyzer only sees its packages.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer) (Result, error) {
	return RunWithOptions(dir, patterns, analyzers, w, Options{})
}

// RunWithOptions is Run with output options.
func RunWithOptions(dir string, patterns []string, analyzers []*analysis.Analyzer, w io.Writer, opts Options) (Result, error) {
	if analyzers == nil {
		analyzers = Analyzers
	}
	var res Result
	loader, err := load.NewLoader(dir)
	if err != nil {
		return res, err
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		return res, err
	}

	structured := opts.JSON || opts.SARIF
	report := jsonReport{Diagnostics: []jsonDiagnostic{}, Errors: []string{}}
	errf := func(format string, args ...any) {
		res.Errors++
		if structured {
			report.Errors = append(report.Errors, fmt.Sprintf(format, args...))
		} else {
			fmt.Fprintf(w, format+"\n", args...)
		}
	}

	// One Shared cache and one package-load cache per run. The main loop
	// and the interprocedural analyzers' LoadPackage hook share the cache,
	// keyed both by directory (the loop's view) and by import path (the
	// hook's view), so no package is parsed or type-checked twice even when
	// an analyzer pulls in a package the loop will visit later.
	shared := analysis.NewShared()
	type pkgEntry struct {
		pkg *load.Package
		pi  *analysis.PackageInfo
		err error
	}
	byDir := make(map[string]*pkgEntry)
	byPath := make(map[string]*pkgEntry)
	loadDir := func(d string) *pkgEntry {
		if e, ok := byDir[d]; ok {
			return e
		}
		e := &pkgEntry{}
		e.pkg, e.err = loader.LoadDir(d)
		if e.err == nil {
			p := e.pkg
			e.pi = &analysis.PackageInfo{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
			byPath[p.Path] = e
		}
		byDir[d] = e
		return e
	}
	loadPkg := func(path string) (*analysis.PackageInfo, error) {
		if e, ok := byPath[path]; ok {
			return e.pi, e.err
		}
		rel, ok := strings.CutPrefix(path, loader.ModulePath+"/")
		if !ok {
			err := fmt.Errorf("lint: %s is not module-local", path)
			byPath[path] = &pkgEntry{err: err}
			return nil, err
		}
		e := loadDir(filepath.Join(loader.ModuleDir, filepath.FromSlash(rel)))
		if e.err != nil {
			byPath[path] = e
		}
		return e.pi, e.err
	}

	timing := make(map[string]time.Duration)
	for _, d := range dirs {
		e := loadDir(d)
		if e.err != nil {
			errf("%s: %v", d, e.err)
			continue
		}
		pkg := e.pkg
		res.Packages++
		for _, terr := range pkg.TypeErrors {
			errf("%v", terr)
		}
		diags := analyzePackage(pkg, analyzers, shared, loadPkg, errf, timing)
		res.Diagnostics += len(diags)
		for _, diag := range diags {
			pos := pkg.Fset.Position(diag.Pos)
			file := pos.Filename
			if rel, err := filepath.Rel(loader.ModuleDir, file); err == nil {
				file = rel
			}
			if structured {
				report.Diagnostics = append(report.Diagnostics, jsonDiagnostic{
					File:     filepath.ToSlash(file),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: diag.Analyzer,
					Message:  diag.Message,
					Trace:    diag.Trace,
				})
			} else {
				fmt.Fprintf(w, "%s:%d:%d: %s (%s)\n", file, pos.Line, pos.Column, diag.Message, diag.Analyzer)
			}
		}
	}

	if opts.Timing != nil {
		writeTiming(opts.Timing, analyzers, timing)
	}

	switch {
	case opts.SARIF:
		if err := writeSARIF(w, analyzers, report); err != nil {
			return res, err
		}
	case opts.JSON:
		report.Packages = res.Packages
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return res, err
		}
	}
	return res, nil
}

func analyzePackage(pkg *load.Package, analyzers []*analysis.Analyzer, shared *analysis.Shared, loadPkg func(string) (*analysis.PackageInfo, error), errf func(string, ...any), timing map[string]time.Duration) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if !a.InScope(pkg.Path) {
			continue
		}
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		pass.Shared = shared
		pass.LoadPackage = loadPkg
		start := time.Now()
		err := a.Run(pass)
		timing[a.Name] += time.Since(start)
		if err != nil {
			errf("%s: analyzer %s failed: %v", pkg.Path, a.Name, err)
			continue
		}
		pass.ReportBadSuppressions()
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// writeTiming prints one line per analyzer with its cumulative wall time,
// slowest first. Interprocedural analyzers front-load shared work (package
// loads, call graphs) into whichever of them runs first, so read the table
// as a budget check, not a per-analyzer microbenchmark.
func writeTiming(w io.Writer, analyzers []*analysis.Analyzer, timing map[string]time.Duration) {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.SliceStable(names, func(i, j int) bool { return timing[names[i]] > timing[names[j]] })
	fmt.Fprintf(w, "analyzer timing (cumulative across %d analyzers):\n", len(names))
	for _, n := range names {
		fmt.Fprintf(w, "  %-13s %s\n", n, timing[n].Round(time.Microsecond))
	}
}
