package lockbalance

import "sync"

// Interprocedural cases: lock and unlock operations hidden behind helper
// calls. lockflow summarises each helper's net effect and lockbalance
// folds it in at the call site, so the pairs below balance (or leak)
// exactly as if the mutex calls were inlined.

type box struct {
	mu   sync.RWMutex
	vals map[string]int
}

// Lock wrappers: net +1 write / +1 read / -1 write / -1 read on b.mu.
// The acquiring wrappers are themselves lock handoffs, so each carries
// the justification lockbalance demands of any function that returns
// holding a lock.

func (b *box) lockSection() {
	//lint:allow lockbalance -- lock wrapper: callers release via unlockSection
	b.mu.Lock()
}

func (b *box) unlockSection() { b.mu.Unlock() }

func (b *box) rlockSection() {
	//lint:allow lockbalance -- lock wrapper: callers release via runlockSection
	b.mu.RLock()
}

func (b *box) runlockSection() { b.mu.RUnlock() }

// helperBalanced: acquire and release both go through helpers.
func (b *box) helperBalanced(k string) int {
	b.lockSection()
	defer b.unlockSection()
	return b.vals[k]
}

// helperLeak: the helper-acquired lock never reaches a release on the
// early-return path; the finding lands on the helper call.
func (b *box) helperLeak(k string) (int, bool) {
	b.lockSection() // want `b\.mu\.Lock\(\) can reach a return with the lock still held`
	v, ok := b.vals[k]
	if !ok {
		return 0, false
	}
	b.unlockSection()
	return v, true
}

// mixedBalanced: a direct acquire released through a helper, inline on
// each branch.
func (b *box) mixedBalanced(k string) (int, bool) {
	b.mu.RLock()
	if v, ok := b.vals[k]; ok {
		b.runlockSection()
		return v, true
	}
	b.runlockSection()
	return 0, false
}

// mixedLeak: helper-read-acquired, one branch forgets the release.
func (b *box) mixedLeak(k string) (int, bool) {
	b.rlockSection() // want `b\.mu\.RLock\(\) can reach a return with the lock still held`
	if v, ok := b.vals[k]; ok {
		b.mu.RUnlock()
		return v, true
	}
	return 0, false
}

// selfBalancedHelper nets to zero (lock + deferred unlock), so callers
// owe nothing.
func (b *box) selfBalancedHelper(k string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.vals[k]
}

func (b *box) callsSelfBalanced(k string) int {
	return b.selfBalancedHelper(k) + 1
}

// Chained wrappers: a helper calling a helper still summarises.

func (b *box) lockChained() {
	//lint:allow lockbalance -- lock wrapper: callers release via unlockSection
	b.lockSection()
}

func (b *box) chainedLeak(k string) int {
	b.lockChained() // want `b\.mu\.Lock\(\) can reach a return with the lock still held`
	return b.vals[k]
}

func (b *box) chainedBalanced(k string) int {
	b.lockChained()
	defer b.unlockSection()
	return b.vals[k]
}

// Parameter-rooted keys: the helper locks whatever mutex it is handed,
// and the caller's argument text names the lock.

func lockMu(mu *sync.Mutex) {
	//lint:allow lockbalance -- lock wrapper: callers release via unlockMu
	mu.Lock()
}

func unlockMu(mu *sync.Mutex) { mu.Unlock() }

type pair struct {
	left  sync.Mutex
	right sync.Mutex
}

func (p *pair) paramBalanced() {
	lockMu(&p.left)
	lockMu(&p.right)
	unlockMu(&p.right)
	unlockMu(&p.left)
}

func (p *pair) paramLeak() {
	lockMu(&p.left) // want `p\.left\.Lock\(\) can reach a return with the lock still held`
	lockMu(&p.right)
	unlockMu(&p.right)
}

// conditionalHelper's net effect depends on the branch, so it has no
// summary; its calls are lock-neutral and the caller's spurious-looking
// unlock of an unheld mutex is not a finding (may-held analysis).
func (b *box) conditionalHelper(lock bool) {
	if lock {
		b.mu.Lock() // want `b\.mu\.Lock\(\) can reach a return with the lock still held`
	}
}

func (b *box) callsConditional(k string) int {
	b.conditionalHelper(len(k) > 0)
	return b.vals[k]
}

// recursiveHelper can never summarise (cycle); calls stay neutral.
func (b *box) recursiveHelper(n int) {
	if n > 0 {
		b.recursiveHelper(n - 1)
	}
}

func (b *box) callsRecursive(k string) int {
	b.recursiveHelper(3)
	return b.vals[k]
}

// deferredHelperRelease: a deferred unlock helper releases like a
// deferred Unlock — every downstream exit is balanced.
func (b *box) deferredHelperRelease(k string) (int, bool) {
	b.lockSection()
	defer b.unlockSection()
	if v, ok := b.vals[k]; ok {
		return v, true
	}
	return 0, false
}

// handoffHelper intentionally transfers lock ownership to the caller; the
// suppression belongs at the helper call in each caller that leaks it.
func (b *box) acquireForCaller() {
	//lint:allow lockbalance -- lock handoff: documented acquire-side of the pair
	b.mu.Lock()
}

func (b *box) usesHandoff(k string) int {
	//lint:allow lockbalance -- released by the paired releaseForCaller
	b.acquireForCaller()
	return b.vals[k]
}
