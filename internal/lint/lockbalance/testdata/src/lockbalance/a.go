package lockbalance

import (
	"errors"
	"sync"
)

type store struct {
	mu    sync.RWMutex
	inner sync.Mutex
	m     map[string]int
}

var errMissing = errors.New("missing")

// deferredUnlock is the canonical correct shape: defer releases on every
// path, including panics.
func (s *store) deferredUnlock(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// balancedBranches releases inline on each path; no defer needed.
func (s *store) balancedBranches(k string) (int, error) {
	s.mu.RLock()
	if v, ok := s.m[k]; ok {
		s.mu.RUnlock()
		return v, nil
	}
	s.mu.RUnlock()
	return 0, errMissing
}

// earlyReturnLeak forgets the unlock on the error path.
func (s *store) earlyReturnLeak(k string) (int, error) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) can reach a return with the lock still held`
	v, ok := s.m[k]
	if !ok {
		return 0, errMissing
	}
	s.mu.Unlock()
	return v, nil
}

// readLeakOnBranch releases on the hit path only.
func (s *store) readLeakOnBranch(k string) int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) can reach a return with the lock still held`
	if v, ok := s.m[k]; ok {
		s.mu.RUnlock()
		return v
	}
	return 0
}

// panicUnderLock leaks the lock only on the panicking path; a defer would
// cover it.
func (s *store) panicUnderLock(k string) int {
	s.mu.Lock() // want `s\.mu\.Lock\(\) can reach a panic with the lock still held`
	v, ok := s.m[k]
	if !ok {
		panic("missing key")
	}
	s.mu.Unlock()
	return v
}

// loopBreakLeak exits the loop holding the lock acquired inside it.
func (s *store) loopBreakLeak(keys []string) int {
	total := 0
	for _, k := range keys {
		s.inner.Lock() // want `s\.inner\.Lock\(\) can reach a return with the lock still held`
		v, ok := s.m[k]
		if !ok {
			break
		}
		total += v
		s.inner.Unlock()
	}
	return total
}

// loopBalanced locks and unlocks each iteration; the may-analysis must
// not report a leak just because the loop repeats.
func (s *store) loopBalanced(keys []string) int {
	total := 0
	for _, k := range keys {
		s.inner.Lock()
		total += s.m[k]
		s.inner.Unlock()
	}
	return total
}

// deferredClosureUnlock releases through a deferred closure.
func (s *store) deferredClosureUnlock(k string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.m[k]
}

// switchLeak misses the release on one case only.
func (s *store) switchLeak(k string, mode int) int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) can reach a return with the lock still held`
	switch mode {
	case 0:
		s.mu.RUnlock()
		return 0
	case 1:
		v := s.m[k]
		s.mu.RUnlock()
		return v
	default:
		return -1
	}
}

// closureOwnsItsLocks: the FuncLit is analyzed as its own function — its
// balanced lock must not confuse the enclosing function, and vice versa.
func (s *store) closureOwnsItsLocks(keys []string) func() int {
	return func() int {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return len(s.m)
	}
}

// closureLeaks: the leak inside the literal is reported at the literal's
// acquire site.
func (s *store) closureLeaks() func(string) int {
	return func(k string) int {
		s.mu.RLock() // want `s\.mu\.RLock\(\) can reach a return with the lock still held`
		return s.m[k]
	}
}

// handoff intentionally returns holding the lock; the justification keeps
// the suppression honest.
func (s *store) handoff() {
	//lint:allow lockbalance -- lock handoff: caller must invoke release()
	s.mu.Lock()
}
