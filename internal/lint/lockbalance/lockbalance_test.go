package lockbalance_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/lockbalance"
)

func TestLockbalance(t *testing.T) {
	linttest.Run(t, lockbalance.Analyzer, "lockbalance")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"setlearn/internal/hybrid",
		"setlearn/internal/server",
		"setlearn/internal/shard",
		"setlearn/internal/deepsets",
	} {
		if !lockbalance.Analyzer.InScope(pkg) {
			t.Errorf("lockbalance should cover %s", pkg)
		}
	}
	if lockbalance.Analyzer.InScope("setlearn/internal/mat") {
		t.Error("lockbalance should not cover lock-free numeric kernels")
	}
}
