// Package lockbalance enforces path-balanced locking: every sync.Mutex /
// sync.RWMutex acquire must be matched by a release (inline or deferred)
// on every path out of the function — normal returns and explicit panics
// alike. The syntactic lockescape analyzer cannot see that mu.Lock() on
// one branch has no Unlock on an early-return branch; lockbalance runs a
// forward may-held dataflow over the function's CFG, so the sharded
// fan-out paths PR 4 added (per-shard RWMutexes, container locks around
// Insert/Update) cannot silently leak a lock on an error path.
//
// The dataflow is interprocedural through lockflow's net-delta summaries:
// a call to a lock wrapper (s.lockSection(), lockMu(&s.mu)) acquires at
// the call site exactly what the helper's body nets out to, and an
// unlock helper releases it — so lock/unlock pairs split across helper
// boundaries balance, and a helper-acquired lock with no matching
// release is reported at the helper call. Helpers whose net effect is
// path-dependent stay unsummarised and lock-neutral, the old behaviour.
//
// A function that intentionally returns while holding a lock (a lock
// handoff) must carry a //lint:allow lockbalance -- <why> justification.
package lockbalance

import (
	"go/ast"
	"go/token"
	"sort"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "every sync.Mutex/RWMutex Lock or RLock must be released on all exit " +
		"paths (inline on each branch or via defer); a path that returns or " +
		"panics with the lock still held deadlocks the next acquirer",
	Scope: []string{
		"setlearn/internal/hybrid",
		"setlearn/internal/server",
		"setlearn/internal/shard",
		"setlearn/internal/deepsets",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	sub := lockflow.NewResolver(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFn(pass, n, sub)
				}
			case *ast.FuncLit:
				checkFn(pass, n, sub)
			}
			return true
		})
	}
	return nil
}

type leak struct {
	key  string
	pos  token.Pos
	read bool // leaked via RLock rather than Lock
	exit string
}

func checkFn(pass *analysis.Pass, fn ast.Node, sub lockflow.Resolver) {
	g := pass.CFG(fn)
	if g == nil {
		return
	}
	res := lockflow.AnalyzeCalls(pass.TypesInfo, g, sub)

	// Deduplicate by acquire site: a lock leaked at both a return and a
	// panic is one finding, reported against the return (the likelier bug).
	leaks := map[token.Pos]leak{}
	collect := func(h lockflow.Held, exit string) {
		for key, info := range h {
			if info.W > 0 && info.WPos != token.NoPos {
				if _, seen := leaks[info.WPos]; !seen || exit == "return" {
					leaks[info.WPos] = leak{key: key, pos: info.WPos, read: false, exit: exit}
				}
			}
			if info.R > 0 && info.RPos != token.NoPos {
				if _, seen := leaks[info.RPos]; !seen || exit == "return" {
					leaks[info.RPos] = leak{key: key, pos: info.RPos, read: true, exit: exit}
				}
			}
		}
	}
	if len(g.Panic.Preds) > 0 {
		collect(res.In[g.Panic], "panic")
	}
	collect(res.In[g.Exit], "return")

	ordered := make([]leak, 0, len(leaks))
	for _, l := range leaks {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
	for _, l := range ordered {
		acquire, release := "Lock", "Unlock"
		if l.read {
			acquire, release = "RLock", "RUnlock"
		}
		pass.Reportf(l.pos, "%s.%s() can reach a %s with the lock still held; release it on every path or defer %s.%s()",
			l.key, acquire, l.exit, l.key, release)
	}
}
