// Package waitgroup checks the three ways a sync.WaitGroup protocol
// breaks in the sharded fan-out code:
//
//  1. A spawned goroutine that calls wg.Done must do so on every
//     non-panicking path (ideally via defer at the top) — one missed path
//     and Wait hangs forever.
//  2. wg.Add inside a loop must be matched by a Done somewhere: in a
//     goroutine launched by the same function or inline. Add-with-no-Done
//     is an unconditional hang.
//  3. wg.Wait must not run while holding a mutex that the launched
//     goroutines also acquire: the workers block on the mutex, Wait
//     blocks on the workers.
//
// Rules are intraprocedural: a WaitGroup handed to another function for
// completion is outside the analysis and needs a //lint:allow with
// justification if flagged.
package waitgroup

import (
	"go/ast"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/dataflow"
	"setlearn/internal/lint/lockflow"
)

var Analyzer = &analysis.Analyzer{
	Name: "waitgroup",
	Doc: "wg.Add must be matched by wg.Done on every path of the spawned " +
		"goroutine, and wg.Wait must not run under a lock the workers also " +
		"take; either miss deadlocks the fan-out",
	Scope: []string{
		"setlearn/internal/shard",
		"setlearn/internal/server",
		"setlearn/internal/hybrid",
		"setlearn/internal/deepsets",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkUnit(pass, n, n.Body)
				}
			case *ast.FuncLit:
				checkUnit(pass, n, n.Body)
			}
			return true
		})
	}
	return nil
}

// wgCall matches a call to sync.WaitGroup.{Add,Done,Wait}; key is the
// source text of the receiver expression ("wg", "c.wg", ...).
func wgCall(info *types.Info, call *ast.CallExpr) (key, name string, ok bool) {
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	named := astq.NamedOrPointee(recv.Type())
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// checkUnit analyzes one function body: the unit's own statements with
// nested FuncLits opaque, plus the go-closures it launches (each closure
// body is additionally its own unit via the outer walk).
func checkUnit(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	type addSite struct {
		key    string
		call   *ast.CallExpr
		inLoop bool
	}
	var adds []addSite
	var waits []*ast.CallExpr
	doneHere := map[string]bool{} // inline Done at unit level
	var spawned []*ast.GoStmt     // go func(){...}() launched by this unit

	astq.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are their own units
		case *ast.GoStmt:
			if _, isLit := ast.Unparen(n.Call.Fun).(*ast.FuncLit); isLit {
				spawned = append(spawned, n)
				return false // closure body is not unit-level code
			}
		case *ast.CallExpr:
			key, name, ok := wgCall(pass.TypesInfo, n)
			if !ok {
				return true
			}
			switch name {
			case "Add":
				adds = append(adds, addSite{key: key, call: n, inLoop: inLoop(stack)})
			case "Done":
				doneHere[key] = true
			case "Wait":
				waits = append(waits, n)
			}
		}
		return true
	})

	// Rule 1: each spawned closure that signals a WaitGroup must signal it
	// on every non-panic path.
	for _, g := range spawned {
		lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		for _, key := range doneKeys(pass.TypesInfo, lit.Body) {
			cg := pass.CFG(lit)
			if cg == nil {
				continue
			}
			key := key
			ok := dataflow.MustReach(cg, func(n ast.Node) bool {
				return hasWGDone(pass.TypesInfo, n, key)
			})
			if !ok {
				pass.Reportf(g.Pos(), "goroutine can return without calling %s.Done; move it to a defer at the top of the goroutine or %s.Wait will hang",
					key, key)
			}
		}
	}

	// Rule 2: Add inside a loop with no Done anywhere in reach.
	for _, a := range adds {
		if !a.inLoop || doneHere[a.key] {
			continue
		}
		matched := false
		for _, g := range spawned {
			lit := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			for _, key := range doneKeys(pass.TypesInfo, lit.Body) {
				if key == a.key {
					matched = true
				}
			}
		}
		if !matched {
			pass.Reportf(a.call.Pos(), "%s.Add inside a loop has no matching %s.Done in this function or its goroutines; %s.Wait will never return",
				a.key, a.key, a.key)
		}
	}

	// Rule 3: Wait while holding a lock the workers also take.
	if len(waits) > 0 && len(spawned) > 0 {
		g := pass.CFG(fn)
		if g == nil {
			return
		}
		res := lockflow.AnalyzeLive(pass.TypesInfo, g)
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				w := waitIn(pass.TypesInfo, n, waits)
				if w == nil {
					continue
				}
				held := lockflow.StateAtLive(pass.TypesInfo, res.In[b], b, i)
				for lockKey := range held {
					for _, gs := range spawned {
						lit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
						if closureAcquires(pass.TypesInfo, lit.Body, lockKey) {
							wgKey, _, _ := wgCall(pass.TypesInfo, w)
							pass.Reportf(w.Pos(), "%s.Wait() runs while %s is held and goroutines launched here also lock %s; the workers block on the mutex and Wait blocks on the workers",
								wgKey, lockKey, lockKey)
							break
						}
					}
				}
			}
		}
	}
}

// inLoop reports whether the stack crosses a for/range statement without
// leaving the current function body (FuncLits cut the search).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// doneKeys lists the WaitGroup keys body calls Done on, with nested
// FuncLits opaque except deferred closures (a deferred Done still runs).
func doneKeys(info *types.Info, body *ast.BlockStmt) []string {
	seen := map[string]bool{}
	var keys []string
	astq.Inspect(body, func(n ast.Node, stack []ast.Node) bool {
		if lit, isLit := n.(*ast.FuncLit); isLit && !astq.DeferredLit(lit, stack) {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if key, name, ok := wgCall(info, call); ok && name == "Done" && !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// hasWGDone reports whether CFG node n guarantees a Done on key once it
// executes: a direct call, or a defer (deferred Done runs even on panic).
func hasWGDone(info *types.Info, n ast.Node, key string) bool {
	found := false
	astq.Inspect(n, func(m ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		if lit, isLit := m.(*ast.FuncLit); isLit && !astq.DeferredLit(lit, stack) {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			if k, name, ok := wgCall(info, call); ok && name == "Done" && k == key {
				found = true
			}
		}
		return true
	})
	return found
}

// waitIn returns the Wait call contained in CFG node n at unit level, if
// any (nested closures excluded).
func waitIn(info *types.Info, n ast.Node, waits []*ast.CallExpr) *ast.CallExpr {
	var found *ast.CallExpr
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		if found != nil {
			return false
		}
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		for _, w := range waits {
			if m == ast.Node(w) {
				found = w
				return false
			}
		}
		return true
	})
	return found
}

// closureAcquires reports whether the closure body (including its nested
// literals) acquires the lock named by key.
func closureAcquires(info *types.Info, body *ast.BlockStmt, key string) bool {
	found := false
	astq.Inspect(body, func(m ast.Node, _ []ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := m.(*ast.CallExpr); isCall {
			if k, op, ok := lockflow.MutexOp(info, call); ok && k == key && (op == lockflow.Lock || op == lockflow.RLock) {
				found = true
			}
		}
		return true
	})
	return found
}
