package waitgroup_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/waitgroup"
)

func TestWaitgroup(t *testing.T) {
	linttest.Run(t, waitgroup.Analyzer, "waitgroup")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"setlearn/internal/shard",
		"setlearn/internal/server",
		"setlearn/internal/hybrid",
		"setlearn/internal/deepsets",
	} {
		if !waitgroup.Analyzer.InScope(pkg) {
			t.Errorf("waitgroup should cover %s", pkg)
		}
	}
}
