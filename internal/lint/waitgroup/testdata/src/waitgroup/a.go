package waitgroup

import "sync"

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

// boundedWorkers is the canonical correct fan-out: Done is deferred first
// thing in each worker.
func boundedWorkers(work []func() error) []error {
	var wg sync.WaitGroup
	errs := make([]error, len(work))
	for i := range work {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = work[i]()
		}(i)
	}
	wg.Wait()
	return errs
}

// conditionalDone forgets Done on the fallthrough path.
func conditionalDone(work []func() error) {
	var wg sync.WaitGroup
	for i := range work {
		wg.Add(1)
		go func(i int) { // want `goroutine can return without calling wg\.Done`
			if err := work[i](); err != nil {
				wg.Done()
				return
			}
			// missing wg.Done here
		}(i)
	}
	wg.Wait()
}

// addWithoutDone spins the counter up with nothing to spin it down.
func addWithoutDone(work []func()) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1) // want `wg\.Add inside a loop has no matching wg\.Done`
		go func() {
			// worker never signals completion
		}()
	}
	wg.Wait()
}

// waitUnderWorkerLock holds the mutex across Wait while workers need it.
func (p *pool) waitUnderWorkerLock(work []func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for range work {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.mu.Lock()
			p.n++
			p.mu.Unlock()
		}()
	}
	p.wg.Wait() // want `p\.wg\.Wait\(\) runs while p\.mu is held`
}

// waitAfterUnlock releases before waiting; workers can make progress.
func (p *pool) waitAfterUnlock(work []func()) {
	p.mu.Lock()
	for range work {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.mu.Lock()
			p.n++
			p.mu.Unlock()
		}()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// doneViaDeferredClosure still counts: the deferred literal runs on exit.
func doneViaDeferredClosure(work []func()) {
	var wg sync.WaitGroup
	for i := range work {
		wg.Add(1)
		go func(i int) {
			defer func() {
				wg.Done()
			}()
			work[i]()
		}(i)
	}
	wg.Wait()
}

// panicPathExempt: a goroutine that panics past Done is not a silent
// miss (the process dies loudly); only returning paths must signal.
func panicPathExempt(work []func() bool) {
	var wg sync.WaitGroup
	for i := range work {
		wg.Add(1)
		go func(i int) {
			if !work[i]() {
				panic("worker invariant violated")
			}
			wg.Done()
		}(i)
	}
	wg.Wait()
}

// handoffAdd hands completion to another function by contract.
func handoffAdd(wg *sync.WaitGroup, work []func()) {
	for range work {
		//lint:allow waitgroup -- completion handed to runDetached by contract
		wg.Add(1)
	}
}
