package noalloc_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/noalloc"
)

func TestNoalloc(t *testing.T) {
	linttest.Run(t, noalloc.Analyzer, "noalloc")
}
