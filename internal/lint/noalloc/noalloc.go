// Package noalloc statically enforces the zero-allocation contract of
// functions annotated //lint:hotpath: no allocating construct may be
// reachable from an annotated root through any call chain. The dynamic
// pins (testing.AllocsPerRun in deepsets/alloc_test.go) catch regressions
// on the inputs they run; this analyzer catches them on every path, at
// lint time, with a call-chain trace — a helper extracted from
// Predictor32.Predict cannot silently reintroduce an allocation.
//
// Allocating constructs: make, new, append, escaping composite literals
// (slice/map literals and address-taken &T{...}; plain struct literals
// are stack values), map writes, string concatenation,
// string↔[]byte/[]rune conversions,
// interface boxing (concrete non-pointer values passed or assigned to
// interfaces), closure creation, go statements, and calls into allocating
// standard-library packages (fmt, strings, strconv, errors, bytes, sort,
// reflect, regexp, os, io, bufio, log, encoding/*). Calls are followed
// through the summary framework: module-local callees are resolved across
// package boundaries (via the driver's LoadPackage hook) and summarised
// bottom-up; unresolvable calls — function values, interfaces without
// in-package implementations — are themselves findings, since nothing can
// be proven about them.
//
// Three idioms that are allocation-free in steady state are exempt:
//
//   - capacity-guarded growth: make/append under an if whose condition
//     consults cap(...) — the amortised grow-once buffer idiom
//     (Predictor32.pooledLSE, PredictBatch),
//   - panic arguments: allocations (fmt.Sprintf above all) inside the
//     argument of a panic call happen only on the failure path,
//   - append to a caller-provided parameter slice: the documented
//     buffer-reuse idiom (compress.Compress appends into the caller's
//     scratch and returns it).
//
// Soundness caveats, documented in DESIGN.md §11: standard-library calls
// outside the denylist (math, sync, atomic) are assumed allocation-free;
// sync.Pool.Get allocates on a cold pool (steady-state assumption);
// variables captured by reference in deferred literals may be
// heap-allocated by escape analysis; interface boxing is checked at call
// arguments, explicit conversions and assignments, not at returns. Under
// the vet unitchecker (no source for dependencies) the analysis degrades
// to package-local call chains.
//
// A finding is reported at the hotpath root's declaration; //lint:allow
// noalloc there silences the whole tree, while an allow on the offending
// leaf line silences that construct in every trace that reaches it.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/callgraph"
	"setlearn/internal/lint/summary"
)

// HotpathMarker is the annotation comment that opts a function into the
// zero-allocation contract.
const HotpathMarker = "//lint:hotpath"

const (
	maxDepth           = 32 // call-chain depth bound
	maxFindingsPerFunc = 10 // findings carried per function summary
)

// allocPkgs are standard-library packages whose exported calls are treated
// as allocating. Everything else in the stdlib (math, sync, sync/atomic,
// builtin runtime support) is assumed allocation-free — hot paths have no
// business calling the listed packages anyway.
var allocPkgs = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "errors": true,
	"bytes": true, "sort": true, "reflect": true, "regexp": true,
	"os": true, "io": true, "bufio": true, "log": true, "unicode/utf8": true,
}

func allocPkg(path string) bool {
	return allocPkgs[path] || strings.HasPrefix(path, "encoding/")
}

// name is the analyzer name, needed as a constant so helper code can
// reference it without an initialization cycle through Analyzer.
const name = "noalloc"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "functions annotated //lint:hotpath must not reach any allocating construct " +
		"through any call chain; cap-guarded growth, panic arguments, and appends to " +
		"caller-provided buffers are exempt",
	Scope: []string{
		"setlearn/internal/deepsets",
		"setlearn/internal/mat",
		"setlearn/internal/shard",
		"setlearn/internal/hybrid",
		// The CI seeded-regression module: a deliberately-allocating
		// hotpath helper that `make lint-interproc` must reject.
		"setlearn/internal/lint/testdata/seedmod",
	},
	Run: run,
}

// IsHotpath reports whether the declaration carries the //lint:hotpath
// annotation in its doc comment.
func IsHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathMarker || strings.HasPrefix(c.Text, HotpathMarker+" ") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		store:    summary.For(pass),
		visiting: make(map[string]bool),
	}
	c.memo = c.store.Memo("noalloc")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotpath(fd) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.checkRoot(fd, fn)
		}
	}
	return nil
}

// finding is one allocating construct reachable from a function, with the
// call chain (relative to that function) leading to it.
type finding struct {
	desc  string   // construct + position, e.g. `make([]float64, n) at deepsets/model32.go:226`
	steps []string // call chain, outermost call first, e.g. `pooled (deepsets/model32.go:256)`
}

// fnSummary is the bottom-up noalloc summary of one function.
type fnSummary struct {
	findings []finding
	// truncated marks summaries cut short by a recursion back edge (a
	// callee still on the DFS stack); they are not memoised, so a later
	// query entering the cycle elsewhere still sees every member.
	truncated bool
}

type checker struct {
	pass     *analysis.Pass
	store    *summary.Store
	memo     *summary.Memo
	visiting map[string]bool
}

func (c *checker) checkRoot(fd *ast.FuncDecl, fn *types.Func) {
	d, ok := c.store.Resolve(fn)
	if !ok {
		return
	}
	sum := c.summarize(d, 0)
	seen := make(map[string]bool)
	for _, f := range sum.findings {
		key := f.desc + "|" + strings.Join(f.steps, "|")
		if seen[key] {
			continue
		}
		seen[key] = true
		if len(f.steps) == 0 {
			c.pass.Reportf(fd.Name.Pos(), "hotpath %s contains an allocating construct: %s — restructure, or annotate the construct with //lint:allow noalloc -- <why>",
				fd.Name.Name, f.desc)
			continue
		}
		c.pass.ReportTracef(fd.Name.Pos(), f.steps, "hotpath %s reaches an allocating construct: %s via %s — restructure, or annotate the construct with //lint:allow noalloc -- <why>",
			fd.Name.Name, f.desc, strings.Join(f.steps, " → "))
	}
}

// summarize computes (or recalls) the noalloc summary of a resolved
// function: its own allocation sites plus every callee's, composed with
// the call step prepended to each trace.
func (c *checker) summarize(d summary.Fn, depth int) fnSummary {
	if v, ok := c.memo.Get(d.Func); ok {
		return v.(fnSummary)
	}
	if depth > maxDepth {
		return fnSummary{truncated: true}
	}
	key := d.Func.FullName()
	if c.visiting[key] {
		return fnSummary{truncated: true}
	}
	c.visiting[key] = true
	defer delete(c.visiting, key)

	sites, calls := c.scanBody(d)
	var sum fnSummary
	for _, s := range sites {
		sum.findings = append(sum.findings, finding{desc: s})
	}
	for _, call := range calls {
		sub := c.summarize(call.callee, depth+1)
		sum.truncated = sum.truncated || sub.truncated
		for _, f := range sub.findings {
			if len(sum.findings) >= maxFindingsPerFunc {
				break
			}
			steps := make([]string, 0, len(f.steps)+1)
			steps = append(steps, call.step)
			steps = append(steps, f.steps...)
			sum.findings = append(sum.findings, finding{desc: f.desc, steps: steps})
		}
	}
	if len(sum.findings) > maxFindingsPerFunc {
		sum.findings = sum.findings[:maxFindingsPerFunc]
	}
	if !sum.truncated {
		c.memo.Set(d.Func, sum)
	}
	return sum
}

// callEdge is one resolved module-local call out of a function.
type callEdge struct {
	step   string // `pooled (deepsets/model32.go:256)`
	callee summary.Fn
}

// scanBody collects the allocation sites and outgoing resolved calls of
// d's body. Sites covered by a justified //lint:allow noalloc comment in
// d's own package are dropped here, so leaf suppressions hold for every
// root that reaches them.
func (c *checker) scanBody(d summary.Fn) (sites []string, calls []callEdge) {
	pi := d.Pkg
	sup := c.store.Suppressions(pi)
	edges := siteEdges(c.store.Graph(pi), d.Func)
	owned := paramObjects(pi.Info, d.Decl)

	addSite := func(pos ast.Node, desc string) {
		if sup.Allows(name, pi.Fset.Position(pos.Pos())) {
			return
		}
		sites = append(sites, desc+" at "+summary.FormatPos(pi.Fset, pos.Pos()))
	}

	astq.Inspect(d.Decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			addSite(n, "go statement (goroutine allocation)")
			return false
		case *ast.FuncLit:
			if astq.DeferredLit(n, stack) {
				return true // runs within this function; scan its body
			}
			addSite(n, "function literal (closure allocation)")
			return false
		case *ast.CompositeLit:
			if !inPanicArg(pi.Info, stack) {
				c.checkCompositeLit(pi, n, stack, addSite)
			}
			return true
		case *ast.BinaryExpr:
			c.checkConcat(pi, n, addSite)
		case *ast.AssignStmt:
			c.checkAssign(pi, n, addSite)
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(pi.Info, ix) {
				addSite(n, "map write "+short(types.ExprString(n.X)))
			}
		case *ast.CallExpr:
			c.checkCall(pi, n, stack, owned, edges, addSite, &calls)
		}
		return true
	})
	return sites, calls
}

func (c *checker) checkCall(pi *analysis.PackageInfo, call *ast.CallExpr, stack []ast.Node, owned map[types.Object]bool, edges map[*ast.CallExpr]callgraph.Edge, addSite func(ast.Node, string), calls *[]callEdge) {
	info := pi.Info
	switch builtinName(info, call) {
	case "make":
		if !capGuarded(info, stack) && !inPanicArg(info, stack) {
			addSite(call, short(types.ExprString(call)))
		}
		return
	case "new":
		if !inPanicArg(info, stack) {
			addSite(call, short(types.ExprString(call)))
		}
		return
	case "append":
		if len(call.Args) > 0 && ownedSlice(info, call.Args[0], owned) {
			return // append into a caller-provided buffer: the reuse idiom
		}
		if !capGuarded(info, stack) && !inPanicArg(info, stack) {
			addSite(call, short(types.ExprString(call)))
		}
		return
	case "":
		// not a builtin; fall through
	default:
		return // len/cap/copy/delete/panic/... do not allocate
	}

	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		c.checkConversion(pi, call, tv.Type, stack, addSite)
		return
	}

	e, ok := edges[call]
	if !ok {
		return
	}
	if e.Unbounded {
		if !inPanicArg(info, stack) {
			addSite(call, "indirect call "+short(types.ExprString(call.Fun))+" (cannot be proven allocation-free)")
		}
		return
	}
	flagged := false
	for _, callee := range e.Callees {
		if d, resolved := c.store.Resolve(callee); resolved {
			*calls = append(*calls, callEdge{
				step:   callee.Name() + " (" + summary.FormatPos(pi.Fset, call.Pos()) + ")",
				callee: d,
			})
			continue
		}
		path := ""
		if callee.Pkg() != nil {
			path = callee.Pkg().Path()
		}
		if allocPkg(path) && !inPanicArg(info, stack) {
			addSite(call, "call to "+path+"."+callee.Name()+" (allocates)")
			flagged = true
		}
		// Other unresolved callees (math, sync, atomic, other modules
		// without source) are assumed allocation-free — see package doc.
	}
	if !flagged && !inPanicArg(info, stack) {
		c.checkBoxingArgs(pi, call, addSite)
	}
}

// checkCompositeLit flags the composite literals that allocate: slice and
// map literals always carry a heap-backed store, and an address-taken
// literal (&T{...}) escapes unless the compiler proves otherwise. A plain
// struct or array literal is a stack value and stays clean — if it is
// boxed or escapes some other way, the boxing checks catch that flow.
func (c *checker) checkCompositeLit(pi *analysis.PackageInfo, lit *ast.CompositeLit, stack []ast.Node, addSite func(ast.Node, string)) {
	tv, ok := pi.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		addSite(lit, "slice literal "+short(types.ExprString(lit)))
		return
	case *types.Map:
		addSite(lit, "map literal "+short(types.ExprString(lit)))
		return
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			addSite(u, "address-taken composite literal "+short(types.ExprString(u)))
		}
	}
}

// checkConversion flags conversions that allocate: string↔[]byte/[]rune
// and boxing conversions to interface types.
func (c *checker) checkConversion(pi *analysis.PackageInfo, call *ast.CallExpr, dst types.Type, stack []ast.Node, addSite func(ast.Node, string)) {
	if len(call.Args) != 1 || inPanicArg(pi.Info, stack) {
		return
	}
	argTV, ok := pi.Info.Types[call.Args[0]]
	if !ok || argTV.Value != nil {
		return // constant conversions happen at compile time
	}
	src := argTV.Type
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		addSite(call, "conversion "+short(types.ExprString(call))+" copies its operand")
		return
	}
	if types.IsInterface(dst) && boxes(src) {
		addSite(call, "interface conversion "+short(types.ExprString(call))+" boxes a value")
	}
}

// checkBoxingArgs flags concrete non-pointer values passed to interface
// parameters — each such argument is boxed into an interface at the call.
func (c *checker) checkBoxingArgs(pi *analysis.PackageInfo, call *ast.CallExpr, addSite func(ast.Node, string)) {
	tv, ok := pi.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		atv, ok := pi.Info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(atv.Type) && boxes(atv.Type) {
			addSite(arg, "argument "+short(types.ExprString(arg))+" boxed into interface parameter")
		}
	}
}

func (c *checker) checkConcat(pi *analysis.PackageInfo, e *ast.BinaryExpr, addSite func(ast.Node, string)) {
	if e.Op != token.ADD {
		return
	}
	tv, ok := pi.Info.Types[e]
	if !ok || tv.Value != nil || !isString(tv.Type) {
		return
	}
	addSite(e, "string concatenation "+short(types.ExprString(e)))
}

func (c *checker) checkAssign(pi *analysis.PackageInfo, a *ast.AssignStmt, addSite func(ast.Node, string)) {
	info := pi.Info
	for _, lhs := range a.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, ix) {
			addSite(lhs, "map write "+short(types.ExprString(lhs)))
		}
	}
	// Boxing through assignment: concrete non-pointer RHS into an
	// interface-typed LHS (1:1 assignments only).
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := lhsType(info, lhs)
		rtv, ok := info.Types[a.Rhs[i]]
		if lt == nil || !ok || rtv.Type == nil || rtv.IsNil() {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rtv.Type) && boxes(rtv.Type) {
			addSite(a.Rhs[i], "value "+short(types.ExprString(a.Rhs[i]))+" boxed into interface "+short(types.ExprString(lhs)))
		}
	}
}

// --- small type/AST helpers ---

// siteEdges indexes fn's callgraph edges by call site.
func siteEdges(g *callgraph.Graph, fn *types.Func) map[*ast.CallExpr]callgraph.Edge {
	out := make(map[*ast.CallExpr]callgraph.Edge)
	if n, ok := g.Nodes[fn]; ok {
		for _, e := range n.Edges {
			out[e.Site] = e
		}
	}
	return out
}

// paramObjects returns the parameter and receiver objects of fd — the
// slices a function may append into without owning the allocation.
func paramObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// ownedSlice reports whether e (an append destination) bottoms out in a
// parameter or receiver of the enclosing function — possibly through
// re-slicing like buf[:0] — so the backing array belongs to the caller.
func ownedSlice(info *types.Info, e ast.Expr, owned map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return owned[info.Uses[x]]
		default:
			return false
		}
	}
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// capGuarded reports whether an ancestor if-statement's condition consults
// cap(...): the grow-once buffer idiom's signature.
func capGuarded(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok && builtinName(info, call) == "cap" {
				found = true
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// inPanicArg reports whether an ancestor is a panic(...) call — the
// construct only runs on the failure path.
func inPanicArg(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok && builtinName(info, call) == "panic" {
			return true
		}
	}
	return false
}

func isMapIndex(info *types.Info, ix *ast.IndexExpr) bool {
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointers, channels, maps, funcs, and unsafe pointers are
// stored directly in the interface word, and zero-size values share the
// runtime's zero base.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		return u.NumFields() > 0
	case *types.Array:
		return u.Len() > 0
	}
	return true
}

func lhsType(info *types.Info, lhs ast.Expr) types.Type {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

// short clamps rendered expressions so diagnostics stay one-line readable.
func short(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
