package noalloc

// Suppression edge cases for the interprocedural trace diagnostics.

// Root-level suppression: an allow on the declaration line silences every
// finding of the whole tree.

//lint:hotpath
//lint:allow noalloc -- perf-audited; the scratch table is grown once at attach time
func suppressedRoot(n int) []int {
	return roothelperAlloc(n)
}

func roothelperAlloc(n int) []int { return make([]int, n) }

// Leaf-level suppression: an allow on the offending construct silences it
// in every trace that reaches it, while the rest of the tree stays
// enforced.

//lint:hotpath
func viaSuppressedLeaf(n int) []byte {
	return warmupBuf(n)
}

func warmupBuf(n int) []byte {
	return make([]byte, n) //lint:allow noalloc -- bounded one-time warmup buffer, measured off the steady-state path
}

// A second root through the same suppressed leaf is silent too, but its
// own allocation is still reported.

//lint:hotpath
func leafPlusOwn(n int) []byte { // want `hotpath leafPlusOwn contains an allocating construct: make\(\[\]byte, 1\)`
	_ = warmupBuf(n)
	return make([]byte, 1)
}

// Malformed suppressions are diagnostics themselves, not escape hatches.

func bareAllow(n int) []byte {
	return make([]byte, n) //lint:allow noalloc // want `//lint:allow noalloc needs a justification`
}

// Multiple analyzer names before the separator leave the suppression
// justification-free: one line, one analyzer.

//lint:allow noalloc floateq -- shared excuse for two analyzers // want `//lint:allow noalloc needs a justification`
func multiAllow(n int) []byte {
	return make([]byte, n)
}
