package noalloc

import "fmt"

// Clean hot paths: pure loops, slicing, arithmetic.

//lint:hotpath
func cleanLoop(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

//lint:hotpath
func cleanSlicing(xs []float64, n int) []float64 {
	return xs[:n]
}

// Direct allocation in the root.

//lint:hotpath
func directMake(n int) []int { // want `hotpath directMake contains an allocating construct: make\(\[\]int, n\)`
	return make([]int, n)
}

// Allocation reached through a two-hop call chain: the diagnostic lands on
// the root with the full trace.

//lint:hotpath
func chainToLeaf(n int) { // want `hotpath chainToLeaf reaches an allocating construct: make\(\[\]byte, n\) at noalloc/a.go:\d+ via mid \(noalloc/a.go:\d+\) → leafAlloc \(noalloc/a.go:\d+\)`
	mid(n)
}

func mid(n int) { leafAlloc(n) }

func leafAlloc(n int) { _ = make([]byte, n) }

// Exemption: capacity-guarded growth (the grow-once buffer idiom).

//lint:hotpath
func capGuarded(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// Exemption: allocations inside panic arguments run on the failure path.

//lint:hotpath
func panicPath(id uint32) uint32 {
	if id > 10 {
		panic(fmt.Sprintf("bad id %d", id))
	}
	return id
}

// Exemption: append into a caller-provided buffer (possibly re-sliced).

//lint:hotpath
func appendParam(dst []uint32, v uint32) []uint32 {
	dst = append(dst[:0], v)
	return append(dst, v+1)
}

// append to a local slice still allocates.

//lint:hotpath
func appendLocal(v int) []int { // want `hotpath appendLocal contains an allocating construct: append\(xs, v\)`
	var xs []int
	return append(xs, v)
}

//lint:hotpath
func mapWrite(m map[int]int, k int) { // want `hotpath mapWrite contains an allocating construct: map write m\[k\]`
	m[k] = k + 1
}

//lint:hotpath
func concat(a, b string) string { // want `hotpath concat contains an allocating construct: string concatenation a \+ b`
	return a + b
}

//lint:hotpath
func closureCapture(x int) func() int { // want `hotpath closureCapture contains an allocating construct: function literal`
	return func() int { return x }
}

//lint:hotpath
func spawns(ch chan int) { // want `hotpath spawns contains an allocating construct: go statement`
	go relay(ch)
}

func relay(ch chan int) { <-ch }

//lint:hotpath
func callsFmt(x int) string { // want `hotpath callsFmt contains an allocating construct: call to fmt.Sprint \(allocates\)`
	return fmt.Sprint(x)
}

//lint:hotpath
func boxesArg(x int) { // want `hotpath boxesArg contains an allocating construct: argument x boxed into interface parameter`
	sink(x)
}

// pointer arguments are stored in the interface word directly: no boxing.

//lint:hotpath
func pointerArgOK(x *int) {
	sink(x)
}

func sink(v any) { _ = v }

//lint:hotpath
func boxesAssign(x float64) any { // want `hotpath boxesAssign contains an allocating construct: value x boxed into interface v`
	var v any
	v = x
	return v
}

//lint:hotpath
func stringBytes(s string) []byte { // want `hotpath stringBytes contains an allocating construct: conversion \[\]byte\(s\) copies its operand`
	return []byte(s)
}

// A plain struct literal is a stack value: clean.

//lint:hotpath
func structLitOK(n int) int {
	p := pair{a: n, b: n}
	return p.a
}

// Slice literals and address-taken literals allocate.

//lint:hotpath
func sliceLit(n int) []int { // want `hotpath sliceLit contains an allocating construct: slice literal`
	return []int{n}
}

//lint:hotpath
func addrLit(n int) *pair { // want `hotpath addrLit contains an allocating construct: address-taken composite literal`
	return &pair{a: n}
}

type pair struct{ a, b int }

//lint:hotpath
func indirect(f func() int) int { // want `hotpath indirect contains an allocating construct: indirect call f`
	return f()
}

// Bounded interface dispatch: the edge fans out over in-package
// implementations, so the allocating one is found.

type valuer interface{ v(n int) int }

type cheap struct{}

func (cheap) v(n int) int { return n }

type costly struct{}

func (costly) v(n int) int { return len(make([]int, n)) }

//lint:hotpath
func dispatches(i valuer, n int) int { // want `hotpath dispatches reaches an allocating construct: make\(\[\]int, n\) at noalloc/a.go:\d+ via v \(noalloc/a.go:\d+\)`
	return i.v(n)
}

// Deferred function literals run within the function: their bodies are
// scanned (and clean ones stay clean).

//lint:hotpath
func deferLitClean(xs []int) int {
	total := 0
	defer func() { total = 0 }()
	for _, x := range xs {
		total += x
	}
	return total
}

//lint:hotpath
func deferLitAllocs(n int) { // want `hotpath deferLitAllocs contains an allocating construct: make\(\[\]int, n\)`
	defer func() { _ = make([]int, n) }()
}

// Recursion terminates: the cycle contributes its members' sites once.

//lint:hotpath
func selfRec(n int) int { // want `hotpath selfRec contains an allocating construct: make\(\[\]int, 1\)`
	if n <= 0 {
		return len(make([]int, 1))
	}
	return selfRec(n - 1)
}

//lint:hotpath
func mutualRoot(n int) int { // want `hotpath mutualRoot reaches an allocating construct: make\(\[\]int, n\) at noalloc/a.go:\d+ via mutA \(noalloc/a.go:\d+\) → mutB \(noalloc/a.go:\d+\)`
	return mutA(n)
}

func mutA(n int) int {
	if n <= 0 {
		return 0
	}
	return mutB(n)
}

func mutB(n int) int { return mutA(n-1) + len(make([]int, n)) }
