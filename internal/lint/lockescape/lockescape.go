// Package lockescape flags methods of mutex-guarded types that return a
// reference to an internal slice or map while the receiver's lock is still
// held. Handing the raw slice/map out of the critical section gives the
// caller an unsynchronised alias into guarded state — the read looks safe
// at the call site and races later, which is exactly the class of bug the
// RWMutex-guarded aux structures in internal/hybrid and internal/server
// exist to prevent. Return a copy, or drop the lock before returning a
// value that does not alias guarded storage.
//
// The lock state is tracked positionally within the method body: Lock and
// RLock acquire; a plain Unlock/RUnlock releases; a deferred unlock holds
// the lock until return. This linear approximation is deliberately simple
// and errs toward reporting; //lint:allow lockescape -- <reason> covers
// the rare intentional hand-off.
package lockescape

import (
	"go/ast"
	"go/types"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockescape",
	Doc: "methods of mutex-guarded types must not return references to internal " +
		"slices/maps while the receiver's lock is held",
	Scope: []string{
		"setlearn/internal/hybrid",
		"setlearn/internal/server",
		"setlearn/internal/shard",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			checkMethod(pass, fd)
		}
	}
	return nil
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recvField := fd.Recv.List[0]
	if len(recvField.Names) == 0 {
		return // unnamed receiver cannot be locked or escaped
	}
	recvName := recvField.Names[0].Name
	named := recvNamed(pass, recvField)
	if named == nil {
		return
	}
	mutexFields := mutexFieldNames(named)
	if len(mutexFields) == 0 {
		return
	}

	// Walk the body once, recording lock events and returns in source
	// order (token.Pos order equals source order within one file).
	var acquires, releases []int
	var returns []*ast.ReturnStmt
	astq.Inspect(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name, onRecvMutex := mutexCall(n, recvName, mutexFields)
			if !onRecvMutex {
				return true
			}
			switch name {
			case "Lock", "RLock":
				acquires = append(acquires, int(n.Pos()))
			case "Unlock", "RUnlock":
				if !astq.InsideDefer(stack) {
					releases = append(releases, int(n.Pos()))
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	locked := func(pos int) bool {
		a, r := 0, 0
		for _, p := range acquires {
			if p < pos {
				a++
			}
		}
		for _, p := range releases {
			if p < pos {
				r++
			}
		}
		return a > r
	}

	for _, ret := range returns {
		if !locked(int(ret.Pos())) {
			continue
		}
		for _, res := range ret.Results {
			if field := escapingField(pass.TypesInfo, res, recvName); field != "" {
				pass.Reportf(res.Pos(), "returning %s.%s (a %s) while %s's lock is held leaks a reference to guarded state; return a copy or unlock first",
					recvName, field, typeKind(pass.TypesInfo, res), recvName)
			}
		}
	}
}

// recvNamed resolves the receiver's named type.
func recvNamed(pass *analysis.Pass, recv *ast.Field) *types.Named {
	tv, ok := pass.TypesInfo.Types[recv.Type]
	if !ok {
		return nil
	}
	return astq.NamedOrPointee(tv.Type)
}

// mutexFieldNames returns the receiver struct's fields of type sync.Mutex
// or sync.RWMutex.
func mutexFieldNames(named *types.Named) map[string]bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make(map[string]bool)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if fn := astq.NamedOrPointee(f.Type()); fn != nil {
			obj := fn.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				out[f.Name()] = true
			}
		}
	}
	return out
}

// mutexCall matches recv.<mutexField>.<method>() and returns the method
// name.
func mutexCall(call *ast.CallExpr, recvName string, mutexFields map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !mutexFields[inner.Sel.Name] {
		return "", false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	if !ok || id.Name != recvName {
		return "", false
	}
	return sel.Sel.Name, true
}

// escapingField reports the field name when res is recv.<field> with slice
// or map type.
func escapingField(info *types.Info, res ast.Expr, recvName string) string {
	sel, ok := ast.Unparen(res).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || id.Name != recvName {
		return ""
	}
	switch info.Types[res].Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return sel.Sel.Name
	}
	return ""
}

func typeKind(info *types.Info, res ast.Expr) string {
	switch info.Types[res].Type.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "reference"
}
