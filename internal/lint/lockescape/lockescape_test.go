package lockescape_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/lockescape"
)

func TestLockescape(t *testing.T) {
	linttest.Run(t, lockescape.Analyzer, "lockescape")
}
