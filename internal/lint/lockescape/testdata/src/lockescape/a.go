package lockescape

import "sync"

type index struct {
	mu    sync.RWMutex
	items []int
	byKey map[string]int
	count int
}

func (s *index) badSliceUnderDefer() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items // want `returning s\.items \(a slice\) while s's lock is held`
}

func (s *index) badMapNoUnlock() map[string]int {
	s.mu.Lock()
	return s.byKey // want `returning s\.byKey \(a map\) while s's lock is held`
}

func (s *index) badMultiResult() ([]int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items, true // want `returning s\.items \(a slice\) while s's lock is held`
}

func (s *index) goodScalarUnderLock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count // scalars copy out safely
}

func (s *index) goodCopyUnderLock() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cp := make([]int, len(s.items))
	copy(cp, s.items)
	return cp
}

func (s *index) goodUnlockBeforeReturn() []int {
	s.mu.RLock()
	v := s.items
	s.mu.RUnlock()
	return v
}

// goodNoLock: methods that never take the lock are out of scope — the
// field may be immutable after construction.
func (s *index) goodNoLock() []int {
	return s.items
}

func (s *index) suppressed() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items //lint:allow lockescape -- single-writer phase, callers are read-only by contract
}

// unguarded has no mutex field at all, so nothing applies.
type unguarded struct {
	items []int
}

func (u *unguarded) all() []int { return u.items }
