// Package atomicmix flags locations accessed both through sync/atomic
// operations and through plain loads/stores: mixing the two is a data
// race even when each side looks locally correct, because the plain
// access carries no happens-before edge. The analyzer builds a per-field
// access-kind index over each package — every function-style atomic call
// (atomic.AddUint64(&x.f, 1)) and every plain read/write of a field or
// package-level variable — and reports each plain access to an
// atomically-accessed location unless the lockflow may-held analysis
// proves a mutex is held at that program point (an access under the
// owner's lock is a sanctioned slow path as long as writers hold the same
// lock, which the human judges; the analyzer only demands SOME
// synchronization).
//
// Cross-package mixing is covered through the per-run shared cache: the
// index of the package that declares a field is consulted when another
// package accesses it, in both directions — a plain access here checks
// the owner's atomic sites, and an atomic access here checks the owner's
// unguarded plain sites. Under the vet unitchecker (no source for
// dependencies) the analysis degrades to package-local.
//
// The typed atomics (atomic.Uint64, atomic.Pointer[T], ...) the repo uses
// on its hot paths cannot mix by construction — the value is private to
// the type and only reachable through Load/Store — so they are not
// indexed. This analyzer exists to keep function-style atomics from
// drifting in: any future atomic.LoadUint64(&plainField) immediately
// creates a contested key.
//
// Caveats: accesses inside function literals take the lock state at the
// point the literal appears in its enclosing function (a closure run
// later under different locking is judged at creation site);
// package-level variable initializers are not indexed (they run before
// any goroutine exists).
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
	"setlearn/internal/lint/lockflow"
	"setlearn/internal/lint/summary"
)

const name = "atomicmix"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "a location accessed through sync/atomic operations must not also be accessed " +
		"with plain loads/stores outside a held mutex — mixed access is a data race " +
		"even when each side looks locally correct",
	Run: run,
}

// site is one recorded access to a keyed location.
type site struct {
	pos   token.Pos
	fd    *ast.FuncDecl // enclosing function (guard analysis scope)
	write bool
	op    string // atomic op name for atomic sites, "read"/"write" for plain
}

// flowInfo caches one function's CFG and live lock analysis.
type flowInfo struct {
	g   *cfg.Graph
	res *dataflow.Result[lockflow.Held]
}

// index is one package's access-kind index. Keys: "F:<ownerPkg>.<Type>.<field>"
// for struct fields, "V:<ownerPkg>.<var>" for package-level variables,
// "L:<pkg>:<declpos>" for locals (never contested cross-package).
type index struct {
	pi     *analysis.PackageInfo
	atomic map[string][]site
	plain  map[string][]site
	owner  map[string]string // key -> declaring package path
	human  map[string]string // key -> short display name
	flows  map[*ast.FuncDecl]*flowInfo
}

func indexFor(shared *analysis.Shared, pi *analysis.PackageInfo) *index {
	return shared.Get("atomicmix:"+pi.Path, func() any { return buildIndex(pi) }).(*index)
}

func run(pass *analysis.Pass) error {
	shared := pass.PassShared()
	own := indexFor(shared, pass.PackageInfo())
	ownerIdx := func(path string) *index {
		if path == "" || path == pass.Pkg.Path() || pass.LoadPackage == nil {
			return nil
		}
		pi, err := pass.LoadPackage(path)
		if err != nil || pi == nil {
			return nil // stdlib, other modules, or unloadable: package-local only
		}
		return indexFor(shared, pi)
	}

	// Plain accesses in this package against atomic accesses here or in the
	// key's declaring package.
	for _, key := range sortedKeys(own.plain) {
		atomics, aFset := own.atomic[key], own.pi.Fset
		if len(atomics) == 0 {
			if oi := ownerIdx(own.owner[key]); oi != nil {
				atomics, aFset = oi.atomic[key], oi.pi.Fset
			}
		}
		if len(atomics) == 0 {
			continue
		}
		aPos := summary.FormatPos(aFset, atomics[0].pos)
		for _, s := range own.plain[key] {
			if own.guarded(s) {
				continue
			}
			pass.Reportf(s.pos,
				"plain %s of %s mixes with %s at %s — every access to an atomically-updated location must use sync/atomic or hold the guarding mutex",
				s.op, own.human[key], atomics[0].op, aPos)
		}
	}

	// Atomic accesses in this package against unguarded plain accesses in
	// the key's declaring package (the converse cross-package direction;
	// the same-package case was reported above, at the plain site).
	for _, key := range sortedKeys(own.atomic) {
		owner := own.owner[key]
		if owner == pass.Pkg.Path() {
			continue
		}
		oi := ownerIdx(owner)
		if oi == nil {
			continue
		}
		var bad *site
		for i := range oi.plain[key] {
			if !oi.guarded(oi.plain[key][i]) {
				bad = &oi.plain[key][i]
				break
			}
		}
		if bad == nil {
			continue
		}
		a := own.atomic[key][0]
		pass.Reportf(a.pos,
			"%s of %s mixes with plain %s at %s in the declaring package — every access to an atomically-updated location must use sync/atomic or hold the guarding mutex",
			a.op, own.human[key], bad.op, summary.FormatPos(oi.pi.Fset, bad.pos))
	}
	return nil
}

// buildIndex scans one package's function bodies for atomic and plain
// accesses to keyable locations.
func buildIndex(pi *analysis.PackageInfo) *index {
	ix := &index{
		pi:     pi,
		atomic: make(map[string][]site),
		plain:  make(map[string][]site),
		owner:  make(map[string]string),
		human:  make(map[string]string),
		flows:  make(map[*ast.FuncDecl]*flowInfo),
	}
	for _, f := range pi.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ix.scanFunc(fd)
		}
	}
	return ix
}

// scanFunc records fd's accesses. skip holds the address-taken operands of
// atomic calls, so the target of atomic.AddUint64(&c.hits, 1) is not also
// recorded as a plain access.
func (ix *index) scanFunc(fd *ast.FuncDecl) {
	info := ix.pi.Info
	skip := make(map[ast.Expr]bool)
	astq.Inspect(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if target, op := atomicTarget(info, n); target != nil {
				skip[target] = true
				if key, owner, humanName := ix.keyOf(target); key != "" {
					ix.record(ix.atomic, key, owner, humanName, site{pos: n.Pos(), fd: fd, op: "sync/atomic " + op})
				}
			}
		case *ast.SelectorExpr:
			if skip[ast.Expr(n)] {
				return true // the atomic call's own target
			}
			key, owner, humanName := ix.keyOf(n)
			if key == "" {
				return true
			}
			write, kind := accessKind(n, stack)
			ix.record(ix.plain, key, owner, humanName, site{pos: n.Pos(), fd: fd, write: write, op: kind})
		case *ast.Ident:
			if skip[ast.Expr(n)] || identSkipped(n, stack) {
				return true
			}
			key, owner, humanName := ix.keyOf(n)
			if key == "" {
				return true
			}
			write, kind := accessKind(n, stack)
			ix.record(ix.plain, key, owner, humanName, site{pos: n.Pos(), fd: fd, write: write, op: kind})
		}
		return true
	})
}

func (ix *index) record(m map[string][]site, key, owner, humanName string, s site) {
	m[key] = append(m[key], s)
	ix.owner[key] = owner
	ix.human[key] = humanName
}

// keyOf maps an access expression to its location key, declaring package,
// and display name. Empty key means the expression is not a keyable
// location (method values, package names, constants, ...).
func (ix *index) keyOf(e ast.Expr) (key, owner, humanName string) {
	info := ix.pi.Info
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return "", "", ""
			}
			fieldVar, ok := sel.Obj().(*types.Var)
			if !ok {
				return "", "", ""
			}
			named := astq.NamedOrPointee(sel.Recv())
			if named == nil || named.Obj().Pkg() == nil {
				return "", "", ""
			}
			owner = named.Obj().Pkg().Path()
			key = "F:" + owner + "." + named.Obj().Name() + "." + fieldVar.Name()
			return key, owner, named.Obj().Name() + "." + fieldVar.Name()
		}
		// No selection: a qualified identifier pkg.V.
		obj, ok := info.Uses[e.Sel].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return "", "", ""
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return "", "", ""
		}
		owner = obj.Pkg().Path()
		return "V:" + owner + "." + obj.Name(), owner, obj.Name()
	case *ast.Ident:
		// Uses only: a defining occurrence (var n uint64, n := ...) is the
		// declaration, not an access.
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj == nil || obj.IsField() || obj.Pkg() == nil {
			return "", "", ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			owner = obj.Pkg().Path()
			return "V:" + owner + "." + obj.Name(), owner, obj.Name()
		}
		// Local: keyed by declaration position, never cross-package.
		return "L:" + ix.pi.Path + ":" + strconv.Itoa(int(obj.Pos())), ix.pi.Path, obj.Name()
	}
	return "", "", ""
}

// identSkipped prunes identifiers that are not themselves accesses: the
// Sel of a selector (the selector node carries the access) and the X of a
// selector when it names a package.
func identSkipped(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == id {
		return true
	}
	return false
}

// accessKind classifies a plain access from its immediate context.
func accessKind(e ast.Expr, stack []ast.Node) (write bool, kind string) {
	if len(stack) == 0 {
		return false, "read"
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == e {
				return true, "write"
			}
		}
	case *ast.IncDecStmt:
		if ast.Unparen(p.X) == e {
			return true, "write"
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return true, "address-taken access"
		}
	}
	return false, "read"
}

// atomicTarget returns the location operand and op name when call is a
// function-style sync/atomic operation (atomic.AddUint64(&x, 1), ...).
// Typed-atomic method calls return nil: their value is unmixable.
func atomicTarget(info *types.Info, call *ast.CallExpr) (ast.Expr, string) {
	fn := astq.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil, ""
	}
	opName := fn.Name()
	switch {
	case strings.HasPrefix(opName, "Load"), strings.HasPrefix(opName, "Store"),
		strings.HasPrefix(opName, "Add"), strings.HasPrefix(opName, "Swap"),
		strings.HasPrefix(opName, "CompareAndSwap"), strings.HasPrefix(opName, "Or"),
		strings.HasPrefix(opName, "And"):
	default:
		return nil, ""
	}
	if len(call.Args) == 0 {
		return nil, ""
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, ""
	}
	return ast.Unparen(u.X), opName
}

// guarded reports whether the lockflow may-held analysis proves some
// mutex is held at s. May-held is deliberately generous: the analyzer
// demands evidence of synchronization, not a proof of the right lock.
func (ix *index) guarded(s site) bool {
	if s.fd == nil {
		return false
	}
	fi, ok := ix.flows[s.fd]
	if !ok {
		g := cfg.Build(ix.pi.Fset, s.fd.Body)
		fi = &flowInfo{g: g, res: lockflow.AnalyzeLive(ix.pi.Info, g)}
		ix.flows[s.fd] = fi
	}
	for _, b := range fi.g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= s.pos && s.pos < n.End() {
				return len(lockflow.StateAtLive(ix.pi.Info, fi.res.In[b], b, i)) > 0
			}
		}
	}
	return false
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
