package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu   sync.Mutex
	hits uint64
	miss uint64
	good uint64
	cold uint64
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.miss, 1)
	atomic.AddUint64(&c.good, 1)
}

// Plain read of an atomically-updated field: racy.
func (c *counter) read() uint64 {
	return c.hits // want `plain read of counter.hits mixes with sync/atomic AddUint64`
}

// Plain write: racier still.
func (c *counter) reset() {
	c.miss = 0 // want `plain write of counter.miss mixes with sync/atomic AddUint64`
}

// A mutex proven held at the access point exempts the plain access.
func (c *counter) lockedRead() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.good
}

// Held on one path only: may-held still exempts (the analyzer demands
// evidence of synchronization, not path-perfect proof).
func (c *counter) halfLocked(lock bool) uint64 {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.good
	}
	return c.good // want `plain read of counter.good mixes with sync/atomic AddUint64`
}

// Fields never touched atomically are free to be plain.
func (c *counter) coldTouch() {
	c.cold++
}

var total uint64

func addTotal() { atomic.AddUint64(&total, 1) }

// Package-level variables are keyed too.
func readTotal() uint64 {
	return total // want `plain read of total mixes with sync/atomic AddUint64`
}

// Taking the address outside an atomic call launders the location into
// plain-pointer territory; flagged as an access.
func leakTotal() *uint64 {
	return &total // want `plain address-taken access of total mixes with sync/atomic AddUint64`
}

// Locals mix the same way (a goroutine elsewhere may hold the pointer).
func localMix() uint32 {
	var n uint32
	atomic.StoreUint32(&n, 1)
	return n // want `plain read of n mixes with sync/atomic StoreUint32`
}

// The typed atomics cannot mix by construction and are not indexed.
type typed struct {
	n atomic.Uint64
}

func (t *typed) inc()        { t.n.Add(1) }
func (t *typed) get() uint64 { return t.n.Load() }
