package atomicmix_test

import (
	"strings"
	"testing"

	"setlearn/internal/lint"
	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/atomicmix"
	"setlearn/internal/lint/linttest"
)

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, atomicmix.Analyzer, "atomicmix")
}

// TestCrossPackage pins both cross-package directions against the
// internal/lint/testdata/xmix fixture: a plain read here of a field the
// declaring package updates atomically, and an atomic update here of a
// field the declaring package writes plainly.
func TestCrossPackage(t *testing.T) {
	var out strings.Builder
	res, err := lint.Run("../..", []string{"./internal/lint/testdata/xmix/outer"},
		[]*analysis.Analyzer{atomicmix.Analyzer}, &out)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	got := out.String()
	if res.Diagnostics != 2 {
		t.Fatalf("want 2 diagnostics (plain-side + atomic-side), got %d:\n%s", res.Diagnostics, got)
	}
	for _, want := range []string{
		"plain read of Stats.Hits", // ReadHits, against inner.Bump's atomic add
		"AddUint64 of Stats.Errs",  // BumpErrs, against inner.Drop's plain write
		"inner/inner.go:16",        // the owner-side plain write location
		"atomicmix",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The declaring package on its own is clean: its atomic and plain
	// fields are disjoint.
	out.Reset()
	res, err = lint.Run("../..", []string{"./internal/lint/testdata/xmix/inner"},
		[]*analysis.Analyzer{atomicmix.Analyzer}, &out)
	if err != nil {
		t.Fatalf("lint.Run(inner): %v", err)
	}
	if res.Diagnostics != 0 || res.Errors != 0 {
		t.Fatalf("inner alone should be clean, got %d diagnostics:\n%s", res.Diagnostics, out.String())
	}
}
