package lint_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"setlearn/internal/lint"
	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/noalloc"
	"setlearn/internal/lint/pubfreeze"
)

// TestRunTempModule drives the whole pipeline — pattern expansion,
// type-checking, scope filtering, reporting — over a throwaway module
// with known violations.
func TestRunTempModule(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmplint\n\ngo 1.22\n")
	write("bad.go", `package tmplint

import (
	"encoding/binary"
	"io"
	"sync"
)

func dropped(r io.Reader, v *uint32) {
	binary.Read(r, binary.LittleEndian, v) // binioerr: discarded
}

func unpaired(p *sync.Pool) {
	x := p.Get()
	p.Put(x) // poolpair: not deferred
}

// floatCompare would trip floateq, but this module is outside its Scope,
// so the driver must not report it.
func floatCompare(a, b float64) bool { return a == b }
`)

	var out strings.Builder
	res, err := lint.Run(dir, []string{"./..."}, nil, &out)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	if res.Packages != 1 {
		t.Fatalf("packages = %d, want 1\n%s", res.Packages, out.String())
	}
	if res.Diagnostics != 2 {
		t.Fatalf("diagnostics = %d, want 2 (binioerr + poolpair):\n%s", res.Diagnostics, out.String())
	}
	got := out.String()
	for _, want := range []string{"(binioerr)", "(poolpair)", "bad.go:10", "bad.go:15"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "floateq") {
		t.Errorf("scoped analyzer leaked outside its packages:\n%s", got)
	}
}

// TestNoallocRealHotPaths is the acceptance gate for the interprocedural
// layer: every //lint:hotpath annotation in the real serving code —
// Predictor32.Predict/PredictBatch and their pool wrappers, the f32 mat
// kernels, the delta read path, the shard delta fan-in — must verify with
// ZERO diagnostics and zero suppressions. A regression in the predictors,
// or an analyzer change that starts flagging the blessed idioms
// (cap-guarded growth, panic arguments, caller-owned appends), fails here.
func TestNoallocRealHotPaths(t *testing.T) {
	var out strings.Builder
	res, err := lint.Run("../..", []string{
		"./internal/deepsets", "./internal/mat", "./internal/shard", "./internal/hybrid",
	}, []*analysis.Analyzer{noalloc.Analyzer}, &out)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	if res.Packages != 4 {
		t.Fatalf("packages = %d, want 4", res.Packages)
	}
	if res.Diagnostics != 0 {
		t.Errorf("real hot paths must verify allocation-free, got %d findings:\n%s",
			res.Diagnostics, out.String())
	}
}

// TestPubfreezeRealHotSwapSites is the acceptance gate for the
// publication-safety layer: every atomic hot-swap in the serving stack —
// hybrid's f32 predictor-pool and calibration-curve swaps, the sharded
// containers' per-shard state swaps in RetrainShard, deepsets' φ-accel
// (PhiTable/PhiCache) attach, core's fast-path options install — must
// verify frozen-after-publish with ZERO diagnostics and zero
// suppressions. A new mutate-after-Store bug, or an analyzer change that
// starts flagging the blessed copy-on-write idiom (build fresh, mutate
// fresh, Store fresh), fails here.
func TestPubfreezeRealHotSwapSites(t *testing.T) {
	dirs := []string{
		"./internal/hybrid", "./internal/shard", "./internal/deepsets",
		"./internal/core", "./internal/server", "./internal/calib",
	}
	var out strings.Builder
	res, err := lint.Run("../..", dirs, []*analysis.Analyzer{pubfreeze.Analyzer}, &out)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	if res.Packages != len(dirs) {
		t.Fatalf("packages = %d, want %d", res.Packages, len(dirs))
	}
	if res.Diagnostics != 0 {
		t.Errorf("real hot-swap sites must verify frozen-after-publish, got %d findings:\n%s",
			res.Diagnostics, out.String())
	}
	// Zero suppressions: the clean pass above must come from the code, not
	// from //lint:allow escape hatches.
	for _, d := range dirs {
		root := filepath.Join("../..", d)
		err := filepath.WalkDir(root, func(path string, de os.DirEntry, err error) error {
			if err != nil || de.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if strings.Contains(string(src), "lint:allow pubfreeze") {
				t.Errorf("%s suppresses pubfreeze — the hot-swap contract must hold without escape hatches", path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestJSONOutput pins the -json document shape against the seedmod
// regression package, whose finding carries an interprocedural trace.
func TestJSONOutput(t *testing.T) {
	var out strings.Builder
	res, err := lint.RunWithOptions("../..", []string{"./internal/lint/testdata/seedmod"},
		[]*analysis.Analyzer{noalloc.Analyzer}, &out, lint.Options{JSON: true})
	if err != nil {
		t.Fatalf("RunWithOptions: %v", err)
	}
	if res.Diagnostics != 1 || res.Errors != 0 {
		t.Fatalf("res = %+v, want 1 diagnostic, 0 errors\n%s", res, out.String())
	}
	var doc struct {
		Diagnostics []struct {
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Col      int      `json:"col"`
			Analyzer string   `json:"analyzer"`
			Message  string   `json:"message"`
			Trace    []string `json:"trace"`
		} `json:"diagnostics"`
		Errors   []string `json:"errors"`
		Packages int      `json:"packages"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Packages != 1 || len(doc.Errors) != 0 || len(doc.Diagnostics) != 1 {
		t.Fatalf("document = %+v", doc)
	}
	d := doc.Diagnostics[0]
	if d.File != "internal/lint/testdata/seedmod/seedmod.go" {
		t.Errorf("file = %q", d.File)
	}
	if d.Line == 0 || d.Col == 0 {
		t.Errorf("missing position: line=%d col=%d", d.Line, d.Col)
	}
	if d.Analyzer != "noalloc" {
		t.Errorf("analyzer = %q", d.Analyzer)
	}
	if !strings.Contains(d.Message, "reaches an allocating construct") {
		t.Errorf("message = %q", d.Message)
	}
	if len(d.Trace) != 2 || !strings.HasPrefix(d.Trace[0], "helperLen ") || !strings.HasPrefix(d.Trace[1], "newBuf ") {
		t.Errorf("trace = %q, want [helperLen ..., newBuf ...]", d.Trace)
	}
}

// TestSARIFOutput pins the -sarif log shape against a golden file, using
// the same seedmod finding as TestJSONOutput so the interprocedural trace
// exercises relatedLocations.
func TestSARIFOutput(t *testing.T) {
	var out strings.Builder
	res, err := lint.RunWithOptions("../..", []string{"./internal/lint/testdata/seedmod"},
		[]*analysis.Analyzer{noalloc.Analyzer}, &out, lint.Options{SARIF: true})
	if err != nil {
		t.Fatalf("RunWithOptions: %v", err)
	}
	if res.Diagnostics != 1 || res.Errors != 0 {
		t.Fatalf("res = %+v, want 1 diagnostic, 0 errors\n%s", res, out.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "sarif_golden.json"))
	if err != nil {
		t.Fatalf("golden: %v", err)
	}
	if got := out.String(); got != string(golden) {
		t.Errorf("SARIF output drifted from testdata/sarif_golden.json:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestByName covers the analyzer registry the -run flag resolves through.
func TestByName(t *testing.T) {
	for _, name := range []string{
		"atomicmix", "binioerr", "deferclose", "floateq", "globalrand",
		"goroleak", "lockbalance", "lockescape", "mapiterorder", "noalloc",
		"poolpair", "pubfreeze", "trustlen", "waitgroup",
	} {
		if lint.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
	if len(lint.Analyzers) != 14 {
		t.Errorf("suite has %d analyzers, want 14", len(lint.Analyzers))
	}
}
