package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"setlearn/internal/lint"
)

// TestRunTempModule drives the whole pipeline — pattern expansion,
// type-checking, scope filtering, reporting — over a throwaway module
// with known violations.
func TestRunTempModule(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmplint\n\ngo 1.22\n")
	write("bad.go", `package tmplint

import (
	"encoding/binary"
	"io"
	"sync"
)

func dropped(r io.Reader, v *uint32) {
	binary.Read(r, binary.LittleEndian, v) // binioerr: discarded
}

func unpaired(p *sync.Pool) {
	x := p.Get()
	p.Put(x) // poolpair: not deferred
}

// floatCompare would trip floateq, but this module is outside its Scope,
// so the driver must not report it.
func floatCompare(a, b float64) bool { return a == b }
`)

	var out strings.Builder
	res, err := lint.Run(dir, []string{"./..."}, nil, &out)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	if res.Packages != 1 {
		t.Fatalf("packages = %d, want 1\n%s", res.Packages, out.String())
	}
	if res.Diagnostics != 2 {
		t.Fatalf("diagnostics = %d, want 2 (binioerr + poolpair):\n%s", res.Diagnostics, out.String())
	}
	got := out.String()
	for _, want := range []string{"(binioerr)", "(poolpair)", "bad.go:10", "bad.go:15"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "floateq") {
		t.Errorf("scoped analyzer leaked outside its packages:\n%s", got)
	}
}

// TestByName covers the analyzer registry the -run flag resolves through.
func TestByName(t *testing.T) {
	for _, name := range []string{
		"binioerr", "deferclose", "floateq", "globalrand", "goroleak",
		"lockbalance", "lockescape", "poolpair", "waitgroup",
	} {
		if lint.ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
	if len(lint.Analyzers) != 9 {
		t.Errorf("suite has %d analyzers, want 9", len(lint.Analyzers))
	}
}
