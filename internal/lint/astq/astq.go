// Package astq holds the small AST/type queries shared by the setlearnlint
// analyzers: static callee resolution, float detection, and an
// ancestor-tracking walker (the stdlib ast.Inspect does not expose the
// path to the root, which poolpair and binioerr need to see enclosing
// defer and assignment statements).
package astq

import (
	"go/ast"
	"go/types"
	"strings"
)

// CalleeFunc returns the *types.Func a call statically resolves to, or nil
// for calls through function values, conversions, and built-ins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether call is a call to pkgPath.name (a package-level
// function, not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil &&
		fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// IsFloat reports whether t's core type is float32 or float64 (including
// untyped float constants).
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Inspect walks root like ast.Inspect but passes the stack of ancestors
// (outermost first, not including n itself) to fn. Returning false prunes
// the subtree.
func Inspect(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}

// InsideDefer reports whether any ancestor on stack is a defer statement —
// including the body of a function literal that a defer invokes.
func InsideDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// DeferredLit reports whether lit is the function of a defer statement's
// call (defer func(){...}()), given lit's ancestor stack from Inspect.
// The stack ends [..., DeferStmt, CallExpr] for such literals.
func DeferredLit(lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || ast.Unparen(call.Fun) != ast.Expr(lit) {
		return false
	}
	d, ok := stack[len(stack)-2].(*ast.DeferStmt)
	return ok && d.Call == call
}

// PoolMethod reports whether fn is a Get/Put method whose receiver is
// sync.Pool or a named type ending in "Pool". Shared by poolpair (pairing
// discipline) and deferclose (path coverage of the release).
func PoolMethod(fn *types.Func) bool {
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := NamedOrPointee(recv.Type())
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool" {
		return true
	}
	return strings.HasSuffix(obj.Name(), "Pool")
}

// NamedOrPointee unwraps pointers and returns the named type beneath, if
// any.
func NamedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
