package globalrand_test

import (
	"testing"

	"setlearn/internal/lint/globalrand"
	"setlearn/internal/lint/linttest"
)

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, globalrand.Analyzer, "globalrand")
}

func TestScope(t *testing.T) {
	for _, pkg := range []string{
		"setlearn/internal/train",
		"setlearn/internal/dataset",
		"setlearn/internal/deepsets",
		"setlearn/internal/shard",
		"setlearn/internal/bench",
	} {
		if !globalrand.Analyzer.InScope(pkg) {
			t.Errorf("globalrand should cover %s", pkg)
		}
	}
}
