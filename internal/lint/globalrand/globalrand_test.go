package globalrand_test

import (
	"testing"

	"setlearn/internal/lint/globalrand"
	"setlearn/internal/lint/linttest"
)

func TestGlobalrand(t *testing.T) {
	linttest.Run(t, globalrand.Analyzer, "globalrand")
}
