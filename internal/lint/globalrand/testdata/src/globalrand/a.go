package globalrand

import "math/rand"

func bad(n int) {
	_ = rand.Intn(n)                   // want `rand.Intn draws from the unseeded global source`
	_ = rand.Float64()                 // want `rand.Float64 draws from the unseeded global source`
	_ = rand.Perm(n)                   // want `rand.Perm draws from the unseeded global source`
	_ = rand.Int63()                   // want `rand.Int63 draws from the unseeded global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the unseeded global source`
	rand.Seed(42)                      // want `rand.Seed draws from the unseeded global source`
}

func good(seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(n)
	_ = rng.Float64()
	rng.Shuffle(n, func(i, j int) {})
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(n))
	_ = zipf.Uint64()
}

func suppressed(n int) {
	_ = rand.Intn(n) //lint:allow globalrand -- jitter for a log sampler, determinism not required
}
