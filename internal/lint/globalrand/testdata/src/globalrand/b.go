package globalrand

import "math/rand"

// Shapes from the shard/bench scope extension: partition sampling and
// benchmark workload generation must stay reproducible, so the unseeded
// global source is off limits there too.

func sampleShards(k int) []int {
	return rand.Perm(k) // want `rand.Perm draws from the unseeded global source`
}

func benchWorkload(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded per-experiment source
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func jitteredBackoff(ms int) int {
	return ms + rand.Intn(ms) // want `rand.Intn draws from the unseeded global source`
}
