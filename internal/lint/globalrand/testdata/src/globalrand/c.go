package globalrand

import "math/rand"

// Shapes from the pgsim/settransformer/blockio/bptree scope extension:
// workload simulation and transformer weight init must be pure functions
// of their seeds, so the global source is off limits there too.

func simulateQueries(n int) []int {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rand.Intn(1 << 20) // want `rand.Intn draws from the unseeded global source`
	}
	return keys
}

func initAttnWeights(seed int64, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded init, like settransformer's Config.Seed
	w := make([]float64, dim*dim)
	for i := range w {
		w[i] = rng.NormFloat64() / float64(dim)
	}
	return w
}

func shuffleInserts(keys []uint64) {
	rand.Shuffle(len(keys), func(i, j int) { // want `rand.Shuffle draws from the unseeded global source`
		keys[i], keys[j] = keys[j], keys[i]
	})
}
