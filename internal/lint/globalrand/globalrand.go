// Package globalrand forbids the unseeded process-global math/rand source
// in the packages whose output must be reproducible run-to-run: training
// (internal/train), data generation (internal/dataset), model
// initialisation (internal/deepsets, internal/settransformer), workload
// simulation (internal/pgsim, internal/bench), and the storage layers
// whose tests replay seeded insert orders (internal/blockio,
// internal/bptree). Every random draw there must come
// from an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))) so
// a training run is a pure function of its config — the property the
// golden save/load tests and the paper's experiment tables rely on.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are allowed; they
// are how seeded generators are built. Everything else reaching the global
// source — rand.Intn, rand.Float64, rand.Perm, rand.Shuffle, rand.Seed,
// and friends — is flagged.
package globalrand

import (
	"go/ast"
	"go/types"

	"setlearn/internal/lint/analysis"
)

// constructors build seeded generators and never touch the global source.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "no unseeded global math/rand in reproducibility-critical packages; " +
		"draw from rand.New(rand.NewSource(seed)) instead",
	Scope: []string{
		"setlearn/internal/train",
		"setlearn/internal/dataset",
		"setlearn/internal/deepsets",
		"setlearn/internal/shard",
		"setlearn/internal/bench",
		"setlearn/internal/pgsim",
		"setlearn/internal/settransformer",
		"setlearn/internal/blockio",
		"setlearn/internal/bptree",
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on an explicit *rand.Rand are the goal
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "rand.%s draws from the unseeded global source; use a seeded generator (rand.New(rand.NewSource(seed))) so runs are reproducible",
				fn.Name())
			return true
		})
	}
	return nil
}
