// Package dataflow provides generic worklist solvers over the CFGs built
// by internal/lint/cfg: a forward solver (facts flow entry→exit, e.g.
// "which locks may be held here"), a backward solver (facts flow
// exit→entry, e.g. "is a send guaranteed on every path from here"), and a
// bounded acyclic path enumerator for analyzers that need whole paths
// rather than per-block joins.
//
// Lattices must be finite-height for termination: Join must be monotone
// and states must stop changing after finitely many joins. Init() is the
// identity of Join (⊥ for may/union analyses, ⊤ for must/intersection
// analyses).
package dataflow

import (
	"go/ast"

	"setlearn/internal/lint/cfg"
)

// Lattice describes the state domain of an analysis.
type Lattice[S any] interface {
	// Init returns the identity of Join: joining Init() with x yields x.
	Init() S
	Join(a, b S) S
	Equal(a, b S) bool
}

// Result holds the fixed-point states at block boundaries. For a forward
// analysis In[b] is the state on entry to b and Out[b] on exit; for a
// backward analysis In[b] is the state *before* b's nodes run (facts
// about what must happen from b onward) and Out[b] after them.
type Result[S any] struct {
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
}

// Forward solves a forward dataflow problem. entry is the state at the
// function entry; transfer maps a block's in-state to its out-state by
// interpreting the block's nodes in source order.
func Forward[S any](g *cfg.Graph, lat Lattice[S], entry S, transfer func(b *cfg.Block, in S) S) *Result[S] {
	res := &Result[S]{
		In:  make(map[*cfg.Block]S, len(g.Blocks)),
		Out: make(map[*cfg.Block]S, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = lat.Init()
		res.Out[b] = lat.Init()
	}
	work := newWorklist(g.Blocks)
	for {
		b, ok := work.pop()
		if !ok {
			break
		}
		in := lat.Init()
		if b == g.Entry {
			in = entry
		}
		for _, p := range b.Preds {
			in = lat.Join(in, res.Out[p])
		}
		out := transfer(b, in)
		res.In[b] = in
		if !lat.Equal(out, res.Out[b]) {
			res.Out[b] = out
			for _, s := range b.Succs {
				work.push(s)
			}
		}
	}
	return res
}

// Backward solves a backward dataflow problem. boundary gives the state
// at exit blocks (blocks without successors: Exit and Panic); transfer
// maps a block's out-state to its in-state by interpreting the block's
// nodes in reverse source order.
func Backward[S any](g *cfg.Graph, lat Lattice[S], boundary func(b *cfg.Block) S, transfer func(b *cfg.Block, out S) S) *Result[S] {
	res := &Result[S]{
		In:  make(map[*cfg.Block]S, len(g.Blocks)),
		Out: make(map[*cfg.Block]S, len(g.Blocks)),
	}
	for _, b := range g.Blocks {
		res.In[b] = lat.Init()
		res.Out[b] = lat.Init()
	}
	work := newWorklist(g.Blocks)
	for {
		b, ok := work.pop()
		if !ok {
			break
		}
		var out S
		if len(b.Succs) == 0 {
			out = boundary(b)
		} else {
			out = lat.Init()
			for _, s := range b.Succs {
				out = lat.Join(out, res.In[s])
			}
		}
		in := transfer(b, out)
		res.Out[b] = out
		if !lat.Equal(in, res.In[b]) {
			res.In[b] = in
			for _, p := range b.Preds {
				work.push(p)
			}
		}
	}
	return res
}

// MustReach reports whether every path from the entry to the normal Exit
// block passes through a node satisfying hit. Paths ending at the Panic
// block are exempt (a panicking path is not a silent miss). Nodes are
// tested whole; hit is responsible for skipping nested function literals.
func MustReach(g *cfg.Graph, hit func(ast.Node) bool) bool {
	res := Backward[bool](g, andLattice{},
		func(b *cfg.Block) bool {
			return b == g.Panic // Exit demands a hit; panic paths are exempt
		},
		func(b *cfg.Block, out bool) bool {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				if hit(b.Nodes[i]) {
					return true
				}
			}
			return out
		})
	return res.In[g.Entry]
}

// andLattice is the must-analysis bool lattice: Join is AND, identity true.
type andLattice struct{}

func (andLattice) Init() bool          { return true }
func (andLattice) Join(a, b bool) bool { return a && b }
func (andLattice) Equal(a, b bool) bool {
	return a == b
}

// Paths enumerates acyclic block paths from from to to, invoking visit
// with each complete path (the slice is the visitor's to keep). visit
// returning false stops the enumeration early. Paths returns false only
// when the enumeration hit limit before exhausting all paths, so callers
// can refuse to report on functions too branchy to enumerate honestly.
func Paths(g *cfg.Graph, from, to *cfg.Block, limit int, visit func(path []*cfg.Block) bool) bool {
	var path []*cfg.Block
	on := make(map[*cfg.Block]bool, len(g.Blocks))
	count := 0
	complete := true
	var dfs func(b *cfg.Block) bool
	dfs = func(b *cfg.Block) bool {
		if count >= limit {
			complete = false
			return false
		}
		path = append(path, b)
		on[b] = true
		defer func() {
			path = path[:len(path)-1]
			on[b] = false
		}()
		if b == to {
			count++
			return visit(append([]*cfg.Block(nil), path...))
		}
		for _, s := range b.Succs {
			if on[s] {
				continue
			}
			if !dfs(s) {
				return false
			}
		}
		return true
	}
	dfs(from)
	return complete
}

// Limit is the default Paths budget for a graph: quadratic in block
// count, clamped to [64, 4096].
func Limit(g *cfg.Graph) int {
	n := len(g.Blocks) * len(g.Blocks)
	if n < 64 {
		return 64
	}
	if n > 4096 {
		return 4096
	}
	return n
}

// worklist is a FIFO of blocks with membership dedup.
type worklist struct {
	queue []*cfg.Block
	in    map[*cfg.Block]bool
}

func newWorklist(blocks []*cfg.Block) *worklist {
	w := &worklist{in: make(map[*cfg.Block]bool, len(blocks))}
	for _, b := range blocks {
		w.push(b)
	}
	return w
}

func (w *worklist) push(b *cfg.Block) {
	if w.in[b] {
		return
	}
	w.in[b] = true
	w.queue = append(w.queue, b)
}

func (w *worklist) pop() (*cfg.Block, bool) {
	if len(w.queue) == 0 {
		return nil, false
	}
	b := w.queue[0]
	w.queue = w.queue[1:]
	w.in[b] = false
	return b, true
}
