package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
)

func build(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.Build(fset, fd.Body)
}

// nodeHas reports whether a CFG node's source representation mentions a
// call to name (crude but sufficient for the toy programs here).
func nodeHas(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// orLattice is a may-analysis: "has acquire() possibly run".
type orLattice struct{}

func (orLattice) Init() bool           { return false }
func (orLattice) Join(a, b bool) bool  { return a || b }
func (orLattice) Equal(a, b bool) bool { return a == b }

func TestForwardMay(t *testing.T) {
	g := build(t, `func f(cond bool) {
	if cond {
		acquire()
	}
	use()
}`)
	res := dataflow.Forward[bool](g, orLattice{}, false, func(b *cfg.Block, in bool) bool {
		out := in
		for _, n := range b.Nodes {
			if nodeHas(n, "acquire") {
				out = true
			}
		}
		return out
	})
	if !res.In[g.Exit] {
		t.Error("acquire() may have run by exit")
	}
	if res.Out[g.Entry] {
		t.Error("acquire() cannot have run at the end of the entry block (it is conditional)")
	}
}

func TestForwardLoopTerminates(t *testing.T) {
	g := build(t, `func f(n int) {
	for i := 0; i < n; i++ {
		acquire()
	}
}`)
	// Saturating counter lattice: 0, 1, 2+ — finite height, so the loop
	// must reach a fixed point.
	res := dataflow.Forward[int](g, intLattice{}, 0, func(b *cfg.Block, in int) int {
		out := in
		for _, n := range b.Nodes {
			if nodeHas(n, "acquire") && out < 2 {
				out++
			}
		}
		return out
	})
	if res.In[g.Exit] == 0 {
		t.Error("loop body may run: exit state should reflect possible acquires")
	}
}

type intLattice struct{}

func (intLattice) Init() int { return 0 }
func (intLattice) Join(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (intLattice) Equal(a, b int) bool { return a == b }

func TestMustReach(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{
			name: "straight line",
			src:  `func f() { signal() }`,
			want: true,
		},
		{
			name: "missing on fallthrough path",
			src: `func f(cond bool) {
	if cond {
		signal()
		return
	}
}`,
			want: false,
		},
		{
			name: "both branches covered",
			src: `func f(cond bool) {
	if cond {
		signal()
		return
	}
	signal()
}`,
			want: true,
		},
		{
			name: "panic path exempt",
			src: `func f(cond bool) {
	if cond {
		panic("boom")
	}
	signal()
}`,
			want: true,
		},
		{
			name: "signal only before panic",
			src: `func f(cond bool) {
	if cond {
		signal()
		panic("boom")
	}
}`,
			want: false,
		},
		{
			name: "covered inside infinite loop is vacuous",
			src: `func f(step func() bool) {
	for {
		if step() {
			break
		}
	}
	signal()
}`,
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := build(t, tc.src)
			got := dataflow.MustReach(g, func(n ast.Node) bool { return nodeHas(n, "signal") })
			if got != tc.want {
				t.Errorf("MustReach = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBackwardBoundary(t *testing.T) {
	g := build(t, `func f(cond bool) {
	if cond {
		panic("boom")
	}
}`)
	// Boundary distinguishes Exit from Panic; the entry in-state must join
	// both boundary values through the branches.
	res := dataflow.Backward[bool](g, andLat{},
		func(b *cfg.Block) bool { return b == g.Panic },
		func(b *cfg.Block, out bool) bool { return out })
	if res.In[g.Entry] {
		t.Error("entry should see the non-exempt Exit path")
	}
}

type andLat struct{}

func (andLat) Init() bool           { return true }
func (andLat) Join(a, b bool) bool  { return a && b }
func (andLat) Equal(a, b bool) bool { return a == b }

func TestPathsEnumeration(t *testing.T) {
	g := build(t, `func f(a, b bool) {
	if a {
		one()
	}
	if b {
		two()
	}
}`)
	count := 0
	complete := dataflow.Paths(g, g.Entry, g.Exit, dataflow.Limit(g), func(path []*cfg.Block) bool {
		count++
		if path[0] != g.Entry || path[len(path)-1] != g.Exit {
			t.Error("path must run entry→exit")
		}
		return true
	})
	if !complete {
		t.Error("enumeration should complete within the budget")
	}
	if count != 4 {
		t.Errorf("two independent branches should give 4 paths, got %d", count)
	}
}

func TestPathsEarlyStop(t *testing.T) {
	g := build(t, `func f(a, b bool) {
	if a {
		one()
	}
	if b {
		two()
	}
}`)
	count := 0
	complete := dataflow.Paths(g, g.Entry, g.Exit, dataflow.Limit(g), func(path []*cfg.Block) bool {
		count++
		return false // abort after the first path
	})
	if count != 1 {
		t.Errorf("visitor abort should stop enumeration, saw %d paths", count)
	}
	if !complete {
		t.Error("visitor abort is not a truncation")
	}
}

func TestPathsTruncation(t *testing.T) {
	g := build(t, `func f(a, b, c bool) {
	if a {
		one()
	}
	if b {
		two()
	}
	if c {
		three()
	}
}`)
	complete := dataflow.Paths(g, g.Entry, g.Exit, 3, func(path []*cfg.Block) bool { return true })
	if complete {
		t.Error("8 paths cannot fit a budget of 3; Paths must report truncation")
	}
}

func TestLimitClamps(t *testing.T) {
	small := build(t, `func f() {}`)
	if got := dataflow.Limit(small); got != 64 {
		t.Errorf("small graph limit = %d, want the 64 floor", got)
	}
}
