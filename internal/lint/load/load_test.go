package load

import (
	"strings"
	"testing"
)

func TestExpandAndLoad(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "setlearn" {
		t.Fatalf("module path = %q, want setlearn", l.ModulePath)
	}

	dirs, err := l.Expand([]string{"./internal/mat"})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) != 1 {
		t.Fatalf("Expand(./internal/mat) = %v, want one dir", dirs)
	}

	pkg, err := l.LoadDir(dirs[0])
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Path != "setlearn/internal/mat" {
		t.Errorf("import path = %q", pkg.Path)
	}
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("type errors in clean package: %v", pkg.TypeErrors)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("MatVec") == nil {
		t.Error("type info missing MatVec")
	}
}

func TestExpandRecursive(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dirs, err := l.Expand([]string{"./internal/lint/..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) < 7 {
		t.Fatalf("expected the lint tree's packages, got %v", dirs)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata must be skipped: %s", d)
		}
	}
}
