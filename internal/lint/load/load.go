// Package load discovers, parses, and type-checks the module's packages
// for the lint suite. It is a minimal substitute for
// golang.org/x/tools/go/packages built on the standard library alone: the
// module layout is walked directly (import path = module path + relative
// directory) and dependencies are resolved through go/importer's source
// importer, which handles both the standard library and module-local
// imports.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. setlearn/internal/mat
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds type-checker errors. The analyzers still run on a
	// partially checked package, mirroring go vet's behaviour, but the
	// driver surfaces these so a broken tree cannot lint clean by accident.
	TypeErrors []error
}

// Loader caches the shared importer so stdlib dependencies are
// type-checked once across many target packages.
type Loader struct {
	ModulePath string
	ModuleDir  string

	fset *token.FileSet
	imp  types.Importer
}

// NewLoader reads go.mod in dir (or a parent) to learn the module path.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		fset:       fset,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("load: no go.mod found above %s", dir)
		}
	}
}

// Expand resolves command-line patterns ("./...", "./internal/mat", or
// fully qualified import paths) into package directories, sorted.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if p, ok := strings.CutPrefix(pat, l.ModulePath); ok {
			pat = "." + p
		}
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("load: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the non-test package in dir. Test files
// are excluded: the invariants the suite enforces govern production code,
// and test packages lean on the same helpers the analyzers whitelist.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return nil, err
	}
	importPath := l.ModulePath
	if rel != "." {
		importPath = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.check(importPath, files)
}

// LoadFiles parses and checks an ad-hoc file set as import path pkgPath —
// the entry point the linttest harness uses for testdata packages.
func (l *Loader) LoadFiles(pkgPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no files for %s", pkgPath)
	}
	return l.check(pkgPath, files)
}

func (l *Loader) check(importPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg := &Package{
		Path:  importPath,
		Fset:  l.fset,
		Files: files,
		Info:  info,
	}
	if len(files) > 0 {
		pkg.Dir = filepath.Dir(l.fset.Position(files[0].Pos()).Filename)
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
