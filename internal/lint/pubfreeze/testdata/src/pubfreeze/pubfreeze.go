package pubfreeze

import "sync/atomic"

type state struct {
	n     int
	elems []uint64
}

type holder struct {
	cur atomic.Pointer[state]
}

// Direct field write after Store.
func direct(h *holder) {
	st := &state{n: 1}
	h.cur.Store(st)
	st.n = 2 // want `mutates .st. after it was published`
}

// Copy-on-write is the sanctioned idiom: nothing mutates after the Store.
func cow(h *holder) {
	old := h.cur.Load()
	next := &state{n: old.n + 1}
	next.elems = append(next.elems, 7)
	h.cur.Store(next)
}

// Publication on one branch poisons the join: the write after the if runs
// on the published path too.
func branch(h *holder, ok bool) {
	st := &state{}
	if ok {
		h.cur.Store(st)
	}
	st.n = 3 // want `mutates .st. after it was published`
}

// Re-binding the variable each iteration kills the published fact: the
// fresh value mutated before its own Store is a new object.
func rebind(h *holder) {
	for i := 0; i < 3; i++ {
		st := &state{}
		st.n = i
		h.cur.Store(st)
	}
}

// Helper mutation one call after publication (interprocedural).
func helperMut(h *holder) {
	st := &state{}
	h.cur.Store(st)
	scrub(st) // want `call to scrub reaches`
}

func scrub(st *state) { st.n = 0 }

// Two call levels down.
func helperDeep(h *holder) {
	st := &state{}
	h.cur.Store(st)
	relay(st) // want `call to relay reaches`
}

func relay(st *state) { scrub(st) }

// Read-only helpers after publication are fine.
func readOnly(h *holder) int {
	st := &state{}
	h.cur.Store(st)
	return peek(st)
}

func peek(st *state) int { return st.n }

// IncDec is a write too.
func incAfter(h *holder) {
	st := &state{}
	h.cur.Store(st)
	st.n++ // want `mutates .st. after it was published`
}

// Element write through a published slice-holding struct.
func elemWrite(h *holder) {
	st := &state{elems: make([]uint64, 4)}
	h.cur.Store(st)
	st.elems[0] = 1 // want `mutates .st. after it was published`
}

// Swap publishes its argument exactly like Store.
func swapMut(h *holder) {
	st := &state{}
	old := h.cur.Swap(st)
	_ = old
	st.n = 1 // want `mutates .st. after it was published`
}

// CompareAndSwap publishes the new value (second argument).
func casMut(h *holder, old *state) {
	st := &state{}
	if h.cur.CompareAndSwap(old, st) {
		st.n = 1 // want `mutates .st. after it was published`
	}
}

type words struct {
	w atomic.Pointer[[]uint64]
}

// Append through the published slice variable may write the shared
// backing array in place.
func appendPub(h *words) {
	next := []uint64{1}
	h.w.Store(&next)
	next = append(next, 2) // want `writes the published backing store`
}

// The copy-on-write slice idiom stays clean: build, fill, Store last.
func appendCOW(h *words, add []uint64) {
	cur := h.w.Load()
	next := append([]uint64(nil), *cur...)
	next = append(next, add...)
	h.w.Store(&next)
}

type box struct {
	v atomic.Value
}

// atomic.Value publications are tracked the same way.
func valueMut(h *box) {
	m := map[int]int{}
	h.v.Store(m)
	m[1] = 2 // want `mutates .m. after it was published`
}

func valueDelete(h *box) {
	m := map[int]int{1: 1}
	h.v.Store(m)
	delete(m, 1) // want `writes the published backing store`
}

// Mutating through a Loaded snapshot is the reader's business — the
// insert path's documented delta-append idiom — and is not this
// analyzer's finding.
func loadSide(h *words) {
	cur := h.w.Load()
	(*cur)[0] = 9
}

// Deferred mutations run at exit, after the publish on this path.
func deferMut(h *holder) {
	st := &state{}
	defer scrub(st) // want `call to scrub reaches`
	h.cur.Store(st)
	_ = st.n
}

// A //lint:frozen type must have no receiver-mutating methods at all.
//
//lint:frozen
type frozenCurve struct {
	xs []float64
}

func (c *frozenCurve) At(i int) float64 { return c.xs[i] }

func (c *frozenCurve) Set(i int, v float64) { // want `frozen type frozenCurve mutates its receiver`
	c.xs[i] = v
}

func (c *frozenCurve) Wipe() { // want `frozen type frozenCurve mutates its receiver`
	blank(c)
}

func blank(c *frozenCurve) { c.xs = nil }

// Value receivers mutate a copy; that is legal on a frozen type.
func (c frozenCurve) Shifted() frozenCurve {
	c.xs = nil
	return c
}
