// Package pubfreeze statically enforces the publication contract behind
// the repo's hot-swap architecture: a value stored into an atomic.Pointer
// (or atomic.Value) is frozen at the Store — no path may mutate it
// afterwards, because readers pin the snapshot with a single Load and
// expect it to be immutable. The race detector catches violations only on
// exercised interleavings; this analyzer catches them on every CFG path,
// at lint time.
//
// The analysis runs a forward may-published dataflow per function: a call
// to Store/Swap/CompareAndSwap on a sync/atomic Pointer or Value marks the
// stored variable (Store(v) or Store(&v)) published from that point on.
// Re-binding the variable (v := ..., v = ...) kills the fact — the
// loop-reload idiom (build a fresh value each iteration, publish, loop)
// stays clean. After the publish point the analyzer flags field writes,
// element writes, IncDec, append/copy/delete through the variable, and —
// interprocedurally, via bottom-up "mutates-param" summaries over the
// summary store — helper calls that mutate the published value any number
// of call levels down. Each diagnostic carries the copy-on-write rewrite:
// build a fresh value, mutate the fresh one, then Store the fresh pointer.
//
// A type annotated //lint:frozen opts every method into the contract:
// any method (directly or through helpers) mutating its pointer receiver
// is a finding, whether or not a publish site is in view. The repo uses
// it for types whose only live instances sit behind an atomic.Pointer
// (calibration curves, fast-path option blocks).
//
// Soundness caveats (DESIGN.md §13): values that escape through Load are
// the reader's business and are not tracked (the insert path's documented
// delta-append through a Loaded snapshot stays legal); aliases created
// before the Store are not tracked through the alias; function literals
// are separate functions — a closure mutating a variable its enclosing
// function published is not connected to the publish site; defers are
// checked against the state at function exit; callees without reachable
// source (stdlib, other modules, and every cross-package callee under the
// vet unitchecker) are assumed read-only.
package pubfreeze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
	"setlearn/internal/lint/summary"
)

// FrozenMarker annotates a type declaration whose methods must never
// mutate the receiver — the published-type form of the contract.
const FrozenMarker = "//lint:frozen"

// name is the analyzer name as a constant for helper code.
const name = "pubfreeze"

// maxDepth bounds the mutates-param summary call-chain depth.
const maxDepth = 16

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "values stored into atomic.Pointer/atomic.Value are frozen at the Store: no " +
		"path may mutate them afterwards, directly or through helper calls; types " +
		"annotated //lint:frozen must have no receiver-mutating methods at all",
	Run: run,
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		store:    summary.For(pass),
		visiting: make(map[string]bool),
	}
	c.memo = c.store.Memo("pubfreeze.mutates")
	c.checkFrozenTypes()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkPublishFlow(fd, fd.Body)
			// Function literals are their own functions with their own CFGs:
			// a publish-then-mutate sequence inside a closure is checked in
			// the closure's frame.
			astq.Inspect(fd.Body, func(n ast.Node, _ []ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkPublishFlow(lit, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	store    *summary.Store
	memo     *summary.Memo
	visiting map[string]bool
}

// --- frozen-type methods ---

// checkFrozenTypes flags every method of a //lint:frozen-annotated type
// that mutates its receiver, directly or through helpers.
func (c *checker) checkFrozenTypes() {
	frozen := make(map[types.Object]bool)
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declFrozen := hasMarker(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if declFrozen || hasMarker(ts.Doc) || hasMarker(ts.Comment) {
					if obj := c.pass.TypesInfo.Defs[ts.Name]; obj != nil {
						frozen[obj] = true
					}
				}
			}
		}
	}
	if len(frozen) == 0 {
		return
	}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			named := astq.NamedOrPointee(recv.Type())
			if named == nil || !frozen[named.Obj()] {
				continue
			}
			d, ok := c.store.Resolve(fn)
			if !ok {
				continue
			}
			sum := c.summarize(d, 0)
			if len(sum.slots) == 0 || !sum.slots[0].mutated {
				continue
			}
			s := sum.slots[0]
			c.pass.ReportTracef(fd.Name.Pos(), s.steps,
				"method %s of //lint:frozen type %s mutates its receiver: %s — frozen values are immutable once published; return a modified copy instead",
				fd.Name.Name, named.Obj().Name(), s.desc)
		}
	}
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, cmt := range cg.List {
		if cmt.Text == FrozenMarker || strings.HasPrefix(cmt.Text, FrozenMarker+" ") {
			return true
		}
	}
	return false
}

// --- publication dataflow ---

// pubRec records one publication of a variable.
type pubRec struct {
	pos  token.Pos // the Store/Swap/CompareAndSwap call
	what string    // rendered publish expression, e.g. "h.cur.Store"
}

// pubState maps variables to their (earliest) may-publish record. nil
// means nothing published.
type pubState map[*types.Var]pubRec

type pubLattice struct{}

func (pubLattice) Init() pubState { return nil }

func (pubLattice) Join(a, b pubState) pubState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(pubState, len(a)+len(b))
	for v, r := range a {
		out[v] = r
	}
	for v, r := range b {
		if have, ok := out[v]; !ok || r.pos < have.pos {
			out[v] = r
		}
	}
	return out
}

func (pubLattice) Equal(a, b pubState) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ra := range a {
		if rb, ok := b[v]; !ok || ra != rb {
			return false
		}
	}
	return true
}

// checkPublishFlow runs the may-published analysis over one function and
// reports mutations downstream of a publish point.
func (c *checker) checkPublishFlow(fn ast.Node, body *ast.BlockStmt) {
	if !c.hasPublish(body) {
		return
	}
	g := c.pass.CFG(fn)
	if g == nil {
		return
	}
	res := dataflow.Forward[pubState](g, pubLattice{}, nil, func(b *cfg.Block, in pubState) pubState {
		st := clonePub(in)
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue // defers run at exit; handled below
			}
			c.applyNode(st, n)
		}
		if len(st) == 0 {
			return nil
		}
		return st
	})
	for _, b := range g.Blocks {
		st := clonePub(res.In[b])
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				continue
			}
			c.checkMutations(st, n)
			c.applyNode(st, n)
		}
	}
	// Defers run on function exit, after every publish on the path; check
	// them against the joined exit state rather than their source position.
	if exitIn := res.In[g.Exit]; len(exitIn) > 0 {
		for _, d := range g.Defers {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				c.checkMutations(exitIn, lit.Body)
			} else {
				c.checkMutations(exitIn, d.Call)
			}
		}
	}
}

// hasPublish reports whether body contains a publish call outside nested
// function literals (the cheap pre-filter before building a CFG).
func (c *checker) hasPublish(body *ast.BlockStmt) bool {
	found := false
	astq.Inspect(body, func(n ast.Node, _ []ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && publishedExpr(c.pass.TypesInfo, call) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// applyNode folds one CFG node into st: re-binding assignments kill
// published facts, publish calls add them.
func (c *checker) applyNode(st pubState, n ast.Node) {
	info := c.pass.TypesInfo
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v := identVar(info, id); v != nil {
						delete(st, v)
					}
				}
			}
		case *ast.ValueSpec:
			for _, id := range m.Names {
				if v := identVar(info, id); v != nil {
					delete(st, v)
				}
			}
		case *ast.CallExpr:
			if e := publishedExpr(info, m); e != nil {
				if v := publishedVar(info, e); v != nil {
					st[v] = pubRec{pos: m.Pos(), what: types.ExprString(m.Fun)}
				}
			}
		}
		return true
	})
}

// checkMutations reports every mutation of a published variable inside n,
// with st the may-published state just before n runs.
func (c *checker) checkMutations(st pubState, n ast.Node) {
	if len(st) == 0 {
		return
	}
	info := c.pass.TypesInfo
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if v, deref := chainRoot(info, lhs); deref && v != nil {
					if rec, ok := st[v]; ok {
						c.reportMut(lhs.Pos(), nil, v.Name(), rec,
							"`"+shortExpr(types.ExprString(lhs))+" = …`")
					}
				}
			}
		case *ast.IncDecStmt:
			if v, deref := chainRoot(info, m.X); deref && v != nil {
				if rec, ok := st[v]; ok {
					c.reportMut(m.Pos(), nil, v.Name(), rec,
						"`"+shortExpr(types.ExprString(m.X))+m.Tok.String()+"`")
				}
			}
		case *ast.CallExpr:
			c.checkCallMutation(st, m)
		}
		return true
	})
}

// checkCallMutation handles calls: builtins that write their operand, and
// resolved callees whose mutates-param summary marks a slot a published
// variable flows into.
func (c *checker) checkCallMutation(st pubState, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	switch builtinName(info, call) {
	case "append", "copy", "delete":
		if len(call.Args) > 0 {
			if v, _ := chainRoot(info, call.Args[0]); v != nil {
				if rec, ok := st[v]; ok {
					c.reportMut(call.Pos(), nil, v.Name(), rec,
						"`"+builtinName(info, call)+"("+shortExpr(types.ExprString(call.Args[0]))+", …)` writes the published backing store")
				}
			}
		}
		return
	case "":
		// not a builtin; fall through to callee resolution
	default:
		return
	}
	if publishedExpr(info, call) != nil {
		return // the publish itself is not a mutation
	}
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return
	}
	d, ok := c.store.Resolve(fn)
	if !ok {
		return // no source in reach: assumed read-only (package doc caveat)
	}
	sum := c.summarize(d, 0)
	if len(sum.slots) == 0 {
		return
	}
	// Map the call's receiver and arguments onto the callee's slots.
	slot := 0
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			c.flagSlotMutation(st, call, fn, sum, 0, sel.X)
		}
		slot = 1
	}
	for i, arg := range call.Args {
		c.flagSlotMutation(st, call, fn, sum, slot+i, arg)
	}
}

// flagSlotMutation reports when arg roots at a published variable and the
// callee's summary marks the corresponding slot mutated.
func (c *checker) flagSlotMutation(st pubState, call *ast.CallExpr, fn *types.Func, sum mutSummary, slot int, arg ast.Expr) {
	if slot >= len(sum.slots) || !sum.slots[slot].mutated {
		return
	}
	v, _ := chainRoot(c.pass.TypesInfo, arg)
	if v == nil {
		return
	}
	rec, ok := st[v]
	if !ok {
		return
	}
	s := sum.slots[slot]
	steps := make([]string, 0, len(s.steps)+1)
	steps = append(steps, fn.Name()+" ("+summary.FormatPos(c.pass.Fset, call.Pos())+")")
	steps = append(steps, s.steps...)
	c.reportMut(call.Pos(), steps, v.Name(), rec, "call to "+fn.Name()+" reaches "+s.desc)
}

// reportMut emits the mutation diagnostic with the copy-on-write hint.
func (c *checker) reportMut(pos token.Pos, steps []string, varName string, rec pubRec, how string) {
	c.pass.ReportTracef(pos, steps,
		"%s mutates `%s` after it was published by %s at %s — published state is frozen; copy-on-write instead: build a fresh value, mutate the fresh one, then Store the fresh pointer",
		how, varName, rec.what, summary.FormatPos(c.pass.Fset, rec.pos))
}

// --- mutates-param summaries ---

// slotSum is the summary of one pointer-like slot (receiver first, then
// parameters) of a function: whether any path mutates the object the slot
// points at, with the construct and the call chain that reaches it.
type slotSum struct {
	mutated bool
	desc    string   // construct + position
	steps   []string // call chain below this function, outermost first
}

// mutSummary is the bottom-up mutates-param summary of one function.
type mutSummary struct {
	slots     []slotSum
	truncated bool // cut short by recursion; not memoised
}

// summarize computes (or recalls) d's mutates-param summary: which of its
// pointer-like receiver/parameter slots the body may mutate, directly or
// through callees.
func (c *checker) summarize(d summary.Fn, depth int) mutSummary {
	if v, ok := c.memo.Get(d.Func); ok {
		return v.(mutSummary)
	}
	if depth > maxDepth {
		return mutSummary{truncated: true}
	}
	key := d.Func.FullName()
	if c.visiting[key] {
		return mutSummary{truncated: true}
	}
	c.visiting[key] = true
	defer delete(c.visiting, key)

	pi := d.Pkg
	info := pi.Info
	sup := c.store.Suppressions(pi)

	// Slot layout: receiver (when present and pointer-like) then params.
	slotOf := make(map[*types.Var]int)
	sig := d.Func.Type().(*types.Signature)
	nslots := sig.Params().Len()
	if sig.Recv() != nil {
		nslots++
	}
	sum := mutSummary{slots: make([]slotSum, nslots)}
	reg := func(fl *ast.FieldList, base int) {
		if fl == nil {
			return
		}
		i := base
		for _, f := range fl.List {
			for _, id := range f.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					if pointerLike(v.Type()) {
						slotOf[v] = i
					}
					i++
				}
			}
			if len(f.Names) == 0 {
				i++ // unnamed parameter still occupies a slot
			}
		}
	}
	base := 0
	if sig.Recv() != nil {
		reg(d.Decl.Recv, 0)
		base = 1
	}
	reg(d.Decl.Type.Params, base)

	killed := make(map[*types.Var]bool)
	mark := func(slot int, pos token.Pos, desc string, steps []string) {
		if sum.slots[slot].mutated {
			return
		}
		if sup.Allows(name, pi.Fset.Position(pos)) {
			return
		}
		sum.slots[slot] = slotSum{mutated: true, desc: desc, steps: steps}
	}
	direct := func(e ast.Expr, pos token.Pos, desc string) {
		v, deref := chainRoot(info, e)
		if !deref || v == nil || killed[v] {
			return
		}
		if slot, ok := slotOf[v]; ok {
			mark(slot, pos, desc+" at "+summary.FormatPos(pi.Fset, pos), nil)
		}
	}

	astq.Inspect(d.Decl.Body, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				direct(lhs, lhs.Pos(), "`"+shortExpr(types.ExprString(lhs))+" = …`")
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v := identVar(info, id); v != nil {
						killed[v] = true // re-bound: later writes hit the new value
					}
				}
			}
		case *ast.IncDecStmt:
			direct(n.X, n.Pos(), "`"+shortExpr(types.ExprString(n.X))+n.Tok.String()+"`")
		case *ast.CallExpr:
			c.summarizeCall(d, n, slotOf, killed, &sum, depth, mark)
		}
		return true
	})

	if !sum.truncated {
		c.memo.Set(d.Func, sum)
	}
	return sum
}

// summarizeCall folds one call inside d into the summary: operand-writing
// builtins mutate directly, resolved callees propagate their own slots.
func (c *checker) summarizeCall(d summary.Fn, call *ast.CallExpr, slotOf map[*types.Var]int, killed map[*types.Var]bool, sum *mutSummary, depth int, mark func(int, token.Pos, string, []string)) {
	pi := d.Pkg
	info := pi.Info
	switch builtinName(info, call) {
	case "append", "copy", "delete":
		if len(call.Args) > 0 {
			if v, _ := chainRoot(info, call.Args[0]); v != nil && !killed[v] {
				if slot, ok := slotOf[v]; ok {
					mark(slot, call.Pos(),
						"`"+builtinName(info, call)+"("+shortExpr(types.ExprString(call.Args[0]))+", …)` at "+summary.FormatPos(pi.Fset, call.Pos()), nil)
				}
			}
		}
		return
	case "":
	default:
		return
	}
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return
	}
	d2, ok := c.store.Resolve(fn)
	if !ok {
		return
	}
	sub := c.summarize(d2, depth+1)
	sum.truncated = sum.truncated || sub.truncated
	if len(sub.slots) == 0 {
		return
	}
	propagate := func(calleeSlot int, arg ast.Expr) {
		if calleeSlot >= len(sub.slots) || !sub.slots[calleeSlot].mutated {
			return
		}
		v, _ := chainRoot(info, arg)
		if v == nil || killed[v] {
			return
		}
		slot, ok := slotOf[v]
		if !ok {
			return
		}
		s := sub.slots[calleeSlot]
		steps := make([]string, 0, len(s.steps)+1)
		steps = append(steps, fn.Name()+" ("+summary.FormatPos(pi.Fset, call.Pos())+")")
		steps = append(steps, s.steps...)
		mark(slot, call.Pos(), s.desc, steps)
	}
	argBase := 0
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			propagate(0, sel.X)
		}
		argBase = 1
	}
	for i, arg := range call.Args {
		propagate(argBase+i, arg)
	}
}

// --- small helpers ---

// publishedExpr returns the expression a call publishes when call is
// Store/Swap/CompareAndSwap on a sync/atomic Pointer or Value, else nil.
func publishedExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := astq.NamedOrPointee(sig.Recv().Type())
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if obj.Name() != "Pointer" && obj.Name() != "Value" {
		return nil
	}
	switch fn.Name() {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1]
		}
	}
	return nil
}

// publishedVar extracts the variable a publish expression names: Store(v)
// or Store(&v). Anything else — inline literals, index expressions — has
// no name to track mutations through and stays untracked.
func publishedVar(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return identVar(info, id)
}

// identVar resolves id to its variable object (defs or uses), skipping
// the blank identifier.
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// chainRoot walks an lvalue chain (selectors, indexes, derefs, slices)
// to its root identifier. deref reports whether the chain goes through at
// least one projection — writing `v.f` or `v[i]` mutates the object v
// refers to, while writing plain `v` merely re-binds the variable.
func chainRoot(info *types.Info, e ast.Expr) (root *types.Var, deref bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			deref = true
			e = x.X
		case *ast.IndexExpr:
			deref = true
			e = x.X
		case *ast.StarExpr:
			deref = true
			e = x.X
		case *ast.SliceExpr:
			deref = true
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		case *ast.Ident:
			v := identVar(info, x)
			if v == nil {
				return nil, false
			}
			// A selector chain rooted at a package name (pkg.Var) resolves
			// the var, not a local; treat the var itself as the root.
			return v, deref
		default:
			return nil, false
		}
	}
}

// pointerLike reports whether mutating through a value of type t is
// visible to other holders of the same value: pointers, slices, and maps.
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

func clonePub(st pubState) pubState {
	out := make(pubState, len(st))
	for v, r := range st {
		out[v] = r
	}
	return out
}

// shortExpr clamps rendered expressions so diagnostics stay one line.
func shortExpr(s string) string {
	if len(s) > 48 {
		return s[:45] + "..."
	}
	return s
}
