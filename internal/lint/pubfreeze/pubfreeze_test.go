package pubfreeze_test

import (
	"strings"
	"testing"

	"setlearn/internal/lint"
	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/pubfreeze"
)

func TestPubfreeze(t *testing.T) {
	linttest.Run(t, pubfreeze.Analyzer, "pubfreeze")
}

// TestCrossPackageHelper pins the interprocedural case the linttest
// harness cannot express (its ad-hoc file loader resolves no testdata
// imports): a helper declared in another package mutating a value after
// the current package published it, resolved through the summary store's
// LoadPackage hook. The fixture lives in internal/lint/testdata/xpub.
func TestCrossPackageHelper(t *testing.T) {
	var out strings.Builder
	res, err := lint.Run("../..", []string{"./internal/lint/testdata/xpub/outer"},
		[]*analysis.Analyzer{pubfreeze.Analyzer}, &out)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors:\n%s", out.String())
	}
	got := out.String()
	if res.Diagnostics != 1 {
		t.Fatalf("want exactly 1 diagnostic (Bad's helper call), got %d:\n%s", res.Diagnostics, got)
	}
	for _, want := range []string{"outer.go", "call to Scrub", "published", "pubfreeze"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
