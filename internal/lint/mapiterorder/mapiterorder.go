// Package mapiterorder flags map iteration whose random order leaks into
// the outputs this repo promises are deterministic: the bit-identical
// persistence format (DESIGN.md §7's byte-stable headers), the float
// pipelines whose accumulation order changes rounding (a Deep Sets pooled
// sum is only permutation-invariant if the implementation picks ONE
// order), and anything an encoder serialises. Go randomizes map order per
// iteration precisely so code cannot depend on it silently; this analyzer
// turns such dependence into a lint failure with the standard rewrite:
// extract the keys, sort them, range over the sorted slice.
//
// Three sink classes inside a `range m` body are flagged:
//
//   - float accumulation: s += v, s = s * v, and friends, where the
//     accumulator is a float declared outside the loop. Integer
//     accumulation is exact in any order and exempt; so is a per-key
//     update (m2[k] op= v) — writing through the range key is
//     order-independent. Calls into the numeric kernels (mat, nn,
//     deepsets, ad) passing a float buffer from outside the loop count as
//     accumulation too.
//
//   - encoder sinks: binary.Write, gob/json Encoder.Encode*, and the
//     blockio persistence layer called directly in the body — each loop
//     iteration emits bytes in random order.
//
//   - append-then-encode: an append of loop-derived values to a variable
//     from outside the loop, where that variable later flows into an
//     encoder sink in the same function without an intervening sort. The
//     sort exemption is a forward may-dirty dataflow over the function's
//     CFG: a sort.*/slices.*/sortXxx-helper call on the appended variable
//     clears it, so the repo's extract-sort-encode idiom (AuxKeys
//     headers, dataset key dumps) passes and an unsorted variant fails.
//
// Caveats: the append-flow analysis is intraprocedural (a dirty slice
// returned to a caller that encodes it is not connected); sinks inside
// nested function literals belong to the literal's own analysis; sort
// recognition is by callee name (sort.*, slices.*, and local helpers
// named sort*), matched on the argument's source text.
package mapiterorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"setlearn/internal/lint/analysis"
	"setlearn/internal/lint/astq"
	"setlearn/internal/lint/cfg"
	"setlearn/internal/lint/dataflow"
	"setlearn/internal/lint/summary"
)

const name = "mapiterorder"

// kernelPkgs are the numeric packages whose mutable float arguments make
// a call order-sensitive.
var kernelPkgs = map[string]bool{
	"setlearn/internal/mat":      true,
	"setlearn/internal/nn":       true,
	"setlearn/internal/deepsets": true,
	"setlearn/internal/ad":       true,
}

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "map iteration must not feed float accumulation, encoders, or persisted " +
		"appends — map order is random; extract the keys, sort them, and range over " +
		"the sorted slice",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, seen: make(map[string]bool)}
			c.checkUnit(fd, fd.Body)
			astq.Inspect(fd.Body, func(n ast.Node, _ []ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkUnit(lit, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	seen map[string]bool // diagnostic dedup within one function
}

// appendRec is one loop-derived append to a variable from outside the
// loop, a potential dirty source for the append-then-encode rule.
type appendRec struct {
	rs       *ast.RangeStmt
	assign   *ast.AssignStmt // the dest = append(dest, ...) statement
	destText string          // source text of the destination lvalue
	destRoot *types.Var      // root variable of the destination
}

// checkUnit analyses one function (declaration or literal) in isolation.
func (c *checker) checkUnit(fn ast.Node, body *ast.BlockStmt) {
	info := c.pass.TypesInfo
	var ranges []*ast.RangeStmt
	astq.Inspect(body, func(n ast.Node, _ []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if t := info.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ranges = append(ranges, rs)
				}
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}
	var recs []appendRec
	for _, rs := range ranges {
		c.scanRange(rs, &recs)
	}
	if len(recs) > 0 {
		c.checkAppendFlows(fn, body, recs)
	}
}

// scanRange flags the direct sinks inside one map-range body and collects
// loop-derived appends for the flow check.
func (c *checker) scanRange(rs *ast.RangeStmt, recs *[]appendRec) {
	info := c.pass.TypesInfo
	loopVars := rangeVars(info, rs)
	mapText := shortExpr(types.ExprString(rs.X))

	astq.Inspect(rs.Body, func(n ast.Node, _ []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			c.checkAccum(rs, n, loopVars, mapText)
			c.collectAppend(rs, n, recs)
		case *ast.CallExpr:
			if desc := sinkDesc(info, n); desc != "" {
				c.report(rs, "range over map %s writes to %s inside the loop body — map iteration order is random; extract the keys, sort them, and range over the sorted slice",
					mapText, desc)
				return true
			}
			c.checkKernelCall(rs, n, mapText)
		}
		return true
	})
}

// checkAccum flags float accumulation into a variable from outside the
// loop: s += v, s = s + v, and the other compound float operators.
func (c *checker) checkAccum(rs *ast.RangeStmt, a *ast.AssignStmt, loopVars map[*types.Var]bool, mapText string) {
	info := c.pass.TypesInfo
	flag := func(lhs ast.Expr) {
		t := info.TypeOf(lhs)
		if t == nil || !astq.IsFloat(t) {
			return
		}
		if c.loopLocal(rs, lhs) || indexedByLoopVar(info, lhs, loopVars) {
			return
		}
		c.report(rs, "range over map %s accumulates floats into %s — map iteration order changes the rounding; extract the keys, sort them, and accumulate in sorted order",
			mapText, shortExpr(types.ExprString(lhs)))
	}
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		flag(a.Lhs[0])
	case token.ASSIGN:
		if len(a.Lhs) != len(a.Rhs) {
			return
		}
		for i, lhs := range a.Lhs {
			if be, ok := ast.Unparen(a.Rhs[i]).(*ast.BinaryExpr); ok && selfOp(be, lhs) {
				flag(lhs)
			}
		}
	}
}

// selfOp reports whether be is an arithmetic expression with lhs as one
// operand — the x = x + y accumulation shape.
func selfOp(be *ast.BinaryExpr, lhs ast.Expr) bool {
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	lt := types.ExprString(lhs)
	return types.ExprString(ast.Unparen(be.X)) == lt || types.ExprString(ast.Unparen(be.Y)) == lt
}

// checkKernelCall flags calls into the numeric kernels passing a mutable
// float buffer from outside the loop — the kernel accumulates into it in
// iteration order.
func (c *checker) checkKernelCall(rs *ast.RangeStmt, call *ast.CallExpr, mapText string) {
	info := c.pass.TypesInfo
	fn := astq.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !kernelPkgs[fn.Pkg().Path()] {
		return
	}
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t == nil || !floatBuffer(t) {
			continue
		}
		if c.loopLocal(rs, arg) {
			continue
		}
		c.report(rs, "range over map %s passes float buffer %s to %s.%s — map iteration order changes the rounding; sort the keys and iterate deterministically",
			mapText, shortExpr(types.ExprString(arg)), fn.Pkg().Name(), fn.Name())
		return
	}
}

// collectAppend records dest = append(dest, ...loop-derived...) where
// dest lives outside the loop.
func (c *checker) collectAppend(rs *ast.RangeStmt, a *ast.AssignStmt, recs *[]appendRec) {
	info := c.pass.TypesInfo
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, rhs := range a.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || builtinName(info, call) != "append" || len(call.Args) < 2 {
			continue
		}
		lhs := a.Lhs[i]
		root, _ := chainRoot(info, lhs)
		if root == nil || c.loopLocal(rs, lhs) {
			continue
		}
		derived := false
		for _, arg := range call.Args[1:] {
			if c.mentionsLoopLocal(rs, arg) {
				derived = true
				break
			}
		}
		if !derived {
			continue
		}
		*recs = append(*recs, appendRec{rs: rs, assign: a, destText: types.ExprString(lhs), destRoot: root})
	}
}

// --- append-then-encode flow ---

// dirtySet is the may-dirty state: source texts of append destinations
// filled from a map range and not yet sorted.
type dirtySet map[string]bool

type dirtyLattice struct{}

func (dirtyLattice) Init() dirtySet { return nil }

func (dirtyLattice) Join(a, b dirtySet) dirtySet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(dirtySet, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (dirtyLattice) Equal(a, b dirtySet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// checkAppendFlows runs the may-dirty analysis over the function and
// reports recorded appends whose destination reaches an encoder sink
// still dirty.
func (c *checker) checkAppendFlows(fn ast.Node, body *ast.BlockStmt, recs []appendRec) {
	info := c.pass.TypesInfo
	g := c.pass.CFG(fn)
	if g == nil {
		return
	}
	transfer := func(st dirtySet, n ast.Node) dirtySet {
		astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if text := sortedArg(info, call); text != "" && st[text] {
				delete(st, text)
			}
			return true
		})
		for i := range recs {
			r := &recs[i]
			if r.assign.Pos() >= n.Pos() && r.assign.End() <= n.End() {
				if st == nil {
					st = make(dirtySet)
				}
				st[r.destText] = true
			}
		}
		return st
	}
	res := dataflow.Forward[dirtySet](g, dirtyLattice{}, nil, func(b *cfg.Block, in dirtySet) dirtySet {
		st := cloneDirty(in)
		for _, n := range b.Nodes {
			st = transfer(st, n)
		}
		if len(st) == 0 {
			return nil
		}
		return st
	})

	// Find encoder sinks outside the originating loops and test each
	// recorded destination's dirtiness at the sink.
	for _, b := range g.Blocks {
		st := cloneDirty(res.In[b])
		for _, n := range b.Nodes {
			c.checkSinkNode(n, st, recs)
			st = transfer(st, n)
		}
	}
}

// checkSinkNode reports recs whose destination is dirty in st and flows
// into an encoder sink within node n.
func (c *checker) checkSinkNode(n ast.Node, st dirtySet, recs []appendRec) {
	if len(st) == 0 {
		return
	}
	info := c.pass.TypesInfo
	astq.Inspect(n, func(m ast.Node, _ []ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc := sinkDesc(info, call)
		if desc == "" {
			return true
		}
		for i := range recs {
			r := &recs[i]
			if !st[r.destText] {
				continue
			}
			if call.Pos() >= r.rs.Body.Pos() && call.End() <= r.rs.Body.End() {
				continue // inside the loop: the direct-sink rule owns it
			}
			hit := false
			for _, arg := range call.Args {
				if root, _ := chainRoot(info, arg); root == r.destRoot {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			c.report(r.rs, "%s collected from a range over map %s reaches %s at %s unsorted — sort %s before encoding for deterministic output",
				shortExpr(r.destText), shortExpr(types.ExprString(r.rs.X)), desc,
				summary.FormatPos(c.pass.Fset, call.Pos()), shortExpr(r.destText))
		}
		return true
	})
}

// --- recognizers and helpers ---

// sinkDesc names the encoder sink a call is, or "".
func sinkDesc(info *types.Info, call *ast.CallExpr) string {
	if astq.IsPkgFunc(info, call, "encoding/binary", "Write") {
		return "binary.Write"
	}
	fn := astq.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if path == "setlearn/internal/blockio" {
		return "blockio." + fn.Name()
	}
	if (path == "encoding/gob" || path == "encoding/json") && strings.HasPrefix(fn.Name(), "Encode") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fn.Pkg().Name() + ".Encoder." + fn.Name()
		}
	}
	return ""
}

// sortedArg returns the source text a call proves sorted: the first
// argument of sort.*/slices.* or of a local helper named sort*.
func sortedArg(info *types.Info, call *ast.CallExpr) string {
	fn := astq.CalleeFunc(info, call)
	if fn == nil || len(call.Args) == 0 {
		return ""
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pkgPath == "sort" || pkgPath == "slices" || strings.HasPrefix(strings.ToLower(fn.Name()), "sort") {
		return types.ExprString(call.Args[0])
	}
	return ""
}

// rangeVars collects the key/value loop variables of rs.
func rangeVars(info *types.Info, rs *ast.RangeStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			out[v] = true
		} else if v, ok := info.Uses[id].(*types.Var); ok {
			out[v] = true
		}
	}
	return out
}

// loopLocal reports whether e's root variable is declared within rs —
// the loop's own key/value variables and body-locals are per-iteration
// state, not order-sensitive accumulators.
func (c *checker) loopLocal(rs *ast.RangeStmt, e ast.Expr) bool {
	root, _ := chainRoot(c.pass.TypesInfo, e)
	if root == nil {
		return true // unrooted expressions have no outside identity to taint
	}
	return root.Pos() >= rs.Pos() && root.Pos() < rs.End()
}

// mentionsLoopLocal reports whether e references any variable declared
// within rs (the key/value vars or values derived from them in the body).
func (c *checker) mentionsLoopLocal(rs *ast.RangeStmt, e ast.Expr) bool {
	info := c.pass.TypesInfo
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// indexedByLoopVar reports whether lhs writes through an index derived
// from the loop variables (m2[k] op= v): keyed updates are
// order-independent.
func indexedByLoopVar(info *types.Info, lhs ast.Expr, loopVars map[*types.Var]bool) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			used := false
			ast.Inspect(x.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && loopVars[v] {
						used = true
					}
				}
				return !used
			})
			if used {
				return true
			}
			lhs = x.X
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

// floatBuffer reports whether t is a mutable float container: a slice
// (possibly nested) of floats or a pointer to one.
func floatBuffer(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return astq.IsFloat(u.Elem()) || floatBuffer(u.Elem())
	case *types.Pointer:
		return floatBuffer(u.Elem())
	}
	return false
}

// chainRoot walks selectors/indexes/derefs/slices to the root variable.
func chainRoot(info *types.Info, e ast.Expr) (*types.Var, bool) {
	deref := false
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			deref = true
			e = x.X
		case *ast.IndexExpr:
			deref = true
			e = x.X
		case *ast.StarExpr:
			deref = true
			e = x.X
		case *ast.SliceExpr:
			deref = true
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v, deref
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v, deref
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// report emits one deduplicated diagnostic at the range statement.
func (c *checker) report(rs *ast.RangeStmt, format string, args ...any) {
	key := summary.FormatPos(c.pass.Fset, rs.Pos()) + "|" + format + "|" + concat(args)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(rs.Pos(), format, args...)
}

func concat(args []any) string {
	var b strings.Builder
	for _, a := range args {
		if s, ok := a.(string); ok {
			b.WriteString(s)
			b.WriteByte('|')
		}
	}
	return b.String()
}

func cloneDirty(st dirtySet) dirtySet {
	if len(st) == 0 {
		return nil
	}
	out := make(dirtySet, len(st))
	for k := range st {
		out[k] = true
	}
	return out
}

func shortExpr(s string) string {
	if len(s) > 48 {
		return s[:45] + "..."
	}
	return s
}
