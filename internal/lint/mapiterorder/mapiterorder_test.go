package mapiterorder_test

import (
	"testing"

	"setlearn/internal/lint/linttest"
	"setlearn/internal/lint/mapiterorder"
)

func TestMapiterorder(t *testing.T) {
	linttest.Run(t, mapiterorder.Analyzer, "mapiterorder")
}
