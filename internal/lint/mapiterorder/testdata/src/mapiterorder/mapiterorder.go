package mapiterorder

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"sort"

	"setlearn/internal/mat"
)

// Float accumulation into a variable from outside the loop: the summation
// order changes the rounding, and map order is random.
func sumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floats into sum`
		sum += v
	}
	return sum
}

// The x = x + v self-assignment spelling is the same accumulation.
func sumExpr(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `accumulates floats into total`
		total = total + v
	}
	return total
}

// Integer accumulation is exact in any order.
func countValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Writing through the range key is order-independent.
func rescale(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v * 0.5
	}
}

// A loop-local accumulator resets each iteration; the append of the
// per-entry result never reaches an encoder, so both rules stay quiet.
func perEntry(m map[string][]float64) []float64 {
	var outs []float64
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		outs = append(outs, s)
	}
	return outs
}

// Order-independent float reductions (max) are plain assignments, not
// accumulation, and stay quiet.
func maxFloat(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// An encoder called directly in the body emits bytes in random order.
func dump(w io.Writer, m map[uint32]float64) {
	for k, v := range m { // want `writes to binary.Write inside the loop body`
		binary.Write(w, binary.LittleEndian, k)
		binary.Write(w, binary.LittleEndian, v)
	}
}

// Encoder methods count as sinks too.
func dumpJSON(enc *json.Encoder, m map[string]float64) {
	for _, v := range m { // want `writes to json.Encoder.Encode inside the loop body`
		enc.Encode(v)
	}
}

// A numeric-kernel call accumulating into a buffer from outside the
// loop is order-sensitive the same way += is.
func foldEmbeddings(m map[string][]float64, acc []float64) {
	for _, v := range m { // want `passes float buffer acc to mat.AddTo`
		mat.AddTo(acc, v)
	}
}

// Keys collected from the map and encoded without a sort leak the
// iteration order into the output bytes.
func dumpKeys(w io.Writer, m map[uint32]float64) {
	var keys []uint32
	for k := range m { // want `keys collected from a range over map m reaches binary.Write`
		keys = append(keys, k)
	}
	binary.Write(w, binary.LittleEndian, keys)
}

// The extract-sort-encode idiom: a sort between the append loop and the
// encoder clears the taint.
func dumpSorted(w io.Writer, m map[uint32]float64) {
	var keys []uint32
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	binary.Write(w, binary.LittleEndian, keys)
	for _, k := range keys {
		binary.Write(w, binary.LittleEndian, m[k])
	}
}

// Sorted on one path only: the unsorted path still reaches the encoder,
// so the may-dirty join keeps the finding.
func dumpMaybeSorted(w io.Writer, m map[uint32]float64, doSort bool) {
	var keys []uint32
	for k := range m { // want `keys collected from a range over map m reaches binary.Write`
		keys = append(keys, k)
	}
	if doSort {
		sortUint32s(keys)
	}
	binary.Write(w, binary.LittleEndian, keys)
}

// A local helper named sort* is trusted as a sort on every path.
func dumpHelperSorted(w io.Writer, m map[uint32]float64) {
	var keys []uint32
	for k := range m {
		keys = append(keys, k)
	}
	sortUint32s(keys)
	binary.Write(w, binary.LittleEndian, keys)
}

func sortUint32s(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// A sink inside a nested literal belongs to the literal's own analysis;
// the literal has no map range, so neither unit reports.
func deferredDump(w io.Writer, m map[uint32]float64) []func() {
	var fns []func()
	for k := range m {
		k := k
		fns = append(fns, func() { binary.Write(w, binary.LittleEndian, k) })
	}
	return fns
}

// Suppression with justification silences an accepted site.
func sumAllowed(m map[string]float64) float64 {
	var sum float64
	//lint:allow mapiterorder -- diagnostic-only total, never persisted or compared bitwise
	for _, v := range m {
		sum += v
	}
	return sum
}
