package core

import (
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
)

// The query interfaces decouple consumers of the three learned structures
// (internal/server, the CLIs) from the concrete container answering them:
// the monolithic structures built by this package and the sharded
// containers of internal/shard implement the same surface, including the
// batched fast-path forms and per-structure φ-acceleration control, so a
// server can serve either without knowing how the collection was
// partitioned.

// IndexQuerier is the query surface of a learned set index (§4.1).
type IndexQuerier interface {
	// Lookup returns the first position i with q ⊆ S[i], or -1.
	Lookup(q sets.Set) int
	// LookupEqual returns the first position with S[i] exactly q, or -1.
	LookupEqual(q sets.Set) int
	// LookupBatch answers every query in qs through the fused batch path.
	LookupBatch(dst []int, qs []sets.Set, equal bool) []int
	// Insert registers a set appended to the collection at position pos
	// without retraining (§7.2).
	Insert(s sets.Set, pos int)
	// EnableFastPath (re)configures φ acceleration and reports the mode.
	EnableFastPath(o FastPathOptions) string
	// PhiStats reports φ accel counters; ok is false when uncached.
	PhiStats() (deepsets.AccelStats, bool)
	// MaxID returns the largest element id the structure accepts.
	MaxID() uint32
	// SizeBytes returns the total structure footprint.
	SizeBytes() int
}

// CardinalityQuerier is the query surface of a cardinality estimator (§4.2).
type CardinalityQuerier interface {
	// Estimate returns the estimated number of sets containing q.
	Estimate(q sets.Set) float64
	// EstimateBatch answers every query in qs through the fused batch path.
	EstimateBatch(dst []float64, qs []sets.Set) []float64
	// Update records an exact cardinality served henceforth (§7.2).
	Update(q sets.Set, card float64)
	EnableFastPath(o FastPathOptions) string
	PhiStats() (deepsets.AccelStats, bool)
	MaxID() uint32
	SizeBytes() int
}

// MembershipQuerier is the query surface of a membership filter (§4.3).
type MembershipQuerier interface {
	// Contains reports whether q may be a subset of some set (no false
	// negatives within the trained size cap).
	Contains(q sets.Set) bool
	// ContainsBatch answers many queries, fanning out across workers.
	ContainsBatch(qs []sets.Set, workers int) []bool
	EnableFastPath(o FastPathOptions) string
	PhiStats() (deepsets.AccelStats, bool)
	MaxID() uint32
	SizeBytes() int
}

// The monolithic structures satisfy the interfaces.
var (
	_ IndexQuerier       = (*SetIndex)(nil)
	_ CardinalityQuerier = (*CardinalityEstimator)(nil)
	_ MembershipQuerier  = (*MembershipFilter)(nil)
)

// ShardStat describes one shard of a partitioned container — the per-shard
// slice of the setlearn.shard.* expvar output.
type ShardStat struct {
	Shard   int    `json:"shard"`
	Sets    int    `json:"sets"`     // sets owned by the shard
	Bytes   int    `json:"bytes"`    // shard structure footprint
	Queries uint64 `json:"queries"`  // fan-out queries routed to the shard
	PhiMode string `json:"phi_mode"` // "table", "cache", or "off"
}

// ShardStatser is implemented by partitioned containers that can report
// per-shard statistics; the server publishes them under setlearn.shard.*.
type ShardStatser interface {
	ShardStats() []ShardStat
}
