package core

import (
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
)

// The query interfaces decouple consumers of the three learned structures
// (internal/server, the CLIs) from the concrete container answering them:
// the monolithic structures built by this package and the sharded
// containers of internal/shard implement the same surface, including the
// batched fast-path forms and per-structure φ-acceleration control, so a
// server can serve either without knowing how the collection was
// partitioned.

// IndexQuerier is the query surface of a learned set index (§4.1).
type IndexQuerier interface {
	// Lookup returns the first position i with q ⊆ S[i], or -1.
	Lookup(q sets.Set) int
	// LookupEqual returns the first position with S[i] exactly q, or -1.
	LookupEqual(q sets.Set) int
	// LookupBatch answers every query in qs through the fused batch path.
	LookupBatch(dst []int, qs []sets.Set, equal bool) []int
	// Insert registers a set appended to the collection at position pos
	// without retraining (§7.2).
	Insert(s sets.Set, pos int)
	// EnableFastPath (re)configures φ acceleration and reports the mode.
	EnableFastPath(o FastPathOptions) string
	// PhiStats reports φ accel counters; ok is false when uncached.
	PhiStats() (deepsets.AccelStats, bool)
	// SetPrecision switches the serving precision (F64 is the
	// bit-identity reference; F32 serves from a weight snapshot).
	SetPrecision(p Precision)
	// Precision reports the active serving precision.
	Precision() Precision
	// MaxID returns the largest element id the structure accepts.
	MaxID() uint32
	// SizeBytes returns the total structure footprint.
	SizeBytes() int
}

// CardinalityQuerier is the query surface of a cardinality estimator (§4.2).
type CardinalityQuerier interface {
	// Estimate returns the estimated number of sets containing q.
	Estimate(q sets.Set) float64
	// EstimateBatch answers every query in qs through the fused batch path.
	EstimateBatch(dst []float64, qs []sets.Set) []float64
	// Update records an exact cardinality served henceforth (§7.2).
	Update(q sets.Set, card float64)
	EnableFastPath(o FastPathOptions) string
	PhiStats() (deepsets.AccelStats, bool)
	SetPrecision(p Precision)
	Precision() Precision
	MaxID() uint32
	SizeBytes() int
}

// MembershipQuerier is the query surface of a membership filter (§4.3).
type MembershipQuerier interface {
	// Contains reports whether q may be a subset of some set (no false
	// negatives within the trained size cap).
	Contains(q sets.Set) bool
	// ContainsBatch answers many queries, fanning out across workers.
	ContainsBatch(qs []sets.Set, workers int) []bool
	EnableFastPath(o FastPathOptions) string
	PhiStats() (deepsets.AccelStats, bool)
	SetPrecision(p Precision)
	Precision() Precision
	MaxID() uint32
	SizeBytes() int
}

// The monolithic structures satisfy the interfaces.
var (
	_ IndexQuerier       = (*SetIndex)(nil)
	_ CardinalityQuerier = (*CardinalityEstimator)(nil)
	_ MembershipQuerier  = (*MembershipFilter)(nil)
)

// DeltaStats describes the write-side state of a mutable structure: how
// many inserted sets are pending in exact delta structures (answered by
// aux fan-in, not yet learned), how many a background retrain has absorbed
// into fresh models, and how stale the oldest pending insert is. Published
// by the server under setlearn.delta.*.
type DeltaStats struct {
	// Pending counts inserted sets not yet absorbed by a retrain.
	Pending int `json:"pending"`
	// PerShard is the pending count per shard (one entry, index 0, for
	// monolithic structures).
	PerShard []int `json:"per_shard"`
	// Absorbed counts sets folded into retrained models since build/load.
	Absorbed uint64 `json:"absorbed"`
	// OldestSecs is the age of the oldest pending insert, 0 when none.
	OldestSecs float64 `json:"oldest_secs"`
}

// Inserter is the write surface of a mutable structure: InsertSet absorbs a
// whole new set into an exact delta structure, so every query composed with
// the delta (aux fan-in) answers correctly the instant the call returns —
// no retraining on the write path, O(pending delta) cost per operation.
type Inserter interface {
	// InsertSet registers s as appended to the logical collection and
	// returns its assigned global position (structures without position
	// semantics return a synthetic monotone position).
	InsertSet(s sets.Set) int
	// DeltaStats reports the pending/absorbed counters above.
	DeltaStats() DeltaStats
}

// The monolithic structures and the sharded containers are all mutable.
var (
	_ Inserter = (*SetIndex)(nil)
	_ Inserter = (*CardinalityEstimator)(nil)
	_ Inserter = (*MembershipFilter)(nil)
)

// ShardStat describes one shard of a partitioned container — the per-shard
// slice of the setlearn.shard.* expvar output.
type ShardStat struct {
	Shard   int    `json:"shard"`
	Sets    int    `json:"sets"`     // sets owned by the shard (trained + pending)
	Pending int    `json:"pending"`  // inserted sets awaiting retrain
	Bytes   int    `json:"bytes"`    // shard structure footprint
	Queries uint64 `json:"queries"`  // fan-out queries routed to the shard
	PhiMode string `json:"phi_mode"` // "table", "cache", or "off"
	// Calibrated reports whether a per-shard correction curve is fitted;
	// HoldoutErr is the shard's held-out mean absolute error measured with
	// that curve applied (0 when never measured).
	Calibrated bool    `json:"calibrated,omitempty"`
	HoldoutErr float64 `json:"holdout_err,omitempty"`
}

// ShardStatser is implemented by partitioned containers that can report
// per-shard statistics; the server publishes them under setlearn.shard.*.
type ShardStatser interface {
	ShardStats() []ShardStat
}
