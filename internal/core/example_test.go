package core_test

import (
	"fmt"

	"setlearn/internal/core"
	"setlearn/internal/sets"
)

// ExampleBuildEstimator shows the primary workflow: map external names to
// ids, build a collection, train an estimator, and query it.
func ExampleBuildEstimator() {
	dict := sets.NewDict()
	collection := sets.NewCollection([]sets.Set{
		dict.SetOf("pizza", "dinner", "yum"),
		dict.SetOf("code", "go"),
		dict.SetOf("pizza", "dinner"),
		dict.SetOf("pizza", "dinner", "friends"),
	})
	est, err := core.BuildEstimator(collection, core.EstimatorOptions{
		Model:      core.ModelOptions{Compressed: true, Epochs: 30, Seed: 1},
		MaxSubset:  3,
		Percentile: 90,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	q, _ := dict.QueryOf("pizza", "dinner")
	fmt.Printf("estimate ≈ %.0f (exact %d)\n", est.Estimate(q), collection.Cardinality(q))
	// Output: estimate ≈ 3 (exact 3)
}

// ExampleBuildIndex demonstrates both search types of the learned index.
func ExampleBuildIndex() {
	collection := sets.NewCollection([]sets.Set{
		sets.New(1, 2, 3),
		sets.New(4, 5),
		sets.New(1, 2),
	})
	idx, err := core.BuildIndex(collection, core.IndexOptions{
		Model:      core.ModelOptions{Epochs: 30, Seed: 1},
		MaxSubset:  3,
		Percentile: 90,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("subset:", idx.Lookup(sets.New(1, 2)))
	fmt.Println("equal: ", idx.LookupEqual(sets.New(1, 2)))
	// Output:
	// subset: 0
	// equal:  2
}
