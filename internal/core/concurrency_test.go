package core

import (
	"sync"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// TestMembershipFilterParallelContains fires 64 goroutines × 150 queries at
// one filter and requires agreement with single-threaded ground truth; with
// -race this proves Contains shares no unguarded state (the predictor pool
// hands each goroutine its own scratch, the Bloom filters are read-only).
// Plain and sandwiched variants run as parallel subtests.
func TestMembershipFilterParallelContains(t *testing.T) {
	c := dataset.GenerateRW(200, 400, 31)
	for _, tc := range []struct {
		name     string
		sandwich bool
	}{{"plain", false}, {"sandwich", true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			f, err := BuildMembershipFilter(c, FilterOptions{
				Model: fastModel(false), MaxSubset: 2, Sandwich: tc.sandwich,
			})
			if err != nil {
				t.Fatal(err)
			}
			st := dataset.CollectSubsets(c, 2)
			var queries []sets.Set
			for i, k := range st.Keys {
				if i%4 != 0 {
					continue
				}
				queries = append(queries, st.ByKey[k].Set)
				// A likely-negative sibling for each positive.
				queries = append(queries, sets.New(c.MaxID()+1+uint32(i)))
			}
			truth := make([]bool, len(queries))
			for i, q := range queries {
				truth[i] = f.Contains(q)
			}
			const goroutines, perG = 64, 150
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						k := (g*53 + i) % len(queries)
						if got := f.Contains(queries[k]); got != truth[k] {
							t.Errorf("Contains(%v) = %v, serial %v", queries[k], got, truth[k])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func BenchmarkFilterContainsParallel(b *testing.B) {
	c := dataset.GenerateRW(200, 400, 31)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		b.Fatal(err)
	}
	q := c.At(0)[:2]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f.Contains(q)
		}
	})
}
