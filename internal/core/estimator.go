package core

import (
	"fmt"

	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// EstimatorOptions configures BuildEstimator.
type EstimatorOptions struct {
	Model ModelOptions
	// MaxSubset caps the size of enumerated training subsets (default 3).
	MaxSubset int
	// Percentile is the guided-learning eviction threshold; the paper's
	// cardinality experiments use 90 (§8.2.1). 0 disables the hybrid.
	Percentile float64
}

// CardinalityEstimator estimates |{i : q ⊆ S[i]}| for query subsets.
type CardinalityEstimator struct {
	hybrid    *hybrid.Estimator
	maxSubset int
}

// BuildEstimator trains a learned cardinality estimator over c.
func BuildEstimator(c *sets.Collection, opts EstimatorOptions) (*CardinalityEstimator, error) {
	if err := validateCollection(c); err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	st := dataset.CollectSubsets(c, opts.MaxSubset)
	samples := st.CardinalitySamples()
	sc := train.FitScaler(samples)

	m, err := deepsets.New(opts.Model.modelConfig(c.MaxID()))
	if err != nil {
		return nil, fmt.Errorf("core: build estimator model: %w", err)
	}
	res, err := train.Guided(m, samples, sc, train.GuidedConfig{
		Train:      opts.Model.trainConfig(),
		Percentile: opts.Percentile,
	})
	if err != nil {
		return nil, fmt.Errorf("core: train estimator model: %w", err)
	}
	enableFastPath(m, DefaultFastPath)
	return &CardinalityEstimator{
		hybrid:    hybrid.BuildEstimator(m, sc, res),
		maxSubset: opts.MaxSubset,
	}, nil
}

// Estimate returns the estimated number of sets containing q. Estimates are
// floored at 1 for in-vocabulary queries (the q-error convention); queries
// containing unknown elements return 0.
func (e *CardinalityEstimator) Estimate(q sets.Set) float64 {
	if len(q) == 0 {
		return 0
	}
	return e.hybrid.Estimate(q)
}

// EstimateBatch answers every query in qs, writing estimates into dst
// (grown as needed) and returning it. Model evaluations share one pooled
// predictor; answers match per-query Estimate exactly.
func (e *CardinalityEstimator) EstimateBatch(dst []float64, qs []sets.Set) []float64 {
	return e.hybrid.EstimateBatch(dst, qs)
}

// Update records an exact cardinality for a subset whose count changed; it
// is served from the auxiliary structure thereafter (§7.2).
func (e *CardinalityEstimator) Update(q sets.Set, card float64) {
	e.hybrid.InsertOutlier(q, card)
}

// MaxSubset returns the trained subset-size cap.
func (e *CardinalityEstimator) MaxSubset() int { return e.maxSubset }

// SizeBytes returns the estimator footprint (model + auxiliary map).
func (e *CardinalityEstimator) SizeBytes() int { return e.hybrid.SizeBytes() }

// Hybrid exposes the underlying hybrid estimator for benchmarking.
func (e *CardinalityEstimator) Hybrid() *hybrid.Estimator { return e.hybrid }
