package core

import (
	"fmt"
	"sync/atomic"

	"setlearn/internal/calib"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// EstimatorOptions configures BuildEstimator.
type EstimatorOptions struct {
	Model ModelOptions
	// MaxSubset caps the size of enumerated training subsets (default 3).
	MaxSubset int
	// Percentile is the guided-learning eviction threshold; the paper's
	// cardinality experiments use 90 (§8.2.1). 0 disables the hybrid.
	Percentile float64
}

// CardinalityEstimator estimates |{i : q ⊆ S[i]}| for query subsets. Sets
// appended after build land in an exact delta whose containment counts are
// added to every estimate, so counts involving fresh sets are exact
// immediately.
type CardinalityEstimator struct {
	hybrid    *hybrid.Estimator
	maxSubset int
	delta     *hybrid.Delta
	nextPos   atomic.Int64
}

// BuildEstimator trains a learned cardinality estimator over c.
func BuildEstimator(c *sets.Collection, opts EstimatorOptions) (*CardinalityEstimator, error) {
	if err := validateCollection(c); err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	st := dataset.CollectSubsets(c, opts.MaxSubset)
	samples := st.CardinalitySamples()
	sc := train.FitScaler(samples)

	m, err := deepsets.New(opts.Model.modelConfig(c.MaxID()))
	if err != nil {
		return nil, fmt.Errorf("core: build estimator model: %w", err)
	}
	res, err := train.Guided(m, samples, sc, train.GuidedConfig{
		Train:      opts.Model.trainConfig(),
		Percentile: opts.Percentile,
	})
	if err != nil {
		return nil, fmt.Errorf("core: train estimator model: %w", err)
	}
	enableFastPath(m, DefaultFastPath)
	est := &CardinalityEstimator{
		hybrid:    hybrid.BuildEstimator(m, sc, res),
		maxSubset: opts.MaxSubset,
		delta:     hybrid.NewDelta(),
	}
	est.nextPos.Store(int64(c.Len()))
	return est, nil
}

// Estimate returns the estimated number of sets containing q. Estimates are
// floored at 1 for in-vocabulary queries (the q-error convention); queries
// containing unknown elements return 0.
func (e *CardinalityEstimator) Estimate(q sets.Set) float64 {
	if len(q) == 0 {
		return 0
	}
	return e.hybrid.Estimate(q) + e.delta.Count(q)
}

// EstimateBatch answers every query in qs, writing estimates into dst
// (grown as needed) and returning it. Model evaluations share one pooled
// predictor; answers match per-query Estimate exactly.
func (e *CardinalityEstimator) EstimateBatch(dst []float64, qs []sets.Set) []float64 {
	dst = e.hybrid.EstimateBatch(dst, qs)
	if e.delta.Len() > 0 {
		for j, q := range qs {
			if len(q) > 0 {
				dst[j] += e.delta.Count(q)
			}
		}
	}
	return dst
}

// Update records an exact cardinality for a subset whose count changed; it
// is served from the auxiliary structure thereafter (§7.2). The stored
// override is reduced by the delta's current contribution so the composed
// Estimate equals card now and keeps tracking future inserts exactly.
func (e *CardinalityEstimator) Update(q sets.Set, card float64) {
	e.hybrid.InsertOutlier(q, card-e.delta.Count(q))
}

// InsertSet appends s to the logical collection: every estimate whose query
// is contained in s is one higher the instant this returns.
func (e *CardinalityEstimator) InsertSet(s sets.Set) int {
	pos := int(e.nextPos.Add(1)) - 1
	e.delta.Add(s.Clone(), pos)
	return pos
}

// DeltaStats reports the pending-insert state of the exact delta.
func (e *CardinalityEstimator) DeltaStats() DeltaStats {
	n := e.delta.Len()
	return DeltaStats{Pending: n, PerShard: []int{n}, OldestSecs: e.delta.Age().Seconds()}
}

// MaxSubset returns the trained subset-size cap.
func (e *CardinalityEstimator) MaxSubset() int { return e.maxSubset }

// SizeBytes returns the estimator footprint (model + auxiliary map + delta).
func (e *CardinalityEstimator) SizeBytes() int { return e.hybrid.SizeBytes() + e.delta.SizeBytes() }

// Hybrid exposes the underlying hybrid estimator for benchmarking.
func (e *CardinalityEstimator) Hybrid() *hybrid.Estimator { return e.hybrid }

// SetCalibration installs (or removes, with nil) a monotone correction on
// the raw model output; exact paths (aux hits, OOV, the delta) are never
// calibrated.
func (e *CardinalityEstimator) SetCalibration(cal *calib.Curve) { e.hybrid.SetCalibration(cal) }

// Calibration returns the installed correction curve, or nil.
func (e *CardinalityEstimator) Calibration() *calib.Curve { return e.hybrid.Calibration() }

// RawEstimate returns the unfloored, uncalibrated model output for q; ok is
// false when q is answered exactly without the model. The delta is not
// consulted: this is the fit domain for calibration curves, which compose
// before the delta's exact contribution.
func (e *CardinalityEstimator) RawEstimate(q sets.Set) (est float64, ok bool) {
	return e.hybrid.RawEstimate(q)
}
