package core

import (
	"fmt"

	"setlearn/internal/sets"
)

// Precision selects the numeric width of a structure's serving path.
// Float64 is the build/training precision and the bit-identity reference;
// Float32 serves from an immutable snapshot of the trained weights (and
// installed φ-table), trading a bounded accuracy delta — quantified by the
// bench "precision" experiment — for roughly half the memory traffic on
// the table- and embedding-bound inner loops. Training, persistence, and
// retraining always run float64; switching precision never touches the
// stored model.
type Precision int

// Supported serving precisions.
const (
	F64 Precision = iota
	F32
)

// String implements fmt.Stringer, matching the -precision flag values.
func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	default:
		return F64, fmt.Errorf("core: unknown precision %q (want f32 or f64)", s)
	}
}

// SetPrecision switches the index's serving precision. Safe to call while
// queries are in flight; in-flight queries finish on the precision they
// started with.
func (i *SetIndex) SetPrecision(p Precision) {
	i.hybrid.SetF32(p == F32)
}

// Precision reports the index's active serving precision.
func (i *SetIndex) Precision() Precision {
	if i.hybrid.F32() {
		return F32
	}
	return F64
}

// SetPrecision switches the estimator's serving precision; see
// SetIndex.SetPrecision.
func (e *CardinalityEstimator) SetPrecision(p Precision) {
	e.hybrid.SetF32(p == F32)
}

// Precision reports the estimator's active serving precision.
func (e *CardinalityEstimator) Precision() Precision {
	if e.hybrid.F32() {
		return F32
	}
	return F64
}

// SetPrecision switches the filter's serving precision; see
// SetIndex.SetPrecision.
func (f *MembershipFilter) SetPrecision(p Precision) {
	if p != F32 {
		f.pred32.Store(nil)
		return
	}
	f.pred32.Store(f.model.Snapshot32().NewPredictorPool32())
}

// Precision reports the filter's active serving precision.
func (f *MembershipFilter) Precision() Precision {
	if f.pred32.Load() != nil {
		return F32
	}
	return F64
}

// predict routes one filter model evaluation through the active precision.
func (f *MembershipFilter) predict(q sets.Set) float64 {
	if p := f.pred32.Load(); p != nil {
		return p.Predict(q)
	}
	return f.pred.Predict(q)
}

// predictBatch routes a batched filter model evaluation through the active
// precision.
func (f *MembershipFilter) predictBatch(dst []float64, qs []sets.Set) []float64 {
	if p := f.pred32.Load(); p != nil {
		return p.PredictBatch(dst, qs)
	}
	return f.pred.PredictBatch(dst, qs)
}
