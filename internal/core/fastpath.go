package core

import "setlearn/internal/deepsets"

// FastPathOptions selects the φ acceleration mode for a trained structure.
// After training, φ(embed(x)) is a pure function of the element id, so its
// outputs can be precomputed (PhiTable) or cached (sharded PhiCache) —
// turning a size-k query into k vector adds plus one ρ evaluation, with
// bit-identical results.
//
// The sharded containers publish the options to their query paths through
// atomic.Pointer, so a value is immutable once installed: build a new
// options value and call EnableFastPath again to change modes.
//
//lint:frozen
type FastPathOptions struct {
	// TableBudgetBytes enables the full φ-table when
	// (MaxID+1) × PhiOut × 8 fits within it. 0 disables the table.
	TableBudgetBytes int
	// CacheBytes sizes the sharded φ-cache fallback used when the table
	// does not fit. 0 disables the fallback.
	CacheBytes int
	// CacheShards is the cache's lock-shard count (0 = 64).
	CacheShards int
}

// DefaultFastPath is applied automatically after Build* and Load*: a full
// φ-table for universes up to 32 MiB of φ outputs, with an 8 MiB sharded
// cache as the large-universe fallback.
var DefaultFastPath = FastPathOptions{
	TableBudgetBytes: 32 << 20,
	CacheBytes:       8 << 20,
}

// enableFastPath installs the accel that o selects on m and reports the
// resulting mode: "table", "cache", or "off".
func enableFastPath(m *deepsets.Model, o FastPathOptions) string {
	if o.TableBudgetBytes > 0 && deepsets.PhiTableBytes(m.Config()) <= o.TableBudgetBytes {
		m.SetPhiAccel(m.BuildPhiTable())
		return "table"
	}
	if o.CacheBytes > 0 {
		m.SetPhiAccel(m.NewPhiCache(o.CacheBytes, o.CacheShards))
		return "cache"
	}
	m.SetPhiAccel(nil)
	return "off"
}

// EnableFastPath (re)configures the index's φ acceleration and reports the
// selected mode ("table", "cache", or "off"). Safe to call while queries
// are being served; results are unchanged in every mode.
func (i *SetIndex) EnableFastPath(o FastPathOptions) string {
	mode := enableFastPath(i.hybrid.Model(), o)
	if i.Precision() == F32 {
		i.SetPrecision(F32) // refresh the f32 snapshot with the new accel
	}
	return mode
}

// PhiStats reports the φ accel counters; ok is false when inference runs
// uncached.
func (i *SetIndex) PhiStats() (deepsets.AccelStats, bool) {
	return i.hybrid.Model().AccelStats()
}

// MaxID returns the largest element id the index's model accepts.
func (i *SetIndex) MaxID() uint32 { return i.hybrid.Model().Config().MaxID }

// EnableFastPath (re)configures the estimator's φ acceleration; see
// SetIndex.EnableFastPath.
func (e *CardinalityEstimator) EnableFastPath(o FastPathOptions) string {
	mode := enableFastPath(e.hybrid.Model(), o)
	if e.Precision() == F32 {
		e.SetPrecision(F32) // refresh the f32 snapshot with the new accel
	}
	return mode
}

// PhiStats reports the φ accel counters; ok is false when inference runs
// uncached.
func (e *CardinalityEstimator) PhiStats() (deepsets.AccelStats, bool) {
	return e.hybrid.Model().AccelStats()
}

// MaxID returns the largest element id the estimator's model accepts.
func (e *CardinalityEstimator) MaxID() uint32 { return e.hybrid.Model().Config().MaxID }

// EnableFastPath (re)configures the filter's φ acceleration; see
// SetIndex.EnableFastPath.
func (f *MembershipFilter) EnableFastPath(o FastPathOptions) string {
	mode := enableFastPath(f.model, o)
	if f.Precision() == F32 {
		f.SetPrecision(F32) // refresh the f32 snapshot with the new accel
	}
	return mode
}

// PhiStats reports the φ accel counters; ok is false when inference runs
// uncached.
func (f *MembershipFilter) PhiStats() (deepsets.AccelStats, bool) {
	return f.model.AccelStats()
}

// MaxID returns the largest element id the filter's model accepts.
func (f *MembershipFilter) MaxID() uint32 { return f.model.Config().MaxID }
