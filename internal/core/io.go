package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"setlearn/internal/blockio"
	"setlearn/internal/bloom"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
)

// writeHeader and readHeader frame the gob-encoded header so buffered
// decoders cannot over-read into the following sections.
func writeHeader(w io.Writer, hdr coreHeader) error {
	return blockio.Write(w, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	})
}

func readHeader(r io.Reader) (coreHeader, error) {
	var hdr coreHeader
	block, err := blockio.Read(r)
	if err != nil {
		return hdr, err
	}
	if err := gob.NewDecoder(block).Decode(&hdr); err != nil {
		return hdr, err
	}
	return hdr, hdr.validate()
}

// maxSubsetBound mirrors the sharded container's header validation: the
// subset cap is a small query-shape parameter, and a corrupt header must
// not smuggle an absurd value into every downstream Lookup.
const maxSubsetBound = 64

func (h coreHeader) validate() error {
	if h.MaxSubset < 0 || h.MaxSubset > maxSubsetBound {
		return fmt.Errorf("header subset cap %d out of range [0, %d]", h.MaxSubset, maxSubsetBound)
	}
	// The membership threshold is a probability; NaN fails both
	// comparisons and is rejected with the rest.
	if !(h.Threshold >= 0 && h.Threshold <= 1) {
		return fmt.Errorf("header threshold %v outside [0, 1]", h.Threshold)
	}
	return nil
}

// Trained structures persist to a single stream so they can be built once
// and reopened (the paper's models "extract the weights … and store"
// them, §8.2.2). An index additionally needs its collection at load time.
//
// The monolithic formats do not persist the live-mutation delta: the
// durable write path is the sharded container (SLSHRD1 v2 carries pending
// deltas); a monolithic save captures only the trained state.

type coreHeader struct {
	MaxSubset int
	Threshold float64 // membership filter only
	Sandwich  bool    // membership filter only: a pre-filter block follows
}

// Save persists the trained index (model, error bounds, auxiliary
// structure). The collection itself is not written.
func (i *SetIndex) Save(w io.Writer) error {
	if err := writeHeader(w, coreHeader{MaxSubset: i.maxSubset}); err != nil {
		return fmt.Errorf("core: save index: %w", err)
	}
	return i.hybrid.Save(w)
}

// LoadIndex restores a SetIndex over the same collection it was built on.
func LoadIndex(r io.Reader, c *sets.Collection) (*SetIndex, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, fmt.Errorf("core: load index: %w", err)
	}
	h, err := hybrid.LoadIndex(r, c)
	if err != nil {
		return nil, err
	}
	enableFastPath(h.Model(), DefaultFastPath)
	idx := &SetIndex{hybrid: h, maxSubset: hdr.MaxSubset, delta: hybrid.NewDelta()}
	idx.nextPos.Store(int64(c.Len()))
	return idx, nil
}

// Save persists the trained estimator.
func (e *CardinalityEstimator) Save(w io.Writer) error {
	if err := writeHeader(w, coreHeader{MaxSubset: e.maxSubset}); err != nil {
		return fmt.Errorf("core: save estimator: %w", err)
	}
	return e.hybrid.Save(w)
}

// LoadCardinalityEstimator restores an estimator saved by Save.
func LoadCardinalityEstimator(r io.Reader) (*CardinalityEstimator, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, fmt.Errorf("core: load estimator: %w", err)
	}
	h, err := hybrid.LoadEstimator(r)
	if err != nil {
		return nil, err
	}
	enableFastPath(h.Model(), DefaultFastPath)
	return &CardinalityEstimator{hybrid: h, maxSubset: hdr.MaxSubset, delta: hybrid.NewDelta()}, nil
}

// Save persists the trained membership filter (model, threshold, backup
// Bloom filter).
func (f *MembershipFilter) Save(w io.Writer) error {
	if err := writeHeader(w, coreHeader{
		MaxSubset: f.maxSubset, Threshold: f.threshold, Sandwich: f.pre != nil,
	}); err != nil {
		return fmt.Errorf("core: save filter: %w", err)
	}
	if err := blockio.Write(w, f.model.Save); err != nil {
		return fmt.Errorf("core: save filter model: %w", err)
	}
	if err := blockio.Write(w, f.backup.Save); err != nil {
		return fmt.Errorf("core: save filter backup: %w", err)
	}
	if f.pre != nil {
		if err := blockio.Write(w, f.pre.Save); err != nil {
			return fmt.Errorf("core: save filter pre-filter: %w", err)
		}
	}
	return nil
}

// LoadMembershipFilter restores a filter saved by Save.
func LoadMembershipFilter(r io.Reader) (*MembershipFilter, error) {
	hdr, err := readHeader(r)
	if err != nil {
		return nil, fmt.Errorf("core: load filter: %w", err)
	}
	mBlock, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("core: load filter model: %w", err)
	}
	m, err := deepsets.Load(mBlock)
	if err != nil {
		return nil, fmt.Errorf("core: load filter model: %w", err)
	}
	bBlock, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("core: load filter backup: %w", err)
	}
	backup, err := bloom.Load(bBlock)
	if err != nil {
		return nil, fmt.Errorf("core: load filter backup: %w", err)
	}
	f := &MembershipFilter{
		model:     m,
		pred:      m.NewPredictorPool(),
		backup:    backup,
		threshold: hdr.Threshold,
		maxSubset: hdr.MaxSubset,
		delta:     hybrid.NewDelta(),
	}
	if hdr.Sandwich {
		pBlock, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("core: load filter pre-filter: %w", err)
		}
		if f.pre, err = bloom.Load(pBlock); err != nil {
			return nil, fmt.Errorf("core: load filter pre-filter: %w", err)
		}
	}
	enableFastPath(m, DefaultFastPath)
	return f, nil
}
