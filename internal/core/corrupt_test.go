package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// Corrupt-header regressions: a header that gob-decodes cleanly but
// carries an out-of-range field must fail the load, not hand the bogus
// value to every downstream Lookup. (The trustlen analyzer covers
// length-sized allocations; these fields are semantic bounds it cannot
// see, so they get explicit validation and these pins.)

func corruptHeaderStream(t *testing.T, hdr coreHeader) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	cases := []struct {
		name string
		hdr  coreHeader
		want string
	}{
		{"subset cap huge", coreHeader{MaxSubset: 1 << 20}, "out of range"},
		{"subset cap negative", coreHeader{MaxSubset: -3}, "out of range"},
		{"threshold NaN", coreHeader{MaxSubset: 2, Threshold: math.NaN()}, "outside [0, 1]"},
		{"threshold above one", coreHeader{MaxSubset: 2, Threshold: 1.5}, "outside [0, 1]"},
		{"threshold negative", coreHeader{MaxSubset: 2, Threshold: -0.25}, "outside [0, 1]"},
	}
	c := sets.NewCollection(nil)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := corruptHeaderStream(t, tc.hdr)
			if _, err := LoadIndex(bytes.NewReader(stream), c); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("LoadIndex: err = %v, want substring %q", err, tc.want)
			}
			if _, err := LoadCardinalityEstimator(bytes.NewReader(stream)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("LoadCardinalityEstimator: err = %v, want substring %q", err, tc.want)
			}
			if _, err := LoadMembershipFilter(bytes.NewReader(stream)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("LoadMembershipFilter: err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// A valid save still round-trips after the validation tightening — the
// boundary values 0 and 64 are inside the accepted range.
func TestHeaderBoundaryValuesStillLoad(t *testing.T) {
	for _, maxSubset := range []int{0, 2, maxSubsetBound} {
		stream := corruptHeaderStream(t, coreHeader{MaxSubset: maxSubset, Threshold: 1})
		// The header parses; the load then fails later, on the missing
		// model section, not on validation.
		_, err := LoadCardinalityEstimator(bytes.NewReader(stream))
		if err == nil {
			t.Fatalf("MaxSubset=%d: load succeeded on a header-only stream", maxSubset)
		}
		if strings.Contains(err.Error(), "out of range") || strings.Contains(err.Error(), "outside") {
			t.Fatalf("MaxSubset=%d: boundary value rejected by validation: %v", maxSubset, err)
		}
	}
}

// End-to-end: flipping the saved header of a real filter stream to an
// absurd subset cap is caught at load.
func TestFilterLoadRejectsTamperedHeader(t *testing.T) {
	c := dataset.GenerateSD(120, 30, 53)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-frame the stream with a tampered header followed by the original
	// model/backup sections.
	var tampered bytes.Buffer
	if err := writeHeader(&tampered, coreHeader{MaxSubset: 1 << 30, Threshold: f.threshold}); err != nil {
		t.Fatal(err)
	}
	rest := bytes.NewReader(buf.Bytes())
	if _, err := readHeader(rest); err != nil {
		t.Fatal(err)
	}
	if _, err := rest.WriteTo(&tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMembershipFilter(bytes.NewReader(tampered.Bytes())); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("tampered header accepted: err = %v", err)
	}
}
