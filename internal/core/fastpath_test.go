package core

import (
	"math/rand"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// fastPathQueries mixes in-vocabulary subsets, full sets, and unseen
// combinations — the batch endpoints must agree with the per-query path on
// all of them.
func fastPathQueries(c *sets.Collection, n int, seed int64) []sets.Set {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]sets.Set, n)
	maxID := int(c.MaxID())
	for i := range qs {
		if i%3 == 0 {
			s := c.At(rng.Intn(c.Len()))
			k := 1 + rng.Intn(len(s))
			qs[i] = sets.New(s[:k]...)
			continue
		}
		ids := make([]uint32, 1+rng.Intn(3))
		for j := range ids {
			ids[j] = uint32(rng.Intn(maxID + 1))
		}
		qs[i] = sets.New(ids...)
	}
	return qs
}

// TestEstimatorFastPathEquivalence drives one estimator through all three
// accel modes and both call shapes, requiring bit-identical answers:
// disabling the auto-enabled accel gives ground truth, then the table, the
// (eviction-heavy) sharded cache, and EstimateBatch must reproduce it.
func TestEstimatorFastPathEquivalence(t *testing.T) {
	c := dataset.GenerateSD(250, 40, 51)
	est, err := BuildEstimator(c, EstimatorOptions{
		Model: fastModel(false), MaxSubset: 2, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := fastPathQueries(c, 150, 52)

	if mode := est.EnableFastPath(FastPathOptions{}); mode != "off" {
		t.Fatalf("disable returned mode %q", mode)
	}
	if _, ok := est.PhiStats(); ok {
		t.Fatal("PhiStats must report ok=false when disabled")
	}
	truth := make([]float64, len(qs))
	for i, q := range qs {
		truth[i] = est.Estimate(q)
	}

	for _, tc := range []struct {
		opts FastPathOptions
		mode string
	}{
		{FastPathOptions{TableBudgetBytes: 1 << 30}, "table"},
		// A budget of 0 forces the cache; size it well below the universe.
		{FastPathOptions{CacheBytes: 20 * 16 * 8, CacheShards: 4}, "cache"},
	} {
		if mode := est.EnableFastPath(tc.opts); mode != tc.mode {
			t.Fatalf("EnableFastPath(%+v) = %q, want %q", tc.opts, mode, tc.mode)
		}
		st, ok := est.PhiStats()
		if !ok || st.Mode != tc.mode {
			t.Fatalf("PhiStats after %s: %+v ok=%v", tc.mode, st, ok)
		}
		for i, q := range qs {
			if got := est.Estimate(q); got != truth[i] {
				t.Fatalf("%s: Estimate(%v) = %v, uncached %v", tc.mode, q, got, truth[i])
			}
		}
		batch := est.EstimateBatch(nil, qs)
		for i := range qs {
			if batch[i] != truth[i] {
				t.Fatalf("%s: EstimateBatch[%d] = %v, uncached %v", tc.mode, i, batch[i], truth[i])
			}
		}
	}

	// Aux overrides and out-of-vocabulary answers survive the batch path.
	est.Update(qs[0], 123)
	oov := sets.New(c.MaxID() + 10)
	mixed := []sets.Set{qs[0], oov, sets.New()}
	got := est.EstimateBatch(nil, mixed)
	if got[0] != 123 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("EstimateBatch on aux/OOV/empty = %v", got)
	}
}

// TestIndexLookupBatchEquivalence checks LookupBatch against per-query
// Lookup and LookupEqual, including aux-served, out-of-vocabulary, and
// empty queries.
func TestIndexLookupBatchEquivalence(t *testing.T) {
	c := dataset.GenerateSD(250, 40, 53)
	idx, err := BuildIndex(c, IndexOptions{
		Model: fastModel(false), MaxSubset: 2, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := fastPathQueries(c, 120, 54)
	qs = append(qs, sets.New(), sets.New(c.MaxID()+7), c.At(0))
	for _, equal := range []bool{false, true} {
		want := make([]int, len(qs))
		for i, q := range qs {
			if equal {
				want[i] = idx.LookupEqual(q)
			} else {
				want[i] = idx.Lookup(q)
			}
		}
		got := idx.LookupBatch(nil, qs, equal)
		for i := range qs {
			if got[i] != want[i] {
				t.Fatalf("equal=%v: LookupBatch[%d](%v) = %d, per-query %d", equal, i, qs[i], got[i], want[i])
			}
		}
	}
}

// TestFilterFusedBatchEquivalence checks the fused ContainsBatch against
// per-query Contains for serial and parallel fan-out, sandwich and plain.
func TestFilterFusedBatchEquivalence(t *testing.T) {
	c := dataset.GenerateSD(250, 40, 55)
	for _, sandwich := range []bool{false, true} {
		f, err := BuildMembershipFilter(c, FilterOptions{
			Model: fastModel(false), MaxSubset: 2, Sandwich: sandwich,
		})
		if err != nil {
			t.Fatal(err)
		}
		qs := fastPathQueries(c, 120, 56)
		qs = append(qs, sets.New(), sets.New(c.MaxID()+3))
		want := make([]bool, len(qs))
		for i, q := range qs {
			want[i] = f.Contains(q)
		}
		for _, workers := range []int{1, 4} {
			got := f.ContainsBatch(qs, workers)
			for i := range qs {
				if got[i] != want[i] {
					t.Fatalf("sandwich=%v workers=%d: ContainsBatch[%d](%v) = %v, per-query %v",
						sandwich, workers, i, qs[i], got[i], want[i])
				}
			}
		}
	}
}

// TestFastPathAutoEnabled pins the build- and load-time default: small
// universes get the full φ-table automatically.
func TestFastPathAutoEnabled(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 57)
	est, err := BuildEstimator(c, EstimatorOptions{
		Model: fastModel(false), MaxSubset: 2, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := est.PhiStats()
	if !ok || st.Mode != "table" {
		t.Fatalf("expected auto-enabled table after build, got %+v ok=%v", st, ok)
	}
	if est.MaxID() != c.MaxID() {
		t.Fatalf("MaxID() = %d, want %d", est.MaxID(), c.MaxID())
	}
}
