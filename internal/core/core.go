// Package core is the public facade of the library: it builds the three
// learned structures of the paper over a collection of sets —
//
//   - SetIndex (§4.1): query subset → first position in the collection,
//   - CardinalityEstimator (§4.2): query subset → number of supersets,
//   - MembershipFilter (§4.3): learned Bloom filter with a backup filter
//     that removes false negatives,
//
// wiring together training-data generation, DeepSets training (optionally
// compressed, §5), guided learning with outlier eviction, and the hybrid
// structure with per-range error bounds (§6, Algorithm 2).
package core

import (
	"fmt"

	"setlearn/internal/deepsets"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// ModelOptions selects the learned-model variant and training budget shared
// by all three tasks. Zero values mean sensible defaults.
type ModelOptions struct {
	// Compressed selects CLSM (per-element compression, §5) over LSM.
	Compressed bool
	NS         int    // sub-elements per element (default 2)
	SVD        uint32 // compression divisor (0 = optimal; Table 6 tunes this)

	EmbedDim  int   // default 8
	PhiHidden []int // default [32]
	PhiOut    int   // default 32
	RhoHidden []int // default [32]

	Epochs    int     // default 20
	LR        float64 // default 0.005
	BatchSize int     // default 32
	Workers   int     // default GOMAXPROCS
	Seed      int64
}

func (o ModelOptions) modelConfig(maxID uint32) deepsets.Config {
	cfg := deepsets.Config{
		MaxID:      maxID,
		EmbedDim:   o.EmbedDim,
		PhiHidden:  o.PhiHidden,
		PhiOut:     o.PhiOut,
		RhoHidden:  o.RhoHidden,
		Compressed: o.Compressed,
		NS:         o.NS,
		SVD:        o.SVD,
		OutputAct:  nn.Sigmoid,
		Seed:       o.Seed,
	}
	if cfg.PhiOut == 0 {
		cfg.PhiOut = 32
	}
	if len(cfg.PhiHidden) == 0 {
		cfg.PhiHidden = []int{32}
	}
	if len(cfg.RhoHidden) == 0 {
		cfg.RhoHidden = []int{32}
	}
	return cfg
}

func (o ModelOptions) trainConfig() train.Config {
	return train.Config{
		Epochs:    o.Epochs,
		LR:        o.LR,
		BatchSize: o.BatchSize,
		Workers:   o.Workers,
		Seed:      o.Seed + 1,
	}
}

// validateCollection rejects collections the structures cannot be built on.
func validateCollection(c *sets.Collection) error {
	if c == nil || c.Len() == 0 {
		return fmt.Errorf("core: empty collection")
	}
	for i, s := range c.Sets {
		if len(s) == 0 {
			return fmt.Errorf("core: set at position %d is empty", i)
		}
	}
	return nil
}
