package core

import (
	"bytes"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 51)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(true), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadIndex(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxSubset() != idx.MaxSubset() || got.MaxError() != idx.MaxError() {
		t.Fatal("metadata lost in round trip")
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%7 != 0 {
			continue
		}
		q := st.ByKey[k].Set
		if a, b := idx.Lookup(q), got.Lookup(q); a != b {
			t.Fatalf("lookup diverged after round trip: %d vs %d for %v", a, b, q)
		}
	}
}

func TestIndexLoadRequiresCollection(t *testing.T) {
	c := dataset.GenerateSD(100, 30, 52)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), sets.NewCollection(nil)); err == nil {
		t.Fatal("expected error without collection")
	}
}

func TestEstimatorSaveLoadRoundTrip(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 53)
	est, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(true), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCardinalityEstimator(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%7 != 0 {
			continue
		}
		q := st.ByKey[k].Set
		a, b := est.Estimate(q), got.Estimate(q)
		// Weights round-trip at float32 precision, so allow tiny drift.
		if diff := a - b; diff > 1e-4*(1+a) || diff < -1e-4*(1+a) {
			t.Fatalf("estimate diverged after round trip: %v vs %v for %v", a, b, q)
		}
	}
}

func TestFilterSaveLoadRoundTrip(t *testing.T) {
	c := dataset.GenerateRW(200, 400, 54)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(true), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMembershipFilter(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.BackupCount() != f.BackupCount() {
		t.Fatal("backup filter lost entries")
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%5 != 0 {
			continue
		}
		q := st.ByKey[k].Set
		if a, b := f.Contains(q), got.Contains(q); a != b {
			t.Fatalf("membership diverged after round trip for %v", q)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	junk := bytes.NewReader([]byte("garbage stream"))
	if _, err := LoadCardinalityEstimator(junk); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadMembershipFilter(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
	c := sets.NewCollection([]sets.Set{sets.New(1)})
	if _, err := LoadIndex(bytes.NewReader([]byte("junk")), c); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestIndexLoadRejectsWrongCollection(t *testing.T) {
	c := dataset.GenerateSD(150, 40, 58)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.GenerateSD(150, 40, 59) // different seed, same shape
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("expected fingerprint mismatch error")
	}
	// Appending to the original collection is fine (updates, §7.2).
	c.Append(sets.New(900, 901))
	if _, err := LoadIndex(bytes.NewReader(buf.Bytes()), c); err != nil {
		t.Fatalf("grown original collection must load: %v", err)
	}
}
