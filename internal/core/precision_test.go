package core

import (
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/mat"
	"setlearn/internal/sets"
)

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		err  bool
	}{
		{"f64", F64, false}, {"float64", F64, false}, {"", F64, false},
		{"f32", F32, false}, {"float32", F32, false},
		{"f16", F64, true}, {"double", F64, true},
	} {
		got, err := ParsePrecision(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
	if F32.String() != "f32" || F64.String() != "f64" {
		t.Fatalf("String(): %v %v", F32, F64)
	}
}

// queriesFrom enumerates 2-subsets of collection sets as test queries.
func queriesFrom(c *sets.Collection, n int) []sets.Set {
	var qs []sets.Set
	for i := 0; i < c.Len() && len(qs) < n; i++ {
		s := c.At(i)
		if len(s) >= 2 {
			qs = append(qs, sets.New(s[0], s[1]))
		}
	}
	return qs
}

func TestIndexPrecisionSwitch(t *testing.T) {
	c := dataset.GenerateSD(300, 40, 41)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesFrom(c, 100)
	ref := make([]int, len(qs))
	for i, q := range qs {
		ref[i] = idx.Lookup(q)
	}

	if idx.Precision() != F64 {
		t.Fatal("fresh index must serve f64")
	}
	idx.SetPrecision(F32)
	if idx.Precision() != F32 {
		t.Fatal("SetPrecision(F32) not reported")
	}
	// The f32 estimate can shift the scan window by a position or two, so
	// a small disagreement rate is tolerated; every positive answer must
	// still be a true containment.
	diff := 0
	for i, q := range qs {
		got := idx.Lookup(q)
		if got != ref[i] {
			diff++
		}
		if got >= 0 && !c.At(got).ContainsAll(q) {
			t.Fatalf("f32 Lookup(%v)=%d is not a containment", q, got)
		}
	}
	if diff > len(qs)/20 {
		t.Fatalf("f32 Lookup disagreed on %d/%d queries", diff, len(qs))
	}
	// Batch matches scalar under f32.
	batch := idx.LookupBatch(nil, qs, false)
	for i, q := range qs {
		if batch[i] != idx.Lookup(q) {
			t.Fatalf("f32 LookupBatch[%d] = %d, scalar = %d", i, batch[i], idx.Lookup(q))
		}
	}

	// Switching back restores the bit-identical f64 answers.
	idx.SetPrecision(F64)
	if idx.Precision() != F64 {
		t.Fatal("SetPrecision(F64) not reported")
	}
	for i, q := range qs {
		if got := idx.Lookup(q); got != ref[i] {
			t.Fatalf("f64 restore: Lookup(%v)=%d, want %d", q, got, ref[i])
		}
	}
}

func TestEstimatorPrecisionSwitch(t *testing.T) {
	c := dataset.GenerateSD(300, 40, 42)
	e, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	qs := queriesFrom(c, 100)
	ref := e.EstimateBatch(nil, qs)

	e.SetPrecision(F32)
	if e.Precision() != F32 {
		t.Fatal("SetPrecision(F32) not reported")
	}
	got := e.EstimateBatch(nil, qs)
	for i := range qs {
		// The scaler amplifies the raw model delta; 1e-2 relative bounds
		// the tiny trained models here with margin (the bench precision
		// experiment reports measured deltas on realistic models).
		if !mat.WithinTol(got[i], ref[i], 1e-2) {
			t.Fatalf("f32 Estimate[%d] = %v, f64 = %v", i, got[i], ref[i])
		}
	}

	e.SetPrecision(F64)
	back := e.EstimateBatch(nil, qs)
	for i := range qs {
		if back[i] != ref[i] {
			t.Fatalf("f64 restore: Estimate[%d]=%v, want %v bit-identical", i, back[i], ref[i])
		}
	}
}

func TestFilterPrecisionKeepsNoFalseNegatives(t *testing.T) {
	c := dataset.GenerateSD(200, 30, 43)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	subs := make([]sets.Set, 0, len(st.Keys))
	for _, k := range st.Keys {
		subs = append(subs, st.ByKey[k].Set)
	}
	f.SetPrecision(F32)
	if f.Precision() != F32 {
		t.Fatal("SetPrecision(F32) not reported")
	}
	// The threshold guard band must preserve the one-sided guarantee:
	// every trained positive still answers true under f32.
	miss := 0
	for _, s := range subs {
		if !f.Contains(s) {
			miss++
		}
	}
	if miss != 0 {
		t.Fatalf("f32 filter produced %d false negatives", miss)
	}
	// Batch path agrees with scalar under f32.
	qs := subs[:min(64, len(subs))]
	out := f.ContainsBatch(qs, 4)
	for i, q := range qs {
		if out[i] != f.Contains(q) {
			t.Fatalf("f32 ContainsBatch[%d] disagrees with Contains", i)
		}
	}
	f.SetPrecision(F64)
	if f.Precision() != F64 {
		t.Fatal("SetPrecision(F64) not reported")
	}
}

func TestEnableFastPathRefreshesF32Snapshot(t *testing.T) {
	c := dataset.GenerateSD(200, 30, 44)
	e, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.SetPrecision(F32)
	qs := queriesFrom(c, 50)
	ref := e.EstimateBatch(nil, qs)
	// Re-enabling the fast path rebuilds the φ-table and must keep the
	// structure serving f32, with answers unchanged within rounding (the
	// snapshot's table rows are the new table's rows, rounded once).
	if mode := e.EnableFastPath(DefaultFastPath); mode != "table" {
		t.Fatalf("mode=%q want table", mode)
	}
	if e.Precision() != F32 {
		t.Fatal("EnableFastPath must not reset precision")
	}
	got := e.EstimateBatch(nil, qs)
	for i := range qs {
		if !mat.WithinTol(got[i], ref[i], 1e-2) {
			t.Fatalf("post-refresh Estimate[%d]=%v, was %v", i, got[i], ref[i])
		}
	}
}
