package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"setlearn/internal/bloom"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// FilterOptions configures BuildMembershipFilter.
type FilterOptions struct {
	Model ModelOptions
	// MaxSubset caps both the positive enumeration and the negative
	// sampling size (§7.1.2 restricts the learned BF to subsets up to a
	// predefined size to bound the negative space).
	MaxSubset int
	// NegPerPos is the ratio of sampled negative to positive training
	// subsets (default 1.0).
	NegPerPos float64
	// Threshold is the classification cut τ (default 0.5): probabilities
	// above it are answered positive by the model alone.
	Threshold float64
	// BackupFPRate sizes the backup Bloom filter holding the model's false
	// negatives (default 0.01).
	BackupFPRate float64
	// Sandwich adds an initial Bloom filter in front of the model
	// (Mitzenmacher's sandwiched learned Bloom filter, cited in §2): a
	// cheap pre-filter rejects most true negatives before they reach the
	// model, cutting both latency and the model's false-positive surface.
	Sandwich bool
	// SandwichFPRate sizes the pre-filter (default 0.3 — intentionally
	// loose, since the model and backup sit behind it).
	SandwichFPRate float64
}

// MembershipFilter is the learned set Bloom filter (§4.3): a DeepSets
// classifier in front of a small backup Bloom filter that stores the
// trained positives the model misclassifies, guaranteeing no false
// negatives for subsets within the trained size cap — the standard learned
// Bloom filter construction [Kraska et al.].
type MembershipFilter struct {
	model *deepsets.Model
	pred  *deepsets.PredictorPool
	// pred32, when non-nil, routes predictions through a float32 snapshot
	// (SetPrecision); everything downstream (threshold, backup filter)
	// stays float64.
	pred32    atomic.Pointer[deepsets.PredictorPool32]
	backup    *bloom.Filter
	pre       *bloom.Filter // optional sandwich pre-filter
	threshold float64
	maxSubset int
	delta     *hybrid.Delta // sets inserted after build; checked exactly
	nextPos   atomic.Int64
}

// BuildMembershipFilter trains a learned membership filter over c.
func BuildMembershipFilter(c *sets.Collection, opts FilterOptions) (*MembershipFilter, error) {
	if err := validateCollection(c); err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	if opts.NegPerPos == 0 {
		opts.NegPerPos = 1
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.5
	}
	if opts.BackupFPRate == 0 {
		opts.BackupFPRate = 0.01
	}
	if opts.SandwichFPRate == 0 {
		opts.SandwichFPRate = 0.3
	}

	st := dataset.CollectSubsets(c, opts.MaxSubset)
	md := st.MembershipSamples(c, opts.MaxSubset, opts.NegPerPos, opts.Model.Seed+7)

	m, err := deepsets.New(opts.Model.modelConfig(c.MaxID()))
	if err != nil {
		return nil, fmt.Errorf("core: build filter model: %w", err)
	}
	if _, err := train.Classification(m, md, opts.Model.trainConfig()); err != nil {
		return nil, fmt.Errorf("core: train filter model: %w", err)
	}

	f := &MembershipFilter{
		model:     m,
		pred:      m.NewPredictorPool(),
		threshold: opts.Threshold,
		maxSubset: opts.MaxSubset,
		delta:     hybrid.NewDelta(),
	}
	f.nextPos.Store(int64(c.Len()))
	if opts.Sandwich {
		f.pre = bloom.NewWithEstimates(uint64(len(md.Positive)), opts.SandwichFPRate)
		for _, s := range md.Positive {
			f.pre.Add(s.Hash())
		}
	}

	// Collect the model's false negatives among the trained positives and
	// store them in the backup filter — the construction that makes the
	// learned Bloom filter one-sided again.
	var falseNegatives []sets.Set
	for _, s := range md.Positive {
		if f.pred.Predict(s) <= f.threshold {
			falseNegatives = append(falseNegatives, s)
		}
	}
	n := uint64(len(falseNegatives))
	if n == 0 {
		n = 1
	}
	f.backup = bloom.NewWithEstimates(n, opts.BackupFPRate)
	for _, s := range falseNegatives {
		f.backup.Add(s.Hash())
	}
	enableFastPath(m, DefaultFastPath)
	return f, nil
}

// Contains reports whether q may be a subset of some set in the collection.
// No false negatives occur for subsets within the trained size cap; false
// positives occur at the combined model+backup rate.
func (f *MembershipFilter) Contains(q sets.Set) bool {
	if len(q) == 0 {
		return true // the empty set is a subset of everything
	}
	if f.delta.Contains(q) {
		return true // exact hit among sets inserted after build
	}
	if q[len(q)-1] > f.model.Config().MaxID {
		return false // unknown element: cannot occur in the trained bulk
	}
	if f.pre != nil && !f.pre.Contains(q.Hash()) {
		return false // sandwich pre-filter: definitely absent
	}
	if f.predict(q) > f.effThreshold() {
		return true
	}
	return f.backup.Contains(q.Hash())
}

// f32ThresholdGuard is the guard band the f32 path subtracts from the
// classification cut. The backup filter holds the *float64* model's false
// negatives, so a trained positive the f64 model passed at τ is absent
// from it; if the f32 prediction drifted below τ the filter would gain a
// false negative. Predictions under f32 stay within ~1e-5 of f64 (the
// bench precision experiment measures this; sigmoid outputs live in
// [0,1]), so a 1e-3 guard restores the one-sided guarantee with a
// negligible false-positive cost — only queries whose f64 probability
// lies within 1e-3 of τ answer differently.
const f32ThresholdGuard = 1e-3

// effThreshold returns the classification cut for the active precision.
func (f *MembershipFilter) effThreshold() float64 {
	if f.pred32.Load() != nil {
		return f.threshold - f32ThresholdGuard
	}
	return f.threshold
}

// ModelProbability exposes the raw classifier output for q.
func (f *MembershipFilter) ModelProbability(q sets.Set) float64 {
	if len(q) == 0 || q[len(q)-1] > f.model.Config().MaxID {
		return 0
	}
	return f.predict(q)
}

// InsertSet appends s to the logical collection: Contains answers true for
// every subset of s the instant this returns, with no false-negative risk
// (the delta check is exact, not probabilistic).
func (f *MembershipFilter) InsertSet(s sets.Set) int {
	pos := int(f.nextPos.Add(1)) - 1
	f.delta.Add(s.Clone(), pos)
	return pos
}

// DeltaStats reports the pending-insert state of the exact delta.
func (f *MembershipFilter) DeltaStats() DeltaStats {
	n := f.delta.Len()
	return DeltaStats{Pending: n, PerShard: []int{n}, OldestSecs: f.delta.Age().Seconds()}
}

// BackupCount returns the number of positives stored in the backup filter.
func (f *MembershipFilter) BackupCount() uint64 { return f.backup.Count() }

// MaxSubset returns the trained subset-size cap.
func (f *MembershipFilter) MaxSubset() int { return f.maxSubset }

// SizeBytes returns model plus filter bytes (the paper notes the backup is
// negligible, §8.4.2; both it and any sandwich pre-filter are accounted
// for).
func (f *MembershipFilter) SizeBytes() int {
	total := f.model.SizeBytes() + f.backup.SizeBytes() + f.delta.SizeBytes()
	if f.pre != nil {
		total += f.pre.SizeBytes()
	}
	return total
}

// ModelSizeBytes returns the learned model's share of SizeBytes.
func (f *MembershipFilter) ModelSizeBytes() int { return f.model.SizeBytes() }

// containsFused answers qs into out (same length) with one pooled
// predictor: the cheap pre-checks (empty, out-of-vocabulary, sandwich
// pre-filter) short-circuit, and the queries that actually need the model
// run through a single PredictBatch. Answers match per-query Contains.
func (f *MembershipFilter) containsFused(out []bool, qs []sets.Set) {
	need := make([]sets.Set, 0, len(qs))
	needAt := make([]int, 0, len(qs))
	for i, q := range qs {
		switch {
		case len(q) == 0:
			out[i] = true // the empty set is a subset of everything
		case f.delta.Contains(q):
			out[i] = true // exact hit among sets inserted after build
		case q[len(q)-1] > f.model.Config().MaxID:
			out[i] = false // unknown element: cannot occur in the trained bulk
		case f.pre != nil && !f.pre.Contains(q.Hash()):
			out[i] = false // sandwich pre-filter: definitely absent
		default:
			need = append(need, q)
			needAt = append(needAt, i)
		}
	}
	if len(need) == 0 {
		return
	}
	probs := f.predictBatch(nil, need)
	tau := f.effThreshold()
	for j, q := range need {
		out[needAt[j]] = probs[j] > tau || f.backup.Contains(q.Hash())
	}
}

// ContainsBatch answers many membership queries, fanning out across
// workers (the predictor pool makes the filter safe for concurrent use) —
// a first step toward the multi-set multi-membership querying the paper
// names as future work (§9). Each worker's slice runs through the fused
// batch path, so model evaluations are batched per worker.
func (f *MembershipFilter) ContainsBatch(qs []sets.Set, workers int) []bool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	out := make([]bool, len(qs))
	if workers <= 1 {
		f.containsFused(out, qs)
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(qs)/workers, (w+1)*len(qs)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.containsFused(out[lo:hi], qs[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}
