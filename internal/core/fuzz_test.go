package core

import (
	"bytes"
	"sync"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// fuzzCorpus holds one tiny trained structure of each kind, serialized, plus
// the collection the index needs at load time. Built once per process
// (training is the expensive part, loading is what's under test).
type fuzzCorpus struct {
	c      *sets.Collection
	index  []byte
	card   []byte
	member []byte
}

var (
	corpusOnce sync.Once
	corpus     *fuzzCorpus
	corpusErr  error
)

func tinyModel() ModelOptions {
	return ModelOptions{
		EmbedDim: 2, PhiHidden: []int{4}, PhiOut: 4, RhoHidden: []int{4},
		Epochs: 1, LR: 0.01, Workers: 1, Seed: 5,
	}
}

func buildFuzzCorpus(tb testing.TB) *fuzzCorpus {
	tb.Helper()
	corpusOnce.Do(func() {
		c := dataset.GenerateSD(60, 20, 71)
		fc := &fuzzCorpus{c: c}
		idx, err := BuildIndex(c, IndexOptions{Model: tinyModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			corpusErr = err
			return
		}
		var buf bytes.Buffer
		if corpusErr = idx.Save(&buf); corpusErr != nil {
			return
		}
		fc.index = append([]byte(nil), buf.Bytes()...)

		est, err := BuildEstimator(c, EstimatorOptions{Model: tinyModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			corpusErr = err
			return
		}
		buf.Reset()
		if corpusErr = est.Save(&buf); corpusErr != nil {
			return
		}
		fc.card = append([]byte(nil), buf.Bytes()...)

		mf, err := BuildMembershipFilter(c, FilterOptions{Model: tinyModel(), MaxSubset: 2, Sandwich: true})
		if err != nil {
			corpusErr = err
			return
		}
		buf.Reset()
		if corpusErr = mf.Save(&buf); corpusErr != nil {
			return
		}
		fc.member = append([]byte(nil), buf.Bytes()...)
		corpus = fc
	})
	if corpusErr != nil {
		tb.Fatalf("building fuzz corpus: %v", corpusErr)
	}
	return corpus
}

// FuzzLoadStructure feeds arbitrary bytes to all three load paths. Corrupt
// or truncated input must surface as an error — never a panic, hang, or
// absurd allocation. Valid streams (the seeds) must load. The which byte
// selects the loader so the fuzzer can mutate structure bytes against their
// own decoder.
func FuzzLoadStructure(f *testing.F) {
	fc := buildFuzzCorpus(f)
	f.Add(byte(0), fc.index)
	f.Add(byte(1), fc.card)
	f.Add(byte(2), fc.member)
	// Cross-seeds: each structure against the other loaders.
	f.Add(byte(0), fc.card)
	f.Add(byte(1), fc.member)
	f.Add(byte(2), fc.index)
	f.Add(byte(0), []byte{})
	f.Add(byte(1), []byte("garbage that is not a structure"))
	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		r := bytes.NewReader(data)
		switch which % 3 {
		case 0:
			if idx, err := LoadIndex(r, fc.c); err == nil {
				// A stream that decodes must yield a queryable structure.
				idx.Lookup(fc.c.At(0))
			}
		case 1:
			if est, err := LoadCardinalityEstimator(r); err == nil {
				est.Estimate(fc.c.At(0))
			}
		case 2:
			if mf, err := LoadMembershipFilter(r); err == nil {
				mf.Contains(fc.c.At(0))
			}
		}
	})
}

// TestLoadTruncatedNeverPanics sweeps every truncation point of each valid
// stream — the deterministic core of what FuzzLoadStructure explores — and
// additionally flips bytes at regular offsets. Every variant must error or
// load; none may panic.
func TestLoadTruncatedNeverPanics(t *testing.T) {
	fc := buildFuzzCorpus(t)
	try := func(which int, data []byte) {
		r := bytes.NewReader(data)
		switch which {
		case 0:
			if idx, err := LoadIndex(r, fc.c); err == nil {
				idx.Lookup(fc.c.At(0))
			}
		case 1:
			if est, err := LoadCardinalityEstimator(r); err == nil {
				est.Estimate(fc.c.At(0))
			}
		case 2:
			if mf, err := LoadMembershipFilter(r); err == nil {
				mf.Contains(fc.c.At(0))
			}
		}
	}
	for which, stream := range [][]byte{fc.index, fc.card, fc.member} {
		// Truncations: every prefix length for short streams, sampled for
		// long ones.
		step := 1
		if len(stream) > 2048 {
			step = len(stream) / 2048
		}
		for n := 0; n < len(stream); n += step {
			try(which, stream[:n])
		}
		// Corruptions: flip one byte at sampled offsets.
		for off := 0; off < len(stream); off += 1 + len(stream)/256 {
			mut := append([]byte(nil), stream...)
			mut[off] ^= 0xA5
			try(which, mut)
		}
	}
}

// TestLoadValidStreamsStillWork pins the corpus itself: the untouched
// streams must load and answer queries.
func TestLoadValidStreamsStillWork(t *testing.T) {
	fc := buildFuzzCorpus(t)
	if _, err := LoadIndex(bytes.NewReader(fc.index), fc.c); err != nil {
		t.Fatalf("valid index stream rejected: %v", err)
	}
	if _, err := LoadCardinalityEstimator(bytes.NewReader(fc.card)); err != nil {
		t.Fatalf("valid estimator stream rejected: %v", err)
	}
	if _, err := LoadMembershipFilter(bytes.NewReader(fc.member)); err != nil {
		t.Fatalf("valid filter stream rejected: %v", err)
	}
}
