package core

import (
	"bytes"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// TestGoldenRoundTrip guards the `setlearn -save` → `setlearnd` handoff:
// train tiny structures at a fixed seed, save, load, and require (a) the
// loaded structure re-serializes byte-identically — the format is fully
// deterministic, nothing is lost or reordered — and (b) identical answers
// on a fixed query workload across the handoff.
func TestGoldenRoundTrip(t *testing.T) {
	c := dataset.GenerateSD(120, 30, 83)
	workload := func() []sets.Set {
		st := dataset.CollectSubsets(c, 2)
		var qs []sets.Set
		for i, k := range st.Keys {
			if i%3 == 0 {
				qs = append(qs, st.ByKey[k].Set)
			}
		}
		qs = append(qs, sets.New(c.MaxID()+5)) // out-of-vocabulary miss
		return qs
	}()

	t.Run("index", func(t *testing.T) {
		idx, err := BuildIndex(c, IndexOptions{Model: tinyModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := idx.Save(&first); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadIndex(bytes.NewReader(first.Bytes()), c)
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := loaded.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-serialization not byte-identical: %d vs %d bytes",
				first.Len(), second.Len())
		}
		for _, q := range workload {
			if a, b := idx.Lookup(q), loaded.Lookup(q); a != b {
				t.Fatalf("Lookup(%v): trained %d, reloaded %d", q, a, b)
			}
			if a, b := idx.LookupEqual(q), loaded.LookupEqual(q); a != b {
				t.Fatalf("LookupEqual(%v): trained %d, reloaded %d", q, a, b)
			}
		}
	})

	t.Run("estimator", func(t *testing.T) {
		est, err := BuildEstimator(c, EstimatorOptions{Model: tinyModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			t.Fatal(err)
		}
		if est.Hybrid().AuxLen() == 0 {
			t.Fatal("fixture must evict outliers so the aux map order matters")
		}
		var first bytes.Buffer
		if err := est.Save(&first); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadCardinalityEstimator(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := loaded.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-serialization not byte-identical: %d vs %d bytes",
				first.Len(), second.Len())
		}
		// The loaded model carries float32-rounded weights, so the loaded
		// estimator is the golden reference: a second load must answer
		// exactly like it (and the server serves exactly these answers).
		reload, err := LoadCardinalityEstimator(bytes.NewReader(second.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload {
			if a, b := loaded.Estimate(q), reload.Estimate(q); a != b {
				t.Fatalf("Estimate(%v): first load %v, second load %v", q, a, b)
			}
		}
	})

	t.Run("filter", func(t *testing.T) {
		mf, err := BuildMembershipFilter(c, FilterOptions{Model: tinyModel(), MaxSubset: 2, Sandwich: true})
		if err != nil {
			t.Fatal(err)
		}
		var first bytes.Buffer
		if err := mf.Save(&first); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadMembershipFilter(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := loaded.Save(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("re-serialization not byte-identical: %d vs %d bytes",
				first.Len(), second.Len())
		}
		for _, q := range workload {
			if a, b := mf.Contains(q), loaded.Contains(q); a != b {
				t.Fatalf("Contains(%v): trained %v, reloaded %v", q, a, b)
			}
		}
	})
}
