package core

import (
	"bytes"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// Fast option sets for tests: small models, few epochs.
func fastModel(compressed bool) ModelOptions {
	return ModelOptions{
		Compressed: compressed,
		EmbedDim:   4,
		PhiHidden:  []int{16},
		PhiOut:     16,
		RhoHidden:  []int{32},
		Epochs:     15,
		LR:         0.01,
		Workers:    1,
		Seed:       3,
	}
}

func TestBuildIndexAndLookupExact(t *testing.T) {
	c := dataset.GenerateSD(300, 40, 41)
	idx, err := BuildIndex(c, IndexOptions{
		Model: fastModel(false), MaxSubset: 2, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%9 != 0 {
			continue
		}
		info := st.ByKey[k]
		if got := idx.Lookup(info.Set); got != info.FirstPos {
			t.Fatalf("Lookup(%v)=%d want %d", info.Set, got, info.FirstPos)
		}
	}
	if idx.Lookup(sets.New()) != -1 {
		t.Fatal("empty query must be -1")
	}
	if idx.Lookup(sets.New(9999999)) != -1 {
		t.Fatal("unknown element must be -1")
	}
	if idx.MaxSubset() != 2 {
		t.Fatal("MaxSubset accessor wrong")
	}
	if idx.SizeBytes() <= 0 || idx.MaxError() < 0 {
		t.Fatal("accounting accessors broken")
	}
}

func TestBuildIndexCompressed(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 42)
	idx, err := BuildIndex(c, IndexOptions{
		Model: fastModel(true), MaxSubset: 2, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%17 != 0 {
			continue
		}
		info := st.ByKey[k]
		if got := idx.Lookup(info.Set); got != info.FirstPos {
			t.Fatalf("CLSM Lookup(%v)=%d want %d", info.Set, got, info.FirstPos)
		}
	}
}

func TestIndexInsertRoutesToAux(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 43)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	// Append a set with brand-new elements and register it.
	s := sets.New(500, 501)
	pos := c.Append(s)
	idx.Insert(s, pos)
	if got := idx.Lookup(sets.New(500)); got != pos {
		t.Fatalf("inserted singleton lookup %d want %d", got, pos)
	}
	if got := idx.Lookup(sets.New(500, 501)); got != pos {
		t.Fatalf("inserted pair lookup %d want %d", got, pos)
	}
}

func TestBuildEstimatorAccuracyAndHybridGain(t *testing.T) {
	c := dataset.GenerateSD(300, 40, 44)
	st := dataset.CollectSubsets(c, 2)
	samples := st.CardinalitySamples()

	plain, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	qerr := func(e *CardinalityEstimator) float64 {
		var qs []float64
		for _, s := range samples {
			est := e.Estimate(s.Set)
			truth := s.Target
			if est < 1 {
				est = 1
			}
			if truth < 1 {
				truth = 1
			}
			if est > truth {
				qs = append(qs, est/truth)
			} else {
				qs = append(qs, truth/est)
			}
		}
		return train.Mean(qs)
	}
	plainQ, hybQ := qerr(plain), qerr(hyb)
	if hybQ > plainQ {
		t.Fatalf("hybrid (%v) should not be worse than plain (%v)", hybQ, plainQ)
	}
	if plainQ > 5 {
		t.Fatalf("plain estimator q-error %v unreasonably high", plainQ)
	}
	if got := plain.Estimate(sets.New()); got != 0 {
		t.Fatal("empty query should estimate 0")
	}
	if got := plain.Estimate(sets.New(999999)); got != 0 {
		t.Fatal("unknown element should estimate 0")
	}
}

func TestEstimatorUpdate(t *testing.T) {
	c := dataset.GenerateSD(150, 40, 45)
	e, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := sets.New(1, 2)
	e.Update(q, 42)
	if got := e.Estimate(q); got != 42 {
		t.Fatalf("updated estimate %v want 42", got)
	}
}

func TestMembershipFilterNoFalseNegatives(t *testing.T) {
	c := dataset.GenerateRW(250, 500, 46)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(false), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every subset within the cap must be found — the backup filter
	// guarantees it regardless of model quality.
	st := dataset.CollectSubsets(c, 2)
	for _, k := range st.Keys {
		if !f.Contains(st.ByKey[k].Set) {
			t.Fatalf("false negative for trained positive %v", st.ByKey[k].Set)
		}
	}
	if !f.Contains(sets.New()) {
		t.Fatal("empty set is a subset of everything")
	}
	if f.Contains(sets.New(99999999)) {
		t.Fatal("unknown element can never be contained")
	}
	if f.MaxSubset() != 2 {
		t.Fatal("MaxSubset accessor wrong")
	}
	if f.SizeBytes() < f.ModelSizeBytes() {
		t.Fatal("total size must include the backup filter")
	}
}

func TestMembershipFilterRejectsMostNegatives(t *testing.T) {
	c := dataset.GenerateRW(250, 500, 47)
	f, err := BuildMembershipFilter(c, FilterOptions{
		Model: fastModel(false), MaxSubset: 2, NegPerPos: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	md := st.MembershipSamples(c, 2, 1, 99) // fresh negatives, different seed
	if len(md.Negative) == 0 {
		t.Skip("no negatives")
	}
	fp := 0
	for _, q := range md.Negative {
		if f.Contains(q) {
			fp++
		}
	}
	if rate := float64(fp) / float64(len(md.Negative)); rate > 0.4 {
		t.Fatalf("false positive rate %v too high", rate)
	}
}

func TestModelProbabilityRange(t *testing.T) {
	c := dataset.GenerateRW(150, 300, 48)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(true), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := f.ModelProbability(c.Sets[0])
	if p < 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
	if f.ModelProbability(sets.New()) != 0 {
		t.Fatal("empty probability should be 0")
	}
}

func TestBuildersRejectEmptyCollection(t *testing.T) {
	empty := sets.NewCollection(nil)
	if _, err := BuildIndex(empty, IndexOptions{}); err == nil {
		t.Fatal("BuildIndex must reject empty collection")
	}
	if _, err := BuildEstimator(empty, EstimatorOptions{}); err == nil {
		t.Fatal("BuildEstimator must reject empty collection")
	}
	if _, err := BuildMembershipFilter(empty, FilterOptions{}); err == nil {
		t.Fatal("BuildMembershipFilter must reject empty collection")
	}
	withEmpty := sets.NewCollection([]sets.Set{sets.New(1), sets.New()})
	if _, err := BuildIndex(withEmpty, IndexOptions{}); err == nil {
		t.Fatal("BuildIndex must reject empty member sets")
	}
}

func TestSandwichedFilterNoFalseNegatives(t *testing.T) {
	c := dataset.GenerateRW(250, 500, 55)
	f, err := BuildMembershipFilter(c, FilterOptions{
		Model: fastModel(true), MaxSubset: 2, Sandwich: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	for _, k := range st.Keys {
		if !f.Contains(st.ByKey[k].Set) {
			t.Fatalf("sandwich introduced a false negative for %v", st.ByKey[k].Set)
		}
	}
}

func TestSandwichedFilterRejectsAtLeastAsWell(t *testing.T) {
	c := dataset.GenerateRW(250, 500, 56)
	plain, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(true), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	sandwiched, err := BuildMembershipFilter(c, FilterOptions{
		Model: fastModel(true), MaxSubset: 2, Sandwich: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	md := st.MembershipSamples(c, 2, 1, 100)
	if len(md.Negative) == 0 {
		t.Skip("no negatives")
	}
	fpPlain, fpSand := 0, 0
	for _, q := range md.Negative {
		if plain.Contains(q) {
			fpPlain++
		}
		if sandwiched.Contains(q) {
			fpSand++
		}
	}
	if fpSand > fpPlain {
		t.Fatalf("sandwich should not increase false positives: %d vs %d", fpSand, fpPlain)
	}
	if sandwiched.SizeBytes() <= plain.SizeBytes() {
		t.Fatal("sandwich pre-filter must be accounted in SizeBytes")
	}
}

func TestSandwichedFilterSaveLoad(t *testing.T) {
	c := dataset.GenerateRW(150, 300, 57)
	f, err := BuildMembershipFilter(c, FilterOptions{
		Model: fastModel(true), MaxSubset: 2, Sandwich: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMembershipFilter(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%4 != 0 {
			continue
		}
		q := st.ByKey[k].Set
		if f.Contains(q) != got.Contains(q) {
			t.Fatalf("sandwich round trip diverged for %v", q)
		}
	}
}

func TestIndexEqualityQueries(t *testing.T) {
	// Collection where a superset shadows an exact set: {1,2} first occurs
	// as a subset at position 0 (inside {1,2,3}) but as an exact set only
	// at position 2.
	c := sets.NewCollection([]sets.Set{
		sets.New(1, 2, 3),
		sets.New(4, 5),
		sets.New(1, 2),
		sets.New(1, 2), // duplicate: first equal position must win
	})
	// Grow the collection so training has something to chew on.
	gen := dataset.GenerateSD(200, 40, 60)
	for _, s := range gen.Sets {
		ids := make([]uint32, len(s))
		for i, v := range s {
			ids[i] = v + 100 // keep clear of the probe elements
		}
		c.Append(sets.New(ids...))
	}
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 3, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(sets.New(1, 2)); got != 0 {
		t.Fatalf("subset lookup %d want 0", got)
	}
	if got := idx.LookupEqual(sets.New(1, 2)); got != 2 {
		t.Fatalf("equality lookup %d want 2", got)
	}
	if got := idx.LookupEqual(sets.New(1, 2, 3)); got != 0 {
		t.Fatalf("equality lookup of full set %d want 0", got)
	}
	if got := idx.LookupEqual(sets.New(1, 3)); got != -1 {
		t.Fatalf("equality of never-exact subset should be -1, got %d", got)
	}
	if got := idx.LookupEqual(sets.New()); got != -1 {
		t.Fatal("empty equality query must be -1")
	}
}

func TestIndexEqualityForOversizedSets(t *testing.T) {
	// Sets larger than MaxSubset are still equality-findable because full
	// sets are always included in training (CollectSubsetsWithFull).
	c := dataset.GenerateSD(150, 40, 61) // sets of 6–7 elements, cap is 2
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.Len(); i += 13 {
		s := c.At(i)
		want := -1
		for j, o := range c.Sets {
			if o.Equal(s) {
				want = j
				break
			}
		}
		if got := idx.LookupEqual(s); got != want {
			t.Fatalf("LookupEqual(%v)=%d want %d", s, got, want)
		}
	}
}

func TestContainsBatchMatchesSequential(t *testing.T) {
	c := dataset.GenerateRW(200, 400, 62)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(true), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.CollectSubsets(c, 2)
	md := st.MembershipSamples(c, 2, 0.5, 63)
	qs := append(append([]sets.Set{}, md.Positive...), md.Negative...)
	seq := make([]bool, len(qs))
	for i, q := range qs {
		seq[i] = f.Contains(q)
	}
	for _, workers := range []int{0, 1, 4, 16} {
		got := f.ContainsBatch(qs, workers)
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("workers=%d: batch[%d]=%v vs sequential %v", workers, i, got[i], seq[i])
			}
		}
	}
}

func TestBuildIndexWithAutoTarget(t *testing.T) {
	c := dataset.GenerateSD(250, 40, 64)
	idx, err := BuildIndex(c, IndexOptions{
		Model: fastModel(false), MaxSubset: 2, TargetQError: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactness must hold regardless of how the threshold was chosen.
	st := dataset.CollectSubsets(c, 2)
	for i, k := range st.Keys {
		if i%11 != 0 {
			continue
		}
		info := st.ByKey[k]
		if got := idx.Lookup(info.Set); got != info.FirstPos {
			t.Fatalf("auto-guided Lookup(%v)=%d want %d", info.Set, got, info.FirstPos)
		}
	}
}
