package core

import (
	"math/rand"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// Permutation invariance is the paper's defining property (§3.1): a set
// query means the same thing in any element order. These tests build each
// public structure once and assert that every sampled query answers
// identically under many random shuffles of its element order. The server
// endpoints get the same treatment in internal/server.

// shuffles returns n random orderings of q's elements.
func shuffles(q sets.Set, n int, rng *rand.Rand) [][]uint32 {
	out := make([][]uint32, n)
	for i := range out {
		ids := append([]uint32(nil), q...)
		rng.Shuffle(len(ids), func(a, b int) { ids[a], ids[b] = ids[b], ids[a] })
		out[i] = ids
	}
	return out
}

// sampleQueries draws multi-element trained subsets plus some larger
// unseen combinations from the collection.
func sampleQueries(c *sets.Collection, maxSubset int) []sets.Set {
	st := dataset.CollectSubsets(c, maxSubset)
	var qs []sets.Set
	for i, k := range st.Keys {
		if q := st.ByKey[k].Set; len(q) >= 2 && i%5 == 0 {
			qs = append(qs, q)
		}
	}
	for i := 0; i < 10; i++ {
		if s := c.At(i * 13 % c.Len()); len(s) >= 2 {
			qs = append(qs, s)
		}
	}
	return qs
}

func TestIndexPermutationInvariance(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 61)
	idx, err := BuildIndex(c, IndexOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for _, q := range sampleQueries(c, 2) {
		want := idx.Lookup(q)
		wantEq := idx.LookupEqual(q)
		for _, ids := range shuffles(q, 8, rng) {
			shuffled := sets.New(ids...)
			if got := idx.Lookup(shuffled); got != want {
				t.Fatalf("Lookup(%v as %v) = %d, canonical %d", q, ids, got, want)
			}
			if got := idx.LookupEqual(shuffled); got != wantEq {
				t.Fatalf("LookupEqual(%v as %v) = %d, canonical %d", q, ids, got, wantEq)
			}
		}
	}
}

func TestEstimatorPermutationInvariance(t *testing.T) {
	c := dataset.GenerateSD(200, 40, 63)
	est, err := BuildEstimator(c, EstimatorOptions{Model: fastModel(false), MaxSubset: 2, Percentile: 90})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	for _, q := range sampleQueries(c, 2) {
		want := est.Estimate(q)
		for _, ids := range shuffles(q, 8, rng) {
			if got := est.Estimate(sets.New(ids...)); got != want {
				t.Fatalf("Estimate(%v as %v) = %v, canonical %v", q, ids, got, want)
			}
		}
	}
}

func TestMembershipFilterPermutationInvariance(t *testing.T) {
	c := dataset.GenerateRW(200, 300, 65)
	f, err := BuildMembershipFilter(c, FilterOptions{Model: fastModel(false), MaxSubset: 2, Sandwich: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(66))
	for _, q := range sampleQueries(c, 2) {
		want := f.Contains(q)
		wantP := f.ModelProbability(q)
		for _, ids := range shuffles(q, 8, rng) {
			shuffled := sets.New(ids...)
			if got := f.Contains(shuffled); got != want {
				t.Fatalf("Contains(%v as %v) = %v, canonical %v", q, ids, got, want)
			}
			if got := f.ModelProbability(shuffled); got != wantP {
				t.Fatalf("ModelProbability(%v as %v) = %v, canonical %v", q, ids, got, wantP)
			}
		}
	}
}
