package core

import (
	"fmt"
	"sync/atomic"

	"setlearn/internal/calib"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// IndexOptions configures BuildIndex.
type IndexOptions struct {
	Model ModelOptions
	// MaxSubset caps the size of enumerated training subsets; the index
	// guarantees exact answers only for queries up to this size (§7.1.1
	// applies the same cap at size 6 by the infrequency argument).
	MaxSubset int
	// Percentile is the guided-learning eviction threshold (§6); e.g. 90
	// evicts the hardest 10% of subsets into the auxiliary structure.
	// 0 disables eviction ("No Removal").
	Percentile float64
	// TargetQError, when > 0, switches to the automatic threshold setting
	// of §6: eviction rounds continue until the kept mean q-error reaches
	// this target (the paper uses the [1, 1.4] range for indexing).
	// Overrides Percentile.
	TargetQError float64
	// RangeLen is the local-error range width of Algorithm 2 (default 100).
	RangeLen int
}

// SetIndex answers "first position where q appears as a subset" over an
// unordered collection, backed by the hybrid learned structure. Sets
// appended after build land in an exact delta composed into every lookup,
// so the index stays correct under live mutation without retraining (the
// monolithic delta is never retrained away; the sharded container in
// internal/shard owns the background-retrain path).
type SetIndex struct {
	hybrid    *hybrid.Index
	maxSubset int
	delta     *hybrid.Delta
	nextPos   atomic.Int64 // next global position handed to InsertSet
}

// BuildIndex trains a learned set index over c. The collection is captured
// by reference; it must not be mutated afterwards except through Insert.
func BuildIndex(c *sets.Collection, opts IndexOptions) (*SetIndex, error) {
	if err := validateCollection(c); err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	// Full sets are always included so equality queries work for sets
	// larger than the subset cap (§4.1 supports both search types).
	st := dataset.CollectSubsetsWithFull(c, opts.MaxSubset)
	samples := st.IndexSamples()
	sc := train.FitScaler(samples)

	m, err := deepsets.New(opts.Model.modelConfig(c.MaxID()))
	if err != nil {
		return nil, fmt.Errorf("core: build index model: %w", err)
	}
	var res *train.GuidedResult
	if opts.TargetQError > 0 {
		res, err = train.AutoGuided(m, samples, sc, train.AutoGuidedConfig{
			Train:        opts.Model.trainConfig(),
			TargetQError: opts.TargetQError,
		})
	} else {
		res, err = train.Guided(m, samples, sc, train.GuidedConfig{
			Train:      opts.Model.trainConfig(),
			Percentile: opts.Percentile,
		})
	}
	if err != nil {
		return nil, fmt.Errorf("core: train index model: %w", err)
	}
	h, err := hybrid.BuildIndex(c, m, sc, res, hybrid.IndexConfig{RangeLen: opts.RangeLen})
	if err != nil {
		return nil, err
	}
	enableFastPath(m, DefaultFastPath)
	idx := &SetIndex{hybrid: h, maxSubset: opts.MaxSubset, delta: hybrid.NewDelta()}
	idx.nextPos.Store(int64(c.Len()))
	return idx, nil
}

// composeLookup folds the exact delta answer into the learned answer by
// taking the smallest non-negative position.
func composeLookup(learned, delta int) int {
	if delta >= 0 && (learned < 0 || delta < learned) {
		return delta
	}
	return learned
}

// Lookup returns the first position i with q ⊆ S[i], or -1 if q is not a
// subset of any set (exact for queries within the trained subset-size cap).
func (i *SetIndex) Lookup(q sets.Set) int {
	if len(q) == 0 {
		return -1
	}
	return composeLookup(i.hybrid.Lookup(q), i.delta.FirstPos(q, false))
}

// LookupEqual returns the first position whose set is exactly q, or -1 —
// the equality search type of §4.1.
func (i *SetIndex) LookupEqual(q sets.Set) int {
	if len(q) == 0 {
		return -1
	}
	return composeLookup(i.hybrid.LookupEqual(q), i.delta.FirstPos(q, true))
}

// LookupBatch answers every query in qs, writing first positions (or -1)
// into dst, which is grown as needed and returned. equal selects the §4.1
// equality search. Model evaluations for the whole batch share one pooled
// predictor, amortizing φ lookups and ρ scratch; answers match per-query
// Lookup/LookupEqual exactly.
func (i *SetIndex) LookupBatch(dst []int, qs []sets.Set, equal bool) []int {
	dst = i.hybrid.LookupBatch(dst, qs, equal)
	if i.delta.Len() > 0 {
		for j, q := range qs {
			dst[j] = composeLookup(dst[j], i.delta.FirstPos(q, equal))
		}
	}
	return dst
}

// Insert registers a new set appended to the collection at position pos: the
// set's subsets are routed to the auxiliary structure without retraining
// (§7.2).
func (i *SetIndex) Insert(s sets.Set, pos int) {
	sets.Subsets(s, i.maxSubset, func(sub sets.Set) {
		if i.hybrid.Lookup(sub) < 0 {
			i.hybrid.InsertOutlier(sub, pos)
		}
	})
}

// InsertSet appends s to the logical collection, assigning it the next
// global position and recording it in the exact delta: lookups answer for
// it the instant this returns, at O(pending delta) query cost.
func (i *SetIndex) InsertSet(s sets.Set) int {
	pos := int(i.nextPos.Add(1)) - 1
	i.delta.Add(s.Clone(), pos)
	return pos
}

// DeltaStats reports the pending-insert state of the exact delta.
func (i *SetIndex) DeltaStats() DeltaStats {
	n := i.delta.Len()
	return DeltaStats{Pending: n, PerShard: []int{n}, OldestSecs: i.delta.Age().Seconds()}
}

// MaxSubset returns the trained subset-size cap.
func (i *SetIndex) MaxSubset() int { return i.maxSubset }

// SizeBytes returns the total structure footprint.
func (i *SetIndex) SizeBytes() int { return i.hybrid.SizeBytes() + i.delta.SizeBytes() }

// MemoryBreakdown reports model, auxiliary-structure, and error-list bytes
// (Table 7's columns).
func (i *SetIndex) MemoryBreakdown() (model, aux, errs int) { return i.hybrid.MemoryBreakdown() }

// MaxError returns the global position-error bound of the model.
func (i *SetIndex) MaxError() int { return i.hybrid.MaxError() }

// Hybrid exposes the underlying hybrid structure for benchmarking.
func (i *SetIndex) Hybrid() *hybrid.Index { return i.hybrid }

// SetPositionCalibration installs a pre-measured monotone position
// correction — load-time only, when the persisted error bounds already
// reflect it (see hybrid.Index.SetPositionCalibration).
func (i *SetIndex) SetPositionCalibration(cal *calib.Curve) { i.hybrid.SetPositionCalibration(cal) }

// PositionCalibration returns the installed position correction, or nil.
func (i *SetIndex) PositionCalibration() *calib.Curve { return i.hybrid.PositionCalibration() }

// RawPosition returns the unscaled, uncalibrated position prediction for q;
// ok is false when q is answered without the model (the fit domain for
// position calibration).
func (i *SetIndex) RawPosition(q sets.Set) (pos float64, ok bool) {
	return i.hybrid.RawPosition(q)
}

// RecalibratePositions installs cal and remeasures the error bounds over
// samples; must run before the index serves queries.
func (i *SetIndex) RecalibratePositions(cal *calib.Curve, samples []dataset.Sample) {
	i.hybrid.RecalibratePositions(cal, samples)
}
