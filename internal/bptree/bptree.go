// Package bptree implements an in-memory B+ tree keyed by uint64 with
// duplicate-key support. It is the traditional competitor for the set-index
// task (§8.1.2: "a B+ Tree, where as a key we use a hash function over the
// set, also allowing duplicate keys") and the auxiliary outlier structure of
// the hybrid index (§6).
package bptree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the branching factor used by the paper's baseline
// ("branching factor 100", §8.1.2).
const DefaultOrder = 100

// Tree is a B+ tree multimap from uint64 keys to uint32 values.
type Tree struct {
	root   node
	order  int // max children of an internal node
	size   int // number of (key,value) pairs
	height int
}

type node interface {
	// insert returns a split: the new right sibling and its separator key,
	// or nil if no split happened.
	insert(key uint64, val uint32, order int) (node, uint64)
	find(key uint64) ([]uint32, bool)
}

type leaf struct {
	keys []uint64
	vals [][]uint32 // vals[i] holds all values inserted under keys[i]
	next *leaf
}

type internal struct {
	keys     []uint64 // separator keys; len(children) == len(keys)+1
	children []node
}

// New returns an empty tree with the given order (max children per internal
// node); order must be at least 3.
func New(order int) *Tree {
	if order < 3 {
		panic(fmt.Sprintf("bptree: order must be ≥ 3, got %d", order))
	}
	return &Tree{root: &leaf{}, order: order, height: 1}
}

// Len returns the number of stored (key, value) pairs.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height in levels (1 = a single leaf).
func (t *Tree) Height() int { return t.height }

// Insert adds a (key, value) pair; duplicate keys accumulate values in
// insertion order.
func (t *Tree) Insert(key uint64, val uint32) {
	right, sep := t.root.insert(key, val, t.order)
	if right != nil {
		t.root = &internal{keys: []uint64{sep}, children: []node{t.root, right}}
		t.height++
	}
	t.size++
}

// Get returns all values stored under key in insertion order.
func (t *Tree) Get(key uint64) ([]uint32, bool) { return t.root.find(key) }

// GetMin returns the smallest value stored under key — the "first position"
// semantics the set index needs when duplicate sets share a hash.
func (t *Tree) GetMin(key uint64) (uint32, bool) {
	vals, ok := t.Get(key)
	if !ok {
		return 0, false
	}
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return min, true
}

// Contains reports whether any value is stored under key.
func (t *Tree) Contains(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// Ascend walks all (key, value) pairs in ascending key order; values under
// one key are visited in insertion order. Return false from fn to stop.
func (t *Tree) Ascend(fn func(key uint64, val uint32) bool) {
	l := t.firstLeaf()
	for l != nil {
		for i, k := range l.keys {
			for _, v := range l.vals[i] {
				if !fn(k, v) {
					return
				}
			}
		}
		l = l.next
	}
}

func (t *Tree) firstLeaf() *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *internal:
			n = v.children[0]
		}
	}
}

// SizeBytes estimates the in-memory footprint: 8 bytes per key, 4 per value,
// 8 per child pointer, plus fixed per-node and per-slice overheads. This is
// the quantity reported against model sizes in Tables 3, 7, and 10.
func (t *Tree) SizeBytes() int {
	total := 0
	var walk func(n node)
	walk = func(n node) {
		const nodeOverhead = 48 // slice headers + next pointer
		switch v := n.(type) {
		case *leaf:
			total += nodeOverhead + 8*len(v.keys)
			for _, vals := range v.vals {
				total += 24 + 4*len(vals)
			}
		case *internal:
			total += nodeOverhead + 8*len(v.keys) + 8*len(v.children)
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return total
}

func (l *leaf) find(key uint64) ([]uint32, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i], true
	}
	return nil, false
}

func (l *leaf) insert(key uint64, val uint32, order int) (node, uint64) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		l.vals[i] = append(l.vals[i], val)
		return nil, 0
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = []uint32{val}

	if len(l.keys) < order {
		return nil, 0
	}
	// Split: right sibling takes the upper half; the separator is the first
	// key of the right leaf (B+ tree leaves keep all keys).
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([]uint64(nil), l.keys[mid:]...),
		vals: append([][]uint32(nil), l.vals[mid:]...),
		next: l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	return right, right.keys[0]
}

func (in *internal) find(key uint64) ([]uint32, bool) {
	i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
	return in.children[i].find(key)
}

func (in *internal) insert(key uint64, val uint32, order int) (node, uint64) {
	i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
	child, sep := in.children[i].insert(key, val, order)
	if child == nil {
		return nil, 0
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = sep
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = child

	if len(in.children) <= order {
		return nil, 0
	}
	// Split internal node: middle key moves up.
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	right := &internal{
		keys:     append([]uint64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return right, upKey
}

// Delete removes one (key, value) pair, returning whether it was present.
// Leaves are allowed to become underfull (no rebalancing): deletions are
// rare in this tree's roles — outlier eviction and update absorption — and
// lookup correctness does not depend on occupancy.
func (t *Tree) Delete(key uint64, val uint32) bool {
	l, i := t.findLeaf(key)
	if l == nil {
		return false
	}
	vals := l.vals[i]
	for vi, v := range vals {
		if v != val {
			continue
		}
		l.vals[i] = append(vals[:vi], vals[vi+1:]...)
		if len(l.vals[i]) == 0 {
			l.keys = append(l.keys[:i], l.keys[i+1:]...)
			l.vals = append(l.vals[:i], l.vals[i+1:]...)
		}
		t.size--
		return true
	}
	return false
}

// DeleteAll removes every value under key and returns how many were
// removed.
func (t *Tree) DeleteAll(key uint64) int {
	l, i := t.findLeaf(key)
	if l == nil {
		return 0
	}
	n := len(l.vals[i])
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size -= n
	return n
}

// findLeaf locates the leaf and slot holding key, or (nil, 0).
func (t *Tree) findLeaf(key uint64) (*leaf, int) {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] >= key })
			if i < len(v.keys) && v.keys[i] == key {
				return v, i
			}
			return nil, 0
		case *internal:
			i := sort.Search(len(v.keys), func(i int) bool { return v.keys[i] > key })
			n = v.children[i]
		}
	}
}
