package bptree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New(4)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("empty tree found a key")
	}
	if tr.Contains(42) {
		t.Fatal("empty tree Contains")
	}
}

func TestInsertAndGet(t *testing.T) {
	tr := New(4)
	tr.Insert(10, 1)
	tr.Insert(5, 2)
	tr.Insert(20, 3)
	vals, ok := tr.Get(5)
	if !ok || len(vals) != 1 || vals[0] != 2 {
		t.Fatalf("Get(5)=%v,%v", vals, ok)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDuplicateKeysAccumulate(t *testing.T) {
	tr := New(4)
	tr.Insert(7, 30)
	tr.Insert(7, 10)
	tr.Insert(7, 20)
	vals, ok := tr.Get(7)
	if !ok || len(vals) != 3 {
		t.Fatalf("Get(7)=%v", vals)
	}
	if vals[0] != 30 || vals[1] != 10 || vals[2] != 20 {
		t.Fatalf("insertion order not kept: %v", vals)
	}
	if min, ok := tr.GetMin(7); !ok || min != 10 {
		t.Fatalf("GetMin=%v,%v want 10", min, ok)
	}
}

func TestGetMinMissing(t *testing.T) {
	tr := New(4)
	if _, ok := tr.GetMin(1); ok {
		t.Fatal("GetMin on empty must fail")
	}
}

func TestSplitsSmallOrder(t *testing.T) {
	tr := New(3) // forces frequent splits
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i*7%n), uint32(i))
	}
	if tr.Height() < 3 {
		t.Fatalf("expected multi-level tree, height=%d", tr.Height())
	}
	for i := 0; i < n; i++ {
		if !tr.Contains(uint64(i)) {
			t.Fatalf("lost key %d after splits", i)
		}
	}
}

func TestAscendSortedAndComplete(t *testing.T) {
	tr := New(5)
	rng := rand.New(rand.NewSource(1))
	inserted := make(map[uint64]int)
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(200))
		tr.Insert(k, uint32(i))
		inserted[k]++
	}
	var lastKey uint64
	first := true
	total := 0
	tr.Ascend(func(k uint64, v uint32) bool {
		if !first && k < lastKey {
			t.Fatalf("Ascend out of order: %d after %d", k, lastKey)
		}
		lastKey, first = k, false
		total++
		return true
	})
	if total != 500 {
		t.Fatalf("Ascend visited %d pairs want 500", total)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(uint64(i), uint32(i))
	}
	n := 0
	tr.Ascend(func(k uint64, v uint32) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Property test: the tree must agree with a map multimap reference under
// random workloads across random orders.
func TestMatchesReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + rng.Intn(8)
		tr := New(order)
		ref := make(map[uint64][]uint32)
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(80))
			v := uint32(rng.Intn(1000))
			tr.Insert(k, v)
			ref[k] = append(ref[k], v)
		}
		if tr.Len() != 400 {
			return false
		}
		for k, want := range ref {
			got, ok := tr.Get(k)
			if !ok || len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		// Probe some absent keys.
		for i := 0; i < 50; i++ {
			k := uint64(100 + rng.Intn(1000))
			if _, present := ref[k]; !present && tr.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := New(DefaultOrder)
	empty := tr.SizeBytes()
	for i := 0; i < 10000; i++ {
		tr.Insert(uint64(i), uint32(i))
	}
	full := tr.SizeBytes()
	if full <= empty {
		t.Fatalf("SizeBytes did not grow: %d → %d", empty, full)
	}
	// At least the raw key+value payload must be accounted for.
	if full < 10000*(8+4) {
		t.Fatalf("SizeBytes %d below raw payload", full)
	}
}

func TestPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2)
}

func TestLargeSequentialAndReverse(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"sequential": func(i int) uint64 { return uint64(i) },
		"reverse":    func(i int) uint64 { return uint64(100000 - i) },
	} {
		tr := New(DefaultOrder)
		const n = 50000
		for i := 0; i < n; i++ {
			tr.Insert(gen(i), uint32(i))
		}
		for i := 0; i < n; i += 97 {
			if !tr.Contains(gen(i)) {
				t.Fatalf("%s: lost key at i=%d", name, i)
			}
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New(DefaultOrder)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), uint32(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New(DefaultOrder)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), uint32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i % n))
	}
}

func TestDeleteSingleValue(t *testing.T) {
	tr := New(4)
	tr.Insert(5, 10)
	tr.Insert(5, 20)
	if !tr.Delete(5, 10) {
		t.Fatal("Delete reported absent")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len=%d after delete", tr.Len())
	}
	vals, ok := tr.Get(5)
	if !ok || len(vals) != 1 || vals[0] != 20 {
		t.Fatalf("remaining vals %v", vals)
	}
	if tr.Delete(5, 99) {
		t.Fatal("Delete of absent value must be false")
	}
	if tr.Delete(6, 1) {
		t.Fatal("Delete of absent key must be false")
	}
}

func TestDeleteLastValueRemovesKey(t *testing.T) {
	tr := New(4)
	tr.Insert(7, 1)
	if !tr.Delete(7, 1) {
		t.Fatal("Delete failed")
	}
	if tr.Contains(7) {
		t.Fatal("key should be gone")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(4)
	for i := 0; i < 5; i++ {
		tr.Insert(3, uint32(i))
	}
	tr.Insert(4, 9)
	if n := tr.DeleteAll(3); n != 5 {
		t.Fatalf("DeleteAll removed %d", n)
	}
	if tr.Contains(3) || !tr.Contains(4) || tr.Len() != 1 {
		t.Fatal("DeleteAll semantics broken")
	}
	if n := tr.DeleteAll(3); n != 0 {
		t.Fatal("second DeleteAll must remove nothing")
	}
}

func TestDeleteAcrossSplitLeaves(t *testing.T) {
	tr := New(3)
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), uint32(i))
	}
	// Delete every third key; verify the rest survive.
	for i := 0; i < n; i += 3 {
		if !tr.Delete(uint64(i), uint32(i)) {
			t.Fatalf("failed to delete %d", i)
		}
	}
	for i := 0; i < n; i++ {
		want := i%3 != 0
		if tr.Contains(uint64(i)) != want {
			t.Fatalf("key %d presence wrong after deletes", i)
		}
	}
}

func TestDeleteMatchesReferenceUnderRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(4)
	ref := make(map[uint64][]uint32)
	for step := 0; step < 3000; step++ {
		k := uint64(rng.Intn(60))
		if rng.Intn(3) > 0 || len(ref[k]) == 0 {
			v := uint32(rng.Intn(100))
			tr.Insert(k, v)
			ref[k] = append(ref[k], v)
		} else {
			v := ref[k][0]
			if !tr.Delete(k, v) {
				t.Fatalf("delete of present (%d,%d) failed", k, v)
			}
			ref[k] = ref[k][1:]
			if len(ref[k]) == 0 {
				delete(ref, k)
			}
		}
	}
	total := 0
	for k, want := range ref {
		got, ok := tr.Get(k)
		if !ok || len(got) != len(want) {
			t.Fatalf("key %d: got %v want %v", k, got, want)
		}
		total += len(want)
	}
	if tr.Len() != total {
		t.Fatalf("Len=%d want %d", tr.Len(), total)
	}
}
