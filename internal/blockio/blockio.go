// Package blockio frames sections of a serialization stream with a length
// prefix, so decoders that buffer ahead (gob, bufio) can never consume
// bytes belonging to the next section.
package blockio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// maxBlock guards against corrupt length prefixes allocating absurd
// buffers (1 GiB is far beyond any structure this repository persists).
const maxBlock = 1 << 30

// Write serializes one section: fill writes the payload, Write frames it
// with a little-endian uint64 length.
func Write(w io.Writer, fill func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fill(&buf); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
		return fmt.Errorf("blockio: write length: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("blockio: write payload: %w", err)
	}
	return nil
}

// Read consumes exactly one framed section and returns a reader over its
// payload.
func Read(r io.Reader) (*bytes.Reader, error) {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("blockio: read length: %w", err)
	}
	if n > maxBlock {
		return nil, fmt.Errorf("blockio: block of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("blockio: read payload: %w", err)
	}
	return bytes.NewReader(data), nil
}
