package blockio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"testing"
)

func TestRoundTripMultipleBlocks(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, []byte("third block")}
	for _, p := range payloads {
		p := p
		if err := Write(&buf, func(w io.Writer) error {
			_, err := w.Write(p)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		block, err := Read(r)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		got, _ := io.ReadAll(block)
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: %q want %q", i, got, want)
		}
	}
	if _, err := Read(r); err == nil {
		t.Fatal("expected EOF past last block")
	}
}

func TestWritePropagatesFillError(t *testing.T) {
	err := Write(&bytes.Buffer{}, func(io.Writer) error { return fmt.Errorf("boom") })
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
}

func TestReadRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint64(100)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("short")
	if _, err := Read(&buf); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestReadRejectsAbsurdLength(t *testing.T) {
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint64(1)<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("expected limit error")
	}
}
