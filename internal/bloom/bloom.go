// Package bloom implements a classic Bloom filter with double hashing. It is
// the traditional competitor for the membership task (§8.4) and the backup
// filter that removes false negatives from the learned Bloom filter (§4.3).
package bloom

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Filter is a standard m-bit, k-hash Bloom filter. Membership answers are
// one-sided: Contains never returns false for an added key.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    uint64 // number of added keys (bookkeeping only)
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64.
func New(m uint64, k int) *Filter {
	if m == 0 || k <= 0 {
		panic(fmt.Sprintf("bloom: invalid parameters m=%d k=%d", m, k))
	}
	words := (m + 63) / 64
	return &Filter{bits: make([]uint64, words), m: words * 64, k: k}
}

// NewWithEstimates creates a filter sized for n keys at the target false
// positive rate p, using the standard optima m = −n·ln(p)/ln(2)² and
// k = (m/n)·ln(2).
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("bloom: fp rate must be in (0,1), got %v", p))
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// hashPair derives two independent 64-bit hashes from key (FNV-1a and a
// second pass with a different seed); the k probe positions are the standard
// Kirsch–Mitzenmacher combination h1 + i·h2.
func hashPair(key uint64) (uint64, uint64) {
	const prime64 = 1099511628211
	h1 := uint64(14695981039346656037)
	h2 := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 8; i++ {
		b := uint64(byte(key >> (8 * i)))
		h1 = (h1 ^ b) * prime64
		h2 = (h2 ^ b) * 0xff51afd7ed558ccd
		h2 ^= h2 >> 33
	}
	if h2 == 0 {
		h2 = 1
	}
	return h1, h2
}

// Add inserts a 64-bit key (typically sets.Set.Hash()).
func (f *Filter) Add(key uint64) {
	h1, h2 := hashPair(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.n++
}

// Contains reports whether key may have been added. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.k }

// Count returns the number of Add calls.
func (f *Filter) Count() uint64 { return f.n }

// SizeBytes returns the memory footprint of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFPRate returns the expected false positive rate given the number
// of added keys: (1 − e^{−kn/m})^k.
func (f *Filter) EstimatedFPRate() float64 {
	if f.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// OptimalSizeBytes returns the bit-array size in bytes of an optimally sized
// filter for n keys at false positive rate p — the analytic curve of the
// paper's Figure 3.
func OptimalSizeBytes(n uint64, p float64) int {
	if n == 0 {
		return 0
	}
	m := math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2))
	return int(math.Ceil(m / 8))
}

const filterMagic = uint32(0x424c4d31) // "BLM1"

// Save serializes the filter.
func (f *Filter) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(filterMagic), f.m, uint64(f.k), f.n}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("bloom: save header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, f.bits); err != nil {
		return fmt.Errorf("bloom: save bits: %w", err)
	}
	return bw.Flush()
}

// Load deserializes a filter saved by Save.
func Load(r io.Reader) (*Filter, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("bloom: load header: %w", err)
		}
	}
	if uint32(hdr[0]) != filterMagic {
		return nil, fmt.Errorf("bloom: bad magic %#x", hdr[0])
	}
	// Validate before allocating: a corrupt header must not drive a huge
	// allocation or an unbounded probe loop.
	if hdr[1] == 0 || hdr[1]%64 != 0 {
		return nil, fmt.Errorf("bloom: corrupt bit count %d", hdr[1])
	}
	if hdr[2] < 1 || hdr[2] > 64 {
		return nil, fmt.Errorf("bloom: corrupt hash count %d", hdr[2])
	}
	f := &Filter{m: hdr[1], k: int(hdr[2]), n: hdr[3]}
	// Read the bit array in bounded chunks so a corrupt length cannot
	// allocate far beyond what the stream actually holds.
	words := hdr[1] / 64
	const chunk = 1 << 16
	f.bits = make([]uint64, 0, min(words, chunk))
	for uint64(len(f.bits)) < words {
		n := words - uint64(len(f.bits))
		if n > chunk {
			n = chunk
		}
		part := make([]uint64, n)
		if err := binary.Read(br, binary.LittleEndian, part); err != nil {
			return nil, fmt.Errorf("bloom: load bits: %w", err)
		}
		f.bits = append(f.bits, part...)
	}
	return f, nil
}
