package bloom

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Fatalf("false negative for key %d", k)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 20000
	for _, target := range []float64{0.1, 0.01} {
		f := NewWithEstimates(n, target)
		rng := rand.New(rand.NewSource(2))
		inserted := make(map[uint64]bool, n)
		for len(inserted) < n {
			k := rng.Uint64()
			if !inserted[k] {
				inserted[k] = true
				f.Add(k)
			}
		}
		fp := 0
		const probes = 50000
		for i := 0; i < probes; i++ {
			k := rng.Uint64()
			if inserted[k] {
				continue
			}
			if f.Contains(k) {
				fp++
			}
		}
		rate := float64(fp) / probes
		if rate > target*2 {
			t.Fatalf("target fp %v but measured %v", target, rate)
		}
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		if f.Contains(rng.Uint64()) {
			t.Fatal("empty filter claimed membership")
		}
	}
}

func TestSizeMonotoneInFPRate(t *testing.T) {
	// Figure 3: lower fp rate → bigger filter, more items → bigger filter.
	if OptimalSizeBytes(1000, 0.001) <= OptimalSizeBytes(1000, 0.1) {
		t.Fatal("size must grow as fp rate shrinks")
	}
	if OptimalSizeBytes(100000, 0.01) <= OptimalSizeBytes(1000, 0.01) {
		t.Fatal("size must grow with item count")
	}
	if OptimalSizeBytes(0, 0.01) != 0 {
		t.Fatal("zero items should cost zero bytes")
	}
}

func TestSizeBytesMatchesBits(t *testing.T) {
	f := New(1000, 3)
	if f.Bits()%64 != 0 {
		t.Fatal("bits must be rounded to word size")
	}
	if f.SizeBytes() != int(f.Bits()/8) {
		t.Fatalf("SizeBytes %d vs bits %d", f.SizeBytes(), f.Bits())
	}
	if f.K() != 3 {
		t.Fatalf("K=%d", f.K())
	}
}

func TestCountAndEstimatedFPRate(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	if f.EstimatedFPRate() != 0 {
		t.Fatal("empty filter fp estimate should be 0")
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(i)
	}
	if f.Count() != 1000 {
		t.Fatalf("Count=%d", f.Count())
	}
	est := f.EstimatedFPRate()
	if est <= 0 || est > 0.05 {
		t.Fatalf("estimated fp rate %v out of expected band for 0.01 target", est)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := NewWithEstimates(500, 0.01)
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatal("header mismatch after round trip")
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatalf("loaded filter lost key %d", k)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(make([]byte, 40))); err == nil {
		t.Fatal("expected bad magic error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected short read error")
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for name, f := range map[string]func(){
		"m=0": func() { New(0, 3) },
		"k=0": func() { New(64, 0) },
		"p=0": func() { NewWithEstimates(10, 0) },
		"p=1": func() { NewWithEstimates(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(uint64(b.N)+1, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := NewWithEstimates(100000, 0.01)
	for i := uint64(0); i < 100000; i++ {
		f.Add(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i))
	}
}
