package bench

import (
	"fmt"
	"io"

	"setlearn/internal/dataset"
	"setlearn/internal/train"
)

// resultBuckets are Figure 6's query-result-size groups.
var resultBuckets = []struct {
	label  string
	lo, hi float64
}{
	{"1", 1, 1},
	{"2-10", 2, 10},
	{"11-100", 11, 100},
	{"101-1k", 101, 1000},
	{">1k", 1001, 1e18},
}

// RunFig6 regenerates Figure 6: mean q-error per query-result-size bucket
// for LSM, LSM-Hybrid, CLSM, and CLSM-Hybrid on every dataset.
func RunFig6(w io.Writer, sc dataset.Scale) error {
	suites, err := cardSuites(sc)
	if err != nil {
		return err
	}
	for _, s := range suites {
		rep := &Report{
			Title:  fmt.Sprintf("Figure 6 (%s, scale=%s): cardinality q-error by query result size", s.Data.Name, sc.Name),
			Header: append([]string{"Result size"}, variantNames(s)...),
			Notes: []string{
				"expected shape: hybrids strictly improve on their base models;",
				"LSM ≥ CLSM in accuracy; higher buckets are harder for CLSM (§8.2.1)",
			},
		}
		for _, b := range resultBuckets {
			row := []any{b.label}
			empty := true
			for _, v := range s.Variants {
				var qs []float64
				for _, smp := range s.Samples {
					if smp.Target < b.lo || smp.Target > b.hi {
						continue
					}
					qs = append(qs, qErrOf(v, smp))
				}
				if len(qs) > 0 {
					empty = false
					row = append(row, train.Mean(qs))
				} else {
					row = append(row, "-")
				}
			}
			if !empty {
				rep.AddRow(row...)
			}
		}
		if err := rep.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func variantNames(s *CardSuite) []string {
	out := make([]string, len(s.Variants))
	for i, v := range s.Variants {
		out[i] = v.Name
	}
	return out
}

func qErrOf(v CardVariant, smp dataset.Sample) float64 {
	est := v.Estimator.Estimate(smp.Set)
	truth := smp.Target
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// RunTable3 regenerates Table 3: memory consumption of the cardinality
// estimators against the HashMap competitor.
func RunTable3(w io.Writer, sc dataset.Scale) error {
	suites, err := cardSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 3 (scale=%s): memory (MB) for cardinality estimation", sc.Name),
		Header: []string{"Dataset", "LSM", "LSM-Hybrid", "CLSM", "CLSM-Hybrid", "HashMap"},
		Notes: []string{
			"expected shape: CLSM ≪ LSM ≪ HashMap; hybrids add a small aux overhead (§8.2.2)",
		},
	}
	for _, s := range suites {
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			if v.Outliers == 0 {
				row = append(row, mb(v.Model.SizeBytes()))
			} else {
				row = append(row, mb(v.Estimator.SizeBytes()))
			}
		}
		row = append(row, mb(s.HashMap.SizeBytes()))
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunTable4 regenerates Table 4: per-query execution time of the estimators
// and the HashMap.
func RunTable4(w io.Writer, sc dataset.Scale) error {
	suites, err := cardSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 4 (scale=%s): execution time (ms) for cardinality estimation", sc.Name),
		Header: []string{"Dataset", "LSM", "LSM-Hybrid", "CLSM", "CLSM-Hybrid", "HashMap"},
		Notes: []string{
			"queries executed singly, not batched (§8.2.3);",
			"expected shape: HashMap orders of magnitude faster; CLSM slightly slower than LSM",
		},
	}
	for _, s := range suites {
		queries := dataset.QueryWorkload(s.Data.Collection, queryCount(sc), sc.MaxSubset, 37)
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			est := v.Estimator
			row = append(row, avgMillis(len(queries), func(i int) { est.Estimate(queries[i]) }))
		}
		row = append(row, avgMillis(len(queries), func(i int) { s.HashMap.Cardinality(queries[i]) }))
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// queryCount scales the measured workload with the preset (the paper uses
// 10 000 queries for cardinality, 1 000 elsewhere).
func queryCount(sc dataset.Scale) int {
	switch sc.Name {
	case "tiny":
		return 200
	case "small":
		return 2000
	default:
		return 10000
	}
}
