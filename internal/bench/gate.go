package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The benchmark-regression gate compares a fresh experiment run against the
// committed BENCH_*.json baseline and fails on regressions beyond a noise
// tolerance. CI hardware differs from the machine that produced the
// baseline, so the gate judges hardware-independent metrics — speedup
// ratios, relative accuracy, allocation counts — never absolute latency:
// a speedup is a ratio of two measurements on the *same* machine, so it
// transfers across machines; microseconds do not.

// GateViolation is one failed comparison.
type GateViolation struct {
	Point    string  // which benchmark point, e.g. "lsm/k=8" or "shards=4/hash"
	Metric   string  // which metric regressed
	Baseline float64 // committed value
	Fresh    float64 // measured value
	Limit    float64 // the bound the fresh value had to satisfy
}

func (v GateViolation) String() string {
	return fmt.Sprintf("%s: %s = %.4g (baseline %.4g, limit %.4g)",
		v.Point, v.Metric, v.Fresh, v.Baseline, v.Limit)
}

// f32SpeedupFloor is the absolute acceptance bar for the float32 serving
// path: f32 over the φ-table must beat the committed float64 scalar
// (uncached) baseline by at least this factor, independent of noise
// tolerance.
const f32SpeedupFloor = 1.5

// atLeast records a violation when fresh < limit.
func atLeast(vs []GateViolation, point, metric string, baseline, fresh, limit float64) []GateViolation {
	if fresh < limit {
		vs = append(vs, GateViolation{Point: point, Metric: metric, Baseline: baseline, Fresh: fresh, Limit: limit})
	}
	return vs
}

// atMost records a violation when fresh > limit.
func atMost(vs []GateViolation, point, metric string, baseline, fresh, limit float64) []GateViolation {
	if fresh > limit {
		vs = append(vs, GateViolation{Point: point, Metric: metric, Baseline: baseline, Fresh: fresh, Limit: limit})
	}
	return vs
}

// GateInference compares a fresh inference run against the baseline. For
// every baseline point the fresh run must keep each speedup within (1−tol)
// of the committed value, hold the absolute f32 floor, and not allocate
// where the baseline did not (alloc counts are exact, not noisy, so they
// get no tolerance). A baseline point missing from the fresh run fails;
// fresh-only points pass (new configurations are allowed to appear).
func GateInference(baseline, fresh *InferenceReport, tol float64) []GateViolation {
	var vs []GateViolation
	byKey := map[string]InferencePoint{}
	for _, p := range fresh.Points {
		byKey[fmt.Sprintf("%s/k=%d", p.Config, p.SetSize)] = p
	}
	for _, b := range baseline.Points {
		key := fmt.Sprintf("%s/k=%d", b.Config, b.SetSize)
		f, ok := byKey[key]
		if !ok {
			vs = append(vs, GateViolation{Point: key, Metric: "missing from fresh run"})
			continue
		}
		vs = atLeast(vs, key, "table_speedup", b.TableSpeedup, f.TableSpeedup, b.TableSpeedup*(1-tol))
		vs = atLeast(vs, key, "batch_speedup", b.BatchSpeedup, f.BatchSpeedup, b.BatchSpeedup*(1-tol))
		if b.F32Speedup > 0 {
			vs = atLeast(vs, key, "f32_speedup", b.F32Speedup, f.F32Speedup, b.F32Speedup*(1-tol))
			vs = atMost(vs, key, "f32_allocs_op", b.F32AllocsOp, f.F32AllocsOp, b.F32AllocsOp)
		}
		if f.F32Speedup > 0 {
			vs = atLeast(vs, key, "f32_speedup_floor", b.F32Speedup, f.F32Speedup, f32SpeedupFloor)
		}
	}
	return vs
}

// calErrRatioCeiling is the error-aware sharding acceptance bar: a
// calibrated skew-aware partition whose committed baseline holds its mean
// absolute error within this factor of the monolith's must keep doing so —
// the ceiling is absolute, not tolerance-scaled, so the headline accuracy
// claim cannot erode by tol per PR.
const calErrRatioCeiling = 2.0

// GateSharding compares a fresh sharding run against the baseline: the
// partitioned build must keep its speedup over the monolith, accuracy must
// not drift (mean absolute error is seeded and machine-independent, but
// gets the same tolerance for float-order effects), the batched path must
// stay at least as fast relative to the single-query path, and calibrated
// points must hold their accuracy ratio against the monolith — both
// relative to the committed ratio and, where the baseline met it, against
// the absolute calErrRatioCeiling.
func GateSharding(baseline, fresh *ShardingReport, tol float64) []GateViolation {
	var vs []GateViolation
	byKey := map[string]ShardingPoint{}
	for _, p := range fresh.Points {
		byKey[fmt.Sprintf("shards=%d/%s", p.Shards, p.Partitioner)] = p
	}
	for _, b := range baseline.Points {
		key := fmt.Sprintf("shards=%d/%s", b.Shards, b.Partitioner)
		f, ok := byKey[key]
		if !ok {
			vs = append(vs, GateViolation{Point: key, Metric: "missing from fresh run"})
			continue
		}
		vs = atLeast(vs, key, "build_speedup", b.BuildSpeedup, f.BuildSpeedup, b.BuildSpeedup*(1-tol))
		vs = atMost(vs, key, "mean_abs_err", b.MeanAbsErr, f.MeanAbsErr, b.MeanAbsErr*(1+tol)+0.5)
		if b.SingleUS > 0 && f.SingleUS > 0 {
			baseRatio := b.BatchUS / b.SingleUS
			vs = atMost(vs, key, "batch_vs_single_ratio", baseRatio, f.BatchUS/f.SingleUS, baseRatio*(1+tol))
		}
		if b.CalibratedErr > 0 && baseline.MonolithErr > 0 {
			if f.CalibratedErr <= 0 {
				vs = append(vs, GateViolation{Point: key, Metric: "calibrated_err missing from fresh run"})
				continue
			}
			if fresh.MonolithErr <= 0 {
				vs = append(vs, GateViolation{Point: key, Metric: "monolith_err missing from fresh run"})
				continue
			}
			bRatio := b.CalibratedErr / baseline.MonolithErr
			fRatio := f.CalibratedErr / fresh.MonolithErr
			vs = atMost(vs, key, "calibrated_err_ratio", bRatio, fRatio, bRatio*(1+tol)+0.1)
			if bRatio <= calErrRatioCeiling {
				vs = atMost(vs, key, "calibrated_err_ratio_ceiling", bRatio, fRatio, calErrRatioCeiling)
			}
		}
	}
	return vs
}

// LoadInferenceReport reads a BENCH_inference.json file.
func LoadInferenceReport(path string) (*InferenceReport, error) {
	var r InferenceReport
	if err := loadJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// LoadShardingReport reads a BENCH_sharding.json file.
func LoadShardingReport(path string) (*ShardingReport, error) {
	var r ShardingReport
	if err := loadJSON(path, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

func loadJSON(path string, v any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return nil
}
