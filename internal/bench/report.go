// Package bench contains one runner per table and figure of the paper's
// evaluation (§8). Each runner regenerates the experiment — workload,
// training, measurement — at a chosen scale and renders a paper-style text
// table. cmd/experiments is the CLI front end; bench_test.go at the module
// root exposes each runner as a testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is a rendered experiment: a title, column headers, string cells,
// and free-form notes (assumptions, substitutions, expected shape).
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying each cell.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.2f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.6f", v)
	}
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("== " + r.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
