package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"setlearn/internal/dataset"
)

// Runner regenerates one table or figure at the given scale and renders it
// to w.
type Runner func(w io.Writer, sc dataset.Scale) error

// Registry maps experiment ids (table/figure numbers of the paper) to
// runners.
var Registry = map[string]Runner{
	"table2":    RunTable2,
	"fig3":      RunFig3,
	"fig6":      RunFig6,
	"table3":    RunTable3,
	"table4":    RunTable4,
	"table5":    RunTable5,
	"table6":    RunTable6,
	"table7":    RunTable7,
	"table8":    RunTable8,
	"localerr":  RunLocalErr,
	"table9":    RunTable9,
	"table10":   RunTable10,
	"table11":   RunTable11,
	"fig7":      RunFig7,
	"fig8":      RunFig8,
	"table12":   RunTable12,
	"buildtime": RunBuildTime,
	"inference": RunInference,
	"sharding":  RunSharding,
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(name string, w io.Writer, sc dataset.Scale) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (known: %v)", name, Names())
	}
	return r(w, sc)
}

// RunAll executes every experiment in a stable order.
func RunAll(w io.Writer, sc dataset.Scale) error {
	for _, name := range Names() {
		if err := Run(name, w, sc); err != nil {
			return fmt.Errorf("bench: %s: %w", name, err)
		}
	}
	return nil
}

// Suites for one scale are shared across the experiments that need them
// (Fig 6 and Tables 3–4 reuse the same trained estimators, as do Tables
// 7–8 and the local-error experiment), so "run everything" trains each
// model once.
var (
	cacheMu    sync.Mutex
	cardCache  = map[string][]*CardSuite{}
	indexCache = map[string][]*IndexSuite{}
	bloomCache = map[string][]*BloomSuite{}
)

func cardSuites(sc dataset.Scale) ([]*CardSuite, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := cardCache[sc.Name]; ok {
		return s, nil
	}
	var out []*CardSuite
	for _, nc := range sc.Datasets() {
		s, err := BuildCardSuite(nc, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	cardCache[sc.Name] = out
	return out, nil
}

// indexPercentile mirrors §8.3.2's per-dataset error-threshold percentiles
// (90 for RW variants, 60 for Tweets, 70 for SD).
func indexPercentile(name string) float64 {
	switch name {
	case "Tweets":
		return 60
	case "SD":
		return 70
	default:
		return 90
	}
}

func indexSuites(sc dataset.Scale) ([]*IndexSuite, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := indexCache[sc.Name]; ok {
		return s, nil
	}
	var out []*IndexSuite
	for _, nc := range sc.Datasets() {
		s, err := BuildIndexSuite(nc, sc, indexPercentile(nc.Name), 100)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	indexCache[sc.Name] = out
	return out, nil
}

func bloomSuites(sc dataset.Scale) ([]*BloomSuite, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := bloomCache[sc.Name]; ok {
		return s, nil
	}
	var out []*BloomSuite
	for _, nc := range sc.Datasets() {
		s, err := BuildBloomSuite(nc, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	bloomCache[sc.Name] = out
	return out, nil
}

// ResetCaches drops all trained suites (tests use this to bound memory).
func ResetCaches() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cardCache = map[string][]*CardSuite{}
	indexCache = map[string][]*IndexSuite{}
	bloomCache = map[string][]*BloomSuite{}
}

// avgMillis times n invocations of f and returns the mean per-call latency
// in milliseconds — the per-query measure of Tables 4, 8, and 11 (queries
// are executed one at a time, not batched, as in §8.2.3).
func avgMillis(n int, f func(i int)) float64 {
	if n == 0 {
		return 0
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f(i)
	}
	return time.Since(start).Seconds() * 1000 / float64(n)
}

// mb converts bytes to the paper's MB unit.
func mb(bytes int) float64 { return float64(bytes) / (1024 * 1024) }
