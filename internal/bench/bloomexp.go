package bench

import (
	"fmt"
	"io"

	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// RunTable9 regenerates Table 9: binary accuracy of the learned Bloom
// filters over the positive and negative membership samples.
func RunTable9(w io.Writer, sc dataset.Scale) error {
	suites, err := bloomSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 9 (scale=%s): binary accuracy for the Bloom filter task", sc.Name),
		Header: []string{"Dataset", "LSM", "CLSM"},
		Notes: []string{
			"accuracy of the raw classifier (no backup filter), as in §8.4.1;",
			"expected shape: both near 1, LSM ≥ CLSM",
		},
	}
	for _, s := range suites {
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			correct, total := 0, 0
			for _, q := range s.Md.Positive {
				total++
				if v.Pred.Predict(q) > 0.5 {
					correct++
				}
			}
			for _, q := range s.Md.Negative {
				total++
				if v.Pred.Predict(q) <= 0.5 {
					correct++
				}
			}
			row = append(row, float64(correct)/float64(total))
		}
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunTable10 regenerates Table 10: memory of the learned filters against
// traditional Bloom filters at fp rates 0.1, 0.01, and 0.001.
func RunTable10(w io.Writer, sc dataset.Scale) error {
	suites, err := bloomSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 10 (scale=%s): memory (MB) for the Bloom filter task", sc.Name),
		Header: []string{"Dataset", "LSM", "CLSM", "BF 0.1", "BF 0.01", "BF 0.001"},
		Notes: []string{
			"learned sizes include the backup filter (negligible, §8.4.2);",
			"expected shape: CLSM smallest; LSM can exceed the BF on large vocabularies",
		},
	}
	for _, s := range suites {
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			row = append(row, mb(v.Model.SizeBytes()+v.Backup.SizeBytes()))
		}
		for _, fp := range []float64{0.1, 0.01, 0.001} {
			row = append(row, mb(s.Filters[fp].SizeBytes()))
		}
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunTable11 regenerates Table 11: per-query execution time of the learned
// filters against the traditional Bloom filter.
func RunTable11(w io.Writer, sc dataset.Scale) error {
	suites, err := bloomSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 11 (scale=%s): execution time (ms) for the Bloom filter task", sc.Name),
		Header: []string{"Dataset", "LSM", "CLSM", "BF 0.1", "BF 0.01", "BF 0.001"},
		Notes: []string{
			"expected shape: BF fastest; CLSM slightly slower than LSM (extra concat, §8.4.3)",
		},
	}
	for _, s := range suites {
		queries := buildBloomWorkload(s, indexQueryCount(sc))
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			vv := v
			row = append(row, avgMillis(len(queries), func(i int) { vv.Contains(queries[i]) }))
		}
		for _, fp := range []float64{0.1, 0.01, 0.001} {
			f := s.Filters[fp]
			row = append(row, avgMillis(len(queries), func(i int) { f.Contains(queries[i]) }))
		}
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// buildBloomWorkload mixes positive and negative membership queries.
func buildBloomWorkload(s *BloomSuite, n int) []sets.Set {
	out := make([]sets.Set, 0, n)
	for i := 0; len(out) < n; i++ {
		if i%2 == 0 && len(s.Md.Positive) > 0 {
			out = append(out, s.Md.Positive[i%len(s.Md.Positive)])
		} else if len(s.Md.Negative) > 0 {
			out = append(out, s.Md.Negative[i%len(s.Md.Negative)])
		} else {
			out = append(out, s.Md.Positive[i%len(s.Md.Positive)])
		}
	}
	return out
}
