package bench

import (
	"strings"
	"testing"
)

func inferenceFixturePoint(speedup float64) InferencePoint {
	return InferencePoint{
		Config: "lsm", SetSize: 8,
		UncachedUS: 12, TableUS: 12 / speedup, BatchTableUS: 12 / speedup,
		TableSpeedup: speedup, BatchSpeedup: speedup,
		F32TableUS: 12 / (speedup * 1.1), F32Speedup: speedup * 1.1, F32AllocsOp: 0,
	}
}

func TestGateInferencePassesWithinTolerance(t *testing.T) {
	base := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(8)}}
	// 30% slower speedup on a 40% tolerance: no violation.
	fresh := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(8 * 0.7)}}
	if vs := GateInference(base, fresh, 0.4); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestGateInferenceCatchesSpeedupRegression(t *testing.T) {
	base := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(8)}}
	fresh := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(3)}}
	vs := GateInference(base, fresh, 0.4)
	if len(vs) == 0 {
		t.Fatal("halved speedup must violate")
	}
	found := false
	for _, v := range vs {
		if v.Metric == "table_speedup" && strings.Contains(v.String(), "lsm/k=8") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want table_speedup violation, got %v", vs)
	}
}

func TestGateInferenceCatchesAllocRegression(t *testing.T) {
	base := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(8)}}
	p := inferenceFixturePoint(8)
	p.F32AllocsOp = 2 // any steady-state allocation is a regression, no tolerance
	fresh := &InferenceReport{Points: []InferencePoint{p}}
	vs := GateInference(base, fresh, 0.4)
	if len(vs) != 1 || vs[0].Metric != "f32_allocs_op" {
		t.Fatalf("want exactly the alloc violation, got %v", vs)
	}
}

func TestGateInferenceEnforcesF32Floor(t *testing.T) {
	// Baseline predates the f32 path (F32Speedup 0): the relative check is
	// skipped but the absolute 1.5× floor still applies to the fresh run.
	base := &InferenceReport{Points: []InferencePoint{{Config: "lsm", SetSize: 8, TableSpeedup: 8, BatchSpeedup: 8}}}
	p := inferenceFixturePoint(8)
	p.F32Speedup = 1.2
	fresh := &InferenceReport{Points: []InferencePoint{p}}
	vs := GateInference(base, fresh, 0.4)
	if len(vs) != 1 || vs[0].Metric != "f32_speedup_floor" {
		t.Fatalf("want the f32 floor violation, got %v", vs)
	}
}

func TestGateInferenceMissingPoint(t *testing.T) {
	base := &InferenceReport{Points: []InferencePoint{inferenceFixturePoint(8)}}
	fresh := &InferenceReport{}
	if vs := GateInference(base, fresh, 0.4); len(vs) != 1 || !strings.Contains(vs[0].Metric, "missing") {
		t.Fatalf("want a missing-point violation, got %v", vs)
	}
	// Fresh-only points are allowed: new configurations may appear.
	if vs := GateInference(fresh, base, 0.4); len(vs) != 0 {
		t.Fatalf("fresh-only points must pass, got %v", vs)
	}
}

func shardingFixturePoint(speedup, err float64) ShardingPoint {
	return ShardingPoint{
		Shards: 4, Partitioner: "hash",
		BuildSpeedup: speedup, MeanAbsErr: err, SingleUS: 10, BatchUS: 9,
	}
}

func TestGateSharding(t *testing.T) {
	base := &ShardingReport{Points: []ShardingPoint{shardingFixturePoint(2.7, 2.7)}}
	ok := &ShardingReport{Points: []ShardingPoint{shardingFixturePoint(2.0, 3.0)}}
	if vs := GateSharding(base, ok, 0.4); len(vs) != 0 {
		t.Fatalf("within tolerance must pass, got %v", vs)
	}
	bad := &ShardingReport{Points: []ShardingPoint{shardingFixturePoint(1.2, 9.0)}}
	vs := GateSharding(base, bad, 0.4)
	metrics := map[string]bool{}
	for _, v := range vs {
		metrics[v.Metric] = true
	}
	if !metrics["build_speedup"] || !metrics["mean_abs_err"] {
		t.Fatalf("want build_speedup and mean_abs_err violations, got %v", vs)
	}
}

func calibratedFixturePoint(calErr float64) ShardingPoint {
	return ShardingPoint{
		Shards: 8, Partitioner: "freq",
		BuildSpeedup: 3.5, MeanAbsErr: 5.0, CalibratedErr: calErr,
		SingleUS: 10, BatchUS: 9,
	}
}

func TestGateShardingCalibratedRatio(t *testing.T) {
	// Baseline ratio 1.5× the monolith — under the 2× acceptance ceiling.
	base := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(1.5)}}

	// 1.8× is within both the relative tolerance and the absolute ceiling.
	ok := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(1.8)}}
	if vs := GateSharding(base, ok, 0.4); len(vs) != 0 {
		t.Fatalf("ratio under the ceiling must pass, got %v", vs)
	}

	// 2.1× clears the tolerance-scaled relative bound (1.5×1.4+0.1 = 2.2)
	// but breaks the absolute ceiling: the headline accuracy claim must not
	// erode by tol per PR.
	over := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(2.1)}}
	vs := GateSharding(base, over, 0.4)
	if len(vs) != 1 || vs[0].Metric != "calibrated_err_ratio_ceiling" {
		t.Fatalf("want exactly the ceiling violation, got %v", vs)
	}

	// Way past both bounds: the relative check fires too.
	far := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(4.0)}}
	vs = GateSharding(base, far, 0.4)
	metrics := map[string]bool{}
	for _, v := range vs {
		metrics[v.Metric] = true
	}
	if !metrics["calibrated_err_ratio"] || !metrics["calibrated_err_ratio_ceiling"] {
		t.Fatalf("want relative and ceiling violations, got %v", vs)
	}

	// A fresh run that dropped the calibrated column altogether fails.
	uncal := calibratedFixturePoint(0)
	missing := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{uncal}}
	vs = GateSharding(base, missing, 0.4)
	if len(vs) != 1 || !strings.Contains(vs[0].Metric, "calibrated_err missing") {
		t.Fatalf("want a missing-calibration violation, got %v", vs)
	}

	// A baseline over the ceiling never had the claim; only the relative
	// bound applies, so a fresh ratio within tolerance of it passes.
	baseOver := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(3.0)}}
	freshOver := &ShardingReport{MonolithErr: 1.0, Points: []ShardingPoint{calibratedFixturePoint(4.0)}}
	if vs := GateSharding(baseOver, freshOver, 0.4); len(vs) != 0 {
		t.Fatalf("ceiling must not apply when the baseline never met it, got %v", vs)
	}
}
