package bench

import (
	"fmt"
	"io"
	"time"

	"setlearn/internal/compress"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/train"
)

// RunTable5 regenerates Table 5: index accuracy (avg q-error / avg absolute
// error) for LSM-Hybrid and CLSM-Hybrid as the eviction percentile varies
// over {50, 75, 90, 95, no removal}.
func RunTable5(w io.Writer, sc dataset.Scale) error {
	percentiles := []float64{50, 75, 90, 95, 0}
	labels := []string{"<50%", "<75%", "<90%", "<95%", "NoRemoval"}

	for _, variant := range []struct {
		name       string
		compressed bool
	}{{"LSM-Hybrid", false}, {"CLSM-Hybrid", true}} {
		qRep := &Report{
			Title:  fmt.Sprintf("Table 5 (%s, scale=%s): avg q-error by eviction percentile", variant.name, sc.Name),
			Header: append([]string{"Dataset"}, labels...),
			Notes:  []string{"expected shape: error rises monotonically as fewer outliers are evicted"},
		}
		aRep := &Report{
			Title:  fmt.Sprintf("Table 5 (%s, scale=%s): avg absolute error by eviction percentile", variant.name, sc.Name),
			Header: append([]string{"Dataset"}, labels...),
		}
		for _, nc := range sc.Datasets() {
			st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
			samples := st.IndexSamples()
			scaler := train.FitScaler(samples)
			qRow := []any{nc.Name}
			aRow := []any{nc.Name}
			for _, p := range percentiles {
				m, err := deepsets.New(indexModelConfig(nc.Collection.MaxID(), variant.compressed, 41))
				if err != nil {
					return err
				}
				res, err := train.Guided(m, samples, scaler, train.GuidedConfig{
					Train:      trainConfig(sc, 43),
					Percentile: p,
				})
				if err != nil {
					return err
				}
				// Accuracy over the samples the model remains responsible
				// for (outliers are answered exactly by the aux structure).
				qRow = append(qRow, train.Mean(train.QErrors(m, res.Kept, scaler)))
				aRow = append(aRow, train.Mean(train.AbsErrors(m, res.Kept, scaler)))
			}
			qRep.AddRow(qRow...)
			aRep.AddRow(aRow...)
		}
		if err := qRep.Render(w); err != nil {
			return err
		}
		if err := aRep.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunTable6 regenerates Table 6: the tunable compression factor sv_d on the
// Tweets dataset — accuracy, model memory, and training time from full
// compression to none.
func RunTable6(w io.Writer, sc dataset.Scale) error {
	nc := dataset.NamedCollection{
		Name:       "Tweets",
		Collection: dataset.GenerateTweets(sc.TweetsN, sc.TweetsVocab, 202),
	}
	maxID := nc.Collection.MaxID()
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	samples := st.IndexSamples()
	scaler := train.FitScaler(samples)

	// Sweep sv_d geometrically between the optimum and no compression so
	// intermediate points stay distinct at every scale.
	optimal := compress.Divisor(maxID, 2)
	mid1 := optimal * 2
	mid2 := optimal * 6
	mid3 := optimal * 18
	svds := []struct {
		label string
		svd   uint32
	}{
		{"Full comp.", optimal},
		{fmt.Sprint(mid1), mid1},
		{fmt.Sprint(mid2), mid2},
		{fmt.Sprint(mid3), mid3},
		{"No comp.", maxID + 1},
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 6 (scale=%s): impact of compression factor sv_d (Tweets, index task)", sc.Name),
		Header: []string{"sv_d", "Avg q-error", "Model MB", "Train secs"},
		Notes: []string{
			"expected shape: larger sv_d → better accuracy, more memory;",
			"training time grows toward the uncompressed model (§8.3.3)",
		},
	}
	for _, v := range svds {
		svd := v.svd
		if svd > maxID+1 {
			svd = maxID + 1
		}
		cfg := indexModelConfig(maxID, true, 47)
		cfg.SVD = svd
		m, err := deepsets.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := train.Regression(m, samples, scaler, trainConfig(sc, 53)); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		rep.AddRow(v.label, train.Mean(train.QErrors(m, samples, scaler)), mb(m.SizeBytes()), secs)
	}
	return rep.Render(w)
}

// RunTable7 regenerates Table 7: memory of the hybrid indexes broken into
// model / auxiliary structure / error list, against the B+ tree.
func RunTable7(w io.Writer, sc dataset.Scale) error {
	suites, err := indexSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 7 (scale=%s): memory (MB) for the index task (model/aux/err)", sc.Name),
		Header: []string{"Dataset", "LSM-Hybrid", "CLSM-Hybrid", "B+ Tree"},
		Notes: []string{
			"expected shape: hybrids ≪ B+ tree; CLSM model smallest; aux dominates the hybrid (§8.3.2)",
		},
	}
	for _, s := range suites {
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			m, a, e := v.Index.MemoryBreakdown()
			row = append(row, fmt.Sprintf("%.3f / %.3f / %.3f", mb(m), mb(a), mb(e)))
		}
		row = append(row, mb(s.BPTree.SizeBytes()))
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunTable8 regenerates Table 8: per-query execution time of the hybrid
// indexes against the B+ tree.
func RunTable8(w io.Writer, sc dataset.Scale) error {
	suites, err := indexSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Table 8 (scale=%s): execution time (ms) for the index task", sc.Name),
		Header: []string{"Dataset", "LSM-Hybrid", "CLSM-Hybrid", "B+ Tree"},
		Notes: []string{
			"expected shape: B+ tree orders of magnitude faster; hybrid cost is model inference",
			"plus the bounded local scan (§8.3.3)",
		},
	}
	for _, s := range suites {
		queries := dataset.QueryWorkload(s.Data.Collection, indexQueryCount(sc), sc.MaxSubset, 59)
		row := []any{s.Data.Name}
		for _, v := range s.Variants {
			idx := v.Index
			row = append(row, avgMillis(len(queries), func(i int) { idx.Lookup(queries[i]) }))
		}
		row = append(row, avgMillis(len(queries), func(i int) { s.BPTree.Lookup(queries[i]) }))
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

func indexQueryCount(sc dataset.Scale) int {
	if sc.Name == "tiny" {
		return 100
	}
	return 1000
}

// RunLocalErr regenerates the §8.3.3 local-vs-global error comparison: the
// maximal error bound against the per-range bounds, and the per-query
// latency under each.
func RunLocalErr(w io.Writer, sc dataset.Scale) error {
	suites, err := indexSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Local vs global error bounds (scale=%s, §8.3.3)", sc.Name),
		Header: []string{"Dataset", "Variant", "Global max err", "Mean local err", "Local ms", "Global ms"},
		Notes: []string{
			"expected shape: mean local error ≪ global max; local bounds cut the scan",
			"window and therefore the lookup latency",
		},
	}
	for _, s := range suites {
		queries := dataset.QueryWorkload(s.Data.Collection, indexQueryCount(sc), sc.MaxSubset, 61)
		for _, v := range s.Variants {
			idx := v.Index
			localMs := avgMillis(len(queries), func(i int) { idx.Lookup(queries[i]) })
			globalMs := avgMillis(len(queries), func(i int) { idx.LookupGlobalBound(queries[i]) })
			rep.AddRow(s.Data.Name, v.Name, idx.MaxError(), idx.MeanLocalError(), localMs, globalMs)
		}
	}
	return rep.Render(w)
}
