package bench

import (
	"fmt"
	"time"

	"setlearn/internal/baselines"
	"setlearn/internal/bloom"
	"setlearn/internal/bptree"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// Model shapes follow §8.1: cardinality models get the larger neuron
// budget (64–256 in the paper), index and Bloom-filter models the smaller
// one (8–32), and the Bloom filter uses embedding size two so LSM can
// compete with the bit array on memory.
func cardModelConfig(maxID uint32, compressed bool, seed int64) deepsets.Config {
	return deepsets.Config{
		MaxID: maxID, EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{64}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: seed,
	}
}

func indexModelConfig(maxID uint32, compressed bool, seed int64) deepsets.Config {
	return deepsets.Config{
		MaxID: maxID, EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{32}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: seed,
	}
}

func bloomModelConfig(maxID uint32, compressed bool, seed int64) deepsets.Config {
	return deepsets.Config{
		MaxID: maxID, EmbedDim: 2, PhiHidden: []int{8}, PhiOut: 8,
		RhoHidden: []int{8}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: seed,
	}
}

func trainConfig(sc dataset.Scale, seed int64) train.Config {
	return train.Config{Epochs: sc.Epochs, LR: 0.005, Seed: seed}
}

// CardVariant is one estimator column of Figure 6 / Tables 3–4.
type CardVariant struct {
	Name      string
	Model     *deepsets.Model
	Estimator *hybrid.Estimator
	TrainSecs float64
	Outliers  int
}

// CardSuite bundles everything the cardinality experiments share.
type CardSuite struct {
	Data    dataset.NamedCollection
	Stats   *dataset.SubsetStats
	Samples []dataset.Sample
	Scaler  train.Scaler

	Variants []CardVariant // LSM, LSM-Hybrid, CLSM, CLSM-Hybrid
	HashMap  *baselines.SubsetHashMap
	HashSecs float64
}

// BuildCardSuite trains the four estimator variants of §8.2 over one
// dataset and builds the HashMap competitor.
func BuildCardSuite(nc dataset.NamedCollection, sc dataset.Scale) (*CardSuite, error) {
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	s := &CardSuite{Data: nc, Stats: st, Samples: st.CardinalitySamples()}
	s.Scaler = train.FitScaler(s.Samples)

	for _, v := range []struct {
		name       string
		compressed bool
		percentile float64
	}{
		{"LSM", false, 0},
		{"LSM-Hybrid", false, 90},
		{"CLSM", true, 0},
		{"CLSM-Hybrid", true, 90},
	} {
		m, err := deepsets.New(cardModelConfig(nc.Collection.MaxID(), v.compressed, 11))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", v.name, err)
		}
		start := time.Now()
		res, err := train.Guided(m, s.Samples, s.Scaler, train.GuidedConfig{
			Train:      trainConfig(sc, 13),
			Percentile: v.percentile,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: train %s: %w", v.name, err)
		}
		s.Variants = append(s.Variants, CardVariant{
			Name:      v.name,
			Model:     m,
			Estimator: hybrid.BuildEstimator(m, s.Scaler, res),
			TrainSecs: time.Since(start).Seconds(),
			Outliers:  len(res.Outliers),
		})
	}
	start := time.Now()
	s.HashMap = baselines.BuildSubsetHashMap(st, sc.MaxSubset)
	s.HashSecs = time.Since(start).Seconds()
	return s, nil
}

// IndexVariant is one hybrid-index column of Tables 5, 7, and 8.
type IndexVariant struct {
	Name      string
	Model     *deepsets.Model
	Index     *hybrid.Index
	Result    *train.GuidedResult
	TrainSecs float64
}

// IndexSuite bundles the index experiments' shared state.
type IndexSuite struct {
	Data    dataset.NamedCollection
	Stats   *dataset.SubsetStats
	Samples []dataset.Sample
	Scaler  train.Scaler

	Variants []IndexVariant // LSM-Hybrid, CLSM-Hybrid at a chosen percentile
	BPTree   *baselines.BPTreeIndex
	BPSecs   float64
}

// BuildIndexSuite trains LSM-Hybrid and CLSM-Hybrid set indexes at the
// given eviction percentile and builds the B+ tree competitor.
func BuildIndexSuite(nc dataset.NamedCollection, sc dataset.Scale, percentile float64, rangeLen int) (*IndexSuite, error) {
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	s := &IndexSuite{Data: nc, Stats: st, Samples: st.IndexSamples()}
	s.Scaler = train.FitScaler(s.Samples)

	for _, v := range []struct {
		name       string
		compressed bool
	}{{"LSM-Hybrid", false}, {"CLSM-Hybrid", true}} {
		m, err := deepsets.New(indexModelConfig(nc.Collection.MaxID(), v.compressed, 17))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", v.name, err)
		}
		start := time.Now()
		res, err := train.Guided(m, s.Samples, s.Scaler, train.GuidedConfig{
			Train:      trainConfig(sc, 19),
			Percentile: percentile,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: train %s: %w", v.name, err)
		}
		idx, err := hybrid.BuildIndex(nc.Collection, m, s.Scaler, res, hybrid.IndexConfig{RangeLen: rangeLen})
		if err != nil {
			return nil, err
		}
		s.Variants = append(s.Variants, IndexVariant{
			Name: v.name, Model: m, Index: idx, Result: res,
			TrainSecs: time.Since(start).Seconds(),
		})
	}
	start := time.Now()
	s.BPTree = baselines.BuildBPTreeIndex(nc.Collection, st, bptree.DefaultOrder)
	s.BPSecs = time.Since(start).Seconds()
	return s, nil
}

// BloomVariant is one learned-filter column of Tables 9–11.
type BloomVariant struct {
	Name      string
	Model     *deepsets.Model
	Pred      *deepsets.Predictor
	Backup    *bloom.Filter
	TrainSecs float64
}

// Contains answers a membership query through the learned filter: model
// first, backup Bloom filter for the model's trained false negatives.
func (v *BloomVariant) Contains(q sets.Set) bool {
	return v.Pred.Predict(q) > 0.5 || v.Backup.Contains(q.Hash())
}

// BloomSuite bundles the membership experiments' shared state.
type BloomSuite struct {
	Data dataset.NamedCollection
	Md   *dataset.MembershipData

	Variants []BloomVariant                        // LSM, CLSM
	Filters  map[float64]*baselines.SetBloomFilter // fp rate → traditional BF
	BFSecs   float64
}

// BuildBloomSuite trains the LSM and CLSM membership classifiers and builds
// traditional Bloom filters at the paper's three fp rates.
func BuildBloomSuite(nc dataset.NamedCollection, sc dataset.Scale) (*BloomSuite, error) {
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	md := st.MembershipSamples(nc.Collection, sc.MaxSubset, 1.0, 23)
	s := &BloomSuite{Data: nc, Md: md}

	for _, v := range []struct {
		name       string
		compressed bool
	}{{"LSM", false}, {"CLSM", true}} {
		m, err := deepsets.New(bloomModelConfig(nc.Collection.MaxID(), v.compressed, 29))
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", v.name, err)
		}
		start := time.Now()
		if _, err := train.Classification(m, md, trainConfig(sc, 31)); err != nil {
			return nil, fmt.Errorf("bench: train %s: %w", v.name, err)
		}
		pred := m.NewPredictor()
		// Backup filter over the model's false negatives (§4.3).
		var fn int
		for _, p := range md.Positive {
			if pred.Predict(p) <= 0.5 {
				fn++
			}
		}
		if fn == 0 {
			fn = 1
		}
		backup := bloom.NewWithEstimates(uint64(fn), 0.01)
		for _, p := range md.Positive {
			if pred.Predict(p) <= 0.5 {
				backup.Add(p.Hash())
			}
		}
		s.Variants = append(s.Variants, BloomVariant{
			Name: v.name, Model: m, Pred: pred, Backup: backup,
			TrainSecs: time.Since(start).Seconds(),
		})
	}

	s.Filters = make(map[float64]*baselines.SetBloomFilter)
	start := time.Now()
	for _, fp := range []float64{0.1, 0.01, 0.001} {
		s.Filters[fp] = baselines.BuildSetBloomFilter(st, fp)
	}
	s.BFSecs = time.Since(start).Seconds()
	return s, nil
}
