package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"setlearn/internal/core"
	"setlearn/internal/dataset"
	"setlearn/internal/sets"
	"setlearn/internal/shard"
)

// ShardingPoint is one measured shard count of the sharding benchmark.
type ShardingPoint struct {
	Shards       int     `json:"shards"`
	Partitioner  string  `json:"partitioner"`
	BuildSecs    float64 `json:"build_secs"`
	BuildSpeedup float64 `json:"build_speedup"` // monolith build secs / this build secs
	SizeBytes    int     `json:"size_bytes"`
	MeanAbsErr   float64 `json:"mean_abs_err"` // raw serving path, over the trained workload
	// CalibratedErr is the mean absolute error with the per-shard isotonic
	// curves enabled; 0 for points built without -calibrate. The accuracy
	// gate judges CalibratedErr / MonolithErr — the error-aware sharding
	// acceptance ratio.
	CalibratedErr float64 `json:"calibrated_err,omitempty"`
	SingleUS      float64 `json:"single_us"` // µs per single fan-out query
	BatchUS       float64 `json:"batch_us"`  // µs per query through EstimateBatch
}

// ShardingReport is the JSON trajectory written via BENCH_SHARDING_OUT so
// successive PRs can compare sharded build and serving cost.
type ShardingReport struct {
	Scale        string          `json:"scale"`
	Sets         int             `json:"sets"`
	MonolithSecs float64         `json:"monolith_secs"`
	MonolithErr  float64         `json:"monolith_err"` // monolith mean abs error, the accuracy denominator
	Points       []ShardingPoint `json:"points"`
}

func mbOf(bytes int) float64 { return float64(bytes) / (1024 * 1024) }

// shardingBase is the un-scaled model every configuration starts from; the
// builder divides every model dimension by √K (ScaleSqrtK), which is where
// the single-core build speedup comes from. The widths are deliberately on
// the paper's serving-model end of the range: sharding pays off when model
// math dominates the build, not for toy widths where per-example overhead
// does.
func shardingBase(sc dataset.Scale) core.ModelOptions {
	return core.ModelOptions{
		EmbedDim: 32, PhiHidden: []int{192}, PhiOut: 64, RhoHidden: []int{192},
		Epochs: sc.Epochs, LR: 0.01, Workers: 1, Seed: 21,
	}
}

// shardingWorkload stride-samples ≤256 trained subsets with their true
// cardinalities — the accuracy workload every sharding point is judged on.
func shardingWorkload(st *dataset.SubsetStats) (qs []sets.Set, truth []float64) {
	stride := len(st.Keys)/256 + 1
	for i := 0; i < len(st.Keys); i += stride {
		info := st.ByKey[st.Keys[i]]
		qs = append(qs, info.Set)
		truth = append(truth, float64(info.Card))
	}
	return qs, truth
}

// shardingErr measures mean |estimate − truth| over the trained workload.
func shardingErr(est core.CardinalityQuerier, st *dataset.SubsetStats) float64 {
	qs, truth := shardingWorkload(st)
	var sum float64
	for i, q := range qs {
		sum += math.Abs(est.Estimate(q) - truth[i])
	}
	return sum / float64(len(qs))
}

// shardingErrAndLatency measures mean |estimate − truth| over the trained
// workload plus per-query latency of the single and batched paths.
func shardingErrAndLatency(est core.CardinalityQuerier, st *dataset.SubsetStats) (meanErr, singleUS, batchUS float64) {
	qs, _ := shardingWorkload(st)
	meanErr = shardingErr(est, st)

	reps := inferenceReps(len(qs))
	singleUS = usPerQuery(reps, len(qs), func() {
		for _, q := range qs {
			est.Estimate(q)
		}
	})
	dst := make([]float64, len(qs))
	batchUS = usPerQuery(reps, len(qs), func() {
		est.EstimateBatch(dst, qs)
	})
	return meanErr, singleUS, batchUS
}

// RunSharding measures the partitioned cardinality container (internal/shard)
// against the monolithic build on the RW collection: wall-clock build time at
// K ∈ {1, 2, 4, 8} hash shards with √K model scaling, the accuracy cost of
// the smaller per-shard models, and single/batched fan-out query latency.
// The skew-aware partitioners (freq, cluster) are then measured calibrated at
// K ∈ {2, 4, 8}, with both the raw and calibrated error columns taken from
// one build via the EnableCalibration toggle. When BENCH_SHARDING_OUT names a
// file, the points are also written there as JSON.
func RunSharding(w io.Writer, sc dataset.Scale) error {
	c := dataset.GenerateRW(sc.RWN, sc.RWVocab, 1)
	st := dataset.CollectSubsets(c, sc.MaxSubset)
	base := shardingBase(sc)

	rep := &Report{
		Title:  fmt.Sprintf("Sharded estimator (scale=%s, n=%d): build and fan-out cost vs monolith", sc.Name, c.Len()),
		Header: []string{"Shards", "Part", "Build s", "Speedup", "MB", "MeanAbsErr", "Cal Err", "Single µs", "Batch µs"},
		Notes: []string{
			"√K model scaling: per-shard hidden widths shrink with K, so the build",
			"speedup holds on a single core; the error columns show the price of the",
			"smaller per-shard models on the trained workload (raw serving path vs",
			"the per-shard isotonic curves of -calibrate, one build via the toggle).",
		},
	}

	start := time.Now()
	mono, err := core.BuildEstimator(c, core.EstimatorOptions{
		Model: base, MaxSubset: sc.MaxSubset, Percentile: 90,
	})
	if err != nil {
		return err
	}
	monoSecs := time.Since(start).Seconds()
	out := ShardingReport{Scale: sc.Name, Sets: c.Len(), MonolithSecs: monoSecs}

	monoErr, monoSingle, monoBatch := shardingErrAndLatency(mono, st)
	out.MonolithErr = monoErr
	rep.AddRow("mono", "-", monoSecs, fmt.Sprintf("%.2f", 1.0), mbOf(mono.SizeBytes()), monoErr, "-", monoSingle, monoBatch)

	measure := func(k int, p shard.Partitioner, calibrate bool) error {
		start := time.Now()
		se, err := shard.BuildShardedEstimator(c, shard.Options{
			Shards: k, Partitioner: p, Calibrate: calibrate,
		}, core.EstimatorOptions{
			Model: base, MaxSubset: sc.MaxSubset, Percentile: 90,
		})
		if err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		meanErr, singleUS, batchUS := shardingErrAndLatency(se, st)
		pt := ShardingPoint{
			Shards: k, Partitioner: p.String(),
			BuildSecs: secs, BuildSpeedup: monoSecs / secs,
			SizeBytes: se.SizeBytes(), MeanAbsErr: meanErr,
			SingleUS: singleUS, BatchUS: batchUS,
		}
		calCell := any("-")
		if calibrate {
			// The calibrated error is the serving default of a -calibrate
			// build; flip the toggle to price the raw path from the same
			// build, then restore it.
			pt.CalibratedErr = meanErr
			se.EnableCalibration(false)
			pt.MeanAbsErr = shardingErr(se, st)
			se.EnableCalibration(true)
			calCell = pt.CalibratedErr
		}
		out.Points = append(out.Points, pt)
		rep.AddRow(k, pt.Partitioner, secs, fmt.Sprintf("%.2f", pt.BuildSpeedup),
			mbOf(se.SizeBytes()), pt.MeanAbsErr, calCell, singleUS, batchUS)
		return nil
	}

	for _, k := range []int{1, 2, 4, 8} {
		if err := measure(k, shard.HashBySet, false); err != nil {
			return err
		}
	}
	for _, p := range []shard.Partitioner{shard.FrequencyBand, shard.EmbedCluster} {
		for _, k := range []int{2, 4, 8} {
			if err := measure(k, p, true); err != nil {
				return err
			}
		}
	}

	if path := os.Getenv("BENCH_SHARDING_OUT"); path != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: write %s: %w", path, err)
		}
		rep.Notes = append(rep.Notes, "JSON written to "+path)
	}
	return rep.Render(w)
}
