package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/mat"
	"setlearn/internal/sets"
)

// f32InferenceTol bounds the f32-vs-f64 disagreement the inference
// benchmark tolerates before failing; raw (pre-scaler) model outputs on the
// random-weight fixture stay well inside it.
const f32InferenceTol = 1e-3

// InferenceFixture is a model plus a fixed query workload for measuring the
// φ fast path. Weights are randomly initialized — inference cost and the
// bit-identity contract are independent of training.
type InferenceFixture struct {
	Model   *deepsets.Model
	Queries []sets.Set
}

// BuildInferenceFixture constructs a model in the paper's cardinality shape
// (§8.1) over the universe [0, maxID] and nQueries query sets of ~setSize
// uniformly drawn elements.
func BuildInferenceFixture(compressed bool, maxID uint32, setSize, nQueries int, seed int64) (*InferenceFixture, error) {
	m, err := deepsets.New(cardModelConfig(maxID, compressed, seed))
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	qs := make([]sets.Set, nQueries)
	for i := range qs {
		ids := make([]uint32, setSize)
		for j := range ids {
			ids[j] = uint32(rng.Intn(int(maxID) + 1))
		}
		qs[i] = sets.New(ids...)
	}
	return &InferenceFixture{Model: m, Queries: qs}, nil
}

// InferencePoint is one measured configuration of the inference benchmark.
type InferencePoint struct {
	Config       string  `json:"config"` // "lsm" or "clsm"
	SetSize      int     `json:"set_size"`
	UncachedUS   float64 `json:"uncached_us"`
	TableUS      float64 `json:"table_us"`
	CacheUS      float64 `json:"cache_us"`
	BatchTableUS float64 `json:"batch_table_us_per_query"`
	TableSpeedup float64 `json:"table_speedup"`
	BatchSpeedup float64 `json:"batch_speedup"`
	// float32 serving path (snapshot of the same model; φ-table carried).
	F32UncachedUS float64 `json:"f32_uncached_us"`
	F32TableUS    float64 `json:"f32_table_us"`
	F32Speedup    float64 `json:"f32_speedup"` // f64 uncached ÷ f32 table
	F32AllocsOp   float64 `json:"f32_allocs_op"`
}

// InferenceReport is the JSON trajectory written to BENCH_inference.json
// (via the BENCH_INFERENCE_OUT environment variable) so successive PRs can
// compare serving latency.
type InferenceReport struct {
	Scale  string           `json:"scale"`
	MaxID  uint32           `json:"max_id"`
	Points []InferencePoint `json:"points"`
}

// inferenceReps picks repetitions so each mode runs a few thousand queries.
func inferenceReps(n int) int {
	r := 4096 / n
	if r < 1 {
		return 1
	}
	return r
}

// usPerQuery times reps passes over n queries and returns µs per query.
func usPerQuery(reps, n int, pass func()) float64 {
	start := time.Now()
	for r := 0; r < reps; r++ {
		pass()
	}
	return time.Since(start).Seconds() * 1e6 / float64(reps*n)
}

// RunInference measures per-query latency of the four inference modes —
// uncached, precomputed φ-table, sharded φ-cache, and PredictBatch over the
// φ-table — across set sizes and both model variants, verifying that every
// fast-path answer is bit-identical to the uncached one. When the
// BENCH_INFERENCE_OUT environment variable names a file, the points are
// also written there as JSON.
func RunInference(w io.Writer, sc dataset.Scale) error {
	maxID := uint32(sc.RWVocab - 1)
	rep := &Report{
		Title:  fmt.Sprintf("Inference fast path (scale=%s, universe=%d): µs per query", sc.Name, maxID+1),
		Header: []string{"Config", "k", "Uncached", "PhiTable", "PhiCache", "Batch+Table", "Table ×", "Batch ×", "F32+Table", "F32 ×"},
		Notes: []string{
			"PhiTable precomputes φ for the whole universe; PhiCache is the sharded",
			"fixed-size fallback (sized to half the universe here, so it evicts).",
			"All f64 fast-path outputs are verified bit-identical to the uncached path;",
			"the f32 snapshot path is verified within rounding tolerance and runs",
			"allocation-free (F32 × is f64-uncached ÷ f32-table).",
		},
	}
	out := InferenceReport{Scale: sc.Name, MaxID: maxID}

	for _, compressed := range []bool{false, true} {
		config := "lsm"
		if compressed {
			config = "clsm"
		}
		for _, k := range []int{2, 4, 8} {
			f, err := BuildInferenceFixture(compressed, maxID, k, 256, 7)
			if err != nil {
				return err
			}
			m, qs := f.Model, f.Queries
			reps := inferenceReps(len(qs))
			p := m.NewPredictor()

			truth := make([]float64, len(qs))
			for i, q := range qs {
				truth[i] = p.Predict(q)
			}
			verify := func(mode string) error {
				for i, q := range qs {
					if got := p.Predict(q); got != truth[i] { //lint:allow floateq -- bit-identity assertion: the phi fast path guarantees bit-equal outputs
						return fmt.Errorf("bench: inference %s/%s k=%d: %v != uncached %v", config, mode, k, got, truth[i])
					}
				}
				return nil
			}

			m.SetPhiAccel(nil)
			uncached := usPerQuery(reps, len(qs), func() {
				for _, q := range qs {
					p.Predict(q)
				}
			})

			m.SetPhiAccel(m.BuildPhiTable())
			if err := verify("table"); err != nil {
				return err
			}
			table := usPerQuery(reps, len(qs), func() {
				for _, q := range qs {
					p.Predict(q)
				}
			})
			batchDst := make([]float64, len(qs))
			batch := usPerQuery(reps, len(qs), func() {
				p.PredictBatch(batchDst, qs)
			})
			for i := range qs {
				if batchDst[i] != truth[i] { //lint:allow floateq -- bit-identity assertion: the phi fast path guarantees bit-equal outputs
					return fmt.Errorf("bench: inference %s/batch k=%d: %v != uncached %v", config, k, batchDst[i], truth[i])
				}
			}

			// float32 serving path, snapshotted while the φ-table is
			// installed (the snapshot carries it as a PhiTable32). Outputs
			// are not bit-identical to f64 — they must land within the
			// rounding tolerance instead; the "precision" experiment reports
			// the measured deltas per structure.
			p32 := m.Snapshot32().NewPredictor32()
			p32u := m.Snapshot32WithoutAccel().NewPredictor32()
			for i, q := range qs {
				if got := p32.Predict(q); !mat.WithinTol(got, truth[i], f32InferenceTol) {
					return fmt.Errorf("bench: inference %s/f32 k=%d: %v vs f64 %v exceeds tol %v",
						config, k, got, truth[i], f32InferenceTol)
				}
			}
			f32Table := usPerQuery(reps, len(qs), func() {
				for _, q := range qs {
					p32.Predict(q)
				}
			})
			f32Uncached := usPerQuery(reps, len(qs), func() {
				for _, q := range qs {
					p32u.Predict(q)
				}
			})
			f32Allocs := testing.AllocsPerRun(16, func() {
				p32.Predict(qs[0])
			})

			// Half-universe cache: real eviction traffic, not a disguised table.
			m.SetPhiAccel(m.NewPhiCache(int(maxID+1)/2*m.Config().PhiOut*8, 0))
			if err := verify("cache"); err != nil {
				return err
			}
			cache := usPerQuery(reps, len(qs), func() {
				for _, q := range qs {
					p.Predict(q)
				}
			})

			pt := InferencePoint{
				Config: config, SetSize: k,
				UncachedUS: uncached, TableUS: table, CacheUS: cache, BatchTableUS: batch,
				TableSpeedup: uncached / table, BatchSpeedup: uncached / batch,
				F32UncachedUS: f32Uncached, F32TableUS: f32Table,
				F32Speedup: uncached / f32Table, F32AllocsOp: f32Allocs,
			}
			out.Points = append(out.Points, pt)
			rep.AddRow(config, k, uncached, table, cache, batch,
				fmt.Sprintf("%.1f", pt.TableSpeedup), fmt.Sprintf("%.1f", pt.BatchSpeedup),
				f32Table, fmt.Sprintf("%.1f", pt.F32Speedup))
		}
	}

	if path := os.Getenv("BENCH_INFERENCE_OUT"); path != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: write %s: %w", path, err)
		}
		rep.Notes = append(rep.Notes, "JSON written to "+path)
	}
	return rep.Render(w)
}
