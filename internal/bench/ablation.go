package bench

import (
	"fmt"
	"io"
	"time"

	"setlearn/internal/ad"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
	"setlearn/internal/settransformer"
	"setlearn/internal/train"
)

func init() {
	Registry["settrans"] = RunSetTransformer
	Registry["pooling"] = RunPooling
	Registry["updates"] = RunUpdates
}

// RunSetTransformer quantifies the §3.2 design decision: DeepSets vs the
// Set Transformer on the cardinality task — accuracy, model size, per-query
// latency, and training time. The paper chooses DeepSets because it is
// "superiorly faster and smaller" at similar accuracy for these tasks.
func RunSetTransformer(w io.Writer, sc dataset.Scale) error {
	nc := dataset.NamedCollection{
		Name:       "SD",
		Collection: dataset.GenerateSD(sc.SDN, sc.SDVocab, 303),
	}
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	samples := st.CardinalitySamples()
	scaler := train.FitScaler(samples)
	maxID := nc.Collection.MaxID()

	rep := &Report{
		Title:  fmt.Sprintf("Ablation (scale=%s, §3.2): DeepSets vs Set Transformer, cardinality on SD", sc.Name),
		Header: []string{"Model", "Mean q-error", "Size KB", "Query ms", "Train secs"},
		Notes: []string{
			"expected shape: comparable accuracy, but the Set Transformer is larger and",
			"slower per query — the reason the paper builds on DeepSets",
		},
	}

	queries := dataset.QueryWorkload(nc.Collection, indexQueryCount(sc), sc.MaxSubset, 83)

	// DeepSets.
	ds, err := deepsets.New(cardModelConfig(maxID, false, 11))
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := train.Regression(ds, samples, scaler, trainConfig(sc, 13)); err != nil {
		return err
	}
	dsSecs := time.Since(start).Seconds()
	pred := ds.NewPredictor()
	dsMs := avgMillis(len(queries), func(i int) { pred.Predict(queries[i]) })
	rep.AddRow("DeepSets", train.Mean(train.QErrors(ds, samples, scaler)),
		float64(ds.SizeBytes())/1024, dsMs, dsSecs)

	// Set Transformer, trained on the same scaled targets.
	stm, err := settransformer.New(settransformer.Config{
		MaxID: maxID, EmbedDim: 16, Heads: 2, Blocks: 1, OutAct: nn.Sigmoid, Seed: 11,
	})
	if err != nil {
		return err
	}
	start = time.Now()
	opt := nn.NewAdam(0.005)
	cfg := trainConfig(sc, 13)
	tp := ad.NewTape()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i, smp := range samples {
			tp.Reset()
			out := stm.Apply(tp, smp.Set)
			_, g := nn.MAELoss(out.Value[0], scaler.Scale(smp.Target))
			tp.Backward(out, []float64{g})
			if (i+1)%32 == 0 || i+1 == len(samples) {
				opt.Step(stm.Params())
			}
		}
	}
	stSecs := time.Since(start).Seconds()
	stMs := avgMillis(len(queries), func(i int) { stm.Predict(queries[i]) })
	var qs []float64
	for _, smp := range samples {
		est := scaler.Unscale(stm.Predict(smp.Set))
		qs = append(qs, nn.QError(est, smp.Target))
	}
	rep.AddRow("SetTransformer", train.Mean(qs), float64(stm.SizeBytes())/1024, stMs, stSecs)
	return rep.Render(w)
}

// RunPooling compares sum, mean, and max pooling on the cardinality task —
// the §3.2 aggregation choice. Sum is the only multiplicity-aware pooling
// and should win on count-valued targets.
func RunPooling(w io.Writer, sc dataset.Scale) error {
	nc := dataset.NamedCollection{
		Name:       "RW",
		Collection: dataset.GenerateRW(sc.RWN, sc.RWVocab, 101),
	}
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	samples := st.CardinalitySamples()
	scaler := train.FitScaler(samples)

	rep := &Report{
		Title:  fmt.Sprintf("Ablation (scale=%s, §3.2): pooling operation, cardinality on RW", sc.Name),
		Header: []string{"Pooling", "Mean q-error", "P95 q-error"},
		Notes:  []string{"expected shape: sum ≤ mean ≤ max in error for count targets"},
	}
	for _, pool := range []deepsets.Pooling{deepsets.SumPool, deepsets.MeanPool, deepsets.MaxPool} {
		cfg := cardModelConfig(nc.Collection.MaxID(), false, 11)
		cfg.Pool = pool
		m, err := deepsets.New(cfg)
		if err != nil {
			return err
		}
		if _, err := train.Regression(m, samples, scaler, trainConfig(sc, 13)); err != nil {
			return err
		}
		qs := train.QErrors(m, samples, scaler)
		rep.AddRow(pool.String(), train.Mean(qs), train.Percentile(qs, 95))
	}
	return rep.Render(w)
}

// RunUpdates regenerates the §7.2 scenario: after training, a stream of new
// sets is appended and routed through the auxiliary structure without
// retraining; the experiment tracks exactness for updated entries, aux
// growth, and lookup latency as updates accumulate.
func RunUpdates(w io.Writer, sc dataset.Scale) error {
	nc := dataset.NamedCollection{
		Name:       "RW",
		Collection: dataset.GenerateRW(sc.RWN, sc.RWVocab, 101),
	}
	st := dataset.CollectSubsets(nc.Collection, sc.MaxSubset)
	samples := st.IndexSamples()
	scaler := train.FitScaler(samples)
	m, err := deepsets.New(indexModelConfig(nc.Collection.MaxID(), true, 17))
	if err != nil {
		return err
	}
	res, err := train.Guided(m, samples, scaler, train.GuidedConfig{
		Train:      trainConfig(sc, 19),
		Percentile: 90,
	})
	if err != nil {
		return err
	}
	idx, err := hybrid.BuildIndex(nc.Collection, m, scaler, res, hybrid.IndexConfig{RangeLen: 100})
	if err != nil {
		return err
	}

	rep := &Report{
		Title:  fmt.Sprintf("Updates (scale=%s, §7.2): inserts absorbed by the auxiliary structure", sc.Name),
		Header: []string{"Updates applied", "Aux entries", "Updated exact", "Lookup ms"},
		Notes: []string{
			"each batch appends new sets and registers their subsets in the aux;",
			"expected shape: exactness stays 1.0, aux grows linearly, latency stays flat —",
			"after enough updates the structure degenerates to the aux (the paper's fallback)",
		},
	}

	newSets := dataset.GenerateRW(400, sc.RWVocab, 909)
	queries := dataset.QueryWorkload(nc.Collection, 200, sc.MaxSubset, 91)
	var inserted []dataset.Sample
	applied := 0
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 100; i++ {
			s := newSets.Sets[batch*100+i]
			pos := nc.Collection.Append(s)
			// Register the set's subsets not already answerable.
			single := collectionOf(s)
			stats := dataset.CollectSubsets(&single, sc.MaxSubset)
			for _, k := range stats.Keys {
				sub := stats.ByKey[k].Set
				if idx.Lookup(sub) < 0 {
					idx.InsertOutlier(sub, pos)
					inserted = append(inserted, dataset.Sample{Set: sub, Target: float64(pos)})
				}
			}
			applied++
		}
		exact := 0
		for _, smp := range inserted {
			if idx.Lookup(smp.Set) == int(smp.Target) {
				exact++
			}
		}
		frac := 1.0
		if len(inserted) > 0 {
			frac = float64(exact) / float64(len(inserted))
		}
		ms := avgMillis(len(queries), func(i int) { idx.Lookup(queries[i]) })
		rep.AddRow(applied, idx.AuxLen(), frac, ms)
	}
	return rep.Render(w)
}

// collectionOf wraps a single set as a collection for subset enumeration.
func collectionOf(s sets.Set) sets.Collection {
	return sets.Collection{Sets: []sets.Set{s}}
}
