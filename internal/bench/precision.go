package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"setlearn/internal/core"
	"setlearn/internal/dataset"
	"setlearn/internal/mat"
	"setlearn/internal/sets"
)

func init() {
	Registry["precision"] = RunPrecision
}

// PrecisionPoint is the measured f32-vs-f64 accuracy delta of one structure:
// the differential harness switches the same trained structure between
// precisions and replays an identical workload through both.
type PrecisionPoint struct {
	Structure string  `json:"structure"` // "estimator", "index", "filter"
	Queries   int     `json:"queries"`
	MaxDelta  float64 `json:"max_delta"`       // max relative delta, WithinTol scale
	MeanDelta float64 `json:"mean_delta"`      // mean relative delta
	Tol       float64 `json:"tol"`             // documented bound for this structure
	WithinTol float64 `json:"within_tol_rate"` // fraction of queries inside Tol
	Flips     int     `json:"flips"`           // discrete answers that changed
	FalseNeg  int     `json:"false_negatives"` // filter only: trained positives lost
}

// PrecisionReport is the JSON trajectory written via BENCH_PRECISION_OUT.
type PrecisionReport struct {
	Scale  string           `json:"scale"`
	Sets   int              `json:"sets"`
	Points []PrecisionPoint `json:"points"`
}

// Documented per-structure tolerances for the f32 serving path. The
// estimator's scaler amplifies the raw model delta, so its bound is looser
// than the filter's probability bound; the index bound is on the predicted
// scan position relative to the collection size.
const (
	precisionTolEstimator = 1e-2
	precisionTolIndex     = 1e-2
	precisionTolFilter    = 1e-3
)

// relDelta measures |a−b| on mat.WithinTol's scale: max(1, |a|, |b|).
func relDelta(a, b float64) float64 {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) / scale
}

// deltaStats folds per-query reference/candidate pairs into a PrecisionPoint.
func deltaStats(structure string, tol float64, ref, got []float64) PrecisionPoint {
	pt := PrecisionPoint{Structure: structure, Queries: len(ref), Tol: tol}
	within := 0
	for i := range ref {
		d := relDelta(ref[i], got[i])
		pt.MeanDelta += d
		if d > pt.MaxDelta {
			pt.MaxDelta = d
		}
		if mat.WithinTol(got[i], ref[i], tol) {
			within++
		}
	}
	if len(ref) > 0 {
		pt.MeanDelta /= float64(len(ref))
		pt.WithinTol = float64(within) / float64(len(ref))
	}
	return pt
}

// precisionWorkload samples trained subsets, evenly strided so every result
// region of the collection is represented.
func precisionWorkload(st *dataset.SubsetStats, n int) []sets.Set {
	qs := make([]sets.Set, 0, n)
	stride := len(st.Keys)/n + 1
	for i := 0; i < len(st.Keys); i += stride {
		qs = append(qs, st.ByKey[st.Keys[i]].Set)
	}
	return qs
}

// RunPrecision trains the three structures once, then replays the same
// workload at f64 and f32 and reports the max/mean relative delta, the
// fraction of queries inside each structure's documented tolerance, and the
// discrete answers that changed. The filter row additionally proves the
// guard band keeps the no-false-negative guarantee: FalseNeg must be 0.
func RunPrecision(w io.Writer, sc dataset.Scale) error {
	c := dataset.GenerateRW(sc.RWN, sc.RWVocab, 31)
	st := dataset.CollectSubsets(c, sc.MaxSubset)
	model := core.ModelOptions{Compressed: true, Epochs: sc.Epochs, Seed: 17}
	qs := precisionWorkload(st, 256)

	rep := &Report{
		Title:  fmt.Sprintf("f32 serving precision (scale=%s, %d sets, %d queries): relative delta vs f64", sc.Name, c.Len(), len(qs)),
		Header: []string{"Structure", "MaxΔ", "MeanΔ", "Tol", "WithinTol", "Flips", "FalseNeg"},
		Notes: []string{
			"Deltas are |f32−f64| / max(1,|f32|,|f64|) — mat.WithinTol's scale.",
			"Flips counts discrete answers that changed (index positions, filter",
			"booleans); FalseNeg counts trained positives the f32 filter lost and",
			"must be 0 (the threshold guard band preserves the one-sided guarantee).",
		},
	}
	out := PrecisionReport{Scale: sc.Name, Sets: c.Len()}
	addRow := func(pt PrecisionPoint) {
		out.Points = append(out.Points, pt)
		rep.AddRow(pt.Structure, fmt.Sprintf("%.2e", pt.MaxDelta), fmt.Sprintf("%.2e", pt.MeanDelta),
			pt.Tol, fmt.Sprintf("%.3f", pt.WithinTol), pt.Flips, pt.FalseNeg)
	}

	// Cardinality estimator: scaled estimates through both precisions.
	est, err := core.BuildEstimator(c, core.EstimatorOptions{
		Model: model, MaxSubset: sc.MaxSubset, Percentile: 90,
	})
	if err != nil {
		return fmt.Errorf("bench: precision estimator: %w", err)
	}
	refE := est.EstimateBatch(nil, qs)
	est.SetPrecision(core.F32)
	gotE := est.EstimateBatch(nil, qs)
	est.SetPrecision(core.F64)
	addRow(deltaStats("estimator", precisionTolEstimator, refE, gotE))

	// Set index: the discrete scan answer, compared as positions so the
	// relative delta reflects how far the f32 scan landed from the f64 one.
	idx, err := core.BuildIndex(c, core.IndexOptions{
		Model: model, MaxSubset: sc.MaxSubset, Percentile: 90,
	})
	if err != nil {
		return fmt.Errorf("bench: precision index: %w", err)
	}
	refP := make([]float64, len(qs))
	for i, q := range qs {
		refP[i] = float64(idx.Lookup(q))
	}
	idx.SetPrecision(core.F32)
	gotP := make([]float64, len(qs))
	flips := 0
	for i, q := range qs {
		gotP[i] = float64(idx.Lookup(q))
		if gotP[i] != refP[i] { //lint:allow floateq -- integer positions, exact comparison intended
			flips++
		}
	}
	idx.SetPrecision(core.F64)
	ptIdx := deltaStats("index", precisionTolIndex, refP, gotP)
	ptIdx.Flips = flips
	addRow(ptIdx)

	// Membership filter: the raw classifier probability plus the boolean
	// answer; trained positives must all survive the switch.
	flt, err := core.BuildMembershipFilter(c, core.FilterOptions{
		Model: model, MaxSubset: sc.MaxSubset,
	})
	if err != nil {
		return fmt.Errorf("bench: precision filter: %w", err)
	}
	refProb := make([]float64, len(qs))
	refAns := make([]bool, len(qs))
	for i, q := range qs {
		refProb[i] = flt.ModelProbability(q)
		refAns[i] = flt.Contains(q)
	}
	flt.SetPrecision(core.F32)
	gotProb := make([]float64, len(qs))
	ptFlt := PrecisionPoint{}
	for i, q := range qs {
		gotProb[i] = flt.ModelProbability(q)
		ans := flt.Contains(q)
		if ans != refAns[i] {
			ptFlt.Flips++
		}
		if !ans {
			// Every workload query is a trained subset, so any false answer
			// under f32 is a lost positive.
			ptFlt.FalseNeg++
		}
	}
	flt.SetPrecision(core.F64)
	stats := deltaStats("filter", precisionTolFilter, refProb, gotProb)
	stats.Flips, stats.FalseNeg = ptFlt.Flips, ptFlt.FalseNeg
	addRow(stats)
	if stats.FalseNeg > 0 {
		return fmt.Errorf("bench: precision filter lost %d trained positives under f32", stats.FalseNeg)
	}

	if path := os.Getenv("BENCH_PRECISION_OUT"); path != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: write %s: %w", path, err)
		}
		rep.Notes = append(rep.Notes, "JSON written to "+path)
	}
	return rep.Render(w)
}
