package bench

import (
	"bytes"
	"strings"
	"testing"

	"setlearn/internal/dataset"
)

// Analytic experiments are cheap enough to run exactly.
func TestAnalyticExperiments(t *testing.T) {
	for _, name := range []string{"fig3", "fig8", "table2"} {
		var buf bytes.Buffer
		if err := Run(name, &buf, dataset.Tiny); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "==") || strings.Count(out, "\n") < 4 {
			t.Fatalf("%s: suspicious output:\n%s", name, out)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", &bytes.Buffer{}, dataset.Tiny); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names %d vs Registry %d", len(names), len(Registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

// The full training experiments run at tiny scale in one pass, sharing
// suites through the cache; this is the integration test for the entire
// harness (every table and figure end to end).
func TestAllExperimentsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiments skipped in -short mode")
	}
	ResetCaches()
	defer ResetCaches()
	var buf bytes.Buffer
	if err := RunAll(&buf, dataset.Tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Figure 3", "Figure 6", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Table 8", "Local vs global", "Table 9",
		"Table 10", "Table 11", "Figure 7", "Figure 8", "Table 12", "Build time",
		"Set Transformer", "pooling operation", "Updates",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{
		Title:  "t",
		Header: []string{"a", "bbbb"},
		Notes:  []string{"n1"},
	}
	r.AddRow("xx", 1.5)
	r.AddRow(3, "y")
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t ==", "a", "bbbb", "xx", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		12345:   "12345",
		12.3456: "12.35",
		0.1234:  "0.1234",
		0.00042: "0.000420",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v)=%q want %q", in, got, want)
		}
	}
}

func TestIndexPercentileMapping(t *testing.T) {
	if indexPercentile("RW") != 90 || indexPercentile("Tweets") != 60 || indexPercentile("SD") != 70 {
		t.Fatal("percentile mapping diverges from §8.3.2")
	}
}
