package bench

import (
	"fmt"
	"io"
	"time"

	"setlearn/internal/bloom"
	"setlearn/internal/compress"
	"setlearn/internal/dataset"
	"setlearn/internal/digits"
	"setlearn/internal/hybrid"
	"setlearn/internal/pgsim"
	"setlearn/internal/train"
)

// RunTable2 regenerates Table 2: statistics of the evaluation datasets.
func RunTable2(w io.Writer, sc dataset.Scale) error {
	rep := &Report{
		Title:  fmt.Sprintf("Table 2 (scale=%s): dataset specification", sc.Name),
		Header: []string{"Dataset", "n", "Uniq. elem.", "Max card.", "Min/Max set size"},
		Notes: []string{
			"RW and Tweets are seeded synthetic stand-ins for the paper's proprietary",
			"datasets, reproducing their skew and set-size ranges (DESIGN.md §1)",
		},
	}
	for _, nc := range sc.Datasets() {
		st := nc.Collection.Stats()
		rep.AddRow(nc.Name, st.N, st.UniqueElem, st.MaxCard,
			fmt.Sprintf("%d/%d", st.MinSetSize, st.MaxSetSize))
	}
	return rep.Render(w)
}

// RunFig3 regenerates Figure 3: the analytic size comparison between a
// shared embedding matrix and a Bloom filter as the number of items grows.
func RunFig3(w io.Writer, sc dataset.Scale) error {
	rep := &Report{
		Title:  "Figure 3: embedding matrix vs Bloom filter size (KB)",
		Header: []string{"Items", "Emb d=2", "Emb d=8", "Emb d=32", "BF fp=0.1", "BF fp=0.01", "BF fp=0.001"},
		Notes: []string{
			"embedding bytes = items × dim × 4 (float32);",
			"expected shape: the BF always wins as items grow — the motivation for compression (§5)",
		},
	}
	for _, items := range []int{1000, 10000, 100000, 1000000} {
		row := []any{items}
		for _, dim := range []int{2, 8, 32} {
			row = append(row, float64(items*dim*4)/1024)
		}
		for _, fp := range []float64{0.1, 0.01, 0.001} {
			row = append(row, float64(bloom.OptimalSizeBytes(uint64(items), fp))/1024)
		}
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunFig7 regenerates Figure 7: the digit-summation generalization
// experiment with DeepSets, compressed DeepSets, LSTM, and GRU.
func RunFig7(w io.Writer, sc dataset.Scale) error {
	cfg := digits.Config{Seed: 71}
	switch sc.Name {
	case "tiny":
		cfg.TrainSets, cfg.Epochs, cfg.TestSets = 400, 4, 50
		cfg.TestMs = []int{5, 10, 25, 50}
	case "small":
		cfg.TrainSets, cfg.Epochs, cfg.TestSets = 2000, 10, 200
		cfg.TestMs = []int{5, 10, 20, 50, 100}
	default:
		cfg.TrainSets, cfg.Epochs, cfg.TestSets = 10000, 20, 500
		cfg.TestMs = []int{5, 10, 20, 30, 50, 75, 100}
	}
	results, sizes, err := digits.Run(cfg)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Figure 7 (scale=%s): digit-sum MAE vs test multiset size", sc.Name),
		Header: []string{"M", "DeepSets", "CDeepSets", "LSTM", "GRU"},
		Notes: []string{
			fmt.Sprintf("embedding memory: DeepSets %.3f KB, CDeepSets %.3f KB",
				float64(sizes.DeepSetsBytes)/1024, float64(sizes.CDeepSetsBytes)/1024),
			"expected shape: DeepSets variants generalize past the trained size (≤10);",
			"LSTM/GRU degrade rapidly (§8.5.1)",
		},
	}
	for _, r := range results {
		rep.AddRow(r.M, r.MAE[digits.DeepSets], r.MAE[digits.CDeepSets],
			r.MAE[digits.LSTM], r.MAE[digits.GRU])
	}
	return rep.Render(w)
}

// RunFig8 regenerates Figure 8: input dimensionality as a function of the
// compression factor ns.
func RunFig8(w io.Writer, sc dataset.Scale) error {
	rep := &Report{
		Title:  "Figure 8: input dimensions vs compression factor ns",
		Header: []string{"Unique elements", "ns=1 (none)", "ns=2", "ns=3", "ns=4"},
		Notes:  []string{"expected shape: drastic reduction with ns; ns of 2–3 is the sweet spot (§8.5.2)"},
	}
	for _, vocab := range []uint32{10000, 100000, 1000000} {
		row := []any{int(vocab)}
		row = append(row, int(vocab)+1)
		for ns := 2; ns <= 4; ns++ {
			row = append(row, compress.TotalInputDim(vocab, compress.Divisor(vocab, ns), ns))
		}
		rep.AddRow(row...)
	}
	return rep.Render(w)
}

// RunTable12 regenerates Table 12: the system-integration experiment — COUNT
// queries through a sequential scan, an inverted (GIN-style) index, and the
// learned estimator plugged in as a UDF, over the RW dataset.
func RunTable12(w io.Writer, sc dataset.Scale) error {
	suites, err := cardSuites(sc)
	if err != nil {
		return err
	}
	s := suites[0] // RW
	tbl := pgsim.NewTable(s.Data.Collection)
	indexStart := time.Now()
	tbl.BuildInvertedIndex()
	indexBuild := time.Since(indexStart).Seconds()

	// Both UDF variants: the paper's Table 12 quotes the plain CLSM model
	// (its memory matches Table 3's CLSM column); the hybrid is the
	// configuration §8.6 recommends, shown alongside.
	clsm := s.Variants[2] // CLSM
	hyb := s.Variants[3]  // CLSM-Hybrid
	queries := dataset.QueryWorkload(s.Data.Collection, queryCount(sc), sc.MaxSubset, 73)

	scanMs := avgMillis(len(queries), func(i int) { tbl.CountScan(queries[i]) })
	idxMs := avgMillis(len(queries), func(i int) {
		if _, err := tbl.CountIndexed(queries[i]); err != nil {
			panic(err)
		}
	})
	estMs := avgMillis(len(queries), func(i int) { tbl.CountEstimated(clsm.Estimator, queries[i]) })
	hybMs := avgMillis(len(queries), func(i int) { tbl.CountEstimated(hyb.Estimator, queries[i]) })

	rep := &Report{
		Title:  fmt.Sprintf("Table 12 (scale=%s): estimator as a UDF in the pgsim row store (RW)", sc.Name),
		Header: []string{"", "Scan (no index)", "With index", "CLSM", "CLSM-Hybrid"},
		Notes: []string{
			"pgsim substitutes PostgreSQL+hstore (DESIGN.md §1): same three access paths,",
			"same asymptotics; expected shape: scan ≫ index ≥ estimate in latency,",
			"index ≫ model in memory",
		},
	}
	udfQErr := func(est *hybrid.Estimator) float64 {
		var qs []float64
		for _, q := range queries[:min(200, len(queries))] {
			e := est.Estimate(q)
			truth := float64(tbl.CountScan(q))
			if e < 1 {
				e = 1
			}
			if truth < 1 {
				truth = 1
			}
			if e > truth {
				qs = append(qs, e/truth)
			} else {
				qs = append(qs, truth/e)
			}
		}
		return train.Mean(qs)
	}
	rep.AddRow("Avg exec time (ms)", scanMs, idxMs, estMs, hybMs)
	rep.AddRow("Memory (MB)", "-", mb(tbl.IndexSizeBytes()), mb(clsm.Model.SizeBytes()), mb(hyb.Estimator.SizeBytes()))
	rep.AddRow("Build time (s)", "-", indexBuild, clsm.TrainSecs, hyb.TrainSecs)
	rep.AddRow("Mean q-error", 1, 1, udfQErr(clsm.Estimator), udfQErr(hyb.Estimator))
	return rep.Render(w)
}

// RunBuildTime regenerates the §8.1 construction-cost comparison: learned
// model training time against the creation time of the traditional
// structures.
func RunBuildTime(w io.Writer, sc dataset.Scale) error {
	cards, err := cardSuites(sc)
	if err != nil {
		return err
	}
	idxs, err := indexSuites(sc)
	if err != nil {
		return err
	}
	blooms, err := bloomSuites(sc)
	if err != nil {
		return err
	}
	rep := &Report{
		Title:  fmt.Sprintf("Build time (scale=%s, §8.1): training vs traditional construction (seconds)", sc.Name),
		Header: []string{"Dataset", "Card LSM", "Card CLSM", "Idx LSM", "Idx CLSM", "BF LSM", "BF CLSM", "HashMap", "B+Tree", "BF"},
		Notes: []string{
			"expected shape: learned structures cost orders of magnitude more to build;",
			"compression reduces training time (§8.3.3)",
		},
	}
	for i := range cards {
		rep.AddRow(cards[i].Data.Name,
			cards[i].Variants[0].TrainSecs, cards[i].Variants[2].TrainSecs,
			idxs[i].Variants[0].TrainSecs, idxs[i].Variants[1].TrainSecs,
			blooms[i].Variants[0].TrainSecs, blooms[i].Variants[1].TrainSecs,
			cards[i].HashSecs, idxs[i].BPSecs, blooms[i].BFSecs)
	}
	return rep.Render(w)
}
