package settransformer

import (
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/ad"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Config{MaxID: 99, EmbedDim: 8, Heads: 2, Blocks: 1, OutAct: nn.Sigmoid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxID: 10, EmbedDim: 7, Heads: 2}); err == nil {
		t.Fatal("heads must divide embed dim")
	}
	if err := (Config{EmbedDim: -1, Heads: 1, Blocks: 1}).Validate(); err == nil {
		t.Fatal("negative dims must be rejected")
	}
}

func TestPermutationInvariance(t *testing.T) {
	m := newTestModel(t)
	a := m.Predict(sets.Set{3, 50, 99})
	b := m.Predict(sets.Set{99, 3, 50})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("Set Transformer must be permutation invariant: %v vs %v", a, b)
	}
}

func TestVariableSetSizes(t *testing.T) {
	m := newTestModel(t)
	for n := 1; n <= 8; n++ {
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = uint32(i * 11)
		}
		out := m.Predict(sets.New(ids...))
		if math.IsNaN(out) || out < 0 || out > 1 {
			t.Fatalf("size %d: output %v out of range", n, out)
		}
	}
}

func TestLearnsSetRegression(t *testing.T) {
	// Max-element regression: the canonical attention-friendly set task
	// (softmax pooling natively selects extrema; set *size* would fight
	// the convex-combination pooling).
	m, err := New(Config{MaxID: 99, EmbedDim: 8, Heads: 2, Blocks: 1, OutAct: nn.Sigmoid, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := func(s sets.Set) float64 { return float64(s[len(s)-1]) / 100 }
	opt := nn.NewAdam(0.005)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 2500; step++ {
		n := 1 + rng.Intn(8)
		ids := make([]uint32, 0, n)
		for len(ids) < n {
			ids = append(ids, uint32(rng.Intn(100)))
		}
		s := sets.New(ids...)
		tp := ad.NewTape()
		out := m.Apply(tp, s)
		_, g := nn.MSELoss(out.Value[0], target(s))
		tp.Backward(out, []float64{g})
		opt.Step(m.Params())
	}
	var sumErr float64
	testRng := rand.New(rand.NewSource(4))
	const trials = 100
	for i := 0; i < trials; i++ {
		n := 1 + testRng.Intn(8)
		ids := make([]uint32, 0, n)
		for len(ids) < n {
			ids = append(ids, uint32(testRng.Intn(100)))
		}
		s := sets.New(ids...)
		sumErr += math.Abs(m.Predict(s) - target(s))
	}
	if mae := sumErr / trials; mae > 0.08 {
		t.Fatalf("Set Transformer failed to learn max element: MAE %v", mae)
	}
}

func TestGradientsFlowToAllParams(t *testing.T) {
	// Every parameter — including the PMA seed and attention projections —
	// must receive gradient from a single training step.
	m := newTestModel(t)
	tp := ad.NewTape()
	out := m.Apply(tp, sets.New(1, 2, 3))
	tp.Backward(out, []float64{1})
	zeroed := 0
	for _, p := range m.Params() {
		var any bool
		for _, g := range p.Grad.Data {
			if g != 0 {
				any = true
				break
			}
		}
		if !any {
			zeroed++
			t.Logf("param %s received no gradient", p.Name)
		}
	}
	// ReLU dead units can zero an occasional bias, but wholesale dead
	// parameters indicate a broken backward path.
	if zeroed > 2 {
		t.Fatalf("%d parameters received no gradient", zeroed)
	}
}

func TestSizeAccounting(t *testing.T) {
	m := newTestModel(t)
	if m.SizeBytes() != 4*nn.NumParams(m.Params()) {
		t.Fatal("SizeBytes must equal 4 bytes per scalar")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	m := newTestModel(t)
	for name, f := range map[string]func(){
		"empty":        func() { m.Predict(sets.New()) },
		"out-of-range": func() { m.Predict(sets.New(100)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
