// Package settransformer implements a compact Set Transformer [Lee et al.,
// ICML 2019] — the attention-based alternative to DeepSets that the paper
// evaluates as a design choice and rejects for its larger size and slower
// execution (§2, §3.2: "the DeepSets model is superiorly faster and
// smaller, which is crucial when replacing traditional data structures").
//
// The architecture here follows the original: an encoder of SAB
// (set-attention) blocks over the embedded elements, a PMA (pooling by
// multihead attention) decoder with one learned seed vector, and an output
// MLP. Layer normalization is omitted (optional in the original) to keep
// the parameter count honest for the size comparison.
package settransformer

import (
	"fmt"
	"math"
	"math/rand"

	"setlearn/internal/ad"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// Config describes a Set Transformer model.
type Config struct {
	MaxID    uint32
	EmbedDim int // element embedding and attention width (default 16)
	Heads    int // attention heads; must divide EmbedDim (default 2)
	Blocks   int // SAB encoder blocks (default 2)
	OutAct   nn.Activation
	Seed     int64
}

func (c *Config) applyDefaults() {
	if c.EmbedDim == 0 {
		c.EmbedDim = 16
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Blocks == 0 {
		c.Blocks = 2
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.EmbedDim <= 0 || c.Heads <= 0 || c.Blocks <= 0 {
		return fmt.Errorf("settransformer: non-positive dimension in %+v", c)
	}
	if c.EmbedDim%c.Heads != 0 {
		return fmt.Errorf("settransformer: heads %d must divide embed dim %d", c.Heads, c.EmbedDim)
	}
	return nil
}

// mha is one multihead attention: queries from one list of nodes, keys and
// values from another, with per-head projections and a final mixing layer.
type mha struct {
	wq, wk, wv []*nn.Dense // one per head, dim → dim/heads
	mix        *nn.Dense   // dim → dim
	heads      int
	headDim    int
}

func newMHA(name string, dim, heads int, rng *rand.Rand) *mha {
	m := &mha{heads: heads, headDim: dim / heads}
	for h := 0; h < heads; h++ {
		m.wq = append(m.wq, nn.NewDense(fmt.Sprintf("%s.q%d", name, h), dim, m.headDim, nn.Identity, rng))
		m.wk = append(m.wk, nn.NewDense(fmt.Sprintf("%s.k%d", name, h), dim, m.headDim, nn.Identity, rng))
		m.wv = append(m.wv, nn.NewDense(fmt.Sprintf("%s.v%d", name, h), dim, m.headDim, nn.Identity, rng))
	}
	m.mix = nn.NewDense(name+".mix", dim, dim, nn.Identity, rng)
	return m
}

func (m *mha) params() []*nn.Param {
	var ps []*nn.Param
	for h := 0; h < m.heads; h++ {
		ps = append(ps, m.wq[h].Params()...)
		ps = append(ps, m.wk[h].Params()...)
		ps = append(ps, m.wv[h].Params()...)
	}
	return append(ps, m.mix.Params()...)
}

// apply attends each query over all keys/values and returns one output node
// per query.
func (m *mha) apply(t *ad.Tape, queries, kv []*ad.Node) []*ad.Node {
	scale := 1 / math.Sqrt(float64(m.headDim))
	// Project keys and values once per head.
	ks := make([][]*ad.Node, m.heads)
	vs := make([][]*ad.Node, m.heads)
	for h := 0; h < m.heads; h++ {
		ks[h] = make([]*ad.Node, len(kv))
		vs[h] = make([]*ad.Node, len(kv))
		for i, x := range kv {
			ks[h][i] = m.wk[h].Apply(t, x)
			vs[h][i] = m.wv[h].Apply(t, x)
		}
	}
	out := make([]*ad.Node, len(queries))
	for qi, q := range queries {
		headOuts := make([]*ad.Node, m.heads)
		for h := 0; h < m.heads; h++ {
			qh := m.wq[h].Apply(t, q)
			scores := make([]*ad.Node, len(kv))
			for i := range kv {
				scores[i] = t.AffineConst(t.Dot(qh, ks[h][i]), scale, 0)
			}
			w := t.Softmax(t.Concat(scores...))
			weighted := make([]*ad.Node, len(kv))
			for i := range kv {
				weighted[i] = t.ScaleByScalar(vs[h][i], t.Slice(w, i, i+1))
			}
			headOuts[h] = t.SumPool(weighted)
		}
		out[qi] = m.mix.Apply(t, t.Concat(headOuts...))
	}
	return out
}

// sab is a set-attention block: self-attention with a residual connection
// and a position-wise feed-forward layer (also residual).
type sab struct {
	att *mha
	ff  *nn.Dense
}

func newSAB(name string, dim, heads int, rng *rand.Rand) *sab {
	return &sab{
		att: newMHA(name+".att", dim, heads, rng),
		ff:  nn.NewDense(name+".ff", dim, dim, nn.ReLU, rng),
	}
}

func (s *sab) params() []*nn.Param { return append(s.att.params(), s.ff.Params()...) }

func (s *sab) apply(t *ad.Tape, xs []*ad.Node) []*ad.Node {
	att := s.att.apply(t, xs, xs)
	out := make([]*ad.Node, len(xs))
	for i := range xs {
		h := t.Add(xs[i], att[i]) // residual
		out[i] = t.Add(h, s.ff.Apply(t, h))
	}
	return out
}

// Model is the full Set Transformer regressor/classifier.
type Model struct {
	cfg    Config
	embed  *nn.Embedding
	blocks []*sab
	seed   *nn.Param // PMA seed vector (1×dim)
	pma    *mha
	out    *nn.MLP
	params []*nn.Param
}

// New constructs a model with fresh weights.
func New(cfg Config) (*Model, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg}
	m.embed = nn.NewEmbedding("st.emb", int(cfg.MaxID)+1, cfg.EmbedDim, rng)
	for b := 0; b < cfg.Blocks; b++ {
		m.blocks = append(m.blocks, newSAB(fmt.Sprintf("st.sab%d", b), cfg.EmbedDim, cfg.Heads, rng))
	}
	m.seed = nn.NewParam("st.seed", 1, cfg.EmbedDim)
	m.seed.GlorotInit(rng, cfg.EmbedDim, cfg.EmbedDim)
	m.pma = newMHA("st.pma", cfg.EmbedDim, cfg.Heads, rng)
	m.out = nn.NewMLP("st.out", []int{cfg.EmbedDim, cfg.EmbedDim, 1}, nn.ReLU, cfg.OutAct, rng)

	m.params = append(m.params, m.embed.Params()...)
	for _, b := range m.blocks {
		m.params = append(m.params, b.params()...)
	}
	m.params = append(m.params, m.seed)
	m.params = append(m.params, m.pma.params()...)
	m.params = append(m.params, m.out.Params()...)
	return m, nil
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param { return m.params }

// SizeBytes returns the float32-serialized model size.
func (m *Model) SizeBytes() int { return nn.SizeBytes(m.params) }

// Apply records the model on the tape: embed → SAB blocks → PMA → MLP.
func (m *Model) Apply(t *ad.Tape, s sets.Set) *ad.Node {
	if len(s) == 0 {
		panic("settransformer: empty set")
	}
	xs := make([]*ad.Node, len(s))
	for i, id := range s {
		if id > m.cfg.MaxID {
			panic(fmt.Sprintf("settransformer: element id %d exceeds MaxID %d", id, m.cfg.MaxID))
		}
		xs[i] = m.embed.Apply(t, int(id))
	}
	for _, b := range m.blocks {
		xs = b.apply(t, xs)
	}
	seed := t.Param(m.seed.Vec(), m.seed.GradVec())
	pooled := m.pma.apply(t, []*ad.Node{seed}, xs)[0]
	return m.out.Apply(t, pooled)
}

// Predict evaluates the model for s without retaining gradients (a fresh
// tape per call; attention has no allocation-free fast path here, matching
// the paper's observation that the Set Transformer is the slower option).
func (m *Model) Predict(s sets.Set) float64 {
	t := ad.NewTape()
	return m.Apply(t, s).Value[0]
}
