package train

import (
	"fmt"
	"math"
	"sort"

	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
)

// GuidedConfig controls the iterative guided-learning procedure of §6: the
// model first trains for WarmupEpochs on the full data, then samples whose
// prediction error exceeds the Percentile threshold are evicted into the
// outlier set, and training continues on the remainder. Additional
// eviction rounds repeat the measure-evict-train cycle.
type GuidedConfig struct {
	Train        Config
	WarmupEpochs int     // epochs before the first eviction (default: half of Train.Epochs)
	Percentile   float64 // 0–100; e.g. 90 evicts the worst 10% (0 disables eviction)
	Rounds       int     // eviction rounds (default 1)
}

// GuidedResult reports the outcome of guided training.
type GuidedResult struct {
	Kept      []dataset.Sample // samples the model remains responsible for
	Outliers  []dataset.Sample // evicted samples, to live in the auxiliary structure
	FinalLoss float64
}

func (c *GuidedConfig) applyDefaults() {
	c.Train.applyDefaults()
	if c.WarmupEpochs == 0 {
		c.WarmupEpochs = c.Train.Epochs / 2
		if c.WarmupEpochs == 0 {
			c.WarmupEpochs = 1
		}
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
}

// Guided trains m on samples with eviction of hard-to-learn outliers. The
// returned outliers must be stored in the hybrid structure's auxiliary
// index; the model answers only for kept samples.
func Guided(m *deepsets.Model, samples []dataset.Sample, sc Scaler, cfg GuidedConfig) (*GuidedResult, error) {
	cfg.applyDefaults()
	if cfg.Percentile < 0 || cfg.Percentile > 100 {
		return nil, fmt.Errorf("train: percentile %v out of [0,100]", cfg.Percentile)
	}

	res := &GuidedResult{Kept: samples}
	if cfg.Percentile == 0 || cfg.Percentile == 100 {
		// No eviction: plain training ("No Removal" in Table 5).
		loss, err := Regression(m, samples, sc, cfg.Train)
		res.FinalLoss = loss
		return res, err
	}

	remaining := cfg.Train.Epochs
	warmCfg := cfg.Train
	warmCfg.Epochs = cfg.WarmupEpochs
	if warmCfg.Epochs > remaining {
		warmCfg.Epochs = remaining
	}
	if _, err := Regression(m, res.Kept, sc, warmCfg); err != nil {
		return nil, err
	}
	remaining -= warmCfg.Epochs

	for round := 0; round < cfg.Rounds; round++ {
		errs := AbsErrors(m, res.Kept, sc)
		threshold := Percentile(errs, cfg.Percentile)
		var kept, evicted []dataset.Sample
		for i, s := range res.Kept {
			if errs[i] > threshold {
				evicted = append(evicted, s)
			} else {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			// Degenerate distribution: everything is an outlier; the hybrid
			// falls back to the auxiliary structure (§6 "worst case").
			res.Outliers = append(res.Outliers, evicted...)
			res.Kept = nil
			return res, nil
		}
		res.Kept = kept
		res.Outliers = append(res.Outliers, evicted...)

		epochs := remaining
		if round+1 < cfg.Rounds {
			epochs = remaining / (cfg.Rounds - round)
		}
		if epochs > 0 {
			contCfg := cfg.Train
			contCfg.Epochs = epochs
			loss, err := Regression(m, res.Kept, sc, contCfg)
			if err != nil {
				return nil, err
			}
			res.FinalLoss = loss
			remaining -= epochs
		}
	}
	return res, nil
}

// AbsErrors returns |estimate − target| in raw (unscaled) space for every
// sample — the eviction criterion and the error-bound input of Algorithm 2.
func AbsErrors(m *deepsets.Model, samples []dataset.Sample, sc Scaler) []float64 {
	p := m.NewPredictor()
	out := make([]float64, len(samples))
	for i, s := range samples {
		est := sc.Unscale(p.Predict(s.Set))
		out[i] = math.Abs(est - s.Target)
	}
	return out
}

// QErrors returns the per-sample q-error metric in raw space.
func QErrors(m *deepsets.Model, samples []dataset.Sample, sc Scaler) []float64 {
	p := m.NewPredictor()
	out := make([]float64, len(samples))
	for i, s := range samples {
		est := sc.Unscale(p.Predict(s.Set))
		out[i] = qError(est, s.Target)
	}
	return out
}

func qError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// Percentile returns the p-th percentile (nearest-rank) of xs; xs is not
// modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// AutoGuidedConfig drives the automatic threshold setting of §6: instead of
// a fixed eviction percentile, eviction rounds continue until the model's
// mean q-error over the samples it keeps reaches TargetQError ("we set the
// error to always reach a q-error in the range [1, 1.4]"), or until
// MaxEvictFraction of the data has been evicted (the memory/accuracy
// balance knob).
type AutoGuidedConfig struct {
	Train            Config
	WarmupEpochs     int     // epochs before the first eviction (default: half)
	TargetQError     float64 // stop once mean kept q-error ≤ this (default 1.4)
	StepPercent      float64 // evicted per round, % of remaining (default 10)
	MaxEvictFraction float64 // hard cap on total eviction (default 0.5)
	RoundEpochs      int     // extra epochs after each eviction (default 3)
	MaxRounds        int     // safety bound (default 10)
}

func (c *AutoGuidedConfig) applyDefaults() {
	c.Train.applyDefaults()
	if c.WarmupEpochs == 0 {
		c.WarmupEpochs = c.Train.Epochs / 2
		if c.WarmupEpochs == 0 {
			c.WarmupEpochs = 1
		}
	}
	if c.TargetQError == 0 {
		c.TargetQError = 1.4
	}
	if c.StepPercent == 0 {
		c.StepPercent = 10
	}
	if c.MaxEvictFraction == 0 {
		c.MaxEvictFraction = 0.5
	}
	if c.RoundEpochs == 0 {
		c.RoundEpochs = 3
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 10
	}
}

// AutoGuided trains m, evicting outliers round by round until the kept
// q-error reaches the target or the eviction budget is spent. In the best
// case the result is a model with the prespecified error; in the worst
// case the structure approaches the paper's auxiliary-only fallback.
func AutoGuided(m *deepsets.Model, samples []dataset.Sample, sc Scaler, cfg AutoGuidedConfig) (*GuidedResult, error) {
	cfg.applyDefaults()
	if cfg.TargetQError < 1 {
		return nil, fmt.Errorf("train: target q-error %v below 1", cfg.TargetQError)
	}
	res := &GuidedResult{Kept: samples}

	warmCfg := cfg.Train
	warmCfg.Epochs = cfg.WarmupEpochs
	if _, err := Regression(m, res.Kept, sc, warmCfg); err != nil {
		return nil, err
	}

	maxEvict := int(cfg.MaxEvictFraction * float64(len(samples)))
	for round := 0; round < cfg.MaxRounds; round++ {
		qs := QErrors(m, res.Kept, sc)
		if Mean(qs) <= cfg.TargetQError {
			break
		}
		if len(res.Outliers) >= maxEvict {
			break
		}
		threshold := Percentile(qs, 100-cfg.StepPercent)
		var kept, evicted []dataset.Sample
		for i, s := range res.Kept {
			if qs[i] > threshold && len(res.Outliers)+len(evicted) < maxEvict {
				evicted = append(evicted, s)
			} else {
				kept = append(kept, s)
			}
		}
		if len(evicted) == 0 || len(kept) == 0 {
			break
		}
		res.Kept = kept
		res.Outliers = append(res.Outliers, evicted...)

		roundCfg := cfg.Train
		roundCfg.Epochs = cfg.RoundEpochs
		loss, err := Regression(m, res.Kept, sc, roundCfg)
		if err != nil {
			return nil, err
		}
		res.FinalLoss = loss
	}
	return res, nil
}
