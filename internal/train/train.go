package train

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"setlearn/internal/ad"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

// LossKind selects the regression loss.
type LossKind int

// Regression losses. MAE in scaled-log space equals log q-error up to the
// constant (max−min), so it is the default (Table 1's "Q-Error" loss); MSE
// is the smooth alternative mentioned in §4.1.
const (
	LossMAE LossKind = iota
	LossMSE
)

// Config controls a training run.
type Config struct {
	Epochs    int
	LR        float64
	Loss      LossKind
	BatchSize int     // samples per optimizer step (default 32)
	ClipNorm  float64 // global gradient-norm clip; 0 disables
	Workers   int     // parallel gradient replicas (default GOMAXPROCS, ≤ batch)
	Seed      int64   // shuffling seed
	// Patience stops training early when the mean epoch loss has not
	// improved (by at least 0.1%) for this many consecutive epochs;
	// 0 disables early stopping.
	Patience int
	// OnEpoch, when non-nil, receives the epoch number and its mean loss.
	OnEpoch func(epoch int, meanLoss float64)
}

func (c *Config) applyDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.LR == 0 {
		c.LR = 0.005
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > c.BatchSize {
		c.Workers = c.BatchSize
	}
}

// Regression trains m on samples with targets transformed by sc, minimizing
// the configured loss in scaled space. It returns the final epoch's mean
// loss.
func Regression(m *deepsets.Model, samples []dataset.Sample, sc Scaler, cfg Config) (float64, error) {
	cfg.applyDefaults()
	if len(samples) == 0 {
		return 0, fmt.Errorf("train: no samples")
	}
	scaled := make([]float64, len(samples))
	for i, s := range samples {
		scaled[i] = sc.Scale(s.Target)
	}
	lossFn := nn.MAELoss
	if cfg.Loss == LossMSE {
		lossFn = nn.MSELoss
	}
	step := func(rep *deepsets.Model, tp *ad.Tape, i int) float64 {
		tp.Reset()
		out := rep.Apply(tp, samples[i].Set)
		loss, g := lossFn(out.Value[0], scaled[i])
		tp.Backward(out, []float64{g})
		return loss
	}
	return run(m, len(samples), cfg, step)
}

// Classification trains m as a learned Bloom filter (§4.3) on positive and
// negative membership samples with binary cross-entropy, returning the final
// epoch's mean loss.
func Classification(m *deepsets.Model, md *dataset.MembershipData, cfg Config) (float64, error) {
	cfg.applyDefaults()
	n := len(md.Positive) + len(md.Negative)
	if n == 0 {
		return 0, fmt.Errorf("train: no samples")
	}
	step := func(rep *deepsets.Model, tp *ad.Tape, i int) float64 {
		tp.Reset()
		set, target := sets.Set(nil), 1.0
		if i < len(md.Positive) {
			set = md.Positive[i]
		} else {
			set, target = md.Negative[i-len(md.Positive)], 0
		}
		logit := rep.ApplyLogit(tp, set)
		loss, g := nn.BCEWithLogits(logit.Value[0], target)
		tp.Backward(logit, []float64{g})
		return loss
	}
	return run(m, n, cfg, step)
}

// run drives the epoch/batch loop. Each worker owns a full model replica
// (weights synced from the primary before every batch) and accumulates
// gradients locally; the primary sums replica gradients, applies one
// optimizer step, and the cycle repeats. This keeps the tape machinery
// single-threaded per replica while scaling across cores.
func run(m *deepsets.Model, n int, cfg Config, step func(rep *deepsets.Model, tp *ad.Tape, i int) float64) (float64, error) {
	opt := nn.NewAdam(cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(n)

	reps, err := replicas(m, cfg.Workers)
	if err != nil {
		return 0, err
	}
	tapes := make([]*ad.Tape, len(reps))
	for i := range tapes {
		tapes[i] = ad.NewTape()
	}
	params := m.Params()

	var lastMean float64
	best := math.Inf(1)
	stale := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffle(rng, order)
		var epochLoss float64
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			epochLoss += runBatch(m, reps, tapes, params, batch, step)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step(params)
		}
		lastMean = epochLoss / float64(n)
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastMean)
		}
		if cfg.Patience > 0 {
			if lastMean < best*0.999 {
				best = lastMean
				stale = 0
			} else {
				stale++
				if stale >= cfg.Patience {
					break
				}
			}
		}
	}
	return lastMean, nil
}

// runBatch distributes batch indices across replicas, gathers their
// gradients into the primary's parameters, and returns the summed loss.
func runBatch(m *deepsets.Model, reps []*deepsets.Model, tapes []*ad.Tape, params []*nn.Param, batch []int, step func(rep *deepsets.Model, tp *ad.Tape, i int) float64) float64 {
	if len(reps) == 1 {
		var total float64
		for _, i := range batch {
			total += step(m, tapes[0], i)
		}
		return total
	}

	// Sync replica weights with the primary.
	for _, rep := range reps[1:] {
		repParams := rep.Params()
		for pi, p := range params {
			copy(repParams[pi].Value.Data, p.Value.Data)
			repParams[pi].ZeroGrad()
		}
	}

	losses := make([]float64, len(reps))
	var wg sync.WaitGroup
	for w := range reps {
		shard := batch[w*len(batch)/len(reps) : (w+1)*len(batch)/len(reps)]
		if len(shard) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, shard []int) {
			defer wg.Done()
			var total float64
			for _, i := range shard {
				total += step(reps[w], tapes[w], i)
			}
			losses[w] = total
		}(w, shard)
	}
	wg.Wait()

	// Merge replica gradients into the primary (reps[0] IS the primary, its
	// grads are already in place).
	for _, rep := range reps[1:] {
		repParams := rep.Params()
		for pi, p := range params {
			dst := p.Grad.Data
			src := repParams[pi].Grad.Data
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	var total float64
	for _, l := range losses {
		total += l
	}
	return total
}

// replicas returns [m, clone1, …]: worker copies that share m's
// architecture but own their parameter storage.
func replicas(m *deepsets.Model, workers int) ([]*deepsets.Model, error) {
	reps := []*deepsets.Model{m}
	for len(reps) < workers {
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, fmt.Errorf("train: clone model: %w", err)
		}
		rep, err := deepsets.Load(&buf)
		if err != nil {
			return nil, fmt.Errorf("train: clone model: %w", err)
		}
		reps = append(reps, rep)
	}
	return reps, nil
}

func shuffle(rng *rand.Rand, order []int) {
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
}
