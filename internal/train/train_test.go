package train

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
)

func TestScalerRoundTrip(t *testing.T) {
	samples := []dataset.Sample{
		{Set: sets.New(1), Target: 0},
		{Set: sets.New(2), Target: 10},
		{Set: sets.New(3), Target: 99999},
	}
	sc := FitScaler(samples)
	for _, s := range samples {
		v := sc.Scale(s.Target)
		if v < 0 || v > 1 {
			t.Fatalf("scaled %v out of [0,1]", v)
		}
		back := sc.Unscale(v)
		if math.Abs(back-s.Target) > 1e-6*(1+s.Target) {
			t.Fatalf("roundtrip %v → %v → %v", s.Target, v, back)
		}
	}
}

func TestScalerClampsOutOfRange(t *testing.T) {
	sc := FitScaler([]dataset.Sample{{Target: 1}, {Target: 100}})
	if sc.Unscale(-0.5) != 1 {
		t.Fatalf("below-range unscale should clamp to min, got %v", sc.Unscale(-0.5))
	}
	if math.Abs(sc.Unscale(1.5)-100) > 1e-9 {
		t.Fatalf("above-range unscale should clamp to max, got %v", sc.Unscale(1.5))
	}
}

func TestScalerDegenerateTargets(t *testing.T) {
	sc := FitScaler([]dataset.Sample{{Target: 5}, {Target: 5}})
	v := sc.Scale(5)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("degenerate scaler produced %v", v)
	}
	if math.Abs(sc.Unscale(v)-5) > 1e-9 {
		t.Fatal("degenerate roundtrip broken")
	}
}

func TestScalerEmpty(t *testing.T) {
	sc := FitScaler(nil)
	if math.IsNaN(sc.Scale(3)) {
		t.Fatal("empty scaler must still be usable")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {60, 3}, {80, 4}, {100, 5}, {90, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("Percentile(%v)=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func smallCollection() (*sets.Collection, *dataset.SubsetStats) {
	c := dataset.GenerateSD(300, 40, 1)
	return c, dataset.CollectSubsets(c, 3)
}

func newModel(tb testing.TB, maxID uint32, compressed bool) *deepsets.Model {
	tb.Helper()
	m, err := deepsets.New(deepsets.Config{
		MaxID: maxID, EmbedDim: 4, PhiHidden: []int{16}, PhiOut: 16,
		RhoHidden: []int{32}, Compressed: compressed, OutputAct: nn.Sigmoid, Seed: 5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestRegressionLearnsCardinalities(t *testing.T) {
	c, st := smallCollection()
	samples := st.CardinalitySamples()
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	last, err := Regression(m, samples, sc, Config{Epochs: 30, LR: 0.01, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(last) {
		t.Fatal("NaN loss")
	}
	qe := Mean(QErrors(m, samples, sc))
	if qe > 3.5 {
		t.Fatalf("cardinality model failed to learn: mean q-error %v", qe)
	}
}

func TestRegressionParallelMatchesSequentialQuality(t *testing.T) {
	// Parallel replicas shard batches differently but must reach comparable
	// quality — this guards the gradient-merge path.
	c, st := smallCollection()
	samples := st.CardinalitySamples()
	sc := FitScaler(samples)

	m := newModel(t, c.MaxID(), false)
	if _, err := Regression(m, samples, sc, Config{Epochs: 15, LR: 0.01, Seed: 1, Workers: 4, BatchSize: 64}); err != nil {
		t.Fatal(err)
	}
	qe := Mean(QErrors(m, samples, sc))
	if qe > 4.5 {
		t.Fatalf("parallel training diverged: mean q-error %v", qe)
	}
}

func TestRegressionEmptySamplesErrors(t *testing.T) {
	m := newModel(t, 10, false)
	if _, err := Regression(m, nil, Scaler{Max: 1}, Config{}); err == nil {
		t.Fatal("expected error for empty samples")
	}
}

func TestClassificationLearnsMembership(t *testing.T) {
	// A sparse RW-like collection: random element combinations rarely
	// co-occur, so membership is learnable. (The tiny dense SD used by the
	// other tests is near-adversarial for memorization at this scale.)
	c := dataset.GenerateRW(300, 600, 5)
	st := dataset.CollectSubsets(c, 3)
	md := st.MembershipSamples(c, 3, 1.0, 2)
	if len(md.Negative) == 0 {
		t.Skip("no negatives for this seed")
	}
	m, err := deepsets.New(deepsets.Config{
		MaxID: c.MaxID(), EmbedDim: 8, PhiHidden: []int{32}, PhiOut: 32,
		RhoHidden: []int{32}, OutputAct: nn.Sigmoid, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Classification(m, md, Config{Epochs: 30, LR: 0.01, Seed: 2, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	p := m.NewPredictor()
	correct, total := 0, 0
	for i, s := range md.Positive {
		if i%7 != 0 {
			continue
		}
		total++
		if p.Predict(s) > 0.5 {
			correct++
		}
	}
	for i, s := range md.Negative {
		if i%7 != 0 {
			continue
		}
		total++
		if p.Predict(s) <= 0.5 {
			correct++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Fatalf("membership accuracy %v too low", acc)
	}
}

func TestClassificationEmptyErrors(t *testing.T) {
	m := newModel(t, 10, false)
	if _, err := Classification(m, &dataset.MembershipData{}, Config{}); err == nil {
		t.Fatal("expected error for empty membership data")
	}
}

func TestGuidedEvictsWorstSamples(t *testing.T) {
	c, st := smallCollection()
	samples := st.IndexSamples()
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	res, err := Guided(m, samples, sc, GuidedConfig{
		Train:      Config{Epochs: 20, LR: 0.01, Seed: 3, Workers: 1},
		Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) == 0 {
		t.Fatal("no outliers evicted at percentile 90")
	}
	if len(res.Kept)+len(res.Outliers) != len(samples) {
		t.Fatalf("samples lost: kept %d + outliers %d != %d",
			len(res.Kept), len(res.Outliers), len(samples))
	}
	// Roughly 10% should be evicted (single round, nearest-rank).
	frac := float64(len(res.Outliers)) / float64(len(samples))
	if frac > 0.2 {
		t.Fatalf("evicted fraction %v far above 10%%", frac)
	}

	// The paper's central claim for the hybrid (§8.2.1): eviction improves
	// the model's error on the data it remains responsible for.
	keptErr := Mean(QErrors(m, res.Kept, sc))
	allErr := Mean(QErrors(m, samples, sc))
	if keptErr > allErr {
		t.Fatalf("guided learning did not help: kept %v vs all %v", keptErr, allErr)
	}
}

func TestGuidedNoRemoval(t *testing.T) {
	c, st := smallCollection()
	samples := st.IndexSamples()
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	res, err := Guided(m, samples, sc, GuidedConfig{
		Train:      Config{Epochs: 4, LR: 0.01, Seed: 3, Workers: 1},
		Percentile: 0, // disabled
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outliers) != 0 || len(res.Kept) != len(samples) {
		t.Fatal("percentile 0 must disable eviction")
	}
}

func TestGuidedRejectsBadPercentile(t *testing.T) {
	m := newModel(t, 10, false)
	_, err := Guided(m, []dataset.Sample{{Set: sets.New(1), Target: 1}}, Scaler{Max: 1},
		GuidedConfig{Percentile: 150})
	if err == nil {
		t.Fatal("expected percentile range error")
	}
}

func TestGuidedMultipleRounds(t *testing.T) {
	c, st := smallCollection()
	samples := st.IndexSamples()
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	res, err := Guided(m, samples, sc, GuidedConfig{
		Train:      Config{Epochs: 12, LR: 0.01, Seed: 4, Workers: 1},
		Percentile: 80,
		Rounds:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept)+len(res.Outliers) != len(samples) {
		t.Fatal("sample conservation violated across rounds")
	}
	if len(res.Outliers) == 0 {
		t.Fatal("two rounds at percentile 80 must evict something")
	}
}

func TestAbsErrorsAndQErrors(t *testing.T) {
	c, st := smallCollection()
	samples := st.CardinalitySamples()[:50]
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	abs := AbsErrors(m, samples, sc)
	qes := QErrors(m, samples, sc)
	if len(abs) != 50 || len(qes) != 50 {
		t.Fatal("length mismatch")
	}
	for i := range abs {
		if abs[i] < 0 || math.IsNaN(abs[i]) {
			t.Fatalf("bad abs error %v", abs[i])
		}
		if qes[i] < 1 || math.IsNaN(qes[i]) {
			t.Fatalf("q-error below 1: %v", qes[i])
		}
	}
}

func TestEarlyStoppingHalts(t *testing.T) {
	c, st := smallCollection()
	samples := st.CardinalitySamples()[:100]
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	epochs := 0
	_, err := Regression(m, samples, sc, Config{
		Epochs: 200, LR: 0.05, Seed: 1, Workers: 1, Patience: 3,
		OnEpoch: func(int, float64) { epochs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs >= 200 {
		t.Fatalf("early stopping never fired (%d epochs)", epochs)
	}
	if epochs < 4 {
		t.Fatalf("stopped suspiciously early (%d epochs)", epochs)
	}
}

// Property: Scale is monotone and Unscale inverts it over the fitted range.
func TestScalerPropertyMonotoneInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		samples := make([]dataset.Sample, n)
		for i := range samples {
			samples[i].Target = float64(r.Intn(1 << 20))
		}
		sc := FitScaler(samples)
		prev := math.Inf(-1)
		sorted := append([]dataset.Sample(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Target < sorted[j].Target })
		for _, s := range sorted {
			v := sc.Scale(s.Target)
			if v < prev-1e-12 {
				return false // monotonicity violated
			}
			prev = v
			if back := sc.Unscale(v); math.Abs(back-s.Target) > 1e-6*(1+s.Target) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is bounded by min/max and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		lo, hi := Percentile(xs, 0), Percentile(xs, 100)
		prev := lo
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev || v < lo || v > hi {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoGuidedReachesTargetOrBudget(t *testing.T) {
	c, st := smallCollection()
	samples := st.IndexSamples()
	sc := FitScaler(samples)
	m := newModel(t, c.MaxID(), false)
	res, err := AutoGuided(m, samples, sc, AutoGuidedConfig{
		Train:        Config{Epochs: 16, LR: 0.01, Seed: 5, Workers: 1},
		TargetQError: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept)+len(res.Outliers) != len(samples) {
		t.Fatal("sample conservation violated")
	}
	keptQ := Mean(QErrors(m, res.Kept, sc))
	evictFrac := float64(len(res.Outliers)) / float64(len(samples))
	// Either the target was reached, or the budget was exhausted trying.
	if keptQ > 1.4 && evictFrac < 0.49 {
		t.Fatalf("neither target (%v) nor budget (%v) reached", keptQ, evictFrac)
	}
	if evictFrac > 0.51 {
		t.Fatalf("eviction cap exceeded: %v", evictFrac)
	}
}

func TestAutoGuidedRejectsBadTarget(t *testing.T) {
	m := newModel(t, 10, false)
	_, err := AutoGuided(m, []dataset.Sample{{Set: sets.New(1), Target: 1}}, Scaler{Max: 1},
		AutoGuidedConfig{TargetQError: 0.5})
	if err == nil {
		t.Fatal("expected target range error")
	}
}

func TestAutoGuidedStopsEarlyWhenEasy(t *testing.T) {
	// A trivially learnable distribution: constant target. The model should
	// hit the q-error target with little or no eviction.
	samples := make([]dataset.Sample, 200)
	for i := range samples {
		samples[i] = dataset.Sample{Set: sets.New(uint32(i % 10)), Target: 5}
	}
	sc := FitScaler(samples)
	m := newModel(t, 10, false)
	res, err := AutoGuided(m, samples, sc, AutoGuidedConfig{
		Train:        Config{Epochs: 10, LR: 0.02, Seed: 6, Workers: 1},
		TargetQError: 1.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(res.Outliers)) / 200; frac > 0.15 {
		t.Fatalf("easy distribution evicted %v of the data", frac)
	}
}
