// Package train provides target scaling, the training loop for learned set
// models, evaluation metrics, and the guided-learning procedure with
// outlier eviction that powers the paper's hybrid structures (§6).
package train

import (
	"math"

	"setlearn/internal/dataset"
)

// Scaler implements the paper's target transformation (§4.1–4.2): targets
// are log-transformed and min-max scaled into (0,1), matching the sigmoid
// output of the regression models. log1p is used so position 0 and
// cardinality 1 remain representable.
type Scaler struct {
	Min, Max float64 // over log1p(target)
}

// FitScaler computes the scaling bounds from training targets.
func FitScaler(samples []dataset.Sample) Scaler {
	if len(samples) == 0 {
		return Scaler{Min: 0, Max: 1}
	}
	sc := Scaler{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, s := range samples {
		v := math.Log1p(s.Target)
		if v < sc.Min {
			sc.Min = v
		}
		if v > sc.Max {
			sc.Max = v
		}
	}
	if sc.Max == sc.Min {
		sc.Max = sc.Min + 1 // degenerate: all targets equal
	}
	return sc
}

// Scale maps a raw target to (0,1).
func (sc Scaler) Scale(target float64) float64 {
	return (math.Log1p(target) - sc.Min) / (sc.Max - sc.Min)
}

// Unscale inverts Scale; model outputs are clamped into [0,1] first since a
// sigmoid can saturate slightly outside the fitted band.
func (sc Scaler) Unscale(v float64) float64 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return math.Expm1(sc.Min + v*(sc.Max-sc.Min))
}
