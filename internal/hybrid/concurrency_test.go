package hybrid

import (
	"sync"
	"sync/atomic"
	"testing"

	"setlearn/internal/sets"
)

// Concurrency battery for the hybrid structures: 64 goroutines of queries
// interleaved with writers driving InsertOutlier. Queries for stable keys
// must keep returning the single-threaded ground truth while the auxiliary
// structures grow — the guard the serving layer depends on. Run with -race.

const (
	stressGoroutines = 64
	stressOpsPerG    = 100
)

func TestIndexParallelLookupWithInserts(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Writers register updates (§7.2): fresh out-of-vocabulary sets appended
	// to the collection up front — the collection itself stays immutable
	// during the stress, as it does when serving — whose aux entries are
	// inserted concurrently with the query storm.
	freshID := f.c.MaxID() + 1
	type update struct {
		s   sets.Set
		pos int
	}
	var updates []update
	for w := 0; w < stressGoroutines*stressOpsPerG/20; w++ {
		s := sets.New(freshID + uint32(w))
		updates = append(updates, update{s: s, pos: f.c.Append(s)})
	}
	// Ground truth after the appends (they shift the estimate clamp) but
	// before any concurrent aux writes; writer sets are out-of-vocabulary,
	// so their aux entries cannot collide with these answers.
	queries := make([]sets.Set, 0, 128)
	truth := make([]int, 0, 128)
	for i, s := range f.samples {
		if i%9 != 0 {
			continue
		}
		queries = append(queries, s.Set)
		truth = append(truth, idx.Lookup(s.Set))
	}

	var next int64
	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			writer := g%4 == 0 // 16 writers, 48 readers
			for i := 0; i < stressOpsPerG; i++ {
				if writer && i%5 == 0 {
					if k := int(atomic.AddInt64(&next, 1)) - 1; k < len(updates) {
						u := updates[k]
						idx.InsertOutlier(u.s, u.pos)
						if got := idx.Lookup(u.s); got != u.pos {
							t.Errorf("aux Lookup(%v) = %d after insert, want %d", u.s, got, u.pos)
							return
						}
						continue
					}
				}
				k := (g*37 + i) % len(queries)
				if got := idx.Lookup(queries[k]); got != truth[k] {
					t.Errorf("Lookup(%v) = %d under writes, serial %d", queries[k], got, truth[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Accessors that walk the aux tree must also be safe post-stress.
	if idx.AuxLen() == 0 {
		t.Fatal("writers inserted nothing")
	}
	if _, aux, _ := idx.MemoryBreakdown(); aux == 0 {
		t.Fatal("aux memory unaccounted")
	}
}

func TestEstimatorParallelEstimateWithInserts(t *testing.T) {
	f := buildFixture(t, 90)
	est := BuildEstimator(f.model, f.scaler, f.guided)
	queries := make([]sets.Set, 0, 128)
	truth := make([]float64, 0, 128)
	for i, s := range f.samples {
		if i%9 != 0 {
			continue
		}
		queries = append(queries, s.Set)
		truth = append(truth, est.Estimate(s.Set))
	}
	freshID := f.c.MaxID() + 1

	var wg sync.WaitGroup
	for g := 0; g < stressGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			writer := g%4 == 0
			for i := 0; i < stressOpsPerG; i++ {
				if writer && i%5 == 0 {
					s := sets.New(freshID + uint32(g*stressOpsPerG+i))
					card := float64(g + i)
					est.InsertOutlier(s, card)
					if got := est.Estimate(s); got != card {
						t.Errorf("aux Estimate(%v) = %v after insert, want %v", s, got, card)
						return
					}
					continue
				}
				k := (g*37 + i) % len(queries)
				if got := est.Estimate(queries[k]); got != truth[k] {
					t.Errorf("Estimate(%v) = %v under writes, serial %v", queries[k], got, truth[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if est.AuxLen() == 0 {
		t.Fatal("writers inserted nothing")
	}
	if est.SizeBytes() == 0 {
		t.Fatal("SizeBytes must stay callable under load")
	}
}

func BenchmarkIndexLookupParallel(b *testing.B) {
	f := buildFixture(b, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	q := f.samples[0].Set
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			idx.Lookup(q)
		}
	})
}

func BenchmarkEstimatorEstimateParallel(b *testing.B) {
	f := buildFixture(b, 90)
	est := BuildEstimator(f.model, f.scaler, f.guided)
	q := f.samples[0].Set
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			est.Estimate(q)
		}
	})
}
