package hybrid

import (
	"sync"
	"testing"

	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/nn"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// buildFixture trains a small index model over an SD-like collection and
// returns everything needed to assemble hybrid structures.
type fixture struct {
	c       *sets.Collection
	st      *dataset.SubsetStats
	model   *deepsets.Model
	scaler  train.Scaler
	guided  *train.GuidedResult
	samples []dataset.Sample
}

func buildFixture(tb testing.TB, percentile float64) *fixture {
	tb.Helper()
	c := dataset.GenerateSD(400, 50, 21)
	st := dataset.CollectSubsets(c, 3)
	samples := st.IndexSamples()
	sc := train.FitScaler(samples)
	m, err := deepsets.New(deepsets.Config{
		MaxID: c.MaxID(), EmbedDim: 4, PhiHidden: []int{16}, PhiOut: 16,
		RhoHidden: []int{32}, OutputAct: nn.Sigmoid, Seed: 7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := train.Guided(m, samples, sc, train.GuidedConfig{
		Train:      train.Config{Epochs: 20, LR: 0.01, Seed: 9, Workers: 1},
		Percentile: percentile,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return &fixture{c: c, st: st, model: m, scaler: sc, guided: res, samples: samples}
}

func TestIndexFindsEveryTrainedSubset(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The error bounds are computed over kept samples and the aux holds the
	// outliers, so every trained subset must be found at its exact first
	// position — the correctness guarantee of §6.
	for i, s := range f.samples {
		if i%5 != 0 { // sample for speed
			continue
		}
		got := idx.Lookup(s.Set)
		if got != int(s.Target) {
			t.Fatalf("Lookup(%v)=%d want %d", s.Set, got, int(s.Target))
		}
	}
}

func TestIndexGlobalBoundAgrees(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range f.samples {
		if i%11 != 0 {
			continue
		}
		if a, b := idx.Lookup(s.Set), idx.LookupGlobalBound(s.Set); a != b {
			t.Fatalf("local %d vs global %d for %v", a, b, s.Set)
		}
	}
}

func TestLocalErrorTighterThanGlobal(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{RangeLen: 50})
	if err != nil {
		t.Fatal(err)
	}
	if idx.MaxError() > 0 && idx.MeanLocalError() >= float64(idx.MaxError()) {
		t.Fatalf("mean local error %v should be below global max %d",
			idx.MeanLocalError(), idx.MaxError())
	}
	// Window size must respect the local bound.
	for i, s := range f.samples {
		if i%37 != 0 {
			continue
		}
		if w := idx.WindowSize(s.Set); w > 2*idx.MaxError()+1 {
			t.Fatalf("window %d exceeds global bound", w)
		}
	}
}

func TestIndexAuxHoldsOutliers(t *testing.T) {
	f := buildFixture(t, 75)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.AuxLen() != len(f.guided.Outliers) {
		t.Fatalf("aux holds %d, outliers %d", idx.AuxLen(), len(f.guided.Outliers))
	}
	for i, s := range f.guided.Outliers {
		if i%7 != 0 {
			continue
		}
		if got := idx.Lookup(s.Set); got != int(s.Target) {
			t.Fatalf("outlier %v resolved to %d want %d", s.Set, got, int(s.Target))
		}
	}
}

func TestIndexUnseenQueryWithinCollection(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A query absent from the collection: Lookup must not invent a position.
	absent := sets.New(9999)
	if got := idx.Lookup(absent); got != -1 {
		t.Fatalf("absent query resolved to %d", got)
	}
}

func TestIndexUpdateViaInsertOutlier(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// §7.2: an update is absorbed by the aux structure without retraining.
	pos := f.c.Append(sets.New(9999, 10000))
	q := sets.New(9999, 10000)
	idx.InsertOutlier(q, pos)
	if got := idx.Lookup(q); got != pos {
		t.Fatalf("updated subset resolved to %d want %d", got, pos)
	}
}

func TestIndexMemoryBreakdown(t *testing.T) {
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{RangeLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	m, a, e := idx.MemoryBreakdown()
	if m != f.model.SizeBytes() {
		t.Fatalf("model bytes %d vs %d", m, f.model.SizeBytes())
	}
	if len(f.guided.Outliers) > 0 && a == 0 {
		t.Fatal("aux bytes zero despite outliers")
	}
	wantRanges := (f.c.Len() + 99) / 100
	if e != 8*wantRanges {
		t.Fatalf("error list bytes %d want %d", e, 8*wantRanges)
	}
	if idx.SizeBytes() != m+a+e {
		t.Fatal("SizeBytes must equal the sum of the breakdown")
	}
}

func TestBuildIndexRejectsEmptyCollection(t *testing.T) {
	f := buildFixture(t, 0)
	empty := sets.NewCollection(nil)
	if _, err := BuildIndex(empty, f.model, f.scaler, f.guided, IndexConfig{}); err == nil {
		t.Fatal("expected error for empty collection")
	}
}

func TestEstimatorExactOnOutliersModelElsewhere(t *testing.T) {
	c := dataset.GenerateSD(400, 50, 22)
	st := dataset.CollectSubsets(c, 3)
	samples := st.CardinalitySamples()
	sc := train.FitScaler(samples)
	m, err := deepsets.New(deepsets.Config{
		MaxID: c.MaxID(), EmbedDim: 4, PhiHidden: []int{16}, PhiOut: 16,
		RhoHidden: []int{32}, OutputAct: nn.Sigmoid, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Guided(m, samples, sc, train.GuidedConfig{
		Train:      train.Config{Epochs: 15, LR: 0.01, Seed: 10, Workers: 1},
		Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	est := BuildEstimator(m, sc, res)
	if est.AuxLen() != len(res.Outliers) {
		t.Fatal("aux size mismatch")
	}
	for i, s := range res.Outliers {
		if i%5 != 0 {
			continue
		}
		if got := est.Estimate(s.Set); got != s.Target {
			t.Fatalf("outlier estimate %v want exact %v", got, s.Target)
		}
	}
	// Hybrid must beat the raw model on the full sample set (§8.2.1).
	hybridQE := train.Mean(est.EstimateSamples(samples))
	rawQE := train.Mean(train.QErrors(m, samples, sc))
	if hybridQE > rawQE {
		t.Fatalf("hybrid q-error %v worse than raw %v", hybridQE, rawQE)
	}
	if hybridQE < 1 {
		t.Fatalf("impossible mean q-error %v", hybridQE)
	}
}

func TestEstimatorFloorsAtOne(t *testing.T) {
	f := buildFixture(t, 0)
	est := BuildEstimator(f.model, train.Scaler{Min: 0, Max: 1}, f.guided)
	if got := est.Estimate(sets.New(1, 2, 3)); got < 1 {
		t.Fatalf("estimate %v below 1", got)
	}
}

func TestEstimatorInsertOutlier(t *testing.T) {
	f := buildFixture(t, 0)
	est := BuildEstimator(f.model, f.scaler, f.guided)
	before := est.SizeBytes()
	est.InsertOutlier(sets.New(123, 456), 7)
	if got := est.Estimate(sets.New(123, 456)); got != 7 {
		t.Fatalf("inserted outlier returned %v", got)
	}
	if est.SizeBytes() <= before {
		t.Fatal("SizeBytes must grow with aux entries")
	}
}

func TestConcurrentQueriesRaceFree(t *testing.T) {
	// The hybrid structures must serve parallel query streams; run with
	// -race to catch predictor-state sharing.
	f := buildFixture(t, 90)
	idx, err := BuildIndex(f.c, f.model, f.scaler, f.guided, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	est := BuildEstimator(f.model, f.scaler, f.guided)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := f.samples[(w*211+i)%len(f.samples)]
				if got := idx.Lookup(s.Set); got != int(s.Target) {
					t.Errorf("concurrent Lookup(%v)=%d want %d", s.Set, got, int(s.Target))
					return
				}
				est.Estimate(s.Set)
			}
		}(w)
	}
	wg.Wait()
}
