package hybrid

import (
	"sync"
	"time"

	"setlearn/internal/sets"
)

// Delta is the exact write-side companion of a learned structure: an
// append-only list of sets inserted after the model was trained. It is the
// §7.2 auxiliary idea applied to whole sets instead of evicted subsets —
// the learned model keeps answering for the trained bulk while every query
// is composed with an exact linear pass over the (small) delta, so answers
// are correct the instant an insert returns and stay correct until a
// background retrain absorbs the entries into a fresh model.
//
// All operations are O(len(delta)); the delta is kept small by retraining.
// Reads take the read lock only, so concurrent queries never serialize on
// each other; Add is the only writer. Entries are never removed from a live
// Delta — a retrain builds a *new* Delta holding only the unabsorbed tail
// and swaps it in together with the new model, which is what lets a query
// that loaded the old (model, delta) pair keep a complete, consistent view.
type Delta struct {
	mu      sync.RWMutex
	entries []DeltaEntry
	first   time.Time // arrival of the oldest entry, for staleness scoring
	maxID   uint32
}

// DeltaEntry is one inserted set with its assigned global position.
// Structures without position semantics (estimator, filter) carry a
// synthetic monotone position so persistence and ordering stay uniform.
type DeltaEntry struct {
	Pos int
	Set sets.Set
}

// NewDelta returns an empty delta.
func NewDelta() *Delta { return &Delta{} }

// NewDeltaFrom returns a delta holding the given entries (used by retrain
// to carry the unabsorbed tail into the swapped-in state, and by loaders).
func NewDeltaFrom(entries []DeltaEntry) *Delta {
	d := &Delta{entries: entries}
	for _, en := range entries {
		if n := len(en.Set); n > 0 && en.Set[n-1] > d.maxID {
			d.maxID = en.Set[n-1]
		}
	}
	if len(entries) > 0 {
		d.first = time.Now()
	}
	return d
}

// Add appends one inserted set.
func (d *Delta) Add(s sets.Set, pos int) {
	d.mu.Lock()
	if len(d.entries) == 0 {
		d.first = time.Now()
	}
	d.entries = append(d.entries, DeltaEntry{Pos: pos, Set: s})
	if n := len(s); n > 0 && s[n-1] > d.maxID {
		d.maxID = s[n-1]
	}
	d.mu.Unlock()
}

// Len returns the number of pending entries.
func (d *Delta) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// Age returns how long the oldest pending entry has been waiting, or 0 for
// an empty delta.
func (d *Delta) Age() time.Duration {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if len(d.entries) == 0 {
		return 0
	}
	return time.Since(d.first)
}

// MaxID returns the largest element id across pending entries (0 if empty).
func (d *Delta) MaxID() uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.maxID
}

// Snapshot copies the current entries; the prefix up to the returned length
// is stable because entries are append-only.
func (d *Delta) Snapshot() []DeltaEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]DeltaEntry(nil), d.entries...)
}

// Tail copies the entries from index cut onward — the inserts that landed
// while a retrain was building over the first cut entries.
func (d *Delta) Tail(cut int) []DeltaEntry {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if cut >= len(d.entries) {
		return nil
	}
	return append([]DeltaEntry(nil), d.entries[cut:]...)
}

// FirstPos returns the smallest position among entries matching q — superset
// entries for subset search, exactly-equal entries when equal is set — or -1.
// Entries are exact, so this is the index task's aux fan-in contribution.
func (d *Delta) FirstPos(q sets.Set, equal bool) int {
	if len(q) == 0 {
		return -1
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	best := -1
	for _, en := range d.entries {
		var hit bool
		if equal {
			hit = en.Set.Equal(q)
		} else {
			hit = en.Set.ContainsAll(q)
		}
		if hit && (best < 0 || en.Pos < best) {
			best = en.Pos
		}
	}
	return best
}

// Count returns the number of entries containing q — the exact additive
// contribution of pending inserts to a cardinality estimate.
//
//lint:hotpath
func (d *Delta) Count(q sets.Set) float64 {
	if len(q) == 0 {
		return 0
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, en := range d.entries {
		if en.Set.ContainsAll(q) {
			n++
		}
	}
	return float64(n)
}

// Contains reports whether q is a subset of some pending entry — the
// membership task's exact OR contribution.
//
//lint:hotpath
func (d *Delta) Contains(q sets.Set) bool {
	if len(q) == 0 {
		return false // defer to the structure's empty-set convention
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, en := range d.entries {
		if en.Set.ContainsAll(q) {
			return true
		}
	}
	return false
}

// SizeBytes estimates the delta footprint (entry headers plus element ids).
func (d *Delta) SizeBytes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	total := 0
	for _, en := range d.entries {
		total += 8 + 24 + 4*len(en.Set)
	}
	return total
}
