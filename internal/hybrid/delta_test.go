package hybrid

import (
	"sync"
	"testing"

	"setlearn/internal/sets"
)

func TestDeltaEmpty(t *testing.T) {
	d := NewDelta()
	if d.Len() != 0 || d.Age() != 0 || d.MaxID() != 0 {
		t.Fatal("empty delta must report zero state")
	}
	if d.FirstPos(sets.New(1), false) != -1 {
		t.Fatal("empty delta FirstPos must miss")
	}
	if d.Count(sets.New(1)) != 0 || d.Contains(sets.New(1)) {
		t.Fatal("empty delta must not answer positively")
	}
	if d.Snapshot() != nil || d.Tail(0) != nil {
		t.Fatal("empty delta snapshots must be nil")
	}
}

func TestDeltaAnswers(t *testing.T) {
	d := NewDelta()
	d.Add(sets.New(1, 2, 3), 10)
	d.Add(sets.New(2, 3, 4), 7)
	d.Add(sets.New(1, 2, 3), 12)

	// FirstPos is the minimum matching position, not insertion order.
	if got := d.FirstPos(sets.New(2, 3), false); got != 7 {
		t.Fatalf("FirstPos({2,3}) = %d, want 7", got)
	}
	if got := d.FirstPos(sets.New(1, 2), false); got != 10 {
		t.Fatalf("FirstPos({1,2}) = %d, want 10", got)
	}
	if got := d.FirstPos(sets.New(5), false); got != -1 {
		t.Fatalf("FirstPos({5}) = %d, want -1", got)
	}
	// Equality matches only exactly-equal entries.
	if got := d.FirstPos(sets.New(1, 2, 3), true); got != 10 {
		t.Fatalf("FirstPos equal = %d, want 10", got)
	}
	if got := d.FirstPos(sets.New(2, 3), true); got != -1 {
		t.Fatalf("FirstPos equal on strict subset = %d, want -1", got)
	}
	// Empty queries defer to the structure's own convention.
	if d.FirstPos(sets.New(), false) != -1 || d.Count(sets.New()) != 0 || d.Contains(sets.New()) {
		t.Fatal("empty query must not be answered by the delta")
	}

	if got := d.Count(sets.New(2, 3)); got != 3 {
		t.Fatalf("Count({2,3}) = %g, want 3", got)
	}
	if got := d.Count(sets.New(4)); got != 1 {
		t.Fatalf("Count({4}) = %g, want 1", got)
	}
	if !d.Contains(sets.New(1, 3)) || d.Contains(sets.New(1, 4)) {
		t.Fatal("Contains must be exact subset containment per entry")
	}
	if d.MaxID() != 4 {
		t.Fatalf("MaxID = %d, want 4", d.MaxID())
	}
	if d.Age() <= 0 {
		t.Fatal("non-empty delta must report positive age")
	}
	if d.SizeBytes() <= 0 {
		t.Fatal("non-empty delta must report positive size")
	}
}

func TestDeltaSnapshotTail(t *testing.T) {
	d := NewDelta()
	d.Add(sets.New(1), 0)
	d.Add(sets.New(2), 1)
	snap := d.Snapshot()
	cut := len(snap)
	d.Add(sets.New(3), 2)

	// The snapshot is a copy: later Adds must not grow it.
	if len(snap) != 2 {
		t.Fatalf("snapshot grew to %d entries", len(snap))
	}
	tail := d.Tail(cut)
	if len(tail) != 1 || tail[0].Pos != 2 {
		t.Fatalf("Tail(%d) = %v, want the one post-snapshot entry", cut, tail)
	}
	if d.Tail(99) != nil {
		t.Fatal("Tail past the end must be nil")
	}

	// NewDeltaFrom carries the tail into a fresh delta.
	nd := NewDeltaFrom(tail)
	if nd.Len() != 1 || nd.FirstPos(sets.New(3), false) != 2 || nd.MaxID() != 3 {
		t.Fatal("NewDeltaFrom must preserve entries")
	}
	if NewDeltaFrom(nil).Len() != 0 {
		t.Fatal("NewDeltaFrom(nil) must be empty")
	}
}

// TestDeltaConcurrent hammers one delta from readers and writers under
// -race: reads only ever see fully-appended entries.
func TestDeltaConcurrent(t *testing.T) {
	d := NewDelta()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					d.Add(sets.New(uint32(g), uint32(100+i)), g*200+i)
				} else {
					q := sets.New(uint32(g - 1))
					if p := d.FirstPos(q, false); p >= 0 && !d.Contains(q) {
						t.Error("FirstPos hit but Contains missed")
						return
					}
					d.Count(q)
					d.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != 4*200 {
		t.Fatalf("Len = %d, want %d", d.Len(), 4*200)
	}
}
