// Package hybrid implements the paper's hybrid structure with error bounds
// (§6, Figure 5, Algorithm 2): a learned model answering for the easy bulk
// of the data, an auxiliary exact structure holding evicted outliers (and
// later updates, §7.2), and per-range local error bounds that confine the
// sequential search of the index task to a small window.
package hybrid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"setlearn/internal/bptree"
	"setlearn/internal/calib"
	"setlearn/internal/dataset"
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// Index is the hybrid learned set index. Queries are safe for concurrent
// use: the model, scaler, and error bounds are read-only after build, the
// predictor pool hands each goroutine its own scratch, and the auxiliary
// structure (the only state InsertOutlier mutates) is guarded by auxMu.
type Index struct {
	collection *sets.Collection
	model      *deepsets.Model
	scaler     train.Scaler
	pred       *deepsets.PredictorPool

	// pred32, when non-nil, routes predictions through a float32 snapshot
	// of the model (see SetF32). Atomic so precision can be switched while
	// queries are in flight; everything downstream of the prediction
	// (scaler, error windows, aux) stays float64.
	pred32 atomic.Pointer[deepsets.PredictorPool32]

	// posCal, when non-nil, is a monotone correction applied to the
	// unscaled model output before clamping (see SetPositionCalibration).
	posCal atomic.Pointer[calib.Curve]

	auxMu sync.RWMutex
	aux   *bptree.Tree // outlier subsets: permutation-invariant hash → first position

	rangeLen int
	errors   []int // per-range max |est − truth| over kept training samples
	maxErr   int   // global bound, for the local-vs-global comparison (§8.3.3)
}

// IndexConfig tunes index construction.
type IndexConfig struct {
	// RangeLen is the width (in positions) of each local error range; the
	// paper uses 100 (§8.3.2). Smaller ranges mean tighter bounds and more
	// memory.
	RangeLen int
	// AuxOrder is the B+ tree order for the outlier structure.
	AuxOrder int
}

func (c *IndexConfig) applyDefaults() {
	if c.RangeLen == 0 {
		c.RangeLen = 100
	}
	if c.AuxOrder == 0 {
		c.AuxOrder = bptree.DefaultOrder
	}
}

// BuildIndex assembles the hybrid index from a guided-training result: the
// model answers for kept samples within per-range error bounds; outliers go
// to the auxiliary B+ tree.
func BuildIndex(c *sets.Collection, m *deepsets.Model, sc train.Scaler, res *train.GuidedResult, cfg IndexConfig) (*Index, error) {
	cfg.applyDefaults()
	if c.Len() == 0 {
		return nil, fmt.Errorf("hybrid: empty collection")
	}
	idx := &Index{
		collection: c,
		model:      m,
		scaler:     sc,
		pred:       m.NewPredictorPool(),
		aux:        bptree.New(cfg.AuxOrder),
		rangeLen:   cfg.RangeLen,
		errors:     make([]int, (c.Len()+cfg.RangeLen-1)/cfg.RangeLen),
	}
	for _, s := range res.Outliers {
		idx.aux.Insert(s.Set.Hash(), uint32(s.Target))
	}
	for _, s := range res.Kept {
		est := idx.estimatePos(s.Set)
		diff := est - int(s.Target)
		if diff < 0 {
			diff = -diff
		}
		r := idx.rangeOf(est)
		if diff > idx.errors[r] {
			idx.errors[r] = diff
		}
		if diff > idx.maxErr {
			idx.maxErr = diff
		}
	}
	return idx, nil
}

func (idx *Index) rangeOf(pos int) int {
	if pos < 0 {
		pos = 0
	}
	r := pos / idx.rangeLen
	if r >= len(idx.errors) {
		r = len(idx.errors) - 1
	}
	return r
}

// inVocab reports whether every element of q is representable by the model.
// Out-of-vocabulary elements cannot occur in the indexed collection, so such
// queries are resolved without consulting the model.
func inVocab(m *deepsets.Model, q sets.Set) bool {
	return len(q) == 0 || q[len(q)-1] <= m.Config().MaxID
}

// SetF32 switches the index's serving precision. Enabling snapshots the
// model's current weights (and installed φ-table, if any) to float32;
// disabling restores the bit-identical float64 path. The error bounds were
// measured with float64 predictions, so the f32 path trades a bounded
// accuracy delta (see the bench precision experiment) for speed. Re-enable
// after EnableFastPath or further training to refresh the snapshot.
func (idx *Index) SetF32(on bool) {
	if !on {
		idx.pred32.Store(nil)
		return
	}
	idx.pred32.Store(idx.model.Snapshot32().NewPredictorPool32())
}

// F32 reports whether the index serves predictions in float32.
func (idx *Index) F32() bool { return idx.pred32.Load() != nil }

// predict routes one model evaluation through the active precision.
func (idx *Index) predict(q sets.Set) float64 {
	if p := idx.pred32.Load(); p != nil {
		return p.Predict(q)
	}
	return idx.pred.Predict(q)
}

// predictBatch routes a batched model evaluation through the active
// precision.
func (idx *Index) predictBatch(dst []float64, qs []sets.Set) []float64 {
	if p := idx.pred32.Load(); p != nil {
		return p.PredictBatch(dst, qs)
	}
	return idx.pred.PredictBatch(dst, qs)
}

// estimatePos runs the model and maps the output to an integer position.
func (idx *Index) estimatePos(q sets.Set) int {
	return idx.posFromOut(idx.predict(q))
}

// posFromOut maps a raw model output to an integer position: unscale, apply
// the position calibration when installed, clamp. Lookup and LookupBatch
// both route through it so calibrated answers stay bit-identical across the
// single and batched paths.
func (idx *Index) posFromOut(out float64) int {
	u := idx.scaler.Unscale(out)
	if cal := idx.posCal.Load(); cal != nil {
		u = cal.Apply(u)
	}
	return idx.clampPos(u)
}

// SetPositionCalibration installs (or, with nil, removes) a monotone
// correction on the model's unscaled position output. The per-range error
// bounds must have been measured with the same calibration in effect —
// install at load time only when the persisted bounds already reflect it,
// or use RecalibratePositions to install and remeasure together.
func (idx *Index) SetPositionCalibration(cal *calib.Curve) { idx.posCal.Store(cal) }

// PositionCalibration returns the installed position correction, or nil.
func (idx *Index) PositionCalibration() *calib.Curve { return idx.posCal.Load() }

// RawPosition returns the unscaled, uncalibrated, pre-clamp position the
// model predicts for q. ok is false when q is answered without consulting
// the model (auxiliary hit or out-of-vocabulary element) — exact paths that
// calibration must leave untouched. This is the fit domain for position
// calibration curves.
func (idx *Index) RawPosition(q sets.Set) (pos float64, ok bool) {
	if len(q) == 0 {
		return 0, false
	}
	if _, done := idx.auxAnswer(q, false); done {
		return 0, false
	}
	if !inVocab(idx.model, q) {
		return 0, false
	}
	return idx.scaler.Unscale(idx.predict(q)), true
}

// RecalibratePositions installs cal as the position calibration and
// remeasures the per-range error bounds over samples (ground-truth first
// positions for the trained subsets, as produced by IndexSamples), mirroring
// the BuildIndex measurement: samples answered by the auxiliary structure or
// out-of-vocabulary are skipped, exactly the ones the model path never
// serves. Bounds are read lock-free by queries, so this must run before the
// index serves traffic (fresh build or load), never on a live structure.
func (idx *Index) RecalibratePositions(cal *calib.Curve, samples []dataset.Sample) {
	idx.posCal.Store(cal)
	for i := range idx.errors {
		idx.errors[i] = 0
	}
	idx.maxErr = 0
	for _, s := range samples {
		if _, done := idx.auxAnswer(s.Set, false); done {
			continue
		}
		if !inVocab(idx.model, s.Set) {
			continue
		}
		est := idx.estimatePos(s.Set)
		diff := est - int(s.Target)
		if diff < 0 {
			diff = -diff
		}
		if r := idx.rangeOf(est); diff > idx.errors[r] {
			idx.errors[r] = diff
		}
		if diff > idx.maxErr {
			idx.maxErr = diff
		}
	}
}

// clampPos rounds an unscaled model output to a valid collection position.
func (idx *Index) clampPos(unscaled float64) int {
	est := int(unscaled + 0.5)
	if est < 0 {
		est = 0
	}
	if est >= idx.collection.Len() {
		est = idx.collection.Len() - 1
	}
	return est
}

// auxGet reads the auxiliary structure under the read lock. The returned
// slice is shared with the tree and must not be mutated by callers.
func (idx *Index) auxGet(key uint64) ([]uint32, bool) {
	idx.auxMu.RLock()
	vals, ok := idx.aux.Get(key)
	idx.auxMu.RUnlock()
	return vals, ok
}

// auxAnswer consults the auxiliary structure and verifies candidates
// against the collection: distinct sets could collide on the 64-bit hash,
// and the paper's aux stores exact first positions. done is false when the
// model path must decide.
func (idx *Index) auxAnswer(q sets.Set, equal bool) (pos int, done bool) {
	vals, ok := idx.auxGet(q.Hash())
	if !ok {
		return 0, false
	}
	for _, p := range vals {
		s := idx.collection.At(int(p))
		if equal {
			if s.Equal(q) {
				return int(p), true
			}
		} else if s.ContainsAll(q) {
			return int(p), true
		}
	}
	return 0, false
}

// scanFromEstimate resolves a model position estimate into the final answer:
// a bounded window scan for subset search, or the Algorithm 2 left-bounded
// equality scan.
func (idx *Index) scanFromEstimate(q sets.Set, est int, equal bool) int {
	e := idx.errors[idx.rangeOf(est)]
	if !equal {
		return idx.collection.FirstPositionInRange(q, est-e, est+e)
	}
	lo := est - e
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < idx.collection.Len(); i++ {
		if idx.collection.At(i).Equal(q) {
			return i
		}
	}
	return -1
}

// Lookup implements Algorithm 2: consult the auxiliary structure first,
// otherwise predict a position and scan the window bounded by the local
// error of the predicted range. It returns the first position i with
// q ⊆ S[i], or -1 if the query is not found within the bounds.
func (idx *Index) Lookup(q sets.Set) int {
	if pos, done := idx.auxAnswer(q, false); done {
		return pos
	}
	if !inVocab(idx.model, q) {
		return -1
	}
	return idx.scanFromEstimate(q, idx.estimatePos(q), false)
}

// LookupBatch resolves every query in qs, writing the first matching
// position (or -1) into dst, which is grown as needed and returned. equal
// selects the §4.1 equality search. All model predictions for the batch run
// through one pooled predictor via PredictBatch, so repeated element ids are
// memoized and ρ scratch is shared; answers are identical to per-query
// Lookup/LookupEqual.
func (idx *Index) LookupBatch(dst []int, qs []sets.Set, equal bool) []int {
	if cap(dst) < len(qs) {
		dst = make([]int, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	need := make([]sets.Set, 0, len(qs))
	needAt := make([]int, 0, len(qs))
	for i, q := range qs {
		if len(q) == 0 {
			dst[i] = -1
			continue
		}
		if pos, done := idx.auxAnswer(q, equal); done {
			dst[i] = pos
			continue
		}
		if !inVocab(idx.model, q) {
			dst[i] = -1
			continue
		}
		need = append(need, q)
		needAt = append(needAt, i)
	}
	if len(need) == 0 {
		return dst
	}
	outs := idx.predictBatch(nil, need)
	for j, q := range need {
		est := idx.posFromOut(outs[j])
		dst[needAt[j]] = idx.scanFromEstimate(q, est, equal)
	}
	return dst
}

// LookupEqual implements the §4.1 equality search: the first position i
// with S[i] exactly equal to q. The search starts from the left bound of
// the same error window as Lookup ("the equality search for the first
// position starts from the left position", Algorithm 2). The error bound
// covers q's first *subset* occurrence, which precedes or equals its first
// exact occurrence; when a proper superset shadows the exact match beyond
// the window, the scan continues rightward, trading the latency bound for
// correctness on that rare path.
func (idx *Index) LookupEqual(q sets.Set) int {
	if pos, done := idx.auxAnswer(q, true); done {
		return pos
	}
	if !inVocab(idx.model, q) {
		return -1
	}
	return idx.scanFromEstimate(q, idx.estimatePos(q), true)
}

// LookupGlobalBound is Lookup using the single global error bound instead of
// the per-range bounds — the baseline of the §8.3.3 comparison.
func (idx *Index) LookupGlobalBound(q sets.Set) int {
	if pos, done := idx.auxAnswer(q, false); done {
		return pos
	}
	if !inVocab(idx.model, q) {
		return -1
	}
	est := idx.estimatePos(q)
	return idx.collection.FirstPositionInRange(q, est-idx.maxErr, est+idx.maxErr)
}

// WindowSize returns the scan window the index would use for q — the cost
// proxy reported in the local-vs-global experiment.
func (idx *Index) WindowSize(q sets.Set) int {
	if !inVocab(idx.model, q) {
		return 0
	}
	est := idx.estimatePos(q)
	return 2*idx.errors[idx.rangeOf(est)] + 1
}

// Model returns the underlying learned model, e.g. to attach a φ
// acceleration structure after build or load.
func (idx *Index) Model() *deepsets.Model { return idx.model }

// MaxError returns the global maximum absolute position error.
func (idx *Index) MaxError() int { return idx.maxErr }

// MeanLocalError averages the per-range error bounds.
func (idx *Index) MeanLocalError() float64 {
	if len(idx.errors) == 0 {
		return 0
	}
	var s float64
	for _, e := range idx.errors {
		s += float64(e)
	}
	return s / float64(len(idx.errors))
}

// InsertOutlier registers an updated or new subset position in the
// auxiliary structure without retraining (§7.2): queries consult the aux
// first, so it immediately overrides the model.
func (idx *Index) InsertOutlier(q sets.Set, pos int) {
	idx.auxMu.Lock()
	idx.aux.Insert(q.Hash(), uint32(pos))
	idx.auxMu.Unlock()
}

// AuxLen returns the number of entries in the auxiliary structure.
func (idx *Index) AuxLen() int {
	idx.auxMu.RLock()
	defer idx.auxMu.RUnlock()
	return idx.aux.Len()
}

// MemoryBreakdown reports the component sizes in bytes: model, auxiliary
// structure, and error list — the three columns of Table 7.
func (idx *Index) MemoryBreakdown() (model, aux, errs int) {
	idx.auxMu.RLock()
	auxBytes := idx.aux.SizeBytes()
	idx.auxMu.RUnlock()
	return idx.model.SizeBytes(), auxBytes, 8 * len(idx.errors)
}

// SizeBytes returns the total structure footprint.
func (idx *Index) SizeBytes() int {
	m, a, e := idx.MemoryBreakdown()
	return m + a + e
}

// Estimator is the hybrid cardinality estimator: exact answers for evicted
// outliers from a hash map, model estimates for everything else. Estimate
// is safe for concurrent use; the auxiliary map (the only state
// InsertOutlier mutates) is guarded by auxMu.
type Estimator struct {
	model  *deepsets.Model
	scaler train.Scaler
	pred   *deepsets.PredictorPool

	// pred32 mirrors Index.pred32: the optional float32 serving path.
	pred32 atomic.Pointer[deepsets.PredictorPool32]

	// cal, when non-nil, is a monotone correction applied to the raw
	// unscaled model output (see SetCalibration).
	cal atomic.Pointer[calib.Curve]

	auxMu sync.RWMutex
	aux   map[string]float64 // outlier subset key → exact cardinality
}

// BuildEstimator assembles the hybrid estimator from a guided-training
// result.
func BuildEstimator(m *deepsets.Model, sc train.Scaler, res *train.GuidedResult) *Estimator {
	e := &Estimator{
		model:  m,
		scaler: sc,
		pred:   m.NewPredictorPool(),
		aux:    make(map[string]float64, len(res.Outliers)),
	}
	for _, s := range res.Outliers {
		e.aux[s.Set.Key()] = s.Target
	}
	return e
}

// Estimate returns the cardinality estimate for q: exact if q was evicted
// as an outlier, the model's prediction otherwise (§6: "querying for
// cardinality … requires only the prediction of the model").
func (e *Estimator) Estimate(q sets.Set) float64 {
	e.auxMu.RLock()
	card, ok := e.aux[q.Key()]
	e.auxMu.RUnlock()
	if ok {
		return card
	}
	if !inVocab(e.model, q) {
		return 0 // out-of-vocabulary elements cannot occur in the collection
	}
	return e.finish(e.scaler.Unscale(e.predict(q)), e.cal.Load())
}

// finish maps a raw unscaled model output to the served estimate. Without
// calibration the raw value is floored at 1 (a trained subset occurs at
// least once). With a curve installed the floor is skipped: raw values
// below 1 — even negative ones — carry real "barely or not present" signal
// the monotone correction maps onto the true low cardinalities, and Apply
// already floors its result at 0.
func (e *Estimator) finish(raw float64, cal *calib.Curve) float64 {
	if cal != nil {
		return cal.Apply(raw)
	}
	if raw < 1 {
		return 1
	}
	return raw
}

// SetCalibration installs (or, with nil, removes) a monotone correction on
// the raw unscaled model output. Exact paths — auxiliary hits and
// out-of-vocabulary queries — are never calibrated. Atomic, so the curve
// can be swapped while queries are in flight.
func (e *Estimator) SetCalibration(cal *calib.Curve) { e.cal.Store(cal) }

// Calibration returns the installed correction curve, or nil.
func (e *Estimator) Calibration() *calib.Curve { return e.cal.Load() }

// RawEstimate returns the unscaled model output for q with neither the
// floor nor calibration applied. ok is false when q is answered without
// consulting the model (auxiliary hit or out-of-vocabulary element). This
// is the fit domain for calibration curves.
func (e *Estimator) RawEstimate(q sets.Set) (est float64, ok bool) {
	if len(q) == 0 {
		return 0, false
	}
	e.auxMu.RLock()
	_, hit := e.aux[q.Key()]
	e.auxMu.RUnlock()
	if hit {
		return 0, false
	}
	if !inVocab(e.model, q) {
		return 0, false
	}
	return e.scaler.Unscale(e.predict(q)), true
}

// SetF32 switches the estimator's serving precision (see Index.SetF32).
func (e *Estimator) SetF32(on bool) {
	if !on {
		e.pred32.Store(nil)
		return
	}
	e.pred32.Store(e.model.Snapshot32().NewPredictorPool32())
}

// F32 reports whether the estimator serves predictions in float32.
func (e *Estimator) F32() bool { return e.pred32.Load() != nil }

// predict routes one model evaluation through the active precision.
func (e *Estimator) predict(q sets.Set) float64 {
	if p := e.pred32.Load(); p != nil {
		return p.Predict(q)
	}
	return e.pred.Predict(q)
}

// predictBatch routes a batched model evaluation through the active
// precision.
func (e *Estimator) predictBatch(dst []float64, qs []sets.Set) []float64 {
	if p := e.pred32.Load(); p != nil {
		return p.PredictBatch(dst, qs)
	}
	return e.pred.PredictBatch(dst, qs)
}

// EstimateBatch answers every query in qs, writing estimates into dst
// (grown as needed) and returning it. Queries not short-circuited by the
// auxiliary map run through one pooled predictor via PredictBatch; answers
// are identical to per-query Estimate.
func (e *Estimator) EstimateBatch(dst []float64, qs []sets.Set) []float64 {
	if cap(dst) < len(qs) {
		dst = make([]float64, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	need := make([]sets.Set, 0, len(qs))
	needAt := make([]int, 0, len(qs))
	for i, q := range qs {
		if len(q) == 0 {
			dst[i] = 0
			continue
		}
		e.auxMu.RLock()
		card, ok := e.aux[q.Key()]
		e.auxMu.RUnlock()
		if ok {
			dst[i] = card
			continue
		}
		if !inVocab(e.model, q) {
			dst[i] = 0
			continue
		}
		need = append(need, q)
		needAt = append(needAt, i)
	}
	if len(need) == 0 {
		return dst
	}
	outs := e.predictBatch(nil, need)
	cal := e.cal.Load()
	for j := range need {
		dst[needAt[j]] = e.finish(e.scaler.Unscale(outs[j]), cal)
	}
	return dst
}

// Model returns the underlying learned model, e.g. to attach a φ
// acceleration structure after build or load.
func (e *Estimator) Model() *deepsets.Model { return e.model }

// InsertOutlier records an exact cardinality for q in the auxiliary map.
func (e *Estimator) InsertOutlier(q sets.Set, card float64) {
	e.auxMu.Lock()
	e.aux[q.Key()] = card
	e.auxMu.Unlock()
}

// AuxLen returns the number of outliers held by the auxiliary map.
func (e *Estimator) AuxLen() int {
	e.auxMu.RLock()
	defer e.auxMu.RUnlock()
	return len(e.aux)
}

// SizeBytes returns the estimator footprint: model plus an estimate of the
// auxiliary map (per-entry key bytes, value, and Go map overhead).
func (e *Estimator) SizeBytes() int {
	e.auxMu.RLock()
	defer e.auxMu.RUnlock()
	total := e.model.SizeBytes()
	for k := range e.aux {
		total += len(k) + 8 + mapEntryOverhead
	}
	return total
}

// mapEntryOverhead approximates Go's per-entry map cost (bucket slot, key
// header, padding).
const mapEntryOverhead = 32

// EstimateSamples is a convenience that returns q-errors of the estimator
// against ground-truth samples.
func (e *Estimator) EstimateSamples(samples []dataset.Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		est := e.Estimate(s.Set)
		truth := s.Target
		if est < 1 {
			est = 1
		}
		if truth < 1 {
			truth = 1
		}
		if est > truth {
			out[i] = est / truth
		} else {
			out[i] = truth / est
		}
	}
	return out
}
