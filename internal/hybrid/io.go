package hybrid

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"setlearn/internal/blockio"
	"setlearn/internal/bptree"
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
	"setlearn/internal/train"
)

// Serialized form of the hybrid structures. The collection an Index serves
// is not persisted — it is the data being indexed; the caller supplies it
// again at load time (as a database would reopen its heap file).

type indexHeader struct {
	Scaler   train.Scaler
	RangeLen int
	Errors   []int
	MaxErr   int
	AuxKeys  []uint64
	AuxVals  []uint32
	AuxOrder int
	// Collection fingerprint: the index is only valid over the collection
	// it was built on, so Load verifies these.
	NumSets   int
	FirstHash uint64
	LastHash  uint64
}

// Save persists the index: model weights, scaler, error bounds, and the
// auxiliary structure's entries.
func (idx *Index) Save(w io.Writer) error {
	if err := blockio.Write(w, idx.model.Save); err != nil {
		return fmt.Errorf("hybrid: save index model: %w", err)
	}
	hdr := indexHeader{
		Scaler:    idx.scaler,
		RangeLen:  idx.rangeLen,
		Errors:    idx.errors,
		MaxErr:    idx.maxErr,
		AuxOrder:  bptree.DefaultOrder,
		NumSets:   idx.collection.Len(),
		FirstHash: idx.collection.At(0).Hash(),
		LastHash:  idx.collection.At(idx.collection.Len() - 1).Hash(),
	}
	idx.auxMu.RLock()
	idx.aux.Ascend(func(k uint64, v uint32) bool {
		hdr.AuxKeys = append(hdr.AuxKeys, k)
		hdr.AuxVals = append(hdr.AuxVals, v)
		return true
	})
	idx.auxMu.RUnlock()
	if err := blockio.Write(w, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	}); err != nil {
		return fmt.Errorf("hybrid: save index header: %w", err)
	}
	return nil
}

// LoadIndex restores an index saved by Save over the same collection.
func LoadIndex(r io.Reader, c *sets.Collection) (*Index, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("hybrid: load index requires the indexed collection")
	}
	block, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load index model: %w", err)
	}
	m, err := deepsets.Load(block)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load index model: %w", err)
	}
	var hdr indexHeader
	hBlock, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load index header: %w", err)
	}
	if err := gob.NewDecoder(hBlock).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("hybrid: load index header: %w", err)
	}
	if len(hdr.AuxKeys) != len(hdr.AuxVals) {
		return nil, fmt.Errorf("hybrid: corrupt aux entries (%d keys, %d values)",
			len(hdr.AuxKeys), len(hdr.AuxVals))
	}
	if hdr.RangeLen <= 0 || len(hdr.Errors) == 0 {
		return nil, fmt.Errorf("hybrid: corrupt index header")
	}
	if hdr.AuxOrder < 3 || hdr.AuxOrder > 1<<16 {
		return nil, fmt.Errorf("hybrid: corrupt aux order %d", hdr.AuxOrder)
	}
	if hdr.NumSets <= 0 {
		return nil, fmt.Errorf("hybrid: corrupt set count %d", hdr.NumSets)
	}
	for _, v := range hdr.AuxVals {
		// Positions index the collection at query time; bound them now so a
		// corrupt stream cannot plant an out-of-range panic in Lookup.
		if int(v) >= hdr.NumSets {
			return nil, fmt.Errorf("hybrid: aux position %d beyond collection of %d", v, hdr.NumSets)
		}
	}
	// Updates may have appended sets since Save, so the collection may be
	// longer than at save time — but its saved prefix must match.
	if c.Len() < hdr.NumSets ||
		c.At(0).Hash() != hdr.FirstHash ||
		c.At(hdr.NumSets-1).Hash() != hdr.LastHash {
		return nil, fmt.Errorf("hybrid: collection does not match the one the index was built on")
	}
	idx := &Index{
		collection: c,
		model:      m,
		scaler:     hdr.Scaler,
		pred:       m.NewPredictorPool(),
		aux:        bptree.New(hdr.AuxOrder),
		rangeLen:   hdr.RangeLen,
		errors:     hdr.Errors,
		maxErr:     hdr.MaxErr,
	}
	for i, k := range hdr.AuxKeys {
		idx.aux.Insert(k, hdr.AuxVals[i])
	}
	return idx, nil
}

type estimatorHeader struct {
	Scaler  train.Scaler
	AuxKeys []string
	AuxVals []float64
}

// Save persists the estimator: model weights, scaler, and the auxiliary
// outlier map.
func (e *Estimator) Save(w io.Writer) error {
	if err := blockio.Write(w, e.model.Save); err != nil {
		return fmt.Errorf("hybrid: save estimator model: %w", err)
	}
	hdr := estimatorHeader{Scaler: e.scaler}
	e.auxMu.RLock()
	for k := range e.aux {
		hdr.AuxKeys = append(hdr.AuxKeys, k)
	}
	// Sorted keys make the serialized form deterministic (map iteration
	// order is not), so save → load → save round-trips byte-identically.
	sort.Strings(hdr.AuxKeys)
	hdr.AuxVals = make([]float64, len(hdr.AuxKeys))
	for i, k := range hdr.AuxKeys {
		hdr.AuxVals[i] = e.aux[k]
	}
	e.auxMu.RUnlock()
	if err := blockio.Write(w, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	}); err != nil {
		return fmt.Errorf("hybrid: save estimator header: %w", err)
	}
	return nil
}

// LoadEstimator restores an estimator saved by Save.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	block, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load estimator model: %w", err)
	}
	m, err := deepsets.Load(block)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load estimator model: %w", err)
	}
	var hdr estimatorHeader
	hBlock, err := blockio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("hybrid: load estimator header: %w", err)
	}
	if err := gob.NewDecoder(hBlock).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("hybrid: load estimator header: %w", err)
	}
	if len(hdr.AuxKeys) != len(hdr.AuxVals) {
		return nil, fmt.Errorf("hybrid: corrupt aux entries")
	}
	e := &Estimator{
		model:  m,
		scaler: hdr.Scaler,
		pred:   m.NewPredictorPool(),
		aux:    make(map[string]float64, len(hdr.AuxKeys)),
	}
	for i, k := range hdr.AuxKeys {
		e.aux[k] = hdr.AuxVals[i]
	}
	return e, nil
}
