package shard

import (
	"sync"
	"testing"

	"setlearn/internal/core"
	"setlearn/internal/sets"
)

// TestShardedConcurrentQueryInsert mirrors internal/core's concurrency
// battery: 64 goroutines hammer a sharded index and estimator while writer
// goroutines route Insert/Update to the owning shards. With -race this
// proves the container lock discipline: queries hold the read lock across
// the fan-out, inserts take the write lock to grow the owning shard's
// sub-collection and local→global map.
//
// Trained-subset answers are exact and must stay exact throughout: Insert
// only adds aux entries for subsets with no existing hit, and Update here
// only touches out-of-vocabulary keys.
func TestShardedConcurrentQueryInsert(t *testing.T) {
	base, st := testCollection(t)
	// A private copy: Insert appends to the collection the container serves.
	c := sets.NewCollection(append([]sets.Set(nil), base.Sets...))
	idx, err := BuildShardedIndex(c, Options{Shards: 4, Partitioner: HashBySet}, core.IndexOptions{
		Model: testModel(), MaxSubset: testMaxSubset, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := BuildShardedEstimator(c, Options{Shards: 4, Partitioner: HashBySet}, core.EstimatorOptions{
		Model: testModel(), MaxSubset: testMaxSubset, Percentile: 90,
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := sampleKeys(st, 5)
	queries := make([]sets.Set, len(keys))
	firstPos := make([]int, len(keys))
	estTruth := make([]float64, len(keys))
	for i, key := range keys {
		queries[i] = st.ByKey[key].Set
		firstPos[i] = st.ByKey[key].FirstPos
		estTruth[i] = est.Estimate(queries[i])
	}

	maxID := c.MaxID()
	baseLen := c.Len()
	var insertMu sync.Mutex // serializes collection Append with position handout

	const goroutines, perG = 64, 60
	inserted := make(map[int]sets.Set) // pos → set, for the post-check
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g*37 + i) % len(queries)
				switch g % 8 {
				case 0: // writer: insert a fresh set with unseen elements
					s := sets.New(maxID+1+uint32(g*perG+i)*2, maxID+2+uint32(g*perG+i)*2)
					insertMu.Lock()
					pos := c.Append(s)
					inserted[pos] = s
					insertMu.Unlock()
					idx.Insert(s, pos)
				case 1: // writer: record exact cardinalities for unseen keys
					est.Update(sets.New(maxID+1+uint32(g*perG+i)*2), float64(i))
				case 2: // batched index reads
					got := idx.LookupBatch(nil, queries, false)
					for j := range queries {
						if got[j] != firstPos[j] {
							t.Errorf("LookupBatch(%v) = %d, want %d", queries[j], got[j], firstPos[j])
							return
						}
					}
					i += len(queries) - 1
				case 3: // batched estimator reads
					got := est.EstimateBatch(nil, queries)
					for j := range queries {
						if got[j] != estTruth[j] {
							t.Errorf("EstimateBatch(%v) = %g, want %g", queries[j], got[j], estTruth[j])
							return
						}
					}
					i += len(queries) - 1
				case 4, 5: // single index reads
					if got := idx.Lookup(queries[k]); got != firstPos[k] {
						t.Errorf("Lookup(%v) = %d, want %d", queries[k], got, firstPos[k])
						return
					}
				default: // single estimator reads
					if got := est.Estimate(queries[k]); got != estTruth[k] {
						t.Errorf("Estimate(%v) = %g, want %g", queries[k], got, estTruth[k])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every inserted set must now be findable at its position, via the aux
	// path of its owning shard.
	if len(inserted) == 0 {
		t.Fatal("no inserts ran")
	}
	for pos, s := range inserted {
		if pos < baseLen {
			t.Fatalf("insert landed at pre-existing position %d", pos)
		}
		if got := idx.Lookup(s); got != pos {
			t.Fatalf("inserted set %v: Lookup = %d, want %d", s, got, pos)
		}
	}
}

// TestShardedConcurrentFilter fires the same goroutine battery at the
// (immutable, lock-free) filter container.
func TestShardedConcurrentFilter(t *testing.T) {
	_, st := testCollection(t)
	sf := shardedFilter(t, 4, HashBySet)
	keys := sampleKeys(st, 5)
	queries := make([]sets.Set, len(keys))
	truth := make([]bool, len(keys))
	for i, key := range keys {
		queries[i] = st.ByKey[key].Set
		truth[i] = sf.Contains(queries[i])
	}
	const goroutines, perG = 64, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g*53 + i) % len(queries)
				if got := sf.Contains(queries[k]); got != truth[k] {
					t.Errorf("Contains(%v) = %v, serial %v", queries[k], got, truth[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestShardedPanicContainment injects a panic into one shard's dispatch
// path and requires (a) the container query panics — the failure is not
// silently swallowed; (b) in the batch fan-out, every other shard still
// runs to completion; and (c) once the injection is removed, all shards
// answer exactly as before — the panicking shard's pooled predictors were
// returned by their deferred Puts (the poolpair invariant), so nothing is
// poisoned.
func TestShardedPanicContainment(t *testing.T) {
	_, st := testCollection(t)
	keys := sampleKeys(st, 9)
	var qs []sets.Set
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}

	se := shardedEstimator(t, 4, HashBySet)
	defer func() { se.hook = nil }()
	truth := make([]float64, len(qs))
	for i, q := range qs {
		truth[i] = se.Estimate(q)
	}
	before := make([]uint64, 4)
	for s := range before {
		before[s] = se.queries[s].Load()
	}

	se.hook = func(s int) {
		if s == 1 {
			panic("injected shard panic")
		}
	}
	mustPanic(t, "single-query fan-out", func() { se.Estimate(qs[0]) })
	mustPanic(t, "batch fan-out", func() { se.EstimateBatch(nil, qs) })

	// The batch fan-out must have dispatched the whole batch to every
	// non-panicking shard even while shard 1 was down.
	for s := 0; s < 4; s++ {
		if s == 1 {
			continue
		}
		if got := se.queries[s].Load(); got < before[s]+uint64(len(qs)) {
			t.Fatalf("shard %d only reached %d queries (started at %d): fan-out did not complete",
				s, got, before[s])
		}
	}

	se.hook = nil
	for i, q := range qs {
		if got := se.Estimate(q); got != truth[i] {
			t.Fatalf("after panic: Estimate(%v) = %g, want %g — shard state poisoned", q, got, truth[i])
		}
	}
	batch := se.EstimateBatch(nil, qs)
	for i := range qs {
		if batch[i] != truth[i] {
			t.Fatalf("after panic: EstimateBatch[%d] = %g, want %g", i, batch[i], truth[i])
		}
	}

	// Same discipline on the index and filter containers.
	sx := shardedIndex(t, 4, HashBySet)
	defer func() { sx.hook = nil }()
	idxTruth := make([]int, len(qs))
	for i, q := range qs {
		idxTruth[i] = sx.Lookup(q)
	}
	sx.hook = func(s int) {
		if s == 2 {
			panic("injected shard panic")
		}
	}
	mustPanic(t, "index batch fan-out", func() { sx.LookupBatch(nil, qs, false) })
	sx.hook = nil
	for i, q := range qs {
		if got := sx.Lookup(q); got != idxTruth[i] {
			t.Fatalf("after panic: Lookup(%v) = %d, want %d", q, got, idxTruth[i])
		}
	}

	sf := shardedFilter(t, 4, HashBySet)
	defer func() { sf.hook = nil }()
	fltTruth := make([]bool, len(qs))
	for i, q := range qs {
		fltTruth[i] = sf.Contains(q)
	}
	sf.hook = func(s int) {
		if s == 3 {
			panic("injected shard panic")
		}
	}
	mustPanic(t, "filter batch fan-out", func() { sf.ContainsBatch(qs, 2) })
	sf.hook = nil
	for i, q := range qs {
		if got := sf.Contains(q); got != fltTruth[i] {
			t.Fatalf("after panic: Contains(%v) = %v, want %v", q, got, fltTruth[i])
		}
	}
}
