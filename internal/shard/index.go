package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"setlearn/internal/calib"
	"setlearn/internal/core"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
)

// indexShard is the immutable-per-swap serving state of one index shard:
// the trained model with its sub-collection and local→global map, plus the
// exact delta of sets inserted after that model was trained. A query loads
// the shard's state pointer once and answers from that consistent pair —
// either the old model with its complete delta or the retrained model with
// the unabsorbed tail — so a background retrain can hot-swap the pointer
// under live traffic without a query ever observing a half-swapped shard.
type indexShard struct {
	idx    *core.SetIndex   // nil for a shard with no trained sets yet
	sub    *sets.Collection // trained sets, in global position order
	global []int            // local → global position for trained sets
	delta  *hybrid.Delta    // sets inserted after idx was trained
	stat   BuildStat
	// cal is the shard's fitted position-correction curve (nil without
	// calibration); holdout is its held-out mean absolute position error
	// with cal applied. The curve is also installed inside idx (whose error
	// bounds are remeasured with it), so exactness for trained subsets is
	// preserved; cal rides here for persistence and the retrain refit.
	cal     *calib.Curve
	holdout float64
}

// mutation is the write-side state shared by the three sharded containers.
//
// Lock order: retrainMu → insertMu → (estimator only) auxMu. insertMu
// serializes position handout + delta append with the retrain swap, which
// is what guarantees an insert lands either in the old delta (and is then
// absorbed or carried as tail) or in the new state's delta — never lost,
// never doubled. retrainMu serializes whole retrains so a double trigger
// cannot build the same delta twice. Queries take neither: they only load
// state pointers.
type mutation struct {
	insertMu  sync.Mutex
	retrainMu sync.Mutex
	nextPos   atomic.Int64 // next global position handed to InsertSet
	baseLen   int          // collection length at original build/load
	baseSeed  int64        // per-shard model seed base (shard s uses baseSeed+s)
	absorbed  atomic.Uint64
	inserted  []hybrid.DeltaEntry // every insert since original build; insertMu
}

// logInsert records one insert in the container-wide log (for persistence
// and collection reattachment). Caller holds insertMu.
func (m *mutation) logInsert(s sets.Set, pos int) {
	m.inserted = append(m.inserted, hybrid.DeltaEntry{Pos: pos, Set: s})
}

// ownerShard picks the shard an inserted set routes to: its content hash
// under HashBySet (a pure function of the elements), or the last —
// highest-position — shard under RangeByPosition. Unlike the trained
// fan-out, empty shards are not skipped: their delta serves the set
// exactly until a retrain builds the shard's first model.
func ownerShard(k int, p Partitioner, s sets.Set) int {
	if p == HashBySet {
		return int(s.Hash() % uint64(k))
	}
	return k - 1
}

// Index is a K-way partitioned SetIndex. Queries fan out to the per-shard
// indexes and fan in by taking the minimum offset-corrected hit; both
// partitioners preserve in-shard order, so for queries within the trained
// subset cap the minimum is the global first position (the owning shard
// answers its local first occurrence exactly, and every other shard's hit
// is a real — hence later or equal — occurrence). Each shard's exact delta
// joins the fan-in the same way, so sets inserted after build are found at
// their positions immediately.
//
// Queries are lock-free: each per-shard dispatch loads the shard's
// atomic state pointer once. Writers serialize on the mutation locks.
type Index struct {
	states  []atomic.Pointer[indexShard]
	k       int
	part    Partitioner
	route   *router // insert routing + freq-band query pruning; never nil
	maxSub  int
	maxID   atomic.Uint32
	queries []atomic.Uint64
	mutation
	opts *core.IndexOptions // scaled per-shard build options; nil: not retrainable
	fast atomic.Pointer[core.FastPathOptions]
	prec atomic.Int32 // core.Precision, remembered and re-applied on retrain

	// calQueries is the held-out calibration workload (fixed at build so a
	// retrain refits deterministically; empty without calibration).
	calQueries []sets.Set

	// hook, when non-nil, runs at the start of every per-shard dispatch.
	// Test-only (panic injection); set before use, never concurrently.
	hook func(shard int)
}

var (
	_ core.IndexQuerier = (*Index)(nil)
	_ core.Inserter     = (*Index)(nil)
	_ core.ShardStatser = (*Index)(nil)
	_ Retrainable       = (*Index)(nil)
)

// BuildShardedIndex partitions c and builds one SetIndex per shard in
// parallel on a bounded worker pool, aggregating per-shard errors. Like
// core.BuildIndex, the collection is captured by reference and must not be
// mutated afterwards except through Insert/InsertSet.
func BuildShardedIndex(c *sets.Collection, o Options, opts core.IndexOptions) (*Index, error) {
	if err := validate(c); err != nil {
		return nil, err
	}
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	subs, globals, rt, err := buildPartition(c, o.Shards, o.Partitioner, opts.Model.Seed)
	if err != nil {
		return nil, err
	}
	rt.buildSupport(subs, opts.MaxSubset)
	opts.Model = ScaleModel(opts.Model, o.Shards, o.Scaling)

	x := &Index{
		states:  make([]atomic.Pointer[indexShard], o.Shards),
		k:       o.Shards,
		part:    o.Partitioner,
		route:   rt,
		maxSub:  opts.MaxSubset,
		queries: make([]atomic.Uint64, o.Shards),
		opts:    &opts,
	}
	x.maxID.Store(c.MaxID())
	x.baseLen = c.Len()
	x.baseSeed = opts.Model.Seed
	x.nextPos.Store(int64(c.Len()))
	if o.Calibrate {
		x.calQueries = calibrationQueries(c, opts.MaxSubset, opts.Model.Seed)
	}
	err = runBounded(o.Shards, o.Parallelism, func(s int) error {
		st, err := x.buildIdxShard(s, subs[s], globals[s], opts, o.Calibrate)
		if err != nil {
			return err
		}
		x.states[s].Store(st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// buildIdxShard builds one shard's swap unit: train the shard index and,
// when calibrate is set, fit and install its position-correction curve
// (which remeasures the index's error bounds, preserving trained-subset
// exactness). Safe to call concurrently for distinct shards.
func (x *Index) buildIdxShard(s int, sub *sets.Collection, global []int, so core.IndexOptions, calibrate bool) (*indexShard, error) {
	st := &indexShard{
		sub:    sub,
		global: global,
		delta:  hybrid.NewDelta(),
		stat:   BuildStat{Shard: s, Sets: sub.Len()},
	}
	if sub.Len() == 0 {
		return st, nil
	}
	so.Model.Seed = x.baseSeed + int64(s)
	t0 := time.Now()
	idx, err := core.BuildIndex(sub, so)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s, err)
	}
	st.idx = idx
	if calibrate {
		skip := func(q sets.Set) bool { return x.route.prunes(s, q) }
		st.cal, st.holdout = fitIndexCal(idx, sub, so.MaxSubset, x.calQueries, skip)
		st.stat.HoldoutErr = st.holdout
	}
	st.stat.BuildSecs = time.Since(t0).Seconds()
	st.stat.Bytes = idx.SizeBytes()
	st.stat.MaxError = idx.MaxError()
	return st, nil
}

// lookupShard answers q on one shard's loaded state and maps the hit to a
// global position (-1 when the shard has no hit), folding in the exact
// delta of sets inserted after the shard's model was trained.
func (x *Index) lookupShard(st *indexShard, s int, q sets.Set, equal bool) int {
	if x.hook != nil {
		x.hook(s)
	}
	x.queries[s].Add(1)
	best := st.delta.FirstPos(q, equal)
	if st.idx == nil || x.route.prunes(s, q) {
		// A pruned shard provably holds no trained superset of q, so its
		// trained answer is exactly -1; only the delta can contribute.
		return best
	}
	var local int
	if equal {
		local = st.idx.LookupEqual(q)
	} else {
		local = st.idx.Lookup(q)
	}
	if local >= 0 && local < len(st.global) {
		if p := st.global[local]; best < 0 || p < best {
			best = p
		}
	}
	return best
}

func (x *Index) lookup(q sets.Set, equal bool) int {
	if len(q) == 0 {
		return -1
	}
	if x.part == RangeByPosition {
		// Shards are position-ordered (inserts route to the last shard, at
		// appended positions): the first shard with a hit wins.
		for s := 0; s < x.k; s++ {
			if p := x.lookupShard(x.states[s].Load(), s, q, equal); p >= 0 {
				return p
			}
		}
		return -1
	}
	best := -1
	for s := 0; s < x.k; s++ {
		if p := x.lookupShard(x.states[s].Load(), s, q, equal); p >= 0 && (best < 0 || p < best) {
			best = p
		}
	}
	return best
}

// Lookup returns the first position i with q ⊆ S[i], or -1.
func (x *Index) Lookup(q sets.Set) int { return x.lookup(q, false) }

// LookupEqual returns the first position whose set is exactly q, or -1.
func (x *Index) LookupEqual(q sets.Set) int { return x.lookup(q, true) }

// LookupBatch answers every query in qs, writing first positions (or -1)
// into dst (grown as needed, returned). Shards run concurrently, each
// through its fused batch path; the fan-in min is taken per query. All
// shard states are loaded up front, so the whole batch answers from one
// consistent snapshot even while a retrain swaps underneath.
func (x *Index) LookupBatch(dst []int, qs []sets.Set, equal bool) []int {
	if cap(dst) < len(qs) {
		dst = make([]int, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	if len(qs) == 0 {
		return dst
	}
	sts := make([]*indexShard, x.k)
	for s := range sts {
		sts[s] = x.states[s].Load()
	}
	per := make([][]int, x.k)
	fanOut(x.k, func(s int) {
		if x.hook != nil {
			x.hook(s)
		}
		x.queries[s].Add(uint64(len(qs)))
		if sts[s].idx == nil {
			return
		}
		if !x.route.hasPruning() {
			per[s] = sts[s].idx.LookupBatch(nil, qs, equal)
			return
		}
		// Scatter pruned queries as exact misses (-1), matching the
		// single-query path: a pruned shard holds no trained superset.
		sel := make([]sets.Set, 0, len(qs))
		selAt := make([]int, 0, len(qs))
		for j, q := range qs {
			if !x.route.prunes(s, q) {
				sel = append(sel, q)
				selAt = append(selAt, j)
			}
		}
		out := make([]int, len(qs))
		for j := range out {
			out[j] = -1
		}
		if len(sel) > 0 {
			vals := sts[s].idx.LookupBatch(nil, sel, equal)
			for i, j := range selAt {
				out[j] = vals[i]
			}
		}
		per[s] = out
	})
	hasDelta := make([]bool, x.k)
	for s := range sts {
		hasDelta[s] = sts[s].delta.Len() > 0
	}
	for i := range qs {
		best := -1
		if len(qs[i]) > 0 {
			for s := 0; s < x.k; s++ {
				if per[s] != nil {
					local := per[s][i]
					if local >= 0 && local < len(sts[s].global) {
						if p := sts[s].global[local]; best < 0 || p < best {
							best = p
						}
					}
				}
				if hasDelta[s] {
					if p := sts[s].delta.FirstPos(qs[i], equal); p >= 0 && (best < 0 || p < best) {
						best = p
					}
				}
			}
		}
		dst[i] = best
	}
	return dst
}

// Insert registers a set appended to the caller's collection at global
// position pos, recording it in the owning shard's exact delta (hash of
// the set, or the last shard for the range partitioner). Lookups find it
// the instant this returns; a later retrain absorbs it into the shard's
// model. O(1) amortized — no retraining on the write path.
func (x *Index) Insert(s sets.Set, pos int) {
	s = s.Clone()
	x.insertMu.Lock()
	if int64(pos) >= x.nextPos.Load() {
		x.nextPos.Store(int64(pos) + 1)
	}
	x.logInsert(s, pos)
	sd := x.route.owner(s)
	x.route.noteInsert(sd, s)
	x.states[sd].Load().delta.Add(s, pos)
	x.insertMu.Unlock()
}

// InsertSet appends s to the logical collection, assigning the next global
// position itself (the container owns position handout, so callers need
// no external collection bookkeeping).
func (x *Index) InsertSet(s sets.Set) int {
	s = s.Clone()
	x.insertMu.Lock()
	pos := int(x.nextPos.Add(1)) - 1
	x.logInsert(s, pos)
	sd := x.route.owner(s)
	x.route.noteInsert(sd, s)
	x.states[sd].Load().delta.Add(s, pos)
	x.insertMu.Unlock()
	return pos
}

// DeltaStats reports the pending/absorbed insert counters across shards.
func (x *Index) DeltaStats() core.DeltaStats {
	ds := core.DeltaStats{PerShard: make([]int, x.k), Absorbed: x.absorbed.Load()}
	var oldest time.Duration
	for s := 0; s < x.k; s++ {
		d := x.states[s].Load().delta
		n := d.Len()
		ds.PerShard[s] = n
		ds.Pending += n
		if a := d.Age(); a > oldest {
			oldest = a
		}
	}
	ds.OldestSecs = oldest.Seconds()
	return ds
}

// StalestShard returns the shard most in need of a retrain — the largest
// pending delta, oldest first insert breaking ties — or -1 when no shard
// has at least minPending pending inserts (or the container was loaded
// from a stream without retrain state).
func (x *Index) StalestShard(minPending int) int {
	if x.opts == nil {
		return -1
	}
	return stalestShard(x.k, minPending, func(s int) *hybrid.Delta { return x.states[s].Load().delta })
}

// EnableFastPath (re)configures φ acceleration on every shard and reports
// the resulting mode ("table", "cache", "off", or "mixed"). The
// configuration is remembered and re-applied to retrained shard models.
func (x *Index) EnableFastPath(o core.FastPathOptions) string {
	x.fast.Store(&o)
	mode := ""
	for s := 0; s < x.k; s++ {
		if sh := x.states[s].Load().idx; sh != nil {
			mode = mergeMode(mode, sh.EnableFastPath(o))
		}
	}
	if mode == "" {
		mode = "off"
	}
	return mode
}

// SetPrecision switches the serving precision on every shard. The setting
// is remembered and re-applied to retrained shard structures, so a
// hot-swapped shard keeps serving at the configured precision.
func (x *Index) SetPrecision(p core.Precision) {
	x.prec.Store(int32(p))
	for s := 0; s < x.k; s++ {
		if sh := x.states[s].Load().idx; sh != nil {
			sh.SetPrecision(p)
		}
	}
}

// Precision reports the container's configured serving precision.
func (x *Index) Precision() core.Precision { return core.Precision(x.prec.Load()) }

// PhiStats aggregates the per-shard φ accel counters.
func (x *Index) PhiStats() (deepsets.AccelStats, bool) {
	ps := make([]phiStatser, 0, x.k)
	for s := 0; s < x.k; s++ {
		if sh := x.states[s].Load().idx; sh != nil {
			ps = append(ps, sh)
		}
	}
	return aggregatePhi(ps)
}

// MaxID returns the largest element id accepted by the trained models; it
// grows when a retrain absorbs inserted sets with fresh elements.
func (x *Index) MaxID() uint32 { return x.maxID.Load() }

// MaxSubset returns the trained subset-size cap shared by all shards.
func (x *Index) MaxSubset() int { return x.maxSub }

// NumShards returns K.
func (x *Index) NumShards() int { return x.k }

// Partitioner returns the partitioning scheme.
func (x *Index) Partitioner() Partitioner { return x.part }

// SizeBytes sums the per-shard structure and delta footprints.
func (x *Index) SizeBytes() int {
	total := 0
	for s := 0; s < x.k; s++ {
		st := x.states[s].Load()
		if st.idx != nil {
			total += st.idx.SizeBytes()
		}
		total += st.delta.SizeBytes()
	}
	return total
}

// BuildStats returns the per-shard build statistics; a retrained shard
// reports its latest build.
func (x *Index) BuildStats() []BuildStat {
	out := make([]BuildStat, x.k)
	for s := 0; s < x.k; s++ {
		out[s] = x.states[s].Load().stat
	}
	return out
}

// ShardStats reports the per-shard serving statistics published under
// setlearn.shard.* by the server.
func (x *Index) ShardStats() []core.ShardStat {
	out := make([]core.ShardStat, x.k)
	for s := 0; s < x.k; s++ {
		st := x.states[s].Load()
		pending := st.delta.Len()
		cs := core.ShardStat{
			Shard:      s,
			Sets:       len(st.global) + pending,
			Pending:    pending,
			Queries:    x.queries[s].Load(),
			PhiMode:    "off",
			Calibrated: st.cal != nil,
			HoldoutErr: st.holdout,
		}
		if st.idx != nil {
			cs.Bytes = st.idx.SizeBytes()
			if ps, ok := st.idx.PhiStats(); ok {
				cs.PhiMode = ps.Mode
			}
		}
		out[s] = cs
	}
	return out
}

// stalestShard is the shared staleness scan: largest pending delta wins,
// oldest first insert breaks ties.
func stalestShard(k, minPending int, delta func(int) *hybrid.Delta) int {
	if minPending < 1 {
		minPending = 1
	}
	best, bestN := -1, 0
	var bestAge time.Duration
	for s := 0; s < k; s++ {
		d := delta(s)
		n := d.Len()
		if n < minPending {
			continue
		}
		if a := d.Age(); n > bestN || (n == bestN && a > bestAge) {
			best, bestN, bestAge = s, n, a
		}
	}
	return best
}
