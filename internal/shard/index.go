package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"setlearn/internal/core"
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
)

// Index is a K-way partitioned SetIndex. Queries fan out to the per-shard
// indexes and fan in by taking the minimum offset-corrected hit; both
// partitioners preserve in-shard order, so for queries within the trained
// subset cap the minimum is the global first position (the owning shard
// answers its local first occurrence exactly, and every other shard's hit
// is a real — hence later or equal — occurrence).
//
// The container-level RWMutex covers the sub-collections and local→global
// maps, which Insert grows; per-shard hybrid structures carry their own
// aux locks underneath.
type Index struct {
	mu      sync.RWMutex
	shards  []*core.SetIndex // nil for shards that received no sets
	subs    []*sets.Collection
	globals [][]int
	k       int
	part    Partitioner
	maxSub  int
	maxID   uint32
	stats   []BuildStat
	queries []atomic.Uint64

	// hook, when non-nil, runs at the start of every per-shard dispatch.
	// Test-only (panic injection); set before use, never concurrently.
	hook func(shard int)
}

var (
	_ core.IndexQuerier = (*Index)(nil)
	_ core.ShardStatser = (*Index)(nil)
)

// BuildShardedIndex partitions c and builds one SetIndex per shard in
// parallel on a bounded worker pool, aggregating per-shard errors. Like
// core.BuildIndex, the collection is captured by reference and must not be
// mutated afterwards except through Insert.
func BuildShardedIndex(c *sets.Collection, o Options, opts core.IndexOptions) (*Index, error) {
	if err := validate(c); err != nil {
		return nil, err
	}
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	subs, globals := partition(c, o.Shards, o.Partitioner)
	opts.Model = ScaleModel(opts.Model, o.Shards, o.Scaling)

	x := &Index{
		shards:  make([]*core.SetIndex, o.Shards),
		subs:    subs,
		globals: globals,
		k:       o.Shards,
		part:    o.Partitioner,
		maxSub:  opts.MaxSubset,
		maxID:   c.MaxID(),
		stats:   make([]BuildStat, o.Shards),
		queries: make([]atomic.Uint64, o.Shards),
	}
	baseSeed := opts.Model.Seed
	err = runBounded(o.Shards, o.Parallelism, func(s int) error {
		x.stats[s] = BuildStat{Shard: s, Sets: subs[s].Len()}
		if subs[s].Len() == 0 {
			return nil
		}
		so := opts
		so.Model.Seed = baseSeed + int64(s)
		t0 := time.Now()
		idx, err := core.BuildIndex(subs[s], so)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		x.shards[s] = idx
		x.stats[s].BuildSecs = time.Since(t0).Seconds()
		x.stats[s].Bytes = idx.SizeBytes()
		x.stats[s].MaxError = idx.MaxError()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// lookupShard answers q on one shard and maps the hit to a global position
// (-1 when the shard has no hit). Caller holds at least the read lock.
func (x *Index) lookupShard(s int, q sets.Set, equal bool) int {
	if x.hook != nil {
		x.hook(s)
	}
	x.queries[s].Add(1)
	sh := x.shards[s]
	if sh == nil {
		return -1
	}
	var local int
	if equal {
		local = sh.LookupEqual(q)
	} else {
		local = sh.Lookup(q)
	}
	if local < 0 || local >= len(x.globals[s]) {
		return -1
	}
	return x.globals[s][local]
}

func (x *Index) lookup(q sets.Set, equal bool) int {
	if len(q) == 0 {
		return -1
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	if x.part == RangeByPosition {
		// Shards are position-ordered: the first shard with a hit wins.
		for s := 0; s < x.k; s++ {
			if p := x.lookupShard(s, q, equal); p >= 0 {
				return p
			}
		}
		return -1
	}
	best := -1
	for s := 0; s < x.k; s++ {
		if p := x.lookupShard(s, q, equal); p >= 0 && (best < 0 || p < best) {
			best = p
		}
	}
	return best
}

// Lookup returns the first position i with q ⊆ S[i], or -1.
func (x *Index) Lookup(q sets.Set) int { return x.lookup(q, false) }

// LookupEqual returns the first position whose set is exactly q, or -1.
func (x *Index) LookupEqual(q sets.Set) int { return x.lookup(q, true) }

// LookupBatch answers every query in qs, writing first positions (or -1)
// into dst (grown as needed, returned). Shards run concurrently, each
// through its fused batch path; the fan-in min is taken per query.
func (x *Index) LookupBatch(dst []int, qs []sets.Set, equal bool) []int {
	if cap(dst) < len(qs) {
		dst = make([]int, len(qs))
	} else {
		dst = dst[:len(qs)]
	}
	if len(qs) == 0 {
		return dst
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	per := make([][]int, x.k)
	fanOut(x.k, func(s int) {
		if x.hook != nil {
			x.hook(s)
		}
		x.queries[s].Add(uint64(len(qs)))
		if x.shards[s] == nil {
			return
		}
		per[s] = x.shards[s].LookupBatch(nil, qs, equal)
	})
	for i := range qs {
		best := -1
		if len(qs[i]) > 0 {
			for s := 0; s < x.k; s++ {
				if per[s] == nil {
					continue
				}
				local := per[s][i]
				if local < 0 || local >= len(x.globals[s]) {
					continue
				}
				if p := x.globals[s][local]; best < 0 || p < best {
					best = p
				}
			}
		}
		dst[i] = best
	}
	return dst
}

// Insert registers a set appended to the caller's collection at global
// position pos, routing it to its owning shard (hash of the set, or the
// last shard for the range partitioner) without retraining. If the owning
// shard is empty (nil), the next built shard takes it.
func (x *Index) Insert(s sets.Set, pos int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	sh := x.owner(s)
	local := x.subs[sh].Append(s)
	x.globals[sh] = append(x.globals[sh], pos)
	x.shards[sh].Insert(s, local)
}

// owner picks the shard for an inserted set; caller holds the write lock.
func (x *Index) owner(s sets.Set) int {
	sh := x.k - 1
	if x.part == HashBySet {
		sh = int(s.Hash() % uint64(x.k))
	}
	for off := 0; off < x.k; off++ {
		if cand := (sh + off) % x.k; x.shards[cand] != nil {
			return cand
		}
	}
	return sh // unreachable: a built container has ≥ 1 non-nil shard
}

// EnableFastPath (re)configures φ acceleration on every shard and reports
// the resulting mode ("table", "cache", "off", or "mixed").
func (x *Index) EnableFastPath(o core.FastPathOptions) string {
	mode := ""
	for _, sh := range x.shards {
		if sh != nil {
			mode = mergeMode(mode, sh.EnableFastPath(o))
		}
	}
	if mode == "" {
		mode = "off"
	}
	return mode
}

// PhiStats aggregates the per-shard φ accel counters.
func (x *Index) PhiStats() (deepsets.AccelStats, bool) {
	ps := make([]phiStatser, 0, x.k)
	for _, sh := range x.shards {
		if sh != nil {
			ps = append(ps, sh)
		}
	}
	return aggregatePhi(ps)
}

// MaxID returns the largest element id in the partitioned collection.
func (x *Index) MaxID() uint32 { return x.maxID }

// MaxSubset returns the trained subset-size cap shared by all shards.
func (x *Index) MaxSubset() int { return x.maxSub }

// NumShards returns K.
func (x *Index) NumShards() int { return x.k }

// Partitioner returns the partitioning scheme.
func (x *Index) Partitioner() Partitioner { return x.part }

// SizeBytes sums the per-shard structure footprints.
func (x *Index) SizeBytes() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.SizeBytes()
		}
	}
	return total
}

// BuildStats returns a copy of the per-shard build statistics.
func (x *Index) BuildStats() []BuildStat {
	out := make([]BuildStat, len(x.stats))
	copy(out, x.stats)
	return out
}

// ShardStats reports the per-shard serving statistics published under
// setlearn.shard.* by the server.
func (x *Index) ShardStats() []core.ShardStat {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make([]core.ShardStat, x.k)
	for s := 0; s < x.k; s++ {
		st := core.ShardStat{
			Shard:   s,
			Sets:    x.subs[s].Len(),
			Queries: x.queries[s].Load(),
			PhiMode: "off",
		}
		if sh := x.shards[s]; sh != nil {
			st.Bytes = sh.SizeBytes()
			if ps, ok := sh.PhiStats(); ok {
				st.PhiMode = ps.Mode
			}
		}
		out[s] = st
	}
	return out
}
