package shard

import (
	"bytes"
	"encoding/gob"
	"io"
	"math"
	"sync"
	"testing"

	"setlearn/internal/blockio"
	"setlearn/internal/core"
	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// Version-3 persistence pins: the error-aware sharding state — calibration
// blobs, partitioner assignment tables, presence bitmaps, support filters —
// must round-trip byte-identically and reject every corrupted field with an
// error, never a panic or a container that silently routes/prunes from
// garbage.

var (
	ioV3Once     sync.Once
	ioV3Col      *sets.Collection
	ioV3CardFreq []byte
	ioV3IdxClust []byte
	ioV3Err      error
)

// buildIOV3Corpus serializes one calibrated frequency-band estimator and one
// calibrated embedding-cluster index — the two containers that exercise
// every v3 header field (curves + held-out workload, frequency table,
// centroids + pilot parameters, presence bitmaps, support filters).
func buildIOV3Corpus(tb testing.TB) (c *sets.Collection, cardFreq, idxClust []byte) {
	tb.Helper()
	ioV3Once.Do(func() {
		ioV3Col = dataset.GenerateSD(60, 20, 71)
		est, err := BuildShardedEstimator(ioV3Col, Options{
			Shards: 3, Partitioner: FrequencyBand, Calibrate: true,
		}, core.EstimatorOptions{Model: ioModel(), MaxSubset: 2, Percentile: 50})
		if err != nil {
			ioV3Err = err
			return
		}
		var buf bytes.Buffer
		if ioV3Err = est.Save(&buf); ioV3Err != nil {
			return
		}
		ioV3CardFreq = append([]byte(nil), buf.Bytes()...)

		idx, err := BuildShardedIndex(ioV3Col, Options{
			Shards: 3, Partitioner: EmbedCluster, Calibrate: true,
		}, core.IndexOptions{Model: ioModel(), MaxSubset: 2})
		if err != nil {
			ioV3Err = err
			return
		}
		buf.Reset()
		if ioV3Err = idx.Save(&buf); ioV3Err != nil {
			return
		}
		ioV3IdxClust = append([]byte(nil), buf.Bytes()...)
	})
	if ioV3Err != nil {
		tb.Fatalf("building v3 io corpus: %v", ioV3Err)
	}
	return ioV3Col, ioV3CardFreq, ioV3IdxClust
}

// TestShardedV3GoldenRoundTrip: the calibrated freq/cluster containers
// save → load → save byte-identically, and the reloaded containers keep
// their calibration state, routing tables, and exact answers.
func TestShardedV3GoldenRoundTrip(t *testing.T) {
	c, cardFreq, idxClust := buildIOV3Corpus(t)
	st := dataset.CollectSubsets(c, 2)
	keys := sampleKeys(st, 4)

	t.Run("freq-estimator", func(t *testing.T) {
		e, err := LoadShardedEstimator(bytes.NewReader(cardFreq))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cardFreq, buf.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d → %d bytes", len(cardFreq), buf.Len())
		}
		if !e.Calibrated() {
			t.Fatal("reloaded estimator lost its calibration toggle")
		}
		if e.route.freq == nil {
			t.Fatal("reloaded estimator lost its frequency table")
		}
		if e.route.present == nil || e.route.support == nil {
			t.Fatal("reloaded estimator lost its presence/support prune state")
		}
		// Routing stays consistent: an insert lands in the same shard a
		// freshly built router would pick.
		probe := c.At(0)
		if got, want := e.route.owner(probe), e.route.freq.owner(probe); got != want {
			t.Fatalf("owner(%v) = %d, want %d", probe, got, want)
		}
	})

	t.Run("cluster-index", func(t *testing.T) {
		x, err := LoadShardedIndex(bytes.NewReader(idxClust), c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(idxClust, buf.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d → %d bytes", len(idxClust), buf.Len())
		}
		if x.route.clust == nil {
			t.Fatal("reloaded index lost its centroid table")
		}
		for _, key := range keys {
			info := st.ByKey[key]
			if got := x.Lookup(info.Set); got != info.FirstPos {
				t.Fatalf("reloaded Lookup(%v) = %d, want %d", info.Set, got, info.FirstPos)
			}
		}
	})
}

// rewriteHeader decodes a saved container's header, applies mut, re-encodes
// it, and splices the original shard payloads back on — the surgical tool
// for corrupting one header field at a time.
func rewriteHeader(tb testing.TB, stream []byte, mut func(*containerHeader)) []byte {
	tb.Helper()
	r := bytes.NewReader(stream)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		tb.Fatal(err)
	}
	block, err := blockio.Read(r)
	if err != nil {
		tb.Fatal(err)
	}
	var hdr containerHeader
	if err := gob.NewDecoder(block).Decode(&hdr); err != nil {
		tb.Fatal(err)
	}
	mut(&hdr)
	var out bytes.Buffer
	out.Write(magic)
	if err := blockio.Write(&out, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	}); err != nil {
		tb.Fatal(err)
	}
	rest := make([]byte, r.Len())
	if _, err := io.ReadFull(r, rest); err != nil {
		tb.Fatal(err)
	}
	out.Write(rest)
	return out.Bytes()
}

// TestShardedV3HeaderPins corrupts each v3 header field in turn; every
// variant must be rejected at load.
func TestShardedV3HeaderPins(t *testing.T) {
	c, cardFreq, idxClust := buildIOV3Corpus(t)

	estCases := []struct {
		name string
		mut  func(*containerHeader)
	}{
		{"calibration curve X/Y mismatch", func(h *containerHeader) {
			h.CalX[0] = []float64{1, 2, 3}
			h.CalY[0] = []float64{1, 2}
		}},
		{"calibration curve non-monotone", func(h *containerHeader) {
			h.CalX[0] = []float64{2, 1}
			h.CalY[0] = []float64{1, 2}
		}},
		{"calibration curve NaN knot", func(h *containerHeader) {
			h.CalX[0] = []float64{1, 2}
			h.CalY[0] = []float64{math.NaN(), 2}
		}},
		{"held-out error negative", func(h *containerHeader) {
			h.HoldoutErrs[0] = -1
		}},
		{"held-out error NaN", func(h *containerHeader) {
			h.HoldoutErrs[0] = math.NaN()
		}},
		{"calibration query non-canonical", func(h *containerHeader) {
			h.CalQueries[0] = []uint32{5, 5}
		}},
		{"calibration query empty", func(h *containerHeader) {
			h.CalQueries[0] = []uint32{}
		}},
		{"curve rows for wrong shard count", func(h *containerHeader) {
			h.CalX = h.CalX[:1]
		}},
		{"frequency ids not increasing", func(h *containerHeader) {
			if len(h.FreqIDs) < 2 {
				t.Fatal("corpus has no frequency table to corrupt")
			}
			h.FreqIDs[1] = h.FreqIDs[0]
		}},
		{"frequency count zero", func(h *containerHeader) {
			h.FreqCounts[0] = 0
		}},
		{"frequency bounds decreasing", func(h *containerHeader) {
			h.FreqBounds[0] = h.FreqBounds[len(h.FreqBounds)-1] + 1
		}},
		{"frequency bounds wrong length", func(h *containerHeader) {
			h.FreqBounds = h.FreqBounds[:1]
		}},
		{"presence rows for wrong shard count", func(h *containerHeader) {
			h.Present = h.Present[:1]
		}},
		{"support rows for wrong shard count", func(h *containerHeader) {
			h.Support = h.Support[:1]
		}},
		{"support saturation flags wrong length", func(h *containerHeader) {
			h.SupportSat = h.SupportSat[:1]
		}},
		{"support row not a power of two", func(h *containerHeader) {
			h.Support[0] = make([]uint64, 3)
		}},
		{"freq partitioner in a v2 stream", func(h *containerHeader) {
			h.Version = 2
		}},
	}
	for _, tc := range estCases {
		tc := tc
		t.Run("estimator/"+tc.name, func(t *testing.T) {
			bad := rewriteHeader(t, cardFreq, tc.mut)
			if _, err := LoadShardedEstimator(bytes.NewReader(bad)); err == nil {
				t.Fatal("corrupted header loaded without error")
			}
		})
	}

	idxCases := []struct {
		name string
		mut  func(*containerHeader)
	}{
		{"centroid table wrong length", func(h *containerHeader) {
			h.Centroids = h.Centroids[:1]
		}},
		{"centroid wrong dimension", func(h *containerHeader) {
			h.Centroids[0] = h.Centroids[0][:len(h.Centroids[0])-1]
		}},
		{"centroid not finite", func(h *containerHeader) {
			h.Centroids[0][0] = math.Inf(1)
		}},
		{"pilot dimension zero", func(h *containerHeader) {
			h.PilotDim = 0
		}},
		{"pilot dimension oversized", func(h *containerHeader) {
			h.PilotDim = maxPilotDim + 1
		}},
		{"cluster partitioner in a v2 stream", func(h *containerHeader) {
			h.Version = 2
		}},
	}
	for _, tc := range idxCases {
		tc := tc
		t.Run("index/"+tc.name, func(t *testing.T) {
			bad := rewriteHeader(t, idxClust, tc.mut)
			if _, err := LoadShardedIndex(bytes.NewReader(bad), c); err == nil {
				t.Fatal("corrupted header loaded without error")
			}
		})
	}
}
