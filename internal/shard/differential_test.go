package shard

import (
	"math"
	"testing"

	"setlearn/internal/sets"
)

// The differential suite checks sharded fan-in answers against the
// monolithic build and the linear-scan ground truth for every K in testKs
// and both partitioners.
//
// What must hold, structurally (independent of model quality):
//
//   - index: for queries within the trained subset cap, every shard answers
//     its local first occurrence exactly (the hybrid guarantee), so the
//     fan-in min equals the global first position — the monolith's answer.
//     For arbitrary queries any non-(-1) answer must be a real occurrence
//     (per-shard window scans only return real matches).
//   - estimator: per-shard truths sum to the global cardinality, so the
//     fan-in sum is within Σ per-shard measured bounds of the truth.
//   - filter: the shard owning a positive query answers true, so the OR has
//     no false negatives within the size cap.

func TestDifferentialIndex(t *testing.T) {
	c, st := testCollection(t)
	mono := monoIndex(t)
	keys := sampleKeys(st, 5)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sx := shardedIndex(t, k, p)
		if sx.NumShards() != k || sx.Partitioner() != p {
			t.Fatalf("container reports K=%d %s", sx.NumShards(), sx.Partitioner())
		}
		for _, key := range keys {
			info := st.ByKey[key]
			got := sx.Lookup(info.Set)
			if got != info.FirstPos {
				t.Fatalf("Lookup(%v) = %d, want first position %d", info.Set, got, info.FirstPos)
			}
			if mg := mono.Lookup(info.Set); got != mg {
				t.Fatalf("Lookup(%v) = %d, monolith %d", info.Set, got, mg)
			}
		}
		// Arbitrary (untrained-size) queries: any hit must be a real
		// occurrence — the shard's scan window contained it.
		for i := 0; i < c.Len(); i += 11 {
			s := c.At(i)
			if len(s) < 3 {
				continue
			}
			q := sets.New(s[0], s[len(s)/2], s[len(s)-1])
			if got := sx.Lookup(q); got >= 0 && !c.At(got).ContainsAll(q) {
				t.Fatalf("Lookup(%v) = %d but the set there does not contain it", q, got)
			}
		}
		// Equality search: exact for every full set (WithFull training).
		for i := 0; i < c.Len(); i += 13 {
			s := c.At(i)
			want := -1
			for j := 0; j < c.Len(); j++ {
				if c.At(j).Equal(s) {
					want = j
					break
				}
			}
			if got := sx.LookupEqual(s); got != want {
				t.Fatalf("LookupEqual(%v) = %d, want %d", s, got, want)
			}
		}
		// Degenerate queries mirror the monolith.
		if got := sx.Lookup(sets.New()); got != -1 {
			t.Fatalf("empty query = %d, want -1", got)
		}
		if got := sx.Lookup(sets.New(c.MaxID() + 9)); got != -1 {
			t.Fatalf("out-of-vocabulary query = %d, want -1", got)
		}
	})
}

func TestDifferentialIndexBatch(t *testing.T) {
	_, st := testCollection(t)
	keys := sampleKeys(st, 7)
	var qs []sets.Set
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sx := shardedIndex(t, k, p)
		got := sx.LookupBatch(nil, qs, false)
		for i, q := range qs {
			if want := sx.Lookup(q); got[i] != want {
				t.Fatalf("LookupBatch[%d](%v) = %d, per-query %d", i, q, got[i], want)
			}
		}
		gotEq := sx.LookupBatch(nil, qs, true)
		for i, q := range qs {
			if want := sx.LookupEqual(q); gotEq[i] != want {
				t.Fatalf("LookupBatch equal[%d](%v) = %d, per-query %d", i, q, gotEq[i], want)
			}
		}
	})
}

func TestDifferentialEstimator(t *testing.T) {
	_, st := testCollection(t)
	keys := sampleKeys(st, 3)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		se := shardedEstimator(t, k, p)
		bound, ok := se.CombinedErrorBound()
		if !ok {
			t.Fatal("MeasureBounds build reports no combined bound")
		}
		if bound < 0 {
			t.Fatalf("negative combined bound %g", bound)
		}
		for _, key := range keys {
			info := st.ByKey[key]
			got := se.Estimate(info.Set)
			if d := math.Abs(got - float64(info.Card)); d > bound+1e-9 {
				t.Fatalf("Estimate(%v) = %g, truth %d: error %g exceeds combined bound %g",
					info.Set, got, info.Card, d, bound)
			}
		}
		if got := se.Estimate(sets.New()); got != 0 {
			t.Fatalf("empty query estimate = %g, want 0", got)
		}
	})
}

func TestDifferentialEstimatorBatch(t *testing.T) {
	c, st := testCollection(t)
	keys := sampleKeys(st, 9)
	qs := []sets.Set{sets.New(), sets.New(c.MaxID() + 4)}
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		se := shardedEstimator(t, k, p)
		got := se.EstimateBatch(nil, qs)
		for i, q := range qs {
			if want := se.Estimate(q); got[i] != want {
				t.Fatalf("EstimateBatch[%d](%v) = %g, per-query %g", i, q, got[i], want)
			}
		}
	})
}

func TestDifferentialFilter(t *testing.T) {
	c, st := testCollection(t)
	keys := sampleKeys(st, 3)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sf := shardedFilter(t, k, p)
		for _, key := range keys {
			if !sf.Contains(st.ByKey[key].Set) {
				t.Fatalf("false negative for trained subset %v", st.ByKey[key].Set)
			}
		}
		if !sf.Contains(sets.New()) {
			t.Fatal("empty query must be contained")
		}
		if sf.Contains(sets.New(c.MaxID() + 17)) {
			t.Fatal("out-of-vocabulary query must be rejected")
		}
	})
}

func TestDifferentialFilterBatch(t *testing.T) {
	c, st := testCollection(t)
	keys := sampleKeys(st, 6)
	qs := []sets.Set{sets.New(), sets.New(c.MaxID() + 21)}
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sf := shardedFilter(t, k, p)
		got := sf.ContainsBatch(qs, 3)
		for i, q := range qs {
			if want := sf.Contains(q); got[i] != want {
				t.Fatalf("ContainsBatch[%d](%v) = %v, per-query %v", i, q, got[i], want)
			}
		}
	})
}

// TestDifferentialShardStats sanity-checks the per-shard accounting every
// configuration exposes to the server.
func TestDifferentialShardStats(t *testing.T) {
	c, _ := testCollection(t)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sx := shardedIndex(t, k, p)
		stats := sx.ShardStats()
		if len(stats) != k {
			t.Fatalf("ShardStats returned %d entries for K=%d", len(stats), k)
		}
		total := 0
		for s, st := range stats {
			if st.Shard != s {
				t.Fatalf("stats[%d].Shard = %d", s, st.Shard)
			}
			total += st.Sets
		}
		if total != c.Len() {
			t.Fatalf("shard sizes sum to %d, collection has %d", total, c.Len())
		}
		for _, bs := range sx.BuildStats() {
			if bs.Sets > 0 && bs.Bytes <= 0 {
				t.Fatalf("shard %d built %d sets but reports %d bytes", bs.Shard, bs.Sets, bs.Bytes)
			}
		}
	})
}
