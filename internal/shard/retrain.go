package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"setlearn/internal/calib"
	"setlearn/internal/core"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
)

// The live-mutation retrain path. A retrain absorbs one shard's pending
// delta into a freshly trained model and hot-swaps the shard's state
// pointer under live traffic:
//
//  1. Snapshot the delta (append-only, so the prefix of length cut is
//     stable) and merge it with the shard's trained sub-collection in
//     global position order.
//  2. Build the new core structure off the serving path, with the same
//     scaled options and the same deterministic seed (baseSeed+shard) the
//     original build used — so the result is bit-identical to a
//     from-scratch build over the union collection.
//  3. Under insertMu, collect the tail (inserts that landed during the
//     build), swap in the new state carrying the tail as its delta, and
//     raise the accepted MaxID.
//
// Because inserts also run under insertMu, every insert lands either in
// the old delta (absorbed now or carried as tail) or in the new state's
// delta — never lost, never double-counted. Queries load one state
// pointer and see either (old model + complete old delta) or (new model +
// tail); both compose to the same answers, which is what the
// mutation-under-load battery pins.

// Retrainable is a container whose shards can be rebuilt in the background
// by a Trainer.
type Retrainable interface {
	// StalestShard returns the shard most in need of a retrain — largest
	// pending delta, oldest tie-break — or -1 when every shard has fewer
	// than minPending pending inserts or the container cannot retrain.
	StalestShard(minPending int) int
	// RetrainShard rebuilds shard s over its trained sets plus pending
	// delta and hot-swaps the result. A no-op (nil) when the delta is
	// empty, which makes double triggers idempotent.
	RetrainShard(s int) error
	// DeltaStats reports the pending/absorbed counters.
	DeltaStats() core.DeltaStats
}

// mergeTrained merges a shard's trained sets with absorbed delta entries
// into a fresh position-ordered (sub-collection, global map) pair — the
// exact pair a from-scratch partition of the union collection would
// produce for this shard.
func mergeTrained(sub *sets.Collection, global []int, absorbed []hybrid.DeltaEntry) (*sets.Collection, []int) {
	type posSet struct {
		pos int
		set sets.Set
	}
	n := sub.Len()
	all := make([]posSet, 0, n+len(absorbed))
	for i := 0; i < n; i++ {
		all = append(all, posSet{global[i], sub.At(i)})
	}
	for _, en := range absorbed {
		all = append(all, posSet{en.Pos, en.Set})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	ns := &sets.Collection{Sets: make([]sets.Set, 0, len(all))}
	ng := make([]int, 0, len(all))
	for _, p := range all {
		ns.Append(p.set)
		ng = append(ng, p.pos)
	}
	return ns, ng
}

// raiseMaxID lifts the container's accepted-id ceiling; only retrains
// write it (serialized by retrainMu), so load-then-store is race-free.
func raiseMaxID(m *atomic.Uint32, id uint32) {
	if id > m.Load() {
		m.Store(id)
	}
}

// RetrainShard rebuilds shard s's index over its trained sets plus the
// pending delta and hot-swaps it. Returns nil without building when the
// delta is empty.
func (x *Index) RetrainShard(s int) error {
	if s < 0 || s >= x.k {
		return fmt.Errorf("shard: retrain: shard %d out of range [0, %d)", s, x.k)
	}
	if x.opts == nil {
		return fmt.Errorf("shard: retrain: container loaded without retrain state (v1 stream)")
	}
	x.retrainMu.Lock()
	defer x.retrainMu.Unlock()
	old := x.states[s].Load()
	snap := old.delta.Snapshot()
	cut := len(snap)
	if cut == 0 {
		return nil
	}
	sub, global := mergeTrained(old.sub, old.global, snap)
	opts := *x.opts
	opts.Model.Seed = x.baseSeed + int64(s)
	t0 := time.Now()
	idx, err := core.BuildIndex(sub, opts)
	if err != nil {
		return fmt.Errorf("shard: retrain shard %d: %w", s, err)
	}
	if fp := x.fast.Load(); fp != nil {
		idx.EnableFastPath(*fp)
	}
	if p := core.Precision(x.prec.Load()); p != core.F64 {
		idx.SetPrecision(p)
	}
	// A calibrated container recalibrates the swapped shard: the fresh model
	// has fresh position errors, so the curve is refitted on the persisted
	// held-out workload (against the merged sub-collection's truths) before
	// the shard serves — mirroring how precision is re-applied above.
	var cal *calib.Curve
	var holdout float64
	if len(x.calQueries) > 0 {
		skip := func(q sets.Set) bool { return x.route.prunes(s, q) }
		cal, holdout = fitIndexCal(idx, sub, x.maxSub, x.calQueries, skip)
	}
	stat := BuildStat{
		Shard: s, Sets: sub.Len(),
		BuildSecs:  time.Since(t0).Seconds(),
		Bytes:      idx.SizeBytes(),
		MaxError:   idx.MaxError(),
		HoldoutErr: holdout,
	}
	x.insertMu.Lock()
	tail := old.delta.Tail(cut)
	x.states[s].Store(&indexShard{
		idx: idx, sub: sub, global: global,
		delta: hybrid.NewDeltaFrom(tail), stat: stat,
		cal: cal, holdout: holdout,
	})
	x.insertMu.Unlock()
	x.absorbed.Add(uint64(cut))
	raiseMaxID(&x.maxID, sub.MaxID())
	return nil
}

// RetrainShard rebuilds shard s's estimator over its trained sets plus the
// pending delta and hot-swaps it, folding the absorbed counts into any
// exact overrides so their composed answers do not move. Returns nil
// without building when the delta is empty. Requires the shard
// sub-collections (present after a build; a loaded estimator needs
// AttachCollection first).
func (e *Estimator) RetrainShard(s int) error {
	if s < 0 || s >= e.k {
		return fmt.Errorf("shard: retrain: shard %d out of range [0, %d)", s, e.k)
	}
	if e.opts == nil {
		return fmt.Errorf("shard: retrain: container loaded without retrain state (v1 stream)")
	}
	e.retrainMu.Lock()
	defer e.retrainMu.Unlock()
	old := e.states[s].Load()
	if old.sub == nil {
		return fmt.Errorf("shard: retrain shard %d: no collection attached (call AttachCollection)", s)
	}
	snap := old.delta.Snapshot()
	cut := len(snap)
	if cut == 0 {
		return nil
	}
	sub, global := mergeTrained(old.sub, old.global, snap)
	opts := *e.opts
	opts.Model.Seed = e.baseSeed + int64(s)
	t0 := time.Now()
	est, err := core.BuildEstimator(sub, opts)
	if err != nil {
		return fmt.Errorf("shard: retrain shard %d: %w", s, err)
	}
	if fp := e.fast.Load(); fp != nil {
		est.EnableFastPath(*fp)
	}
	if p := core.Precision(e.prec.Load()); p != core.F64 {
		est.SetPrecision(p)
	}
	// A calibrated container recalibrates the swapped shard on the persisted
	// held-out workload against the merged sub-collection's truths, so the
	// curve tracks the fresh model — mirroring the precision re-apply above.
	// The refit honors the serving toggle: fitted but uninstalled when off.
	var cal *calib.Curve
	var holdout float64
	if len(e.calQueries) > 0 {
		skip := func(q sets.Set) bool { return e.route.prunes(s, q) }
		cal, holdout = fitEstimatorCal(est, sub, e.calQueries, skip)
		if !e.calOn.Load() {
			est.SetCalibration(nil)
		}
	}
	stat := BuildStat{
		Shard: s, Sets: sub.Len(),
		BuildSecs:  time.Since(t0).Seconds(),
		Bytes:      est.SizeBytes(),
		HoldoutErr: holdout,
	}
	// The swap and the override folding happen inside one auxMu critical
	// section: an override reader holds the read lock across its override
	// + delta-count composition, so it either sees (old delta counts, old
	// override values) or (tail counts, folded values) — both exact.
	e.insertMu.Lock()
	e.auxMu.Lock()
	tail := old.delta.Tail(cut)
	e.states[s].Store(&estShard{
		est: est, sub: sub, global: global,
		delta: hybrid.NewDeltaFrom(tail), stat: stat,
		cal: cal, holdout: holdout,
	})
	for key, ov := range e.aux {
		folded := 0.0
		for _, en := range snap {
			if en.Set.ContainsAll(ov.set) {
				folded++
			}
		}
		if folded > 0 {
			ov.card += folded
			e.aux[key] = ov
		}
	}
	// The rebuilt model's error over the measured workload is unknown.
	e.bounds = nil
	e.auxMu.Unlock()
	e.insertMu.Unlock()
	e.absorbed.Add(uint64(cut))
	raiseMaxID(&e.maxID, sub.MaxID())
	return nil
}

// RetrainShard rebuilds shard s's membership filter over its trained sets
// plus the pending delta and hot-swaps it. Returns nil without building
// when the delta is empty. Requires the shard sub-collections (present
// after a build; a loaded filter needs AttachCollection first).
func (f *Filter) RetrainShard(s int) error {
	if s < 0 || s >= f.k {
		return fmt.Errorf("shard: retrain: shard %d out of range [0, %d)", s, f.k)
	}
	if f.opts == nil {
		return fmt.Errorf("shard: retrain: container loaded without retrain state (v1 stream)")
	}
	f.retrainMu.Lock()
	defer f.retrainMu.Unlock()
	old := f.states[s].Load()
	if old.sub == nil {
		return fmt.Errorf("shard: retrain shard %d: no collection attached (call AttachCollection)", s)
	}
	snap := old.delta.Snapshot()
	cut := len(snap)
	if cut == 0 {
		return nil
	}
	sub, global := mergeTrained(old.sub, old.global, snap)
	opts := *f.opts
	opts.Model.Seed = f.baseSeed + int64(s)
	t0 := time.Now()
	flt, err := core.BuildMembershipFilter(sub, opts)
	if err != nil {
		return fmt.Errorf("shard: retrain shard %d: %w", s, err)
	}
	if fp := f.fast.Load(); fp != nil {
		flt.EnableFastPath(*fp)
	}
	if p := core.Precision(f.prec.Load()); p != core.F64 {
		flt.SetPrecision(p)
	}
	stat := BuildStat{
		Shard: s, Sets: sub.Len(),
		BuildSecs: time.Since(t0).Seconds(),
		Bytes:     flt.SizeBytes(),
	}
	f.insertMu.Lock()
	tail := old.delta.Tail(cut)
	f.states[s].Store(&fltShard{
		flt: flt, sub: sub, global: global,
		delta: hybrid.NewDeltaFrom(tail), stat: stat,
	})
	f.insertMu.Unlock()
	f.absorbed.Add(uint64(cut))
	raiseMaxID(&f.maxID, sub.MaxID())
	return nil
}

// attachSubs rebuilds each shard's sub-collection from its persisted
// global positions, resolving each position from the base collection or
// the inserted-set log. Shared by the estimator and filter
// AttachCollection implementations.
func attachSubs(k, baseLen int, c *sets.Collection, inserted []hybrid.DeltaEntry,
	global func(s int) []int, store func(s int, sub *sets.Collection) error) error {
	if c == nil {
		return fmt.Errorf("shard: attach: nil collection")
	}
	if c.Len() < baseLen {
		return fmt.Errorf("shard: attach: collection has %d sets, container was built over %d", c.Len(), baseLen)
	}
	byPos := make(map[int]sets.Set, len(inserted))
	for _, en := range inserted {
		byPos[en.Pos] = en.Set
	}
	for s := 0; s < k; s++ {
		g := global(s)
		if g == nil {
			return fmt.Errorf("shard: attach: shard %d has no position map (v1 stream)", s)
		}
		sub := &sets.Collection{Sets: make([]sets.Set, 0, len(g))}
		for _, pos := range g {
			switch {
			case pos >= 0 && pos < baseLen:
				sub.Append(c.At(pos))
			case byPos[pos] != nil:
				sub.Append(byPos[pos])
			default:
				return fmt.Errorf("shard: attach: shard %d references unknown position %d", s, pos)
			}
		}
		if err := store(s, sub); err != nil {
			return err
		}
	}
	return nil
}

// AttachCollection gives a loaded estimator its collection back, enabling
// retrains: each shard's sub-collection is rebuilt from the persisted
// position maps. c must be the collection the container was originally
// built over (it may be longer; only the first baseLen sets are used).
func (e *Estimator) AttachCollection(c *sets.Collection) error {
	if e.opts == nil {
		return fmt.Errorf("shard: attach: container loaded without retrain state (v1 stream)")
	}
	e.retrainMu.Lock()
	defer e.retrainMu.Unlock()
	e.insertMu.Lock()
	defer e.insertMu.Unlock()
	return attachSubs(e.k, e.baseLen, c, e.inserted,
		func(s int) []int { return e.states[s].Load().global },
		func(s int, sub *sets.Collection) error {
			st := e.states[s].Load()
			e.states[s].Store(&estShard{
				est: st.est, sub: sub, global: st.global,
				delta: st.delta, stat: st.stat,
				cal: st.cal, holdout: st.holdout,
			})
			return nil
		})
}

// AttachCollection gives a loaded filter its collection back, enabling
// retrains (see Estimator.AttachCollection).
func (f *Filter) AttachCollection(c *sets.Collection) error {
	if f.opts == nil {
		return fmt.Errorf("shard: attach: container loaded without retrain state (v1 stream)")
	}
	f.retrainMu.Lock()
	defer f.retrainMu.Unlock()
	f.insertMu.Lock()
	defer f.insertMu.Unlock()
	return attachSubs(f.k, f.baseLen, c, f.inserted,
		func(s int) []int { return f.states[s].Load().global },
		func(s int, sub *sets.Collection) error {
			st := f.states[s].Load()
			f.states[s].Store(&fltShard{
				flt: st.flt, sub: sub, global: st.global,
				delta: st.delta, stat: st.stat,
			})
			return nil
		})
}

// TrainerStats are the background trainer's counters, published by the
// server under setlearn.retrain.*.
type TrainerStats struct {
	Sweeps   uint64  `json:"sweeps"`
	Retrains uint64  `json:"retrains"`
	Errors   uint64  `json:"errors"`
	LastSecs float64 `json:"last_secs"` // duration of the most recent retrain
}

// Trainer owns the background retrain loop: every interval (or on Kick) it
// scans its targets for the stalest shard and rebuilds at most one shard
// per target per sweep, off the serving path. Builds are serialized per
// container by retrainMu, so a Trainer never races a manual RetrainShard.
type Trainer struct {
	targets   []Retrainable
	interval  time.Duration
	threshold int

	kick   chan struct{}
	done   chan struct{}
	cancel context.CancelFunc

	sweeps   atomic.Uint64
	retrains atomic.Uint64
	errors   atomic.Uint64
	lastSecs atomic.Uint64 // math.Float64bits
	onErr    func(error)
}

// NewTrainer builds a trainer over the given containers. interval is the
// sweep period (minimum 1ms is enforced at Start); threshold is the
// minimum pending-delta size that makes a shard eligible (minimum 1).
// onErr, when non-nil, observes retrain failures (e.g. a server log).
func NewTrainer(interval time.Duration, threshold int, onErr func(error), targets ...Retrainable) *Trainer {
	if threshold < 1 {
		threshold = 1
	}
	return &Trainer{
		targets:   targets,
		interval:  interval,
		threshold: threshold,
		kick:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		onErr:     onErr,
	}
}

// Start launches the background loop. The goroutine exits when ctx is
// cancelled or Stop is called; Stop waits for it.
func (t *Trainer) Start(ctx context.Context) {
	if t.interval < time.Millisecond {
		t.interval = time.Millisecond
	}
	ctx, t.cancel = context.WithCancel(ctx)
	go t.loop(ctx)
}

// loop is the trainer goroutine: tick or kick, then one sweep. The
// context is the single exit path, so the goroutine cannot leak.
func (t *Trainer) loop(ctx context.Context) {
	defer close(t.done)
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-t.kick:
		}
		t.Sweep()
	}
}

// Stop cancels the loop and waits for the goroutine to exit. Safe to call
// once after Start; a Trainer that was never started must not be stopped.
func (t *Trainer) Stop() {
	t.cancel()
	<-t.done
}

// Kick requests an immediate sweep without waiting for the next tick
// (non-blocking; coalesces with an already-pending kick).
func (t *Trainer) Kick() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// Sweep synchronously retrains the stalest eligible shard of every target.
// Exported so tests and shutdown paths can drain deltas deterministically.
func (t *Trainer) Sweep() {
	t.sweeps.Add(1)
	for _, target := range t.targets {
		s := target.StalestShard(t.threshold)
		if s < 0 {
			continue
		}
		t0 := time.Now()
		if err := target.RetrainShard(s); err != nil {
			t.errors.Add(1)
			if t.onErr != nil {
				t.onErr(err)
			}
			continue
		}
		t.retrains.Add(1)
		t.lastSecs.Store(floatBits(time.Since(t0).Seconds()))
	}
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Stats returns the trainer's counters.
func (t *Trainer) Stats() TrainerStats {
	return TrainerStats{
		Sweeps:   t.sweeps.Load(),
		Retrains: t.retrains.Load(),
		Errors:   t.errors.Load(),
		LastSecs: floatFromBits(t.lastSecs.Load()),
	}
}
