package shard

import (
	"math"
	"testing"

	"setlearn/internal/core"
	"setlearn/internal/sets"
)

// Calibration must survive a shard hot-swap the way precision does: the
// retrained shard's fresh model has fresh errors, so RetrainShard refits the
// swapped shard's curve on the persisted held-out workload — and none of it
// may disturb the delta's read-own-write exactness, before or after the
// swap.
func TestCalibrationSurvivesRetrain(t *testing.T) {
	c, _ := accuracyFixture()
	m := accuracyModel()
	m.Epochs = 2 // underfit so the isotonic curves beat raw and install
	e, err := BuildShardedEstimator(c, Options{
		Shards: 4, Partitioner: FrequencyBand, Calibrate: true,
	}, core.EstimatorOptions{
		Model: m, MaxSubset: testMaxSubset, Percentile: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Calibrated() {
		t.Fatal("Calibrate build does not report calibration on")
	}

	// A fresh-element set answers exactly 1 from the owning shard's delta
	// (every other shard presence-prunes it; the owner's model sees it as
	// out-of-vocabulary, so only the delta contributes).
	fresh := sets.New(c.MaxID()+11, c.MaxID()+17)
	e.InsertSet(fresh.Clone())
	sd := e.route.owner(fresh)
	if got := e.Estimate(fresh); got != 1 {
		t.Fatalf("read-own-write: Estimate(fresh) = %g, want exactly 1", got)
	}

	before := e.states[sd].Load()
	if before.cal == nil {
		t.Fatalf("shard %d installed no curve at build (underfit model should calibrate)", sd)
	}
	if err := e.RetrainShard(sd); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	after := e.states[sd].Load()
	if after.est == before.est {
		t.Fatal("retrain did not swap the shard estimator")
	}
	if after.cal == nil {
		t.Fatalf("shard %d lost its calibration curve across the hot-swap", sd)
	}
	if after.cal == before.cal {
		t.Fatal("retrain kept the stale curve instead of refitting for the fresh model")
	}
	if after.holdout < 0 || math.IsNaN(after.holdout) {
		t.Fatalf("refitted held-out error %g", after.holdout)
	}
	if !e.Calibrated() {
		t.Fatal("container toggle lost across retrain")
	}
	for _, stat := range e.ShardStats() {
		if stat.Shard == sd && !stat.Calibrated {
			t.Fatalf("shard %d stats report uncalibrated after recalibrating retrain", sd)
		}
	}

	// Read-own-write exactness is untouched by the swap: a second fresh set
	// inserted into the retrained shard's delta still answers exactly.
	fresh2 := sets.New(e.MaxID()+23, e.MaxID()+29)
	e.InsertSet(fresh2.Clone())
	if got := e.Estimate(fresh2); got != 1 {
		t.Fatalf("read-own-write after retrain: Estimate(fresh2) = %g, want exactly 1", got)
	}

	// The serving toggle governs the refit too: retrain under a disabled
	// toggle fits the curve (so stats stay meaningful) but serves raw.
	e.EnableCalibration(false)
	e.InsertSet(sets.New(e.MaxID() + 31).Clone())
	sd2 := e.StalestShard(1)
	if sd2 < 0 {
		t.Fatal("no stale shard after insert")
	}
	if err := e.RetrainShard(sd2); err != nil {
		t.Fatalf("retrain under disabled toggle: %v", err)
	}
	if e.Calibrated() {
		t.Fatal("retrain re-enabled a disabled toggle")
	}
	e.EnableCalibration(true)
}

// The index refits its position curve on retrain too — with remeasured
// error bounds, so trained-subset exactness holds on the swapped shard.
func TestIndexCalibrationSurvivesRetrain(t *testing.T) {
	c, st := accuracyFixture()
	m := accuracyModel()
	m.Epochs = 2
	x, err := BuildShardedIndex(c, Options{
		Shards: 4, Partitioner: FrequencyBand, Calibrate: true,
	}, core.IndexOptions{
		Model: m, MaxSubset: testMaxSubset,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Delta read-own-write: a fresh set answers its exact position at once.
	fresh := sets.New(c.MaxID()+41, c.MaxID()+43)
	pos := x.InsertSet(fresh.Clone())
	if got := x.Lookup(fresh); got != pos {
		t.Fatalf("read-own-write: Lookup(fresh) = %d, want %d", got, pos)
	}
	sd := x.route.owner(fresh)
	if err := x.RetrainShard(sd); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	// The absorbed set is a trained subset of the swapped shard now; its
	// lookup stays exact (measured bounds certify it, curve or no curve).
	if got := x.Lookup(fresh); got != pos {
		t.Fatalf("absorbed set: Lookup(fresh) = %d, want %d", got, pos)
	}
	// Trained subsets keep exact first-position answers on every shard.
	for _, key := range sampleKeys(st, 23) {
		info := st.ByKey[key]
		if got := x.Lookup(info.Set); got != info.FirstPos {
			t.Fatalf("trained subset %v: Lookup = %d, want %d", info.Set, got, info.FirstPos)
		}
	}
}
