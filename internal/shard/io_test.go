package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"setlearn/internal/core"
	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// ioCorpus holds one tiny sharded container of each kind, serialized, plus
// the collection the index needs at load time — the seeds for the golden,
// truncation, and fuzz tests. K=3 over a hash partition so the corpus
// exercises uneven shards.
type ioCorpus struct {
	c      *sets.Collection
	index  []byte
	card   []byte
	member []byte
}

var (
	ioOnce sync.Once
	ioC    *ioCorpus
	ioErr  error
)

func ioModel() core.ModelOptions {
	return core.ModelOptions{
		EmbedDim: 2, PhiHidden: []int{4}, PhiOut: 4, RhoHidden: []int{4},
		Epochs: 1, LR: 0.01, Workers: 1, Seed: 5,
	}
}

func buildIOCorpus(tb testing.TB) *ioCorpus {
	tb.Helper()
	ioOnce.Do(func() {
		c := dataset.GenerateSD(60, 20, 71)
		fc := &ioCorpus{c: c}
		o := Options{Shards: 3, Partitioner: HashBySet, MeasureBounds: true}

		idx, err := BuildShardedIndex(c, o, core.IndexOptions{Model: ioModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			ioErr = err
			return
		}
		var buf bytes.Buffer
		if ioErr = idx.Save(&buf); ioErr != nil {
			return
		}
		fc.index = append([]byte(nil), buf.Bytes()...)

		est, err := BuildShardedEstimator(c, o, core.EstimatorOptions{Model: ioModel(), MaxSubset: 2, Percentile: 90})
		if err != nil {
			ioErr = err
			return
		}
		// An exact override so the container-level aux round-trips too.
		est.Update(sets.New(c.MaxID()+5), 3)
		buf.Reset()
		if ioErr = est.Save(&buf); ioErr != nil {
			return
		}
		fc.card = append([]byte(nil), buf.Bytes()...)

		mf, err := BuildShardedFilter(c, o, core.FilterOptions{Model: ioModel(), MaxSubset: 2, Sandwich: true})
		if err != nil {
			ioErr = err
			return
		}
		buf.Reset()
		if ioErr = mf.Save(&buf); ioErr != nil {
			return
		}
		fc.member = append([]byte(nil), buf.Bytes()...)
		ioC = fc
	})
	if ioErr != nil {
		tb.Fatalf("building sharded io corpus: %v", ioErr)
	}
	return ioC
}

// TestShardedGoldenRoundTrip: save → load → save must be byte-identical,
// and the reloaded container must answer exactly like the saved one.
func TestShardedGoldenRoundTrip(t *testing.T) {
	fc := buildIOCorpus(t)
	st := dataset.CollectSubsets(fc.c, 2)
	keys := sampleKeys(st, 4)

	t.Run("index", func(t *testing.T) {
		x, err := LoadShardedIndex(bytes.NewReader(fc.index), fc.c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fc.index, buf.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d → %d bytes", len(fc.index), buf.Len())
		}
		for _, key := range keys {
			info := st.ByKey[key]
			if got := x.Lookup(info.Set); got != info.FirstPos {
				t.Fatalf("reloaded Lookup(%v) = %d, want %d", info.Set, got, info.FirstPos)
			}
		}
	})

	t.Run("estimator", func(t *testing.T) {
		e, err := LoadShardedEstimator(bytes.NewReader(fc.card))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fc.card, buf.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d → %d bytes", len(fc.card), buf.Len())
		}
		if got := e.Estimate(sets.New(fc.c.MaxID() + 5)); got != 3 {
			t.Fatalf("reloaded override = %g, want 3", got)
		}
		if _, ok := e.CombinedErrorBound(); !ok {
			t.Fatal("measured bounds lost in round trip")
		}
	})

	t.Run("filter", func(t *testing.T) {
		f, err := LoadShardedFilter(bytes.NewReader(fc.member))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fc.member, buf.Bytes()) {
			t.Fatalf("round trip not byte-identical: %d → %d bytes", len(fc.member), buf.Len())
		}
		for _, key := range keys {
			if !f.Contains(st.ByKey[key].Set) {
				t.Fatalf("reloaded filter lost trained subset %v", st.ByKey[key].Set)
			}
		}
	})
}

// tryLoad drives one loader over data; a decode must yield a queryable
// container, and no input may panic.
func tryLoadSharded(c *sets.Collection, which int, data []byte) {
	r := bytes.NewReader(data)
	switch which {
	case 0:
		if x, err := LoadShardedIndex(r, c); err == nil {
			x.Lookup(c.At(0))
		}
	case 1:
		if e, err := LoadShardedEstimator(r); err == nil {
			e.Estimate(c.At(0))
		}
	case 2:
		if f, err := LoadShardedFilter(r); err == nil {
			f.Contains(c.At(0))
		}
	}
}

// TestShardedLoadErrors pins the corrupt-header cases: bad magic, a
// monolithic (non-sharded) stream, kind mismatches, and empty input must
// all return errors, not panic.
func TestShardedLoadErrors(t *testing.T) {
	fc := buildIOCorpus(t)
	if _, err := LoadShardedEstimator(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input loaded")
	}
	bad := append([]byte(nil), fc.card...)
	bad[0] ^= 0xFF
	if _, err := LoadShardedEstimator(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic loaded")
	}
	// Kind mismatches: each stream against the other loaders.
	if _, err := LoadShardedEstimator(bytes.NewReader(fc.member)); err == nil {
		t.Fatal("filter container loaded as estimator")
	}
	if _, err := LoadShardedFilter(bytes.NewReader(fc.index)); err == nil {
		t.Fatal("index container loaded as filter")
	}
	if _, err := LoadShardedIndex(bytes.NewReader(fc.card), fc.c); err == nil {
		t.Fatal("estimator container loaded as index")
	}
	// A monolithic core stream is not a sharded container.
	mono, err := core.BuildEstimator(fc.c, core.EstimatorOptions{Model: ioModel(), MaxSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mono.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedEstimator(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("monolithic stream loaded as sharded container")
	}
	if SniffSharded(bytes.NewReader(buf.Bytes())) {
		t.Fatal("monolithic stream sniffed as sharded")
	}
	if !SniffSharded(bytes.NewReader(fc.card)) {
		t.Fatal("sharded stream not sniffed")
	}
}

// TestShardedLoadTruncatedNeverPanics sweeps every truncation point of each
// valid container (sampled for long streams) plus single-byte corruptions —
// the truncated-shard satellite case. Every variant must error or load;
// none may panic.
func TestShardedLoadTruncatedNeverPanics(t *testing.T) {
	fc := buildIOCorpus(t)
	for which, stream := range [][]byte{fc.index, fc.card, fc.member} {
		step := 1
		if len(stream) > 2048 {
			step = len(stream) / 2048
		}
		for n := 0; n < len(stream); n += step {
			tryLoadSharded(fc.c, which, stream[:n])
		}
		for off := 0; off < len(stream); off += 1 + len(stream)/256 {
			mut := append([]byte(nil), stream...)
			mut[off] ^= 0xA5
			tryLoadSharded(fc.c, which, mut)
		}
	}
}

// FuzzLoadSharded feeds arbitrary bytes to the three sharded load paths.
// Corrupt input must surface as an error — never a panic, hang, or absurd
// allocation. The which byte selects the loader so the fuzzer can mutate
// container bytes against their own decoder. Seeds for the committed corpus
// under testdata/fuzz/FuzzLoadSharded are regenerated by
// TestWriteFuzzSeedCorpus (SHARD_WRITE_CORPUS=1).
func FuzzLoadSharded(f *testing.F) {
	fc := buildIOCorpus(f)
	_, cardFreq, idxClust := buildIOV3Corpus(f)
	f.Add(byte(0), fc.index)
	f.Add(byte(1), fc.card)
	f.Add(byte(2), fc.member)
	f.Add(byte(0), fc.card)
	f.Add(byte(2), fc.card)
	f.Add(byte(1), cardFreq) // calibrated freq container, full v3 header
	f.Add(byte(0), idxClust) // calibrated cluster container, centroid table
	f.Add(byte(2), cardFreq) // v3 frame against the wrong loader
	f.Add(byte(1), []byte(Magic))
	f.Add(byte(1), []byte("garbage that is not a container"))
	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		tryLoadSharded(fc.c, int(which%3), data)
	})
}

// TestShardedFuzzSeedsCommitted requires the committed seed corpus to be
// present (the Go fuzz engine replays those files on every plain `go test`
// run) and additionally drives the raw file bytes — corpus framing
// included — through the loaders as one more corruption case.
func TestShardedFuzzSeedsCommitted(t *testing.T) {
	fc := buildIOCorpus(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadSharded")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed seed corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("committed seed corpus is empty")
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for which := 0; which < 3; which++ {
			tryLoadSharded(fc.c, which, data)
		}
	}
}

// TestWriteFuzzSeedCorpus regenerates the committed seed corpus. Skipped
// unless SHARD_WRITE_CORPUS=1 (run once and commit the result whenever the
// container format changes).
func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("SHARD_WRITE_CORPUS") == "" {
		t.Skip("set SHARD_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	fc := buildIOCorpus(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadSharded")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, which byte, data []byte) {
		body := "go test fuzz v1\n" +
			"byte(" + strconv.QuoteRuneToASCII(rune(which)) + ")\n" +
			"[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("seed-index", 0, fc.index)
	write("seed-card", 1, fc.card)
	write("seed-member", 2, fc.member)
	write("seed-cross", 0, fc.card)
	write("seed-magic-only", 1, []byte(Magic))
	_, cardFreq, idxClust := buildIOV3Corpus(t)
	write("seed-card-freq-v3", 1, cardFreq)
	write("seed-index-clust-v3", 0, idxClust)
	write("seed-cross-v3", 2, cardFreq)
}
