package shard

import (
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/sets"
)

// Metamorphic properties: relations between answers that must hold however
// well (or badly) the per-shard models trained.

// TestPermutationInvariance: a query set is a set — the element order the
// caller happened to list must not change any answer. sets.New canonicalizes,
// so this pins the container's whole query surface behind that boundary.
func TestPermutationInvariance(t *testing.T) {
	_, st := testCollection(t)
	rng := rand.New(rand.NewSource(997))
	keys := sampleKeys(st, 8)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sx := shardedIndex(t, k, p)
		se := shardedEstimator(t, k, p)
		sf := shardedFilter(t, k, p)
		for _, key := range keys {
			q := st.ByKey[key].Set
			ids := append([]uint32(nil), q...)
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			perm := sets.New(ids...)
			if a, b := sx.Lookup(q), sx.Lookup(perm); a != b {
				t.Fatalf("Lookup(%v) = %d but permuted %v = %d", q, a, ids, b)
			}
			if a, b := se.Estimate(q), se.Estimate(perm); a != b {
				t.Fatalf("Estimate(%v) = %g but permuted %v = %g", q, a, ids, b)
			}
			if a, b := sf.Contains(q), sf.Contains(perm); a != b {
				t.Fatalf("Contains(%v) = %v but permuted %v = %v", q, a, ids, b)
			}
		}
	})
}

// TestShardCountInvariance: answers served exactly — index hits for trained
// subsets (each shard's auxiliary structure and error bounds make them
// exact) and estimator Update overrides (container-level aux) — must not
// depend on how many shards the collection was split into.
func TestShardCountInvariance(t *testing.T) {
	_, st := testCollection(t)
	keys := sampleKeys(st, 6)
	for _, p := range testPartitioners {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			base := shardedIndex(t, testKs[0], p)
			for _, k := range testKs[1:] {
				sx := shardedIndex(t, k, p)
				for _, key := range keys {
					q := st.ByKey[key].Set
					if a, b := base.Lookup(q), sx.Lookup(q); a != b {
						t.Fatalf("trained subset %v: K=%d says %d, K=%d says %d",
							q, testKs[0], a, k, b)
					}
				}
			}
			// Update overrides are exact at every K.
			c, _ := testCollection(t)
			over := sets.New(c.MaxID()+31, c.MaxID()+37)
			for _, k := range testKs {
				se := shardedEstimator(t, k, p)
				se.Update(over, 7.5)
				if got := se.Estimate(over); got != 7.5 {
					t.Fatalf("K=%d: override estimate = %g, want 7.5", k, got)
				}
			}
		})
	}
}

// TestKOneEqualsMonolith: a 1-shard container is the monolith behind a
// fan-out of one — same partition (everything in shard 0, original order),
// same model options (√1 scaling is the identity), same seed — so answers
// must agree exactly, bit-for-bit for the estimator.
func TestKOneEqualsMonolith(t *testing.T) {
	c, st := testCollection(t)
	keys := sampleKeys(st, 4)
	var qs []sets.Set
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}
	// Probes beyond the trained cap and vocabulary.
	for i := 0; i < c.Len(); i += 17 {
		if s := c.At(i); len(s) >= 3 {
			qs = append(qs, sets.New(s[0], s[1], s[len(s)-1]))
		}
	}
	qs = append(qs, sets.New(c.MaxID()+2), sets.New())

	mi, me, mf := monoIndex(t), monoEstimator(t), monoFilter(t)
	for _, p := range testPartitioners {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sx := shardedIndex(t, 1, p)
			se := shardedEstimator(t, 1, p)
			sf := shardedFilter(t, 1, p)
			for _, q := range qs {
				if a, b := mi.Lookup(q), sx.Lookup(q); a != b {
					t.Fatalf("Lookup(%v): monolith %d, K=1 %d", q, a, b)
				}
				if a, b := mi.LookupEqual(q), sx.LookupEqual(q); a != b {
					t.Fatalf("LookupEqual(%v): monolith %d, K=1 %d", q, a, b)
				}
				a, b := me.Estimate(q), se.Estimate(q)
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("Estimate(%v): monolith %g, K=1 %g", q, a, b)
				}
				if a, b := mf.Contains(q), sf.Contains(q); a != b {
					t.Fatalf("Contains(%v): monolith %v, K=1 %v", q, a, b)
				}
			}
			// Batch forms agree with the monolith's batch forms.
			mb := mi.LookupBatch(nil, qs, false)
			sb := sx.LookupBatch(nil, qs, false)
			for i := range qs {
				if len(qs[i]) == 0 {
					continue // the sharded batch path answers empties up front
				}
				if mb[i] != sb[i] {
					t.Fatalf("LookupBatch[%d]: monolith %d, K=1 %d", i, mb[i], sb[i])
				}
			}
		})
	}
}
