package shard

import (
	"math"
	"math/rand"
	"testing"

	"setlearn/internal/core"
	"setlearn/internal/sets"
)

// Metamorphic properties: relations between answers that must hold however
// well (or badly) the per-shard models trained.

// TestPermutationInvariance: a query set is a set — the element order the
// caller happened to list must not change any answer. sets.New canonicalizes,
// so this pins the container's whole query surface behind that boundary.
func TestPermutationInvariance(t *testing.T) {
	_, st := testCollection(t)
	rng := rand.New(rand.NewSource(997))
	keys := sampleKeys(st, 8)
	forEachConfig(t, func(t *testing.T, k int, p Partitioner) {
		sx := shardedIndex(t, k, p)
		se := shardedEstimator(t, k, p)
		sf := shardedFilter(t, k, p)
		for _, key := range keys {
			q := st.ByKey[key].Set
			ids := append([]uint32(nil), q...)
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			perm := sets.New(ids...)
			if a, b := sx.Lookup(q), sx.Lookup(perm); a != b {
				t.Fatalf("Lookup(%v) = %d but permuted %v = %d", q, a, ids, b)
			}
			if a, b := se.Estimate(q), se.Estimate(perm); a != b {
				t.Fatalf("Estimate(%v) = %g but permuted %v = %g", q, a, ids, b)
			}
			if a, b := sf.Contains(q), sf.Contains(perm); a != b {
				t.Fatalf("Contains(%v) = %v but permuted %v = %v", q, a, ids, b)
			}
		}
	})
}

// TestShardCountInvariance: answers served exactly — index hits for trained
// subsets (each shard's auxiliary structure and error bounds make them
// exact) and estimator Update overrides (container-level aux) — must not
// depend on how many shards the collection was split into.
func TestShardCountInvariance(t *testing.T) {
	_, st := testCollection(t)
	keys := sampleKeys(st, 6)
	for _, p := range testPartitioners {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			base := shardedIndex(t, testKs[0], p)
			for _, k := range testKs[1:] {
				sx := shardedIndex(t, k, p)
				for _, key := range keys {
					q := st.ByKey[key].Set
					if a, b := base.Lookup(q), sx.Lookup(q); a != b {
						t.Fatalf("trained subset %v: K=%d says %d, K=%d says %d",
							q, testKs[0], a, k, b)
					}
				}
			}
			// Update overrides are exact at every K.
			c, _ := testCollection(t)
			over := sets.New(c.MaxID()+31, c.MaxID()+37)
			for _, k := range testKs {
				se := shardedEstimator(t, k, p)
				se.Update(over, 7.5)
				if got := se.Estimate(over); got != 7.5 {
					t.Fatalf("K=%d: override estimate = %g, want 7.5", k, got)
				}
			}
		})
	}
}

// TestFreqBandRelabelingInvariance: the frequency-band partition depends on
// element frequencies, never on element identities. Under any bijective
// relabeling of the vocabulary the per-position shard assignment, the band
// bounds, and every freq-score prune decision must be identical — the
// partitioner sorts by (score, position) and a relabeling preserves both
// keys. (Model outputs are not invariant — embeddings are indexed by id —
// so the property is asserted at the partition layer, where it is exact.)
func TestFreqBandRelabelingInvariance(t *testing.T) {
	c, st := testCollection(t)
	relabel := func(e uint32) uint32 { return c.MaxID() + 1 - e } // order-reversing bijection
	c2 := &sets.Collection{}
	for pos := 0; pos < c.Len(); pos++ {
		s := c.At(pos)
		ids := make([]uint32, len(s))
		for i, e := range s {
			ids[i] = relabel(e)
		}
		c2.Append(sets.New(ids...))
	}
	keys := sampleKeys(st, 5)
	for _, k := range testKs {
		_, globals1, rt1, err := buildPartition(c, k, FrequencyBand, testModel().Seed)
		if err != nil {
			t.Fatalf("K=%d: partition: %v", k, err)
		}
		_, globals2, rt2, err := buildPartition(c2, k, FrequencyBand, testModel().Seed)
		if err != nil {
			t.Fatalf("K=%d: relabeled partition: %v", k, err)
		}
		for s := 0; s < k; s++ {
			if a, b := globals1[s], globals2[s]; len(a) != len(b) {
				t.Fatalf("K=%d shard %d: %d positions vs %d relabeled", k, s, len(a), len(b))
			} else {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("K=%d shard %d: position list diverges at %d (%d vs %d)",
							k, s, i, a[i], b[i])
					}
				}
			}
		}
		if k == 1 {
			continue // no freq state at K=1 (identity partition)
		}
		for s := 0; s < k; s++ {
			if rt1.freq.bounds[s] != rt2.freq.bounds[s] {
				t.Fatalf("K=%d shard %d: bound %d vs relabeled %d",
					k, s, rt1.freq.bounds[s], rt2.freq.bounds[s])
			}
		}
		for _, key := range keys {
			q := st.ByKey[key].Set
			ids := make([]uint32, len(q))
			for i, e := range q {
				ids[i] = relabel(e)
			}
			q2 := sets.New(ids...)
			if a, b := rt1.freq.score(q), rt2.freq.score(q2); a != b {
				t.Fatalf("K=%d: score(%v)=%d but relabeled score=%d", k, q, a, b)
			}
			for s := 0; s < k; s++ {
				p1 := rt1.freq.score(q) > rt1.freq.bounds[s]
				p2 := rt2.freq.score(q2) > rt2.freq.bounds[s]
				if p1 != p2 {
					t.Fatalf("K=%d shard %d: freq prune %v but relabeled %v", k, s, p1, p2)
				}
			}
		}
	}
}

// TestInsertOrderInvariance: the order a batch of inserts arrives in must
// not change any answer once all have landed. Everything an insert touches
// is commutative — delta counts, first-position minima over explicit
// positions, presence bitmap ORs, support filter bit ORs — and two
// containers built from the same options are bit-identical, so the two
// insert orders must serve bit-equal answers on every surface.
func TestInsertOrderInvariance(t *testing.T) {
	c, st := testCollection(t)
	base := c.Len()
	var batch []sets.Set
	for i := 0; i < 6; i++ {
		e := c.MaxID() + uint32(3*i)
		batch = append(batch, sets.New(e+1, e+2, c.At(i)[0]))
	}
	var probes []sets.Set
	for _, s := range batch {
		probes = append(probes, s, sets.New(s[0]), sets.New(s[0], s[1]))
	}
	for _, key := range sampleKeys(st, 9) {
		probes = append(probes, st.ByKey[key].Set)
	}
	for _, p := range []Partitioner{FrequencyBand, EmbedCluster} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			build := func() (*Estimator, *Index, *Filter) {
				o := Options{Shards: 4, Partitioner: p}
				se, err := BuildShardedEstimator(c, o, core.EstimatorOptions{
					Model: testModel(), MaxSubset: testMaxSubset, Percentile: 90,
				})
				if err != nil {
					t.Fatalf("estimator: %v", err)
				}
				sx, err := BuildShardedIndex(c, o, core.IndexOptions{
					Model: testModel(), MaxSubset: testMaxSubset,
				})
				if err != nil {
					t.Fatalf("index: %v", err)
				}
				sf, err := BuildShardedFilter(c, o, core.FilterOptions{
					Model: testModel(), MaxSubset: testMaxSubset,
				})
				if err != nil {
					t.Fatalf("filter: %v", err)
				}
				return se, sx, sf
			}
			e1, x1, f1 := build()
			e2, x2, f2 := build()
			for i, s := range batch { // forward order
				e1.Insert(s, base+i)
				x1.Insert(s, base+i)
				f1.Insert(s, base+i)
			}
			for i := len(batch) - 1; i >= 0; i-- { // reverse order
				e2.Insert(batch[i], base+i)
				x2.Insert(batch[i], base+i)
				f2.Insert(batch[i], base+i)
			}
			for _, q := range probes {
				if a, b := e1.Estimate(q), e2.Estimate(q); a != b {
					t.Fatalf("Estimate(%v): forward %g, reverse %g", q, a, b)
				}
				if a, b := x1.Lookup(q), x2.Lookup(q); a != b {
					t.Fatalf("Lookup(%v): forward %d, reverse %d", q, a, b)
				}
				if a, b := f1.Contains(q), f2.Contains(q); a != b {
					t.Fatalf("Contains(%v): forward %v, reverse %v", q, a, b)
				}
			}
		})
	}
}

// TestKOneEqualsMonolith: a 1-shard container is the monolith behind a
// fan-out of one — same partition (everything in shard 0, original order),
// same model options (√1 scaling is the identity), same seed — so answers
// must agree exactly, bit-for-bit for the estimator.
func TestKOneEqualsMonolith(t *testing.T) {
	c, st := testCollection(t)
	keys := sampleKeys(st, 4)
	var qs []sets.Set
	for _, key := range keys {
		qs = append(qs, st.ByKey[key].Set)
	}
	// Probes beyond the trained cap and vocabulary.
	for i := 0; i < c.Len(); i += 17 {
		if s := c.At(i); len(s) >= 3 {
			qs = append(qs, sets.New(s[0], s[1], s[len(s)-1]))
		}
	}
	qs = append(qs, sets.New(c.MaxID()+2), sets.New())

	mi, me, mf := monoIndex(t), monoEstimator(t), monoFilter(t)
	for _, p := range testPartitioners {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sx := shardedIndex(t, 1, p)
			se := shardedEstimator(t, 1, p)
			sf := shardedFilter(t, 1, p)
			for _, q := range qs {
				if a, b := mi.Lookup(q), sx.Lookup(q); a != b {
					t.Fatalf("Lookup(%v): monolith %d, K=1 %d", q, a, b)
				}
				if a, b := mi.LookupEqual(q), sx.LookupEqual(q); a != b {
					t.Fatalf("LookupEqual(%v): monolith %d, K=1 %d", q, a, b)
				}
				a, b := me.Estimate(q), se.Estimate(q)
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("Estimate(%v): monolith %g, K=1 %g", q, a, b)
				}
				if a, b := mf.Contains(q), sf.Contains(q); a != b {
					t.Fatalf("Contains(%v): monolith %v, K=1 %v", q, a, b)
				}
			}
			// Batch forms agree with the monolith's batch forms.
			mb := mi.LookupBatch(nil, qs, false)
			sb := sx.LookupBatch(nil, qs, false)
			for i := range qs {
				if len(qs[i]) == 0 {
					continue // the sharded batch path answers empties up front
				}
				if mb[i] != sb[i] {
					t.Fatalf("LookupBatch[%d]: monolith %d, K=1 %d", i, mb[i], sb[i])
				}
			}
		})
	}
}
