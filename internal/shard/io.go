package shard

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"

	"setlearn/internal/blockio"
	"setlearn/internal/calib"
	"setlearn/internal/core"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
)

// Sharded containers persist as a versioned stream:
//
//	magic (8 bytes, "SLSHRD1\x00")
//	blockio{ gob containerHeader }
//	K × blockio{ core.Save stream }   (zero-length block for an empty shard)
//
// The magic distinguishes sharded containers from the monolithic core
// streams (which start with a blockio length prefix), so loaders can sniff
// the format. Every variable-length section sits behind the same
// length-prefixed framing the monolithic format uses, and each shard's
// payload is parsed by the fuzz-hardened core loaders, so corrupt or
// truncated inputs surface as errors, never panics.
//
// Format version 2 adds the live-mutation state: the insert log, each
// shard's pending-delta positions, and the scaled build options — so a
// restart loses nothing (pending inserts answer exactly again immediately)
// and background retrains can resume with the original deterministic
// configuration. Version-1 streams still load; they come up with empty
// deltas and no retrain state.
//
// Format version 3 adds the error-aware sharding state: per-shard
// calibration curves with their held-out workload and errors (so a reload
// serves calibrated and a later retrain refits deterministically), and the
// partitioner assignment tables — the frequency-band score table and
// bounds, or the embedding-cluster centroids plus pilot-model parameters —
// so inserts keep routing consistently after a reload. The freq/cluster
// partitioner codes are only legal at version ≥ 3. Version-1/2 streams
// still load, with nil calibration and stateless routing.

// Magic is the 8-byte sharded-container signature.
const Magic = "SLSHRD1\x00"

// IsShardedMagic reports whether b begins with the sharded-container magic.
func IsShardedMagic(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

const formatVersion = 3

// maxCalQueries bounds the persisted held-out workload a decoded header may
// demand (the build draws calQueryCount; the slack covers future growth).
const maxCalQueries = 1 << 16

type containerHeader struct {
	Version     int
	Kind        string // "index", "card", or "member"
	Shards      int
	Partitioner int
	MaxSubset   int
	ShardSets   []int    // trained sets per shard; 0 marks an empty (nil) shard
	Globals     [][]int  // per-shard local → global position (v1: index only; v2: all kinds)
	AuxKeys     []string // estimator only: exact-override keys, sorted
	AuxVals     []float64
	Bounds      []float64 // estimator only: per-shard measured bounds, or nil

	// Live-mutation state (version ≥ 2; zero values in v1 streams).
	BaseLen      int        // collection length at the original build
	NextPos      int64      // next global position InsertSet will hand out
	BaseSeed     int64      // per-shard model seed base
	InsertedPos  []int      // every insert since the original build, in order
	InsertedSets [][]uint32 // parallel to InsertedPos; canonical element lists
	DeltaPos     [][]int    // per shard: pending-delta positions, insertion order
	IndexOpts    *core.IndexOptions
	EstOpts      *core.EstimatorOptions
	FltOpts      *core.FilterOptions

	// Error-aware sharding state (version ≥ 3; zero values in v1/v2
	// streams). CalX/CalY are per-shard calibration-curve knots (nil entry:
	// no curve for that shard); CalQueries is the persisted held-out
	// workload retrains refit on; HoldoutErrs is parallel per-shard.
	CalOn       bool // estimator only: calibration serving toggle
	CalX        [][]float64
	CalY        [][]float64
	CalQueries  [][]uint32 // canonical element lists
	HoldoutErrs []float64

	// Per-shard element-presence bitmaps (all partitioners, K > 1): the
	// exact vocabulary prune's state. Nil in pre-v3 streams (pruning stays
	// off); a nil row leaves that one shard unpruned.
	Present [][]uint64

	// Per-shard subset-support Bloom filters and their saturation flags
	// (all partitioners, K > 1). Same nil conventions as Present; rows must
	// be power-of-two sized.
	Support    [][]uint64
	SupportSat []bool

	// FrequencyBand assignment table: the build-time element frequency
	// scores (sorted ids + parallel counts) and per-shard score bounds.
	FreqIDs    []uint32
	FreqCounts []int64
	FreqBounds []int64

	// EmbedCluster assignment table: the k-means centroids and the pilot
	// model parameters needed to rebuild the embedding deterministically.
	Centroids  [][]float64
	PilotSeed  int64
	PilotMaxID uint32
	PilotDim   int
}

func writeMagic(w io.Writer) error {
	_, err := w.Write([]byte(Magic))
	return err
}

func readContainerHeader(r io.Reader, kind string) (containerHeader, error) {
	var hdr containerHeader
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return hdr, fmt.Errorf("shard: read magic: %w", err)
	}
	if !IsShardedMagic(magic[:]) {
		return hdr, fmt.Errorf("shard: bad magic %q (not a sharded container)", magic[:])
	}
	block, err := blockio.Read(r)
	if err != nil {
		return hdr, fmt.Errorf("shard: read header: %w", err)
	}
	if err := gob.NewDecoder(block).Decode(&hdr); err != nil {
		return hdr, fmt.Errorf("shard: decode header: %w", err)
	}
	if hdr.Version < 1 || hdr.Version > formatVersion {
		return hdr, fmt.Errorf("shard: unsupported container version %d", hdr.Version)
	}
	if hdr.Kind != kind {
		return hdr, fmt.Errorf("shard: container holds %q, want %q", hdr.Kind, kind)
	}
	if hdr.Shards < 1 || hdr.Shards > maxShards {
		return hdr, fmt.Errorf("shard: shard count %d out of range [1, %d]", hdr.Shards, maxShards)
	}
	switch p := Partitioner(hdr.Partitioner); {
	case p == HashBySet || p == RangeByPosition:
	case (p == FrequencyBand || p == EmbedCluster) && hdr.Version >= 3:
	default:
		return hdr, fmt.Errorf("shard: unknown partitioner %d for version %d", hdr.Partitioner, hdr.Version)
	}
	if len(hdr.ShardSets) != hdr.Shards {
		return hdr, fmt.Errorf("shard: header lists %d shard sizes for %d shards", len(hdr.ShardSets), hdr.Shards)
	}
	if hdr.MaxSubset < 0 || hdr.MaxSubset > 64 {
		return hdr, fmt.Errorf("shard: subset cap %d out of range", hdr.MaxSubset)
	}
	return hdr, nil
}

// mutationState is the decoded v2 live-mutation header state, shared by the
// three loaders.
type mutationState struct {
	inserted []hybrid.DeltaEntry
	byPos    map[int]sets.Set
	deltas   [][]hybrid.DeltaEntry // per shard; nil deltas in v1 streams
	baseLen  int
	nextPos  int64
	baseSeed int64
}

// decodeMutation validates and decodes the v2 live-mutation header fields.
// Version-1 streams return the zero state (empty deltas). All malformed
// inputs — this is a fuzz surface — come back as errors, never panics.
func decodeMutation(hdr containerHeader) (mutationState, error) {
	var ms mutationState
	if hdr.Version < 2 {
		ms.deltas = make([][]hybrid.DeltaEntry, hdr.Shards)
		return ms, nil
	}
	if hdr.BaseLen < 0 {
		return ms, fmt.Errorf("shard: negative base length %d", hdr.BaseLen)
	}
	if hdr.NextPos < int64(hdr.BaseLen) {
		return ms, fmt.Errorf("shard: next position %d below base length %d", hdr.NextPos, hdr.BaseLen)
	}
	if len(hdr.InsertedPos) != len(hdr.InsertedSets) {
		return ms, fmt.Errorf("shard: %d insert positions for %d insert sets", len(hdr.InsertedPos), len(hdr.InsertedSets))
	}
	ms.baseLen = hdr.BaseLen
	ms.nextPos = hdr.NextPos
	ms.baseSeed = hdr.BaseSeed
	ms.byPos = make(map[int]sets.Set, len(hdr.InsertedPos))
	ms.inserted = make([]hybrid.DeltaEntry, 0, len(hdr.InsertedPos))
	for i, pos := range hdr.InsertedPos {
		if pos < 0 {
			return ms, fmt.Errorf("shard: insert %d: negative position %d", i, pos)
		}
		if _, dup := ms.byPos[pos]; dup {
			return ms, fmt.Errorf("shard: insert %d: duplicate position %d", i, pos)
		}
		s, err := canonicalSet(hdr.InsertedSets[i])
		if err != nil {
			return ms, fmt.Errorf("shard: insert %d: %w", i, err)
		}
		ms.byPos[pos] = s
		ms.inserted = append(ms.inserted, hybrid.DeltaEntry{Pos: pos, Set: s})
	}
	if hdr.DeltaPos != nil && len(hdr.DeltaPos) != hdr.Shards {
		return ms, fmt.Errorf("shard: header lists %d delta lists for %d shards", len(hdr.DeltaPos), hdr.Shards)
	}
	ms.deltas = make([][]hybrid.DeltaEntry, hdr.Shards)
	for s, dp := range hdr.DeltaPos {
		for _, pos := range dp {
			set, ok := ms.byPos[pos]
			if !ok {
				return ms, fmt.Errorf("shard: shard %d delta references position %d outside the insert log", s, pos)
			}
			ms.deltas[s] = append(ms.deltas[s], hybrid.DeltaEntry{Pos: pos, Set: set})
		}
	}
	return ms, nil
}

// canonicalSet validates a persisted element list: strictly increasing ids
// (the sets.Set canonical form).
func canonicalSet(ids []uint32) (sets.Set, error) {
	s := make(sets.Set, len(ids))
	for i, id := range ids {
		if i > 0 && id <= ids[i-1] {
			return nil, fmt.Errorf("element list not strictly increasing at %d", i)
		}
		s[i] = id
	}
	return s, nil
}

// resolvePos maps a persisted global position to its set: base-collection
// positions resolve through c, later ones through the insert log.
func resolvePos(pos int, baseLen int, c *sets.Collection, byPos map[int]sets.Set) (sets.Set, error) {
	if pos >= 0 && pos < baseLen {
		return c.At(pos), nil
	}
	if s, ok := byPos[pos]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("position %d outside the collection and the insert log", pos)
}

// validateGlobals checks the per-shard position maps against the shard
// sizes.
func validateGlobals(hdr containerHeader) error {
	if len(hdr.Globals) != hdr.Shards {
		return fmt.Errorf("shard: header lists %d global maps for %d shards", len(hdr.Globals), hdr.Shards)
	}
	for s, g := range hdr.Globals {
		if len(g) != hdr.ShardSets[s] {
			return fmt.Errorf("shard: shard %d: %d globals for %d sets", s, len(g), hdr.ShardSets[s])
		}
	}
	return nil
}

// routerToHeader records the router's assignment tables in the header
// (nothing for stateless hash/range routing or the K=1 degenerate forms).
func routerToHeader(rt *router, hdr *containerHeader) {
	hdr.Present = rt.presenceWords()
	hdr.Support, hdr.SupportSat = rt.supportToWords()
	if rt.freq != nil {
		hdr.FreqIDs = rt.freq.ids
		hdr.FreqCounts = rt.freq.counts
		hdr.FreqBounds = rt.freq.bounds
	}
	if rt.clust != nil {
		hdr.Centroids = rt.clust.centroids
		hdr.PilotSeed = rt.clust.seed
		hdr.PilotMaxID = rt.clust.maxID
		hdr.PilotDim = rt.clust.dim
	}
}

// routerFromHeader validates the persisted assignment tables and rebuilds
// the router. This is a fuzz surface: every malformed table errors, so a
// load never routes inserts — or prunes queries — from garbage.
func routerFromHeader(hdr containerHeader) (*router, error) {
	p := Partitioner(hdr.Partitioner)
	rt := newRouter(hdr.Shards, p)
	if hdr.Present != nil {
		if len(hdr.Present) != hdr.Shards {
			return nil, fmt.Errorf("shard: %d presence bitmaps for %d shards", len(hdr.Present), hdr.Shards)
		}
		if hdr.Shards > 1 {
			rt.present = presenceFromWords(hdr.Present)
		}
	}
	if hdr.Support != nil {
		if len(hdr.Support) != hdr.Shards {
			return nil, fmt.Errorf("shard: %d support filters for %d shards", len(hdr.Support), hdr.Shards)
		}
		if len(hdr.SupportSat) != hdr.Shards {
			return nil, fmt.Errorf("shard: %d support saturation flags for %d shards", len(hdr.SupportSat), hdr.Shards)
		}
		for s, row := range hdr.Support {
			if row == nil {
				continue
			}
			if len(row) < 1 || len(row) > supportMaxWords || len(row)&(len(row)-1) != 0 {
				return nil, fmt.Errorf("shard: support filter %d has %d words (want a power of two ≤ %d)", s, len(row), supportMaxWords)
			}
		}
		if hdr.Shards > 1 {
			rt.support = supportFromHeader(hdr.Support, hdr.SupportSat)
			rt.maxSub = hdr.MaxSubset
		}
	}
	switch {
	case p == FrequencyBand && hdr.Shards > 1:
		if len(hdr.FreqIDs) != len(hdr.FreqCounts) {
			return nil, fmt.Errorf("shard: %d frequency ids for %d counts", len(hdr.FreqIDs), len(hdr.FreqCounts))
		}
		if len(hdr.FreqBounds) != hdr.Shards {
			return nil, fmt.Errorf("shard: %d frequency bounds for %d shards", len(hdr.FreqBounds), hdr.Shards)
		}
		f := &freqRouter{
			ids:    hdr.FreqIDs,
			counts: hdr.FreqCounts,
			byID:   make(map[uint32]int64, len(hdr.FreqIDs)),
			bounds: hdr.FreqBounds,
		}
		for i, id := range f.ids {
			if i > 0 && id <= f.ids[i-1] {
				return nil, fmt.Errorf("shard: frequency ids not strictly increasing at %d", i)
			}
			if f.counts[i] < 1 {
				return nil, fmt.Errorf("shard: frequency count %d for element %d out of range", f.counts[i], id)
			}
			f.byID[id] = f.counts[i]
		}
		for s, b := range f.bounds {
			if b < 0 || (s > 0 && b < f.bounds[s-1]) {
				return nil, fmt.Errorf("shard: frequency bounds not non-decreasing at shard %d", s)
			}
		}
		rt.freq = f
	case p == EmbedCluster && hdr.Shards > 1:
		if len(hdr.Centroids) != hdr.Shards {
			return nil, fmt.Errorf("shard: %d centroids for %d shards", len(hdr.Centroids), hdr.Shards)
		}
		if hdr.PilotDim < 1 || hdr.PilotDim > maxPilotDim {
			return nil, fmt.Errorf("shard: pilot dimension %d out of range [1, %d]", hdr.PilotDim, maxPilotDim)
		}
		for s, cent := range hdr.Centroids {
			if len(cent) != hdr.PilotDim {
				return nil, fmt.Errorf("shard: centroid %d has %d dimensions, want %d", s, len(cent), hdr.PilotDim)
			}
			for _, v := range cent {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("shard: centroid %d is not finite", s)
				}
			}
		}
		cl, err := newClusterRouter(hdr.Centroids, hdr.PilotDim, hdr.PilotMaxID, hdr.PilotSeed)
		if err != nil {
			return nil, err
		}
		rt.clust = cl
	}
	return rt, nil
}

// calToHeader records the held-out calibration workload and the per-shard
// curves/errors in the header; a container that never calibrated emits
// nothing (keeping v3 bytes of uncalibrated containers minimal and the
// save→load→save round trip byte-identical).
func calToHeader(hdr *containerHeader, queries []sets.Set, curves []*calib.Curve, holdouts []float64) {
	any := len(queries) > 0
	for _, c := range curves {
		if c != nil {
			any = true
		}
	}
	if !any {
		return
	}
	hdr.CalQueries = make([][]uint32, len(queries))
	for i, q := range queries {
		hdr.CalQueries[i] = q
	}
	hdr.CalX = make([][]float64, len(curves))
	hdr.CalY = make([][]float64, len(curves))
	hdr.HoldoutErrs = holdouts
	for s, c := range curves {
		if c != nil {
			hdr.CalX[s] = c.X
			hdr.CalY[s] = c.Y
		}
	}
}

// decodeCalibration validates and decodes the persisted calibration state.
// Fuzz surface: any malformed curve, workload, or error list errors out —
// a load never serves through a garbage correction.
func decodeCalibration(hdr containerHeader) (queries []sets.Set, curves []*calib.Curve, holdouts []float64, err error) {
	curves = make([]*calib.Curve, hdr.Shards)
	holdouts = make([]float64, hdr.Shards)
	if len(hdr.CalQueries) > maxCalQueries {
		return nil, nil, nil, fmt.Errorf("shard: %d calibration queries exceed cap %d", len(hdr.CalQueries), maxCalQueries)
	}
	if len(hdr.CalQueries) > 0 {
		queries = make([]sets.Set, len(hdr.CalQueries))
		for i, ids := range hdr.CalQueries {
			q, err := canonicalSet(ids)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("shard: calibration query %d: %w", i, err)
			}
			if len(q) == 0 {
				return nil, nil, nil, fmt.Errorf("shard: calibration query %d is empty", i)
			}
			queries[i] = q
		}
	}
	if hdr.CalX == nil && hdr.CalY == nil && hdr.HoldoutErrs == nil {
		return queries, curves, holdouts, nil
	}
	if len(hdr.CalX) != hdr.Shards || len(hdr.CalY) != hdr.Shards {
		return nil, nil, nil, fmt.Errorf("shard: calibration curves for %d/%d shards, want %d", len(hdr.CalX), len(hdr.CalY), hdr.Shards)
	}
	if hdr.HoldoutErrs != nil {
		if len(hdr.HoldoutErrs) != hdr.Shards {
			return nil, nil, nil, fmt.Errorf("shard: %d held-out errors for %d shards", len(hdr.HoldoutErrs), hdr.Shards)
		}
		for s, h := range hdr.HoldoutErrs {
			if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
				return nil, nil, nil, fmt.Errorf("shard: shard %d held-out error %g out of range", s, h)
			}
		}
		copy(holdouts, hdr.HoldoutErrs)
	}
	for s := 0; s < hdr.Shards; s++ {
		if len(hdr.CalX[s]) == 0 && len(hdr.CalY[s]) == 0 {
			continue
		}
		cur := &calib.Curve{X: hdr.CalX[s], Y: hdr.CalY[s]}
		if err := cur.Validate(); err != nil {
			return nil, nil, nil, fmt.Errorf("shard: shard %d calibration curve: %w", s, err)
		}
		curves[s] = cur
	}
	return queries, curves, holdouts, nil
}

func writeContainerHeader(w io.Writer, hdr containerHeader) error {
	if err := writeMagic(w); err != nil {
		return fmt.Errorf("shard: write magic: %w", err)
	}
	if err := blockio.Write(w, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	}); err != nil {
		return fmt.Errorf("shard: write header: %w", err)
	}
	return nil
}

// saveShard frames one shard's core stream; a nil shard becomes a
// zero-length block.
func saveShard(w io.Writer, s int, save func(io.Writer) error) error {
	if save == nil {
		save = func(io.Writer) error { return nil }
	}
	if err := blockio.Write(w, save); err != nil {
		return fmt.Errorf("shard: save shard %d: %w", s, err)
	}
	return nil
}

// fillMutation writes the shared live-mutation header fields from a
// consistent snapshot. Caller holds insertMu (so no insert or retrain swap
// can interleave between the state loads and the log copy).
func (m *mutation) fillMutation(hdr *containerHeader, deltas [][]hybrid.DeltaEntry) {
	hdr.BaseLen = m.baseLen
	hdr.NextPos = m.nextPos.Load()
	hdr.BaseSeed = m.baseSeed
	hdr.InsertedPos = make([]int, len(m.inserted))
	hdr.InsertedSets = make([][]uint32, len(m.inserted))
	for i, en := range m.inserted {
		hdr.InsertedPos[i] = en.Pos
		hdr.InsertedSets[i] = en.Set
	}
	hdr.DeltaPos = make([][]int, len(deltas))
	for s, dl := range deltas {
		hdr.DeltaPos[s] = make([]int, len(dl))
		for i, en := range dl {
			hdr.DeltaPos[s][i] = en.Pos
		}
	}
}

// Save persists the sharded index: header (including the insert log and
// pending-delta positions, so a reload answers inserted sets exactly),
// then the per-shard model streams. Like the monolithic SetIndex, the
// collection itself is not written; LoadShardedIndex needs it back.
func (x *Index) Save(w io.Writer) error {
	// Snapshot states + deltas + insert log under insertMu: retrain swaps
	// also hold it, so the snapshot is one consistent cut.
	x.insertMu.Lock()
	sts := make([]*indexShard, x.k)
	deltas := make([][]hybrid.DeltaEntry, x.k)
	for s := 0; s < x.k; s++ {
		sts[s] = x.states[s].Load()
		deltas[s] = sts[s].delta.Snapshot()
	}
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "index",
		Shards:      x.k,
		Partitioner: int(x.part),
		MaxSubset:   x.maxSub,
		ShardSets:   make([]int, x.k),
		Globals:     make([][]int, x.k),
		IndexOpts:   x.opts,
	}
	x.fillMutation(&hdr, deltas)
	x.insertMu.Unlock()
	curves := make([]*calib.Curve, x.k)
	holdouts := make([]float64, x.k)
	for s := 0; s < x.k; s++ {
		hdr.ShardSets[s] = len(sts[s].global)
		hdr.Globals[s] = sts[s].global
		curves[s] = sts[s].cal
		holdouts[s] = sts[s].holdout
	}
	routerToHeader(x.route, &hdr)
	calToHeader(&hdr, x.calQueries, curves, holdouts)
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < x.k; s++ {
		var save func(io.Writer) error
		if sts[s].idx != nil {
			save = sts[s].idx.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedIndex restores a sharded index over the collection it was
// built on. c must cover the original build (the first BaseLen positions);
// sets inserted afterwards travel in the stream itself and need not be in
// c. Pending deltas are restored exactly, so lookups for inserted sets
// answer correctly the moment the load returns.
func LoadShardedIndex(r io.Reader, c *sets.Collection) (*Index, error) {
	if c == nil {
		return nil, fmt.Errorf("shard: load index: nil collection")
	}
	hdr, err := readContainerHeader(r, "index")
	if err != nil {
		return nil, err
	}
	if err := validateGlobals(hdr); err != nil {
		return nil, err
	}
	ms, err := decodeMutation(hdr)
	if err != nil {
		return nil, err
	}
	rt, err := routerFromHeader(hdr)
	if err != nil {
		return nil, err
	}
	calQueries, curves, holdouts, err := decodeCalibration(hdr)
	if err != nil {
		return nil, err
	}
	if hdr.Version < 2 {
		// v1 resolved every position through the collection.
		ms.baseLen = c.Len()
		ms.nextPos = int64(c.Len())
	}
	if ms.baseLen > c.Len() {
		return nil, fmt.Errorf("shard: container was built over %d sets but the collection has %d", ms.baseLen, c.Len())
	}
	x := &Index{
		states:  make([]atomic.Pointer[indexShard], hdr.Shards),
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		route:   rt,
		maxSub:  hdr.MaxSubset,
		queries: make([]atomic.Uint64, hdr.Shards),
		opts:    hdr.IndexOpts,
	}
	x.calQueries = calQueries
	x.baseLen = ms.baseLen
	x.baseSeed = ms.baseSeed
	x.nextPos.Store(ms.nextPos)
	x.inserted = ms.inserted
	var maxID uint32
	for s := 0; s < hdr.Shards; s++ {
		sub := &sets.Collection{Sets: make([]sets.Set, 0, len(hdr.Globals[s]))}
		for _, pos := range hdr.Globals[s] {
			set, err := resolvePos(pos, ms.baseLen, c, ms.byPos)
			if err != nil {
				return nil, fmt.Errorf("shard: shard %d: %w", s, err)
			}
			sub.Append(set)
		}
		if id := sub.MaxID(); id > maxID {
			maxID = id
		}
		st := &indexShard{
			sub:     sub,
			global:  hdr.Globals[s],
			delta:   hybrid.NewDeltaFrom(ms.deltas[s]),
			stat:    BuildStat{Shard: s, Sets: sub.Len(), HoldoutErr: holdouts[s]},
			cal:     curves[s],
			holdout: holdouts[s],
		}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if sub.Len() == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			x.states[s].Store(st)
			continue
		}
		idx, err := core.LoadIndex(block, sub)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if st.cal != nil {
			// Install-only: the persisted error bounds were measured with
			// the curve active, so no remeasure is needed (or wanted — it
			// must match the pre-save serving state exactly).
			idx.SetPositionCalibration(st.cal)
		}
		st.idx = idx
		st.stat.Bytes = idx.SizeBytes()
		st.stat.MaxError = idx.MaxError()
		x.states[s].Store(st)
	}
	x.maxID.Store(maxID)
	return x, nil
}

// Save persists the sharded estimator, including the container-level exact
// overrides (sorted for deterministic bytes), any measured bounds, and the
// live-mutation state.
func (e *Estimator) Save(w io.Writer) error {
	e.insertMu.Lock()
	sts := make([]*estShard, e.k)
	deltas := make([][]hybrid.DeltaEntry, e.k)
	for s := 0; s < e.k; s++ {
		sts[s] = e.states[s].Load()
		deltas[s] = sts[s].delta.Snapshot()
	}
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "card",
		Shards:      e.k,
		Partitioner: int(e.part),
		MaxSubset:   e.maxSub,
		ShardSets:   make([]int, e.k),
		Globals:     make([][]int, e.k),
		EstOpts:     e.opts,
	}
	e.fillMutation(&hdr, deltas)
	e.auxMu.RLock()
	hdr.Bounds = e.bounds
	hdr.AuxKeys = make([]string, 0, len(e.aux))
	for k := range e.aux {
		hdr.AuxKeys = append(hdr.AuxKeys, k)
	}
	sort.Strings(hdr.AuxKeys)
	hdr.AuxVals = make([]float64, len(hdr.AuxKeys))
	for i, k := range hdr.AuxKeys {
		hdr.AuxVals[i] = e.aux[k].card
	}
	e.auxMu.RUnlock()
	e.insertMu.Unlock()
	curves := make([]*calib.Curve, e.k)
	holdouts := make([]float64, e.k)
	for s := 0; s < e.k; s++ {
		hdr.ShardSets[s] = sts[s].stat.Sets
		hdr.Globals[s] = sts[s].global
		curves[s] = sts[s].cal
		holdouts[s] = sts[s].holdout
	}
	hdr.CalOn = e.calOn.Load()
	routerToHeader(e.route, &hdr)
	calToHeader(&hdr, e.calQueries, curves, holdouts)
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < e.k; s++ {
		var save func(io.Writer) error
		if sts[s].est != nil {
			save = sts[s].est.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedEstimator restores an estimator saved by Save. The maximum
// accepted element id is recovered from the shard models; pending deltas
// are restored exactly. Retraining additionally needs AttachCollection.
func LoadShardedEstimator(r io.Reader) (*Estimator, error) {
	hdr, err := readContainerHeader(r, "card")
	if err != nil {
		return nil, err
	}
	if len(hdr.AuxKeys) != len(hdr.AuxVals) {
		return nil, fmt.Errorf("shard: header lists %d override keys for %d values", len(hdr.AuxKeys), len(hdr.AuxVals))
	}
	if hdr.Bounds != nil && len(hdr.Bounds) != hdr.Shards {
		return nil, fmt.Errorf("shard: header lists %d bounds for %d shards", len(hdr.Bounds), hdr.Shards)
	}
	if hdr.Version >= 2 {
		if err := validateGlobals(hdr); err != nil {
			return nil, err
		}
	}
	ms, err := decodeMutation(hdr)
	if err != nil {
		return nil, err
	}
	rt, err := routerFromHeader(hdr)
	if err != nil {
		return nil, err
	}
	calQueries, curves, holdouts, err := decodeCalibration(hdr)
	if err != nil {
		return nil, err
	}
	e := &Estimator{
		states:  make([]atomic.Pointer[estShard], hdr.Shards),
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		route:   rt,
		maxSub:  hdr.MaxSubset,
		aux:     make(map[string]auxOverride, len(hdr.AuxKeys)),
		bounds:  hdr.Bounds,
		queries: make([]atomic.Uint64, hdr.Shards),
		opts:    hdr.EstOpts,
	}
	e.calQueries = calQueries
	e.calOn.Store(hdr.CalOn)
	e.baseLen = ms.baseLen
	e.baseSeed = ms.baseSeed
	e.nextPos.Store(ms.nextPos)
	e.inserted = ms.inserted
	for i, k := range hdr.AuxKeys {
		set, err := sets.FromKey(k)
		if err != nil {
			return nil, fmt.Errorf("shard: override %d: %w", i, err)
		}
		e.aux[k] = auxOverride{set: set, card: hdr.AuxVals[i]}
	}
	var maxID uint32
	for s := 0; s < hdr.Shards; s++ {
		st := &estShard{
			delta:   hybrid.NewDeltaFrom(ms.deltas[s]),
			stat:    BuildStat{Shard: s, Sets: hdr.ShardSets[s], HoldoutErr: holdouts[s]},
			cal:     curves[s],
			holdout: holdouts[s],
		}
		if hdr.Version >= 2 {
			st.global = hdr.Globals[s]
		}
		if e.bounds != nil {
			st.stat.ErrBound = e.bounds[s]
		}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if hdr.ShardSets[s] == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			e.states[s].Store(st)
			continue
		}
		est, err := core.LoadCardinalityEstimator(block)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if hdr.CalOn && st.cal != nil {
			est.SetCalibration(st.cal)
		}
		st.est = est
		st.stat.Bytes = est.SizeBytes()
		if id := est.MaxID(); id > maxID {
			maxID = id
		}
		e.states[s].Store(st)
	}
	e.maxID.Store(maxID)
	return e, nil
}

// Save persists the sharded membership filter, including the live-mutation
// state.
func (f *Filter) Save(w io.Writer) error {
	f.insertMu.Lock()
	sts := make([]*fltShard, f.k)
	deltas := make([][]hybrid.DeltaEntry, f.k)
	for s := 0; s < f.k; s++ {
		sts[s] = f.states[s].Load()
		deltas[s] = sts[s].delta.Snapshot()
	}
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "member",
		Shards:      f.k,
		Partitioner: int(f.part),
		MaxSubset:   f.maxSub,
		ShardSets:   make([]int, f.k),
		Globals:     make([][]int, f.k),
		FltOpts:     f.opts,
	}
	f.fillMutation(&hdr, deltas)
	f.insertMu.Unlock()
	routerToHeader(f.route, &hdr)
	for s := 0; s < f.k; s++ {
		hdr.ShardSets[s] = sts[s].stat.Sets
		hdr.Globals[s] = sts[s].global
	}
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < f.k; s++ {
		var save func(io.Writer) error
		if sts[s].flt != nil {
			save = sts[s].flt.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedFilter restores a filter saved by Save; pending deltas are
// restored exactly. Retraining additionally needs AttachCollection.
func LoadShardedFilter(r io.Reader) (*Filter, error) {
	hdr, err := readContainerHeader(r, "member")
	if err != nil {
		return nil, err
	}
	if hdr.Version >= 2 {
		if err := validateGlobals(hdr); err != nil {
			return nil, err
		}
	}
	ms, err := decodeMutation(hdr)
	if err != nil {
		return nil, err
	}
	rt, err := routerFromHeader(hdr)
	if err != nil {
		return nil, err
	}
	f := &Filter{
		states:  make([]atomic.Pointer[fltShard], hdr.Shards),
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		route:   rt,
		maxSub:  hdr.MaxSubset,
		queries: make([]atomic.Uint64, hdr.Shards),
		opts:    hdr.FltOpts,
	}
	f.baseLen = ms.baseLen
	f.baseSeed = ms.baseSeed
	f.nextPos.Store(ms.nextPos)
	f.inserted = ms.inserted
	var maxID uint32
	for s := 0; s < hdr.Shards; s++ {
		st := &fltShard{
			delta: hybrid.NewDeltaFrom(ms.deltas[s]),
			stat:  BuildStat{Shard: s, Sets: hdr.ShardSets[s]},
		}
		if hdr.Version >= 2 {
			st.global = hdr.Globals[s]
		}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if hdr.ShardSets[s] == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			f.states[s].Store(st)
			continue
		}
		flt, err := core.LoadMembershipFilter(block)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		st.flt = flt
		st.stat.Bytes = flt.SizeBytes()
		if id := flt.MaxID(); id > maxID {
			maxID = id
		}
		f.states[s].Store(st)
	}
	f.maxID.Store(maxID)
	return f, nil
}

// SniffSharded reports whether the stream served by ra begins with the
// sharded-container magic, without consuming it.
func SniffSharded(ra io.ReaderAt) bool {
	var b [len(Magic)]byte
	if _, err := ra.ReadAt(b[:], 0); err != nil {
		return false
	}
	return IsShardedMagic(b[:])
}
