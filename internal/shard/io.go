package shard

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"setlearn/internal/blockio"
	"setlearn/internal/core"
	"setlearn/internal/sets"
)

// Sharded containers persist as a versioned stream:
//
//	magic (8 bytes, "SLSHRD1\x00")
//	blockio{ gob containerHeader }
//	K × blockio{ core.Save stream }   (zero-length block for an empty shard)
//
// The magic distinguishes sharded containers from the monolithic core
// streams (which start with a blockio length prefix), so loaders can sniff
// the format. Every variable-length section sits behind the same
// length-prefixed framing the monolithic format uses, and each shard's
// payload is parsed by the fuzz-hardened core loaders, so corrupt or
// truncated inputs surface as errors, never panics.

// Magic is the 8-byte sharded-container signature.
const Magic = "SLSHRD1\x00"

// IsShardedMagic reports whether b begins with the sharded-container magic.
func IsShardedMagic(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

const formatVersion = 1

type containerHeader struct {
	Version     int
	Kind        string // "index", "card", or "member"
	Shards      int
	Partitioner int
	MaxSubset   int
	ShardSets   []int    // sets per shard; 0 marks an empty (nil) shard
	Globals     [][]int  // index only: per-shard local → global position
	AuxKeys     []string // estimator only: exact-override keys, sorted
	AuxVals     []float64
	Bounds      []float64 // estimator only: per-shard measured bounds, or nil
}

func writeMagic(w io.Writer) error {
	_, err := w.Write([]byte(Magic))
	return err
}

func readContainerHeader(r io.Reader, kind string) (containerHeader, error) {
	var hdr containerHeader
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return hdr, fmt.Errorf("shard: read magic: %w", err)
	}
	if !IsShardedMagic(magic[:]) {
		return hdr, fmt.Errorf("shard: bad magic %q (not a sharded container)", magic[:])
	}
	block, err := blockio.Read(r)
	if err != nil {
		return hdr, fmt.Errorf("shard: read header: %w", err)
	}
	if err := gob.NewDecoder(block).Decode(&hdr); err != nil {
		return hdr, fmt.Errorf("shard: decode header: %w", err)
	}
	if hdr.Version != formatVersion {
		return hdr, fmt.Errorf("shard: unsupported container version %d", hdr.Version)
	}
	if hdr.Kind != kind {
		return hdr, fmt.Errorf("shard: container holds %q, want %q", hdr.Kind, kind)
	}
	if hdr.Shards < 1 || hdr.Shards > maxShards {
		return hdr, fmt.Errorf("shard: shard count %d out of range [1, %d]", hdr.Shards, maxShards)
	}
	if p := Partitioner(hdr.Partitioner); p != HashBySet && p != RangeByPosition {
		return hdr, fmt.Errorf("shard: unknown partitioner %d", hdr.Partitioner)
	}
	if len(hdr.ShardSets) != hdr.Shards {
		return hdr, fmt.Errorf("shard: header lists %d shard sizes for %d shards", len(hdr.ShardSets), hdr.Shards)
	}
	if hdr.MaxSubset < 0 || hdr.MaxSubset > 64 {
		return hdr, fmt.Errorf("shard: subset cap %d out of range", hdr.MaxSubset)
	}
	return hdr, nil
}

func writeContainerHeader(w io.Writer, hdr containerHeader) error {
	if err := writeMagic(w); err != nil {
		return fmt.Errorf("shard: write magic: %w", err)
	}
	if err := blockio.Write(w, func(w io.Writer) error {
		return gob.NewEncoder(w).Encode(hdr)
	}); err != nil {
		return fmt.Errorf("shard: write header: %w", err)
	}
	return nil
}

// saveShard frames one shard's core stream; a nil shard becomes a
// zero-length block.
func saveShard(w io.Writer, s int, save func(io.Writer) error) error {
	if save == nil {
		save = func(io.Writer) error { return nil }
	}
	if err := blockio.Write(w, save); err != nil {
		return fmt.Errorf("shard: save shard %d: %w", s, err)
	}
	return nil
}

// Save persists the sharded index (headers, per-shard models, bounds, aux
// structures). Like the monolithic SetIndex, the collection itself is not
// written; LoadShardedIndex needs it back.
func (x *Index) Save(w io.Writer) error {
	x.mu.RLock()
	defer x.mu.RUnlock()
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "index",
		Shards:      x.k,
		Partitioner: int(x.part),
		MaxSubset:   x.maxSub,
		ShardSets:   make([]int, x.k),
		Globals:     x.globals,
	}
	for s := 0; s < x.k; s++ {
		hdr.ShardSets[s] = x.subs[s].Len()
	}
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < x.k; s++ {
		var save func(io.Writer) error
		if sh := x.shards[s]; sh != nil {
			save = sh.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedIndex restores a sharded index over the same collection it was
// built on (including any sets registered through Insert, which the caller
// appended to c).
func LoadShardedIndex(r io.Reader, c *sets.Collection) (*Index, error) {
	if c == nil {
		return nil, fmt.Errorf("shard: load index: nil collection")
	}
	hdr, err := readContainerHeader(r, "index")
	if err != nil {
		return nil, err
	}
	if len(hdr.Globals) != hdr.Shards {
		return nil, fmt.Errorf("shard: header lists %d global maps for %d shards", len(hdr.Globals), hdr.Shards)
	}
	total := 0
	for s, g := range hdr.Globals {
		if len(g) != hdr.ShardSets[s] {
			return nil, fmt.Errorf("shard: shard %d: %d globals for %d sets", s, len(g), hdr.ShardSets[s])
		}
		total += len(g)
		for _, pos := range g {
			if pos < 0 || pos >= c.Len() {
				return nil, fmt.Errorf("shard: shard %d: global position %d outside collection of %d sets", s, pos, c.Len())
			}
		}
	}
	if total > c.Len() {
		return nil, fmt.Errorf("shard: container maps %d sets but the collection has %d", total, c.Len())
	}
	x := &Index{
		shards:  make([]*core.SetIndex, hdr.Shards),
		subs:    make([]*sets.Collection, hdr.Shards),
		globals: hdr.Globals,
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		maxSub:  hdr.MaxSubset,
		maxID:   c.MaxID(),
		stats:   make([]BuildStat, hdr.Shards),
		queries: make([]atomic.Uint64, hdr.Shards),
	}
	for s := 0; s < hdr.Shards; s++ {
		sub := &sets.Collection{Sets: make([]sets.Set, 0, len(hdr.Globals[s]))}
		for _, pos := range hdr.Globals[s] {
			sub.Append(c.At(pos))
		}
		x.subs[s] = sub
		x.stats[s] = BuildStat{Shard: s, Sets: sub.Len()}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if sub.Len() == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			continue
		}
		idx, err := core.LoadIndex(block, sub)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		x.shards[s] = idx
		x.stats[s].Bytes = idx.SizeBytes()
		x.stats[s].MaxError = idx.MaxError()
	}
	return x, nil
}

// Save persists the sharded estimator, including the container-level exact
// overrides (sorted for deterministic bytes) and any measured bounds.
func (e *Estimator) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "card",
		Shards:      e.k,
		Partitioner: int(e.part),
		MaxSubset:   e.maxSub,
		ShardSets:   append([]int(nil), e.sizes...),
		Bounds:      e.bounds,
	}
	hdr.AuxKeys = make([]string, 0, len(e.aux))
	for k := range e.aux {
		hdr.AuxKeys = append(hdr.AuxKeys, k)
	}
	sort.Strings(hdr.AuxKeys)
	hdr.AuxVals = make([]float64, len(hdr.AuxKeys))
	for i, k := range hdr.AuxKeys {
		hdr.AuxVals[i] = e.aux[k]
	}
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < e.k; s++ {
		var save func(io.Writer) error
		if sh := e.shards[s]; sh != nil {
			save = sh.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedEstimator restores an estimator saved by Save. The maximum
// accepted element id is recovered from the shard models.
func LoadShardedEstimator(r io.Reader) (*Estimator, error) {
	hdr, err := readContainerHeader(r, "card")
	if err != nil {
		return nil, err
	}
	if len(hdr.AuxKeys) != len(hdr.AuxVals) {
		return nil, fmt.Errorf("shard: header lists %d override keys for %d values", len(hdr.AuxKeys), len(hdr.AuxVals))
	}
	if hdr.Bounds != nil && len(hdr.Bounds) != hdr.Shards {
		return nil, fmt.Errorf("shard: header lists %d bounds for %d shards", len(hdr.Bounds), hdr.Shards)
	}
	e := &Estimator{
		shards:  make([]*core.CardinalityEstimator, hdr.Shards),
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		maxSub:  hdr.MaxSubset,
		aux:     make(map[string]float64, len(hdr.AuxKeys)),
		bounds:  hdr.Bounds,
		stats:   make([]BuildStat, hdr.Shards),
		sizes:   hdr.ShardSets,
		queries: make([]atomic.Uint64, hdr.Shards),
	}
	for i, k := range hdr.AuxKeys {
		e.aux[k] = hdr.AuxVals[i]
	}
	for s := 0; s < hdr.Shards; s++ {
		e.stats[s] = BuildStat{Shard: s, Sets: hdr.ShardSets[s]}
		if e.bounds != nil {
			e.stats[s].ErrBound = e.bounds[s]
		}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if hdr.ShardSets[s] == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			continue
		}
		est, err := core.LoadCardinalityEstimator(block)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		e.shards[s] = est
		e.stats[s].Bytes = est.SizeBytes()
		if id := est.MaxID(); id > e.maxID {
			e.maxID = id
		}
	}
	return e, nil
}

// Save persists the sharded membership filter.
func (f *Filter) Save(w io.Writer) error {
	hdr := containerHeader{
		Version:     formatVersion,
		Kind:        "member",
		Shards:      f.k,
		Partitioner: int(f.part),
		MaxSubset:   f.maxSub,
		ShardSets:   append([]int(nil), f.sizes...),
	}
	if err := writeContainerHeader(w, hdr); err != nil {
		return err
	}
	for s := 0; s < f.k; s++ {
		var save func(io.Writer) error
		if sh := f.shards[s]; sh != nil {
			save = sh.Save
		}
		if err := saveShard(w, s, save); err != nil {
			return err
		}
	}
	return nil
}

// LoadShardedFilter restores a filter saved by Save.
func LoadShardedFilter(r io.Reader) (*Filter, error) {
	hdr, err := readContainerHeader(r, "member")
	if err != nil {
		return nil, err
	}
	f := &Filter{
		shards:  make([]*core.MembershipFilter, hdr.Shards),
		k:       hdr.Shards,
		part:    Partitioner(hdr.Partitioner),
		maxSub:  hdr.MaxSubset,
		stats:   make([]BuildStat, hdr.Shards),
		sizes:   hdr.ShardSets,
		queries: make([]atomic.Uint64, hdr.Shards),
	}
	for s := 0; s < hdr.Shards; s++ {
		f.stats[s] = BuildStat{Shard: s, Sets: hdr.ShardSets[s]}
		block, err := blockio.Read(r)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		if hdr.ShardSets[s] == 0 {
			if block.Len() != 0 {
				return nil, fmt.Errorf("shard: load shard %d: payload for an empty shard", s)
			}
			continue
		}
		flt, err := core.LoadMembershipFilter(block)
		if err != nil {
			return nil, fmt.Errorf("shard: load shard %d: %w", s, err)
		}
		f.shards[s] = flt
		f.stats[s].Bytes = flt.SizeBytes()
		if id := flt.MaxID(); id > f.maxID {
			f.maxID = id
		}
	}
	return f, nil
}

// SniffSharded reports whether the stream served by ra begins with the
// sharded-container magic, without consuming it.
func SniffSharded(ra io.ReaderAt) bool {
	var b [len(Magic)]byte
	if _, err := ra.ReadAt(b[:], 0); err != nil {
		return false
	}
	return IsShardedMagic(b[:])
}
