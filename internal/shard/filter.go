package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"setlearn/internal/core"
	"setlearn/internal/deepsets"
	"setlearn/internal/hybrid"
	"setlearn/internal/sets"
)

// fltShard is the swap-unit state of one filter shard: the trained filter,
// its sub-collection (needed to retrain; nil when loaded without a
// collection), and the exact delta of sets inserted after training.
type fltShard struct {
	flt    *core.MembershipFilter // nil for a shard with no trained sets yet
	sub    *sets.Collection       // trained sets in position order; nil until attached
	global []int                  // global positions of the trained sets
	delta  *hybrid.Delta
	stat   BuildStat
}

// Filter is a K-way partitioned MembershipFilter. A query is a subset of
// some set in the collection iff it is a subset of some set in one of the
// shards, so the fan-in is a short-circuiting OR. Each shard keeps the
// monolith's guarantee over its own sub-collection — no false negatives
// within the trained size cap — and OR preserves it: the shard owning a
// positive query answers true. Sets inserted after build are answered
// exactly from the owning shard's delta, so the no-false-negative
// guarantee extends to them at any query size.
//
// Queries are lock-free: each per-shard dispatch loads the shard's atomic
// state pointer once; per-shard predictor pools make each trained filter
// safe for concurrent use.
type Filter struct {
	states  []atomic.Pointer[fltShard]
	k       int
	part    Partitioner
	route   *router // insert routing + freq-band query pruning; never nil
	maxSub  int
	maxID   atomic.Uint32
	queries []atomic.Uint64
	mutation
	opts *core.FilterOptions // scaled per-shard build options; nil: not retrainable
	fast atomic.Pointer[core.FastPathOptions]
	prec atomic.Int32 // core.Precision, remembered and re-applied on retrain

	// hook, when non-nil, runs at the start of every per-shard dispatch.
	// Test-only; set before use, never concurrently.
	hook func(shard int)
}

var (
	_ core.MembershipQuerier = (*Filter)(nil)
	_ core.Inserter          = (*Filter)(nil)
	_ core.ShardStatser      = (*Filter)(nil)
	_ Retrainable            = (*Filter)(nil)
)

// BuildShardedFilter partitions c and builds one MembershipFilter per shard
// in parallel on a bounded worker pool with per-shard error aggregation.
func BuildShardedFilter(c *sets.Collection, o Options, opts core.FilterOptions) (*Filter, error) {
	if err := validate(c); err != nil {
		return nil, err
	}
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	subs, globals, rt, err := buildPartition(c, o.Shards, o.Partitioner, opts.Model.Seed)
	if err != nil {
		return nil, err
	}
	rt.buildSupport(subs, opts.MaxSubset)
	opts.Model = ScaleModel(opts.Model, o.Shards, o.Scaling)

	f := &Filter{
		states:  make([]atomic.Pointer[fltShard], o.Shards),
		k:       o.Shards,
		part:    o.Partitioner,
		route:   rt,
		maxSub:  opts.MaxSubset,
		queries: make([]atomic.Uint64, o.Shards),
		opts:    &opts,
	}
	f.maxID.Store(c.MaxID())
	f.baseLen = c.Len()
	f.baseSeed = opts.Model.Seed
	f.nextPos.Store(int64(c.Len()))
	err = runBounded(o.Shards, o.Parallelism, func(s int) error {
		st := &fltShard{
			sub:    subs[s],
			global: globals[s],
			delta:  hybrid.NewDelta(),
			stat:   BuildStat{Shard: s, Sets: subs[s].Len()},
		}
		if subs[s].Len() > 0 {
			so := opts
			so.Model.Seed = f.baseSeed + int64(s)
			t0 := time.Now()
			flt, err := core.BuildMembershipFilter(subs[s], so)
			if err != nil {
				return fmt.Errorf("shard %d: %w", s, err)
			}
			st.flt = flt
			st.stat.BuildSecs = time.Since(t0).Seconds()
			st.stat.Bytes = flt.SizeBytes()
		}
		f.states[s].Store(st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Contains reports whether q may be a subset of some set in the collection,
// OR-ing the shards (trained filter plus exact delta) with short-circuit.
// No false negatives occur for trained subsets within the size cap, nor for
// any subset of a set inserted after build.
func (f *Filter) Contains(q sets.Set) bool {
	if len(q) == 0 {
		return true // the empty set is a subset of everything
	}
	for s := 0; s < f.k; s++ {
		if f.hook != nil {
			f.hook(s)
		}
		f.queries[s].Add(1)
		st := f.states[s].Load()
		if st.delta.Contains(q) {
			return true
		}
		// A pruned shard provably holds no trained superset of q, so its
		// trained filter's true answer is false; skip the consult.
		if st.flt != nil && !f.route.prunes(s, q) && st.flt.Contains(q) {
			return true
		}
	}
	return false
}

// ContainsBatch answers many membership queries. The shard fan-out is the
// parallelism axis: every shard runs the whole batch through its fused
// path concurrently, and answers fan in by OR. The workers parameter is
// accepted for interface parity with the monolith and ignored.
func (f *Filter) ContainsBatch(qs []sets.Set, workers int) []bool {
	_ = workers
	out := make([]bool, len(qs))
	if len(qs) == 0 {
		return out
	}
	sts := make([]*fltShard, f.k)
	for s := range sts {
		sts[s] = f.states[s].Load()
	}
	per := make([][]bool, f.k)
	fanOut(f.k, func(s int) {
		if f.hook != nil {
			f.hook(s)
		}
		f.queries[s].Add(uint64(len(qs)))
		if sts[s].flt == nil {
			return
		}
		if !f.route.hasPruning() {
			per[s] = sts[s].flt.ContainsBatch(qs, 1)
			return
		}
		// Scatter pruned queries as exact false, matching the single path.
		sel := make([]sets.Set, 0, len(qs))
		selAt := make([]int, 0, len(qs))
		for j, q := range qs {
			if !f.route.prunes(s, q) {
				sel = append(sel, q)
				selAt = append(selAt, j)
			}
		}
		out := make([]bool, len(qs))
		if len(sel) > 0 {
			vals := sts[s].flt.ContainsBatch(sel, 1)
			for i, j := range selAt {
				out[j] = vals[i]
			}
		}
		per[s] = out
	})
	hasDelta := make([]bool, f.k)
	for s := range sts {
		hasDelta[s] = sts[s].delta.Len() > 0
	}
	for i := range qs {
		if len(qs[i]) == 0 {
			out[i] = true
			continue
		}
		for s := 0; s < f.k; s++ {
			if (per[s] != nil && per[s][i]) || (hasDelta[s] && sts[s].delta.Contains(qs[i])) {
				out[i] = true
				break
			}
		}
	}
	return out
}

// Insert registers a set appended to the logical collection at global
// position pos, recording it in the owning shard's exact delta.
func (f *Filter) Insert(s sets.Set, pos int) {
	s = s.Clone()
	f.insertMu.Lock()
	if int64(pos) >= f.nextPos.Load() {
		f.nextPos.Store(int64(pos) + 1)
	}
	f.logInsert(s, pos)
	sd := f.route.owner(s)
	f.route.noteInsert(sd, s)
	f.states[sd].Load().delta.Add(s, pos)
	f.insertMu.Unlock()
}

// InsertSet appends s to the logical collection: Contains answers true for
// every subset of s the instant this returns, with no false-negative risk.
func (f *Filter) InsertSet(s sets.Set) int {
	s = s.Clone()
	f.insertMu.Lock()
	pos := int(f.nextPos.Add(1)) - 1
	f.logInsert(s, pos)
	sd := f.route.owner(s)
	f.route.noteInsert(sd, s)
	f.states[sd].Load().delta.Add(s, pos)
	f.insertMu.Unlock()
	return pos
}

// DeltaStats reports the pending/absorbed insert counters across shards.
func (f *Filter) DeltaStats() core.DeltaStats {
	ds := core.DeltaStats{PerShard: make([]int, f.k), Absorbed: f.absorbed.Load()}
	var oldest time.Duration
	for s := 0; s < f.k; s++ {
		d := f.states[s].Load().delta
		n := d.Len()
		ds.PerShard[s] = n
		ds.Pending += n
		if a := d.Age(); a > oldest {
			oldest = a
		}
	}
	ds.OldestSecs = oldest.Seconds()
	return ds
}

// StalestShard returns the shard most in need of a retrain, or -1 (see
// Index.StalestShard). A filter loaded from disk additionally needs
// AttachCollection before it can retrain.
func (f *Filter) StalestShard(minPending int) int {
	if f.opts == nil || f.states[0].Load().sub == nil {
		return -1
	}
	return stalestShard(f.k, minPending, func(s int) *hybrid.Delta { return f.states[s].Load().delta })
}

// EnableFastPath (re)configures φ acceleration on every shard; the
// configuration is remembered and re-applied to retrained shard models.
func (f *Filter) EnableFastPath(o core.FastPathOptions) string {
	f.fast.Store(&o)
	mode := ""
	for s := 0; s < f.k; s++ {
		if sh := f.states[s].Load().flt; sh != nil {
			mode = mergeMode(mode, sh.EnableFastPath(o))
		}
	}
	if mode == "" {
		mode = "off"
	}
	return mode
}

// SetPrecision switches the serving precision on every shard; remembered
// and re-applied to retrained shard structures (see Index.SetPrecision).
func (f *Filter) SetPrecision(p core.Precision) {
	f.prec.Store(int32(p))
	for s := 0; s < f.k; s++ {
		if sh := f.states[s].Load().flt; sh != nil {
			sh.SetPrecision(p)
		}
	}
}

// Precision reports the container's configured serving precision.
func (f *Filter) Precision() core.Precision { return core.Precision(f.prec.Load()) }

// PhiStats aggregates the per-shard φ accel counters.
func (f *Filter) PhiStats() (deepsets.AccelStats, bool) {
	ps := make([]phiStatser, 0, f.k)
	for s := 0; s < f.k; s++ {
		if sh := f.states[s].Load().flt; sh != nil {
			ps = append(ps, sh)
		}
	}
	return aggregatePhi(ps)
}

// MaxID returns the largest element id accepted by the trained models; it
// grows when a retrain absorbs inserted sets with fresh elements.
func (f *Filter) MaxID() uint32 { return f.maxID.Load() }

// MaxSubset returns the trained subset-size cap shared by all shards.
func (f *Filter) MaxSubset() int { return f.maxSub }

// NumShards returns K.
func (f *Filter) NumShards() int { return f.k }

// Partitioner returns the partitioning scheme.
func (f *Filter) Partitioner() Partitioner { return f.part }

// SizeBytes sums the per-shard structure and delta footprints.
func (f *Filter) SizeBytes() int {
	total := 0
	for s := 0; s < f.k; s++ {
		st := f.states[s].Load()
		if st.flt != nil {
			total += st.flt.SizeBytes()
		}
		total += st.delta.SizeBytes()
	}
	return total
}

// BuildStats returns the per-shard build statistics; a retrained shard
// reports its latest build.
func (f *Filter) BuildStats() []BuildStat {
	out := make([]BuildStat, f.k)
	for s := 0; s < f.k; s++ {
		out[s] = f.states[s].Load().stat
	}
	return out
}

// ShardStats reports the per-shard serving statistics.
func (f *Filter) ShardStats() []core.ShardStat {
	out := make([]core.ShardStat, f.k)
	for s := 0; s < f.k; s++ {
		st := f.states[s].Load()
		pending := st.delta.Len()
		cs := core.ShardStat{
			Shard:   s,
			Sets:    st.stat.Sets + pending,
			Pending: pending,
			Queries: f.queries[s].Load(),
			PhiMode: "off",
		}
		if st.flt != nil {
			cs.Bytes = st.flt.SizeBytes()
			if ps, ok := st.flt.PhiStats(); ok {
				cs.PhiMode = ps.Mode
			}
		}
		out[s] = cs
	}
	return out
}
