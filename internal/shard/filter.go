package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"setlearn/internal/core"
	"setlearn/internal/deepsets"
	"setlearn/internal/sets"
)

// Filter is a K-way partitioned MembershipFilter. A query is a subset of
// some set in the collection iff it is a subset of some set in one of the
// shards, so the fan-in is a short-circuiting OR. Each shard keeps the
// monolith's guarantee over its own sub-collection — no false negatives
// within the trained size cap — and OR preserves it: the shard owning a
// positive query answers true.
//
// The filter is immutable after build, so queries need no container lock;
// per-shard predictor pools make each shard safe for concurrent use.
type Filter struct {
	shards  []*core.MembershipFilter // nil for shards that received no sets
	k       int
	part    Partitioner
	maxSub  int
	maxID   uint32
	stats   []BuildStat
	sizes   []int
	queries []atomic.Uint64

	// hook, when non-nil, runs at the start of every per-shard dispatch.
	// Test-only; set before use, never concurrently.
	hook func(shard int)
}

var (
	_ core.MembershipQuerier = (*Filter)(nil)
	_ core.ShardStatser      = (*Filter)(nil)
)

// BuildShardedFilter partitions c and builds one MembershipFilter per shard
// in parallel on a bounded worker pool with per-shard error aggregation.
func BuildShardedFilter(c *sets.Collection, o Options, opts core.FilterOptions) (*Filter, error) {
	if err := validate(c); err != nil {
		return nil, err
	}
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.MaxSubset == 0 {
		opts.MaxSubset = 3
	}
	subs, _ := partition(c, o.Shards, o.Partitioner)
	opts.Model = ScaleModel(opts.Model, o.Shards, o.Scaling)

	f := &Filter{
		shards:  make([]*core.MembershipFilter, o.Shards),
		k:       o.Shards,
		part:    o.Partitioner,
		maxSub:  opts.MaxSubset,
		maxID:   c.MaxID(),
		stats:   make([]BuildStat, o.Shards),
		sizes:   make([]int, o.Shards),
		queries: make([]atomic.Uint64, o.Shards),
	}
	baseSeed := opts.Model.Seed
	err = runBounded(o.Shards, o.Parallelism, func(s int) error {
		f.sizes[s] = subs[s].Len()
		f.stats[s] = BuildStat{Shard: s, Sets: subs[s].Len()}
		if subs[s].Len() == 0 {
			return nil
		}
		so := opts
		so.Model.Seed = baseSeed + int64(s)
		t0 := time.Now()
		flt, err := core.BuildMembershipFilter(subs[s], so)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		f.shards[s] = flt
		f.stats[s].BuildSecs = time.Since(t0).Seconds()
		f.stats[s].Bytes = flt.SizeBytes()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Contains reports whether q may be a subset of some set in the collection,
// OR-ing the shards with short-circuit. No false negatives occur for
// subsets within the trained size cap.
func (f *Filter) Contains(q sets.Set) bool {
	if len(q) == 0 {
		return true // the empty set is a subset of everything
	}
	for s := 0; s < f.k; s++ {
		if f.hook != nil {
			f.hook(s)
		}
		f.queries[s].Add(1)
		if f.shards[s] != nil && f.shards[s].Contains(q) {
			return true
		}
	}
	return false
}

// ContainsBatch answers many membership queries. The shard fan-out is the
// parallelism axis: every shard runs the whole batch through its fused
// path concurrently, and answers fan in by OR. The workers parameter is
// accepted for interface parity with the monolith and ignored.
func (f *Filter) ContainsBatch(qs []sets.Set, workers int) []bool {
	_ = workers
	out := make([]bool, len(qs))
	if len(qs) == 0 {
		return out
	}
	per := make([][]bool, f.k)
	fanOut(f.k, func(s int) {
		if f.hook != nil {
			f.hook(s)
		}
		f.queries[s].Add(uint64(len(qs)))
		if f.shards[s] == nil {
			return
		}
		per[s] = f.shards[s].ContainsBatch(qs, 1)
	})
	for i := range qs {
		if len(qs[i]) == 0 {
			out[i] = true
			continue
		}
		for s := 0; s < f.k; s++ {
			if per[s] != nil && per[s][i] {
				out[i] = true
				break
			}
		}
	}
	return out
}

// EnableFastPath (re)configures φ acceleration on every shard.
func (f *Filter) EnableFastPath(o core.FastPathOptions) string {
	mode := ""
	for _, sh := range f.shards {
		if sh != nil {
			mode = mergeMode(mode, sh.EnableFastPath(o))
		}
	}
	if mode == "" {
		mode = "off"
	}
	return mode
}

// PhiStats aggregates the per-shard φ accel counters.
func (f *Filter) PhiStats() (deepsets.AccelStats, bool) {
	ps := make([]phiStatser, 0, f.k)
	for _, sh := range f.shards {
		if sh != nil {
			ps = append(ps, sh)
		}
	}
	return aggregatePhi(ps)
}

// MaxID returns the largest element id in the partitioned collection.
func (f *Filter) MaxID() uint32 { return f.maxID }

// MaxSubset returns the trained subset-size cap shared by all shards.
func (f *Filter) MaxSubset() int { return f.maxSub }

// NumShards returns K.
func (f *Filter) NumShards() int { return f.k }

// Partitioner returns the partitioning scheme.
func (f *Filter) Partitioner() Partitioner { return f.part }

// SizeBytes sums the per-shard footprints.
func (f *Filter) SizeBytes() int {
	total := 0
	for _, sh := range f.shards {
		if sh != nil {
			total += sh.SizeBytes()
		}
	}
	return total
}

// BuildStats returns a copy of the per-shard build statistics.
func (f *Filter) BuildStats() []BuildStat {
	out := make([]BuildStat, len(f.stats))
	copy(out, f.stats)
	return out
}

// ShardStats reports the per-shard serving statistics.
func (f *Filter) ShardStats() []core.ShardStat {
	out := make([]core.ShardStat, f.k)
	for s := 0; s < f.k; s++ {
		st := core.ShardStat{
			Shard:   s,
			Sets:    f.sizes[s],
			Queries: f.queries[s].Load(),
			PhiMode: "off",
		}
		if sh := f.shards[s]; sh != nil {
			st.Bytes = sh.SizeBytes()
			if ps, ok := sh.PhiStats(); ok {
				st.PhiMode = ps.Mode
			}
		}
		out[s] = st
	}
	return out
}
