package shard

import (
	"math"

	"setlearn/internal/calib"
	"setlearn/internal/core"
	"setlearn/internal/dataset"
	"setlearn/internal/sets"
)

// Per-shard calibration: after a shard's model trains, a small isotonic
// (monotone non-decreasing) correction is fitted on held-out queries mapping
// the shard's raw model output to the shard-local truth, then composed into
// the fan-in. Sharding's dominant systematic error — the fan-in sum of K
// floored estimates over-counting queries most shards don't contain — is
// exactly the kind of monotone bias an isotonic fit removes: on a calibrated
// shard the floor-at-1 convention is dropped and low raw outputs (the
// model's "probably not here" signal) map toward 0 instead of 1.
//
// Exact paths are never calibrated: aux overrides, OOV queries, and the
// delta compose outside the curve, so read-own-write exactness and the
// trained-subset guarantees are untouched. The held-out workload is drawn
// once per container from the build seed and persisted, so a background
// retrain refits the swapped shard's curve deterministically.

// calQueryCount is the held-out calibration workload size per container.
const calQueryCount = 512

// calibrationQueries draws the held-out workload: random 1..maxSubset-element
// subsets of random collection sets, deduplicated (QueryWorkload may repeat).
func calibrationQueries(c *sets.Collection, maxSubset int, seed int64) []sets.Set {
	qs := dataset.QueryWorkload(c, calQueryCount, maxSubset, seed)
	seen := make(map[string]bool, len(qs))
	out := qs[:0]
	for _, q := range qs {
		k := q.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	return out
}

// fitEstimatorCal fits a shard estimator's correction curve, installs it
// only when it improves the held-out mean absolute error over the raw
// (floored) serving path, and returns the installed curve (nil when the raw
// path won or the fit degenerated) with the winning error. The fit maps raw
// unfloored model outputs to the shard-local cardinality truth; queries
// answered exactly (aux hits, OOV) are excluded from the fit and the error
// measure alike, since calibration never touches them. The skip predicate
// excludes queries the router prunes for this shard: at serving time those
// never reach the model, so fitting on them would tune the curve for a
// distribution it never serves — the held-out workload is dominated by
// locally-absent queries the prune layers already answer exactly, and a
// curve fitted over them learns to crush every low raw output toward zero,
// wrecking the supported queries that actually consult the model. The guard
// matters too: isotonic pooling flattens regions the model already ranks
// imperfectly, so on a shard whose raw outputs are near the truth the curve
// would trade a small error for its own block-mean error — calibration must
// never make a shard worse.
func fitEstimatorCal(est *core.CardinalityEstimator, sub *sets.Collection, queries []sets.Set, skip func(sets.Set) bool) (*calib.Curve, float64) {
	xs := make([]float64, 0, len(queries))
	ys := make([]float64, 0, len(queries))
	truths := make([]float64, len(queries))
	modeled := make([]bool, len(queries))
	for i, q := range queries {
		if skip != nil && skip(q) {
			continue
		}
		truths[i] = float64(sub.Cardinality(q))
		raw, ok := est.RawEstimate(q)
		if !ok {
			continue
		}
		modeled[i] = true
		xs = append(xs, raw)
		ys = append(ys, truths[i])
	}
	holdout := func() (float64, int) {
		var sum float64
		n := 0
		for i, q := range queries {
			if !modeled[i] {
				continue
			}
			sum += math.Abs(est.Estimate(q) - truths[i])
			n++
		}
		return sum, n
	}
	est.SetCalibration(nil)
	rawSum, n := holdout()
	cur := calib.Fit(xs, ys)
	if cur == nil {
		if n == 0 {
			return nil, 0
		}
		return nil, rawSum / float64(n)
	}
	est.SetCalibration(cur)
	calSum, _ := holdout()
	if n == 0 {
		return cur, 0
	}
	if rawSum < calSum {
		est.SetCalibration(nil)
		return nil, rawSum / float64(n)
	}
	return cur, calSum / float64(n)
}

// fitIndexCal fits a shard index's position-correction curve on held-out
// queries mapping raw unscaled position predictions to the shard-local first
// position, and installs it — with a full error-bound remeasure, so
// trained-subset exactness is preserved (see
// hybrid.Index.RecalibratePositions) — only when it improves the held-out
// mean absolute position error over the raw predictions (the same
// never-make-it-worse guard and prune-aligned skip predicate as
// fitEstimatorCal). Returns the installed curve (nil when raw won) with the
// winning error. Queries with no occurrence in the shard contribute nothing:
// the curve corrects where the model points when a hit exists, and misses
// are certified by the measured bounds, not the curve.
func fitIndexCal(idx *core.SetIndex, sub *sets.Collection, maxSubset int, queries []sets.Set, skip func(sets.Set) bool) (*calib.Curve, float64) {
	xs := make([]float64, 0, len(queries))
	ys := make([]float64, 0, len(queries))
	for _, q := range queries {
		if skip != nil && skip(q) {
			continue
		}
		truth := sub.FirstPosition(q)
		if truth < 0 {
			continue
		}
		raw, ok := idx.RawPosition(q)
		if !ok {
			continue
		}
		xs = append(xs, raw)
		ys = append(ys, float64(truth))
	}
	cur := calib.Fit(xs, ys)
	var rawSum, calSum float64
	for i, x := range xs {
		rawSum += math.Abs(x - ys[i])
		if cur != nil {
			calSum += math.Abs(cur.Apply(x) - ys[i])
		}
	}
	n := len(xs)
	if cur == nil || rawSum <= calSum {
		if n == 0 {
			return nil, 0
		}
		return nil, rawSum / float64(n)
	}
	idx.RecalibratePositions(cur, dataset.CollectSubsetsWithFull(sub, maxSubset).IndexSamples())
	return cur, calSum / float64(n)
}

// EnableCalibration toggles the estimator's per-shard correction curves at
// serving time (curves stay fitted either way, so the toggle is cheap and
// reversible — the bench harness uses it to measure both columns from one
// build). Note the measured error bounds are not remeasured on toggle; they
// describe the calibrated container when the build calibrated.
func (e *Estimator) EnableCalibration(on bool) {
	e.calOn.Store(on)
	for s := 0; s < e.k; s++ {
		st := e.states[s].Load()
		if st.est == nil {
			continue
		}
		if on && st.cal != nil {
			st.est.SetCalibration(st.cal)
		} else {
			st.est.SetCalibration(nil)
		}
	}
}

// Calibrated reports whether per-shard correction curves are being served.
func (e *Estimator) Calibrated() bool { return e.calOn.Load() }

// Calibrated reports whether any shard serves a position-correction curve.
// The index has no disable toggle: its curves are installed together with
// remeasured error bounds, and serving without the bounds' curve would
// break trained-subset exactness.
func (x *Index) Calibrated() bool {
	for s := 0; s < x.k; s++ {
		if x.states[s].Load().cal != nil {
			return true
		}
	}
	return false
}
